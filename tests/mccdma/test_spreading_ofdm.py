"""Tests for Walsh spreading, OFDM, coding and interleaving."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mccdma import OFDMModulator, WalshSpreader, walsh_matrix
from repro.mccdma.coding import ConvolutionalCoder
from repro.mccdma.interleaving import BlockInterleaver


def test_walsh_matrix_orthogonal():
    for L in (1, 2, 4, 16, 64):
        h = walsh_matrix(L)
        assert np.array_equal(h @ h.T, L * np.eye(L))


def test_walsh_matrix_rejects_non_power_of_two():
    for bad in (0, 3, 6, 12, -4):
        with pytest.raises(ValueError):
            walsh_matrix(bad)


def test_spread_despread_single_user():
    sp = WalshSpreader(16, [3])
    rng = np.random.default_rng(0)
    syms = (rng.standard_normal(8) + 1j * rng.standard_normal(8)).reshape(1, -1)
    chips = sp.spread(syms)
    assert chips.size == 8 * 16
    back = sp.despread(chips)
    assert np.allclose(back, syms)


def test_spread_despread_multi_user():
    sp = WalshSpreader(16, [0, 5, 9, 15])
    rng = np.random.default_rng(1)
    syms = rng.standard_normal((4, 6)) + 1j * rng.standard_normal((4, 6))
    back = sp.despread(sp.spread(syms))
    assert np.allclose(back, syms)


def test_spread_unit_power_preserved():
    """Superposing users must not inflate average chip power."""
    sp = WalshSpreader(16, list(range(8)))
    rng = np.random.default_rng(2)
    syms = (rng.standard_normal((8, 200)) + 1j * rng.standard_normal((8, 200))) / np.sqrt(2)
    chips = sp.spread(syms)
    assert np.mean(np.abs(chips) ** 2) == pytest.approx(np.mean(np.abs(syms) ** 2), rel=0.1)


def test_spreader_validation():
    with pytest.raises(ValueError, match="distinct"):
        WalshSpreader(8, [1, 1])
    with pytest.raises(ValueError, match="outside"):
        WalshSpreader(8, [8])
    sp = WalshSpreader(8, [0, 1])
    with pytest.raises(ValueError, match="user rows"):
        sp.spread(np.zeros((3, 4)))
    with pytest.raises(ValueError, match="multiple"):
        sp.despread(np.zeros(9, dtype=complex))


@settings(max_examples=25, deadline=None)
@given(
    log_len=st.integers(min_value=1, max_value=5),
    n_syms=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_spread_roundtrip_property(log_len, n_syms, seed):
    L = 1 << log_len
    rng = np.random.default_rng(seed)
    n_users = int(rng.integers(1, L + 1))
    codes = list(rng.choice(L, size=n_users, replace=False))
    sp = WalshSpreader(L, codes)
    syms = rng.standard_normal((n_users, n_syms)) + 1j * rng.standard_normal((n_users, n_syms))
    assert np.allclose(sp.despread(sp.spread(syms)), syms)


def test_ofdm_roundtrip():
    ofdm = OFDMModulator(64, 16)
    rng = np.random.default_rng(3)
    chips = rng.standard_normal(64 * 5) + 1j * rng.standard_normal(64 * 5)
    t = ofdm.modulate(chips)
    assert t.size == 5 * 80
    assert np.allclose(ofdm.demodulate(t), chips)


def test_ofdm_cyclic_prefix_is_cyclic():
    ofdm = OFDMModulator(64, 16)
    rng = np.random.default_rng(4)
    chips = rng.standard_normal(64) + 1j * rng.standard_normal(64)
    t = ofdm.modulate(chips)
    assert np.allclose(t[:16], t[64 : 64 + 16])


def test_ofdm_power_preserved():
    ofdm = OFDMModulator(64, 0)
    rng = np.random.default_rng(5)
    chips = rng.standard_normal(64 * 10) + 1j * rng.standard_normal(64 * 10)
    t = ofdm.modulate(chips)
    assert np.mean(np.abs(t) ** 2) == pytest.approx(np.mean(np.abs(chips) ** 2), rel=1e-9)


def test_ofdm_validation():
    with pytest.raises(ValueError):
        OFDMModulator(63, 16)
    with pytest.raises(ValueError):
        OFDMModulator(64, 65)
    ofdm = OFDMModulator(64, 16)
    with pytest.raises(ValueError, match="multiple"):
        ofdm.modulate(np.zeros(65, dtype=complex))
    with pytest.raises(ValueError, match="multiple"):
        ofdm.demodulate(np.zeros(81, dtype=complex))
    with pytest.raises(ValueError):
        ofdm.n_symbols(65)
    assert ofdm.n_symbols(128) == 2


def test_conv_coder_roundtrip_clean():
    coder = ConvolutionalCoder()
    rng = np.random.default_rng(6)
    bits = rng.integers(0, 2, 200).astype(np.uint8)
    coded = coder.encode(bits)
    assert coded.size == coder.coded_length(bits.size)
    assert np.array_equal(coder.decode(coded), bits)


def test_conv_coder_corrects_single_errors():
    coder = ConvolutionalCoder()
    rng = np.random.default_rng(7)
    bits = rng.integers(0, 2, 100).astype(np.uint8)
    coded = coder.encode(bits)
    # Flip isolated bits far apart; free distance 5 corrects them.
    corrupted = coded.copy()
    for pos in (10, 60, 130):
        corrupted[pos] ^= 1
    assert np.array_equal(coder.decode(corrupted), bits)


def test_conv_coder_lengths():
    coder = ConvolutionalCoder()
    assert coder.coded_length(10) == 24
    assert coder.info_length(24) == 10
    with pytest.raises(ValueError):
        coder.info_length(3)
    with pytest.raises(ValueError):
        coder.info_length(2)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(0, 1), min_size=1, max_size=64))
def test_conv_coder_roundtrip_property(bit_list):
    coder = ConvolutionalCoder()
    bits = np.array(bit_list, dtype=np.uint8)
    assert np.array_equal(coder.decode(coder.encode(bits)), bits)


def test_interleaver_roundtrip():
    ilv = BlockInterleaver(4, 8)
    data = np.arange(64)
    assert np.array_equal(ilv.deinterleave(ilv.interleave(data)), data)


def test_interleaver_spreads_bursts():
    """A burst of b consecutive errors lands in b distinct rows."""
    ilv = BlockInterleaver(8, 8)
    data = np.zeros(64, dtype=np.uint8)
    inter = ilv.interleave(data)
    inter[10:14] ^= 1  # burst of 4 in the interleaved domain
    recovered = ilv.deinterleave(inter)
    error_positions = np.flatnonzero(recovered)
    assert error_positions.size == 4
    assert np.all(np.diff(error_positions) >= 8 - 1)


def test_interleaver_validation():
    with pytest.raises(ValueError):
        BlockInterleaver(0, 4)
    ilv = BlockInterleaver(4, 4)
    with pytest.raises(ValueError, match="multiple"):
        ilv.interleave(np.zeros(15))
    with pytest.raises(ValueError, match="1-D"):
        ilv.interleave(np.zeros((4, 4)))
