"""Tests for the link-level adaptive-modulation evaluation."""

import pytest

from repro.mccdma import SnrTrace
from repro.mccdma.linklevel import LinkResult, adaptive_vs_fixed, simulate_link


def test_qpsk_clean_at_high_snr():
    result = simulate_link("qpsk", [30.0] * 3, seed=1)
    assert result.ber == 0.0
    assert result.switches == 0
    assert result.n_frames == 3


def test_qam16_errors_at_low_snr():
    result = simulate_link("qam16", [-6.0] * 4, seed=1)
    assert result.ber > 0.01


def test_qam16_carries_twice_the_bits():
    qpsk = simulate_link("qpsk", [10.0] * 2, seed=2)
    qam = simulate_link("qam16", [10.0] * 2, seed=2)
    assert qam.total_bits == 2 * qpsk.total_bits


def test_adaptive_tracks_channel():
    trace = [-6.0, -6.0, 10.0, 10.0]
    result = simulate_link("adaptive", trace, seed=3)
    # Switches at least once when the channel jumps.
    assert result.switches >= 1
    # Carries more bits than always-QPSK and fewer errors than always-QAM16.
    qpsk = simulate_link("qpsk", trace, seed=3)
    qam = simulate_link("qam16", trace, seed=3)
    assert qpsk.total_bits < result.total_bits <= qam.total_bits
    assert result.ber <= qam.ber


def test_adaptive_goodput_beats_both_fixed_on_varying_channel():
    """The motivation for runtime reconfiguration: on a channel alternating
    between bad and good states, adaptive modulation delivers more
    error-free bits per frame than either fixed scheme."""
    trace = SnrTrace.step(low_db=-1.0, high_db=9.0, period=3, n=24)
    results = adaptive_vs_fixed(trace, seed=4)
    # Penalize errors heavily (coded systems fail frames on residual errors).
    weight = 50.0
    goodput = {k: v.goodput_bits_per_frame(weight) for k, v in results.items()}
    assert goodput["adaptive"] > goodput["qpsk"]
    assert goodput["adaptive"] > goodput["qam16"]


def test_unknown_strategy_rejected():
    with pytest.raises(ValueError):
        simulate_link("bpsk", [10.0])


def test_link_result_properties():
    r = LinkResult(
        strategy="x", total_bits=1000, error_bits=10, switches=2, n_frames=4,
        delivered_bits=750, frames_ok=3,
    )
    assert r.ber == pytest.approx(0.01)
    assert r.bits_per_frame() == 250.0
    assert r.frame_success_rate == pytest.approx(0.75)
    assert r.goodput_bits_per_frame() == pytest.approx(187.5)  # ARQ: errored frame delivers 0
    empty = LinkResult("x", 0, 0, 0, 0)
    assert empty.ber == 0.0 and empty.bits_per_frame() == 0.0
    assert empty.goodput_bits_per_frame() == 0.0


def test_deterministic_given_seed():
    trace = [0.0, 5.0, 10.0]
    a = simulate_link("adaptive", trace, seed=9)
    b = simulate_link("adaptive", trace, seed=9)
    assert (a.total_bits, a.error_bits, a.switches) == (b.total_bits, b.error_bits, b.switches)
