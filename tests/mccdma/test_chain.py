"""End-to-end transmitter/receiver tests, channels, adaptive control, case study."""

import numpy as np
import pytest

from repro.mccdma import (
    AWGNChannel,
    AdaptiveModulationController,
    MCCDMAConfig,
    MCCDMAReceiver,
    MCCDMATransmitter,
    Modulation,
    RayleighChannel,
    SnrTrace,
    bit_error_rate,
    error_vector_magnitude,
)
from repro.mccdma.casestudy import build_mccdma_design, build_mccdma_graph
from repro.dfg import validate_graph


def make_bits(tx, modulations, seed=0, n_users=1):
    rng = np.random.default_rng(seed)
    total = tx.frame_bits(modulations)
    return rng.integers(0, 2, size=(n_users, total)).astype(np.uint8)


def test_loopback_clean_channel_qpsk():
    tx = MCCDMATransmitter()
    rx = MCCDMAReceiver()
    plan = [Modulation.QPSK] * tx.config.frame.n_data_symbols
    bits = make_bits(tx, plan)
    frame = tx.transmit_frame(bits, plan)
    out = rx.receive_frame(frame)
    assert np.array_equal(out, bits)


def test_loopback_clean_channel_mixed_modulations():
    tx = MCCDMATransmitter()
    rx = MCCDMAReceiver()
    plan = [
        Modulation.QPSK, Modulation.QAM16, Modulation.QAM16, Modulation.QPSK,
        Modulation.QAM16, Modulation.QPSK, Modulation.QPSK, Modulation.QAM16,
    ]
    bits = make_bits(tx, plan, seed=1)
    frame = tx.transmit_frame(bits, plan)
    assert np.array_equal(rx.receive_frame(frame), bits)


def test_loopback_multi_user():
    cfg = MCCDMAConfig(user_codes=(0, 3, 7, 12))
    tx = MCCDMATransmitter(cfg)
    rx = MCCDMAReceiver(cfg)
    plan = [Modulation.QAM16] * cfg.frame.n_data_symbols
    bits = make_bits(tx, plan, seed=2, n_users=4)
    frame = tx.transmit_frame(bits, plan)
    assert np.array_equal(rx.receive_frame(frame), bits)


def test_frame_bits_depend_on_plan():
    tx = MCCDMATransmitter()
    all_qpsk = [Modulation.QPSK] * 8
    all_qam = [Modulation.QAM16] * 8
    assert tx.frame_bits(all_qam) == 2 * tx.frame_bits(all_qpsk)


def test_transmit_validates_shapes():
    tx = MCCDMATransmitter()
    plan = [Modulation.QPSK] * 8
    with pytest.raises(ValueError, match="shape"):
        tx.transmit_frame(np.zeros((1, 3), dtype=np.uint8), plan)
    with pytest.raises(ValueError, match="plan must cover"):
        tx.frame_bits([Modulation.QPSK])


def test_config_validation():
    with pytest.raises(ValueError, match="tile"):
        MCCDMAConfig(n_subcarriers=64, spread_length=24)


def test_awgn_high_snr_error_free():
    tx = MCCDMATransmitter()
    rx = MCCDMAReceiver()
    plan = [Modulation.QAM16] * 8
    bits = make_bits(tx, plan, seed=3)
    frame = tx.transmit_frame(bits, plan)
    noisy = AWGNChannel(snr_db=35.0, seed=0).transmit(frame.samples)
    out = rx.receive_frame(frame, samples=noisy)
    assert bit_error_rate(bits, out) == 0.0


def test_awgn_ber_monotone_in_snr():
    tx = MCCDMATransmitter()
    rx = MCCDMAReceiver()
    plan = [Modulation.QAM16] * 8
    bers = []
    for snr in (0.0, 10.0, 20.0):
        total_err, total_bits = 0, 0
        for trial in range(12):
            bits = make_bits(tx, plan, seed=100 + trial)
            frame = tx.transmit_frame(bits, plan)
            noisy = AWGNChannel(snr, seed=trial).transmit(frame.samples)
            out = rx.receive_frame(frame, samples=noisy)
            total_err += int(np.sum(out != bits))
            total_bits += bits.size
        bers.append(total_err / total_bits)
    assert bers[0] > bers[1] >= bers[2]
    assert bers[0] > 0.01  # 0 dB genuinely noisy for QAM-16


def test_qpsk_more_robust_than_qam16_at_same_snr():
    tx = MCCDMATransmitter()
    rx = MCCDMAReceiver()
    # Single-user despreading adds ~12 dB of processing gain, so drive the
    # channel hard to see raw-modulation differences.
    snr = -6.0
    results = {}
    for modulation in (Modulation.QPSK, Modulation.QAM16):
        plan = [modulation] * 8
        total_err, total_bits = 0, 0
        for trial in range(40):
            bits = make_bits(tx, plan, seed=200 + trial)
            frame = tx.transmit_frame(bits, plan)
            noisy = AWGNChannel(snr, seed=50 + trial).transmit(frame.samples)
            out = rx.receive_frame(frame, samples=noisy)
            total_err += int(np.sum(out != bits))
            total_bits += bits.size
        results[modulation] = total_err / max(1, total_bits)
    assert results[Modulation.QPSK] < results[Modulation.QAM16]


def test_evm_increases_with_noise():
    tx = MCCDMATransmitter()
    rx = MCCDMAReceiver()
    plan = [Modulation.QPSK] * 8
    bits = make_bits(tx, plan, seed=4)
    frame = tx.transmit_frame(bits, plan)
    ideal = rx.symbols_of_frame(frame)
    evms = []
    for snr in (30.0, 10.0):
        noisy = AWGNChannel(snr, seed=9).transmit(frame.samples)
        measured = rx.symbols_of_frame(frame, samples=noisy)
        evms.append(error_vector_magnitude(ideal, measured))
    assert evms[0] < evms[1]
    assert error_vector_magnitude(ideal, ideal) == 0.0


def test_rayleigh_with_equalization_recovers():
    tx = MCCDMATransmitter()
    rx = MCCDMAReceiver()
    plan = [Modulation.QPSK] * 8
    bits = make_bits(tx, plan, seed=5)
    frame = tx.transmit_frame(bits, plan)
    chan = RayleighChannel(snr_db=40.0, symbol_len=tx.ofdm.symbol_len, seed=2)
    faded = chan.transmit(frame.samples)
    equalized = chan.equalize(faded)
    out = rx.receive_frame(frame, samples=equalized)
    assert bit_error_rate(bits, out) < 0.02


def test_rayleigh_equalize_before_transmit_raises():
    chan = RayleighChannel(10.0, 80)
    with pytest.raises(RuntimeError):
        chan.equalize(np.zeros(80, dtype=complex))


def test_metric_validation():
    with pytest.raises(ValueError):
        bit_error_rate(np.zeros(3), np.zeros(4))
    with pytest.raises(ValueError):
        error_vector_magnitude(np.zeros(3), np.zeros(4))
    with pytest.raises(ValueError):
        error_vector_magnitude(np.zeros(3, dtype=complex), np.ones(3, dtype=complex))


def test_adaptive_controller_thresholds():
    ctl = AdaptiveModulationController(threshold_db=14.0, hysteresis_db=1.0)
    assert ctl.select(10.0) is Modulation.QPSK
    assert ctl.select(14.5) is Modulation.QPSK  # inside hysteresis band
    assert ctl.select(15.5) is Modulation.QAM16
    assert ctl.select(13.5) is Modulation.QAM16  # inside band, stays
    assert ctl.select(12.5) is Modulation.QPSK


def test_adaptive_controller_hysteresis_reduces_switching():
    trace = SnrTrace.sinusoid(mean_db=14.0, amplitude_db=0.8, period=8, n=200)
    loose = AdaptiveModulationController(14.0, hysteresis_db=0.0)
    tight = AdaptiveModulationController(14.0, hysteresis_db=1.0)
    n_loose = AdaptiveModulationController.switch_count(loose.plan(trace))
    n_tight = AdaptiveModulationController.switch_count(tight.plan(trace))
    assert n_tight < n_loose


def test_snr_traces():
    assert np.all(SnrTrace.constant(10.0, 5) == 10.0)
    step = SnrTrace.step(5.0, 20.0, period=3, n=12)
    assert list(step[:6]) == [5.0] * 3 + [20.0] * 3
    walk = SnrTrace.random_walk(10.0, 1.0, 100, seed=1)
    assert walk.min() >= -5.0 and walk.max() <= 35.0
    assert np.array_equal(walk, SnrTrace.random_walk(10.0, 1.0, 100, seed=1))
    with pytest.raises(ValueError):
        SnrTrace.step(0, 1, 0, 10)


def test_case_study_graph_valid():
    design = build_mccdma_design()
    validate_graph(design.graph, design.library)
    assert design.modulation_group == "modulation"
    assert set(design.dynamic_alternatives()) == {"mod_qpsk", "mod_qam16"}
    # The conditioned blocks are mutually exclusive.
    g = design.graph
    assert g.exclusive(g.operation("mod_qpsk"), g.operation("mod_qam16"))


def test_case_study_graph_shape_matches_figure4():
    g = build_mccdma_graph()
    order = [op.name for op in g.topological_order()]
    # Pipeline order constraints from Fig. 4.
    assert order.index("coder") < order.index("interleaver") < order.index("mod_qpsk")
    assert order.index("mod_out") < order.index("spreader") < order.index("ifft")
    assert order.index("cyclic_prefix") < order.index("framer") < order.index("dac")
