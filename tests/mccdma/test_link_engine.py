"""Batched link-simulation engine vs the per-frame reference path."""

import numpy as np
import pytest

from repro.flows.observe import RecordingObserver
from repro.mccdma.engine import (
    LinkEngineConfig,
    LinkPointJob,
    LinkSimulationEngine,
    frame_seed_sequences,
    wilson_halfwidth,
)
from repro.mccdma.interleaving import BlockInterleaver
from repro.mccdma.linklevel import adaptive_vs_fixed, simulate_link
from repro.mccdma.spreading import walsh_matrix
from repro.mccdma.transmitter import MCCDMAConfig


def _pair(config, batch_frames=4, **kwargs):
    ref = LinkSimulationEngine(
        config, LinkEngineConfig(batched=False, batch_frames=batch_frames, **kwargs)
    )
    bat = LinkSimulationEngine(
        config, LinkEngineConfig(batched=True, batch_frames=batch_frames, **kwargs)
    )
    return ref, bat


# -- property grid: batched reproduces the reference exactly --------------------

TRACE = [-1.0, 2.5, 4.0, 7.5]  # crosses the adaptive threshold both ways


@pytest.mark.parametrize("strategy", ["qpsk", "qam16", "adaptive"])
@pytest.mark.parametrize("user_codes", [(0,), (0, 3, 5)])
def test_batched_equals_reference_across_seeds(strategy, user_codes):
    config = MCCDMAConfig(user_codes=user_codes)
    ref, bat = _pair(config, batch_frames=3)  # uneven final batch on purpose
    for seed in range(20):
        expected = ref.simulate(strategy, TRACE, seed=seed)
        actual = bat.simulate(strategy, TRACE, seed=seed)
        assert actual == expected, (strategy, user_codes, seed)


def test_simulate_link_wrapper_paths_agree():
    result = simulate_link("adaptive", TRACE, seed=5, batched=True)
    reference = simulate_link("adaptive", TRACE, seed=5, batched=False)
    assert result == reference
    assert result.n_frames == len(TRACE)


def test_adaptive_vs_fixed_covers_all_strategies():
    report = adaptive_vs_fixed(TRACE, seed=2)
    assert set(report) == {"qpsk", "qam16", "adaptive"}
    assert report["qam16"].total_bits == 2 * report["qpsk"].total_bits


# -- seeding: collision-free streams across frames and seeds --------------------

def test_distinct_seeds_yield_disjoint_streams():
    """Regression: the legacy ``seed * 10_000 + frame_idx`` channel seeding
    made seed 0 / frame 10_000 reuse seed 1 / frame 0's noise stream.  The
    spawned SeedSequence scheme keeps every (seed, frame) stream distinct —
    including exactly that colliding pair."""
    far = frame_seed_sequences(0, 10_001)[10_000]
    near = frame_seed_sequences(1, 1)[0]
    draw = lambda ss: tuple(np.random.default_rng(ss).integers(0, 2**63, 4))
    assert draw(far[1]) != draw(near[1])

    seen = set()
    for seed in range(3):
        for data_ss, noise_ss in frame_seed_sequences(seed, 50):
            seen.add(draw(data_ss))
            seen.add(draw(noise_ss))
    assert len(seen) == 3 * 50 * 2  # no stream collided


def test_frame_seed_sequences_accepts_seedsequence_root():
    root = np.random.SeedSequence(9, spawn_key=(4,))
    a = frame_seed_sequences(root, 3)
    b = frame_seed_sequences(np.random.SeedSequence(9, spawn_key=(4,)), 3)
    first = np.random.default_rng(a[0][0]).integers(0, 2**63, 2)
    assert np.array_equal(first, np.random.default_rng(b[0][0]).integers(0, 2**63, 2))


# -- cached kernels stay equal to fresh computation -----------------------------

def test_walsh_matrix_cached_equals_fresh():
    cached = walsh_matrix(16)
    assert walsh_matrix(16) is cached  # shared read-only instance
    fresh = np.ones((1, 1))
    for _ in range(4):  # Sylvester construction from scratch
        fresh = np.block([[fresh, fresh], [fresh, -fresh]])
    assert np.array_equal(cached, fresh)
    with pytest.raises(ValueError):
        cached[0, 0] = 2.0  # the shared instance must be immutable


def test_interleaver_permutations_cached_and_correct():
    a = BlockInterleaver(rows=4, cols=8)
    b = BlockInterleaver(rows=4, cols=8)
    assert a._fwd is b._fwd  # one cached permutation per geometry
    data = np.arange(64, dtype=np.uint8) % 2
    fresh = np.concatenate(
        [chunk.reshape(4, 8).T.ravel() for chunk in data.reshape(-1, 32)]
    )
    assert np.array_equal(a.interleave(data), fresh)
    assert np.array_equal(a.deinterleave(a.interleave(data)), data)


# -- early stopping -------------------------------------------------------------

def test_wilson_halfwidth_shrinks_with_samples():
    assert wilson_halfwidth(0, 0) == float("inf")
    assert wilson_halfwidth(0, 100) > wilson_halfwidth(0, 10_000) > 0.0
    assert wilson_halfwidth(50, 100) == pytest.approx(0.0968, abs=1e-3)


def test_early_stopping_cuts_point_short_identically():
    config = MCCDMAConfig(user_codes=(0, 3))
    ref, bat = _pair(config, batch_frames=8, ci_halfwidth=0.05, min_frames=8)
    r_ref = ref.simulate_point("qpsk", 8.0, 64, seed=0)  # clean channel: stops fast
    r_bat = bat.simulate_point("qpsk", 8.0, 64, seed=0)
    assert r_ref == r_bat
    assert r_ref.n_frames == 8  # stopped at the first eligible batch boundary
    full = LinkSimulationEngine(config, LinkEngineConfig(batch_frames=8))
    assert full.simulate_point("qpsk", 8.0, 64, seed=0).n_frames == 64


def test_engine_config_validation():
    with pytest.raises(ValueError):
        LinkEngineConfig(batch_frames=0)
    with pytest.raises(ValueError):
        LinkEngineConfig(ci_halfwidth=-1.0)
    with pytest.raises(ValueError):
        LinkEngineConfig(min_frames=0)


# -- observability --------------------------------------------------------------

def test_engine_emits_batch_and_run_events():
    recorder = RecordingObserver()
    engine = LinkSimulationEngine(
        engine=LinkEngineConfig(batch_frames=2), observer=recorder
    )
    engine.simulate("qpsk", [1.0, 2.0, 3.0, 4.0, 5.0], seed=0)
    stages = [e.stage for e in recorder.events]
    assert stages.count("link:batch") == 3  # ceil(5 / 2)
    assert stages.count("link:run") == 1
    run = next(e for e in recorder.events if e.stage == "link:run")
    assert run.flow == "link:qpsk"
    assert run.metrics["frames"] == 5 and run.metrics["early_stopped"] is False


# -- SNR sweeps through the exec machinery --------------------------------------

def test_sweep_points_serial_matches_direct_simulation():
    config = MCCDMAConfig(user_codes=(0, 5))
    engine = LinkSimulationEngine(config, LinkEngineConfig(batch_frames=4))
    results = engine.sweep_points("adaptive", [0.0, 6.0], 8, seed=3, jobs=0)
    for i, snr_db in enumerate([0.0, 6.0]):
        seed = np.random.SeedSequence(3, spawn_key=(i,))
        direct = engine.simulate_point("adaptive", snr_db, 8, seed=seed)
        assert results[i] == direct


def test_sweep_points_sharded_matches_serial():
    config = MCCDMAConfig(user_codes=(0,))
    engine = LinkSimulationEngine(config, LinkEngineConfig(batch_frames=4))
    serial = engine.sweep_points("qpsk", [0.0, 4.0, 8.0], 8, seed=1, jobs=0)
    sharded = engine.sweep_points("qpsk", [0.0, 4.0, 8.0], 8, seed=1, jobs=2)
    assert sharded == serial


def test_link_point_job_honours_fault_injection():
    from repro.exec.worker import run_job

    job = LinkPointJob(
        job_id="p0", strategy="qpsk", snr_db=4.0, n_frames=4,
        seed_entropy=0, point_index=0,
        config=MCCDMAConfig(), engine=LinkEngineConfig(batch_frames=4),
        fault="raise",
    )
    with pytest.raises(RuntimeError, match="injected fault"):
        run_job(job)
