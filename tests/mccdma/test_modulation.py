"""Tests for bit sources, QPSK/QAM-16 modulators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mccdma import (
    BitSource,
    Modulation,
    QAM16Modulator,
    QPSKModulator,
    bits_to_bytes,
    bytes_to_bits,
    modulator_for,
)


def test_bit_source_deterministic():
    a = BitSource(seed=42).take(1000)
    b = BitSource(seed=42).take(1000)
    assert np.array_equal(a, b)
    assert set(np.unique(a)) <= {0, 1}


def test_bit_source_tracks_production():
    src = BitSource()
    src.take(10)
    src.take(20)
    assert src.produced == 30
    with pytest.raises(ValueError):
        src.take(-1)


def test_bits_bytes_roundtrip():
    bits = BitSource(1).take(37)
    packed = bits_to_bytes(bits)
    assert len(packed) == 5  # ceil(37/8)
    back = bytes_to_bits(packed, nbits=37)
    assert np.array_equal(bits, back)


def test_bytes_to_bits_validation():
    with pytest.raises(ValueError):
        bytes_to_bits(b"\x00", nbits=9)


def test_bits_to_bytes_empty():
    assert bits_to_bytes(np.array([], dtype=np.uint8)) == b""


def test_modulation_enum_bits_per_symbol():
    assert Modulation.QPSK.bits_per_symbol == 2
    assert Modulation.QAM16.bits_per_symbol == 4


def test_modulator_for_accepts_names():
    assert modulator_for("qpsk").modulation is Modulation.QPSK
    assert modulator_for("QAM16").modulation is Modulation.QAM16
    assert modulator_for(Modulation.QPSK).modulation is Modulation.QPSK


def test_qpsk_unit_energy():
    mod = QPSKModulator()
    bits = BitSource(3).take(2000)
    syms = mod.modulate(bits)
    assert np.mean(np.abs(syms) ** 2) == pytest.approx(1.0, rel=1e-9)


def test_qam16_unit_energy():
    mod = QAM16Modulator()
    bits = BitSource(4).take(40_000)
    syms = mod.modulate(bits)
    assert np.mean(np.abs(syms) ** 2) == pytest.approx(1.0, rel=0.05)


def test_qam16_constellation_has_16_points():
    mod = QAM16Modulator()
    all_bits = np.array(
        [[(v >> k) & 1 for k in (3, 2, 1, 0)] for v in range(16)], dtype=np.uint8
    ).reshape(-1)
    syms = mod.modulate(all_bits)
    assert len({(round(s.real, 6), round(s.imag, 6)) for s in syms}) == 16


def test_qpsk_roundtrip_exact():
    mod = QPSKModulator()
    bits = BitSource(5).take(512)
    assert np.array_equal(mod.demodulate(mod.modulate(bits)), bits)


def test_qam16_roundtrip_exact():
    mod = QAM16Modulator()
    bits = BitSource(6).take(512)
    assert np.array_equal(mod.demodulate(mod.modulate(bits)), bits)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 1), min_size=4, max_size=200))
def test_qpsk_roundtrip_property(bit_list):
    bits = np.array(bit_list[: len(bit_list) - len(bit_list) % 2], dtype=np.uint8)
    if bits.size == 0:
        return
    mod = QPSKModulator()
    assert np.array_equal(mod.demodulate(mod.modulate(bits)), bits)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 1), min_size=4, max_size=200))
def test_qam16_roundtrip_property(bit_list):
    bits = np.array(bit_list[: len(bit_list) - len(bit_list) % 4], dtype=np.uint8)
    if bits.size == 0:
        return
    mod = QAM16Modulator()
    assert np.array_equal(mod.demodulate(mod.modulate(bits)), bits)


def test_qam16_gray_mapping_single_bit_neighbours():
    """Adjacent constellation points along one axis differ by one bit."""
    mod = QAM16Modulator()
    levels = {}
    for v in range(16):
        bits = np.array([(v >> k) & 1 for k in (3, 2, 1, 0)], dtype=np.uint8)
        s = mod.modulate(bits)[0]
        levels[(round(s.real, 6), round(s.imag, 6))] = v
    for (x, y), v in levels.items():
        for (x2, y2), v2 in levels.items():
            same_row = y == y2 and abs(x - x2) < 0.7  # adjacent I level
            same_col = x == x2 and abs(y - y2) < 0.7  # adjacent Q level
            if (same_row or same_col) and v != v2:
                assert bin(v ^ v2).count("1") == 1


def test_modulate_rejects_bad_input():
    mod = QPSKModulator()
    with pytest.raises(ValueError, match="multiple"):
        mod.modulate(np.array([1, 0, 1], dtype=np.uint8))
    with pytest.raises(ValueError, match="0/1"):
        mod.modulate(np.array([2, 0], dtype=np.uint8))
    with pytest.raises(ValueError, match="1-D"):
        mod.modulate(np.zeros((2, 2), dtype=np.uint8))


def test_qpsk_robust_to_moderate_noise():
    mod = QPSKModulator()
    bits = BitSource(7).take(4000)
    syms = mod.modulate(bits)
    rng = np.random.default_rng(0)
    noisy = syms + 0.1 * (rng.standard_normal(syms.size) + 1j * rng.standard_normal(syms.size))
    assert np.array_equal(mod.demodulate(noisy), bits)
