"""Vectorized convolutional coder vs hand-computed and reference outputs."""

import numpy as np
import pytest

from repro.mccdma.coding import ConvolutionalCoder, _INF


@pytest.fixture()
def coder():
    return ConvolutionalCoder()


# Hand-computed on the K=3 (7,5) trellis with reg = (b << 2) | state,
# state' = reg >> 1 (two zero tail bits appended):
#   1011 -> 11 10 00 01 | 01 11
#   1101 -> 11 01 01 00 | 10 11
GOLDEN = [
    ([1, 0, 1, 1], [1, 1, 1, 0, 0, 0, 0, 1, 0, 1, 1, 1]),
    ([1, 1, 0, 1], [1, 1, 0, 1, 0, 1, 0, 0, 1, 0, 1, 1]),
    ([1], [1, 1, 1, 0, 1, 1]),
    ([], [0, 0, 0, 0]),
]


@pytest.mark.parametrize("info,coded", GOLDEN)
def test_encode_golden_vectors(coder, info, coded):
    assert coder.encode(np.array(info, dtype=np.uint8)).tolist() == coded


@pytest.mark.parametrize("info,coded", GOLDEN)
def test_decode_golden_vectors(coder, info, coded):
    assert coder.decode(np.array(coded, dtype=np.uint8)).tolist() == info


@pytest.mark.parametrize("n_bits", [1, 2, 7, 64, 255])
def test_encode_matches_reference(coder, n_bits):
    rng = np.random.default_rng(n_bits)
    for _ in range(5):
        bits = rng.integers(0, 2, n_bits).astype(np.uint8)
        assert np.array_equal(coder.encode(bits), coder.encode_reference(bits))


@pytest.mark.parametrize("n_bits", [1, 7, 64, 255])
def test_decode_matches_reference_on_corrupted_input(coder, n_bits):
    """Same survivors as the scalar decoder, including tie-breaks under noise."""
    rng = np.random.default_rng(1000 + n_bits)
    for _ in range(5):
        coded = coder.encode(rng.integers(0, 2, n_bits).astype(np.uint8))
        noisy = coded.copy()
        flips = rng.integers(0, noisy.size, size=max(1, noisy.size // 10))
        noisy[flips] ^= 1
        assert np.array_equal(coder.decode(noisy), coder.decode_reference(noisy))


def test_decode_batch_rows_match_scalar_decode(coder):
    rng = np.random.default_rng(7)
    frames = np.stack(
        [coder.encode(rng.integers(0, 2, 40).astype(np.uint8)) for _ in range(16)]
    )
    frames[3, 5] ^= 1  # one corrupted frame must not disturb its neighbours
    decoded = coder.decode_batch(frames)
    for i in range(frames.shape[0]):
        assert np.array_equal(decoded[i], coder.decode(frames[i]))


def test_decode_roundtrip_after_encode(coder):
    rng = np.random.default_rng(11)
    bits = rng.integers(0, 2, 128).astype(np.uint8)
    assert np.array_equal(coder.decode(coder.encode(bits)), bits)


def test_decode_rejects_multidimensional_input(coder):
    with pytest.raises(ValueError, match="decode_batch"):
        coder.decode(np.zeros((2, 8), dtype=np.uint8))


def test_check_survivor_reports_dead_frames():
    """All-INF terminal metrics name the likely cause (not zero-terminated)."""
    metric = np.full((3, 4), _INF, dtype=np.int64)
    metric[1, 0] = 0  # frame 1 survives; frames 0 and 2 are dead
    with pytest.raises(ValueError, match="zero-terminated") as err:
        ConvolutionalCoder._check_survivor(metric)
    assert "0" in str(err.value) and "2" in str(err.value)


def test_check_survivor_passes_on_live_frames():
    metric = np.zeros((2, 4), dtype=np.int64)
    ConvolutionalCoder._check_survivor(metric)
