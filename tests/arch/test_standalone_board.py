"""Tests for the FPGA-only (standalone self-reconfiguring) platform."""

import pytest

from repro.arch import standalone_fpga_board
from repro.dfg import AlgorithmGraph, WORD32
from repro.dfg.library import FPGA_CLASS, default_library
from repro.flows import DesignFlow, SystemSimulation


def make_library():
    lib = default_library()
    # A selector the FPGA itself can evaluate (e.g. an on-chip SNR monitor).
    lib.define("fpga_select", {FPGA_CLASS: 40}, {"luts": 60, "ffs": 50})
    return lib


def make_graph():
    g = AlgorithmGraph("fpga_only")
    sel = g.add_operation("sel", "fpga_select")
    sel.add_output("value", WORD32, 1)
    src = g.add_operation("src", "generic_small")
    src.add_output("o0", WORD32, 16)
    src.add_output("o1", WORD32, 16)
    a = g.add_operation("a", "generic_medium")
    b = g.add_operation("b", "generic_large")
    for op in (a, b):
        op.add_input("i", WORD32, 16)
        op.add_output("o", WORD32, 16)
    g.connect(src, "o0", a, "i")
    g.connect(src, "o1", b, "i")
    merge = g.add_operation("merge", "cond_merge")
    merge.add_input("x", WORD32, 16)
    merge.add_input("y", WORD32, 16)
    merge.add_output("o", WORD32, 16)
    g.connect(a, "o", merge, "x")
    g.connect(b, "o", merge, "y")
    sink = g.add_operation("sink", "generic_small")
    sink.add_input("i", WORD32, 16)
    g.connect(merge, "o", sink, "i")
    grp = g.condition_group("m", sel, "value")
    grp.add_case(0, [a])
    grp.add_case(1, [b])
    return g


def test_board_shape():
    board = standalone_fpga_board()
    assert {o.name for o in board.architecture.operators} == {"F1", "D1"}
    assert board.architecture.processors() == []
    assert board.regions() == ["D1"]
    with pytest.raises(ValueError, match="no processor"):
        _ = board.dsp
    with pytest.raises(ValueError):
        standalone_fpga_board(n_dynamic=0)


def test_full_flow_on_standalone_board():
    """The pure Fig. 2a deployment: everything, manager included, on chip."""
    flow = DesignFlow(
        graph=make_graph(),
        board=standalone_fpga_board(),
        library=make_library(),
    )
    flow.mapping.pin("a", "D1").pin("b", "D1")
    result = flow.run()
    assert result.modular.par_report.ok
    mapping = result.adequation.schedule.mapping()
    assert mapping["sel"] == "F1"
    assert mapping["a"] == "D1" and mapping["b"] == "D1"
    # Runtime: the on-chip selector drives the swaps.
    plan = [0, 1, 0, 1]
    run = SystemSimulation(
        result, n_iterations=len(plan), selector_values={"m": lambda it: plan[it]},
    ).run()
    assert run.switches == 4  # swap every iteration incl. initial load


def test_dsp_only_kind_unmappable_on_standalone_board():
    from repro.aaa import MappingError, adequate
    from repro.mccdma.casestudy import build_mccdma_graph

    board = standalone_fpga_board()
    with pytest.raises(MappingError):
        adequate(build_mccdma_graph(), board.architecture, default_library())
