"""Tests for architecture/board serialization."""

import pytest

from repro.arch import dual_region_board, sundance_board
from repro.arch.io import ArchFormatError, dumps, from_dict, load, loads, save, to_dict


def boards_equal(a, b) -> bool:
    if a.name != b.name:
        return False
    aa, bb = a.architecture, b.architecture
    if {str(o) for o in aa.operators} != {str(o) for o in bb.operators}:
        return False
    if {str(m) for m in aa.media} != {str(m) for m in bb.media}:
        return False
    for medium in aa.media:
        if {o.name for o in aa.operators_on(medium.name)} != {
            o.name for o in bb.operators_on(medium.name)
        }:
            return False
    return set(a.fpga_devices) == set(b.fpga_devices)


def test_roundtrip_sundance():
    board = sundance_board()
    back = loads(dumps(board))
    assert boards_equal(board, back)
    # Routing still works after the round trip.
    route = back.architecture.route("DSP", "D1")
    assert [m.name for m in route.media] == ["SHB", "IL"]
    assert back.fpga_device_of("F1").slices == 10_752


def test_roundtrip_dual_region():
    board = dual_region_board()
    back = loads(dumps(board))
    assert boards_equal(board, back)
    assert back.regions() == ["D1", "D2"]


def test_save_load_file(tmp_path):
    board = sundance_board()
    path = tmp_path / "board.json"
    save(board, path)
    assert boards_equal(board, load(path))


def test_deterministic_serialization():
    assert dumps(sundance_board()) == dumps(sundance_board())


def test_format_guardrails():
    with pytest.raises(ArchFormatError, match="invalid JSON"):
        loads("[")
    with pytest.raises(ArchFormatError, match="not a repro board"):
        from_dict({"format": "nope"})
    with pytest.raises(ArchFormatError, match="version"):
        from_dict({"format": "repro-board", "version": 42})
    base = to_dict(sundance_board())
    bad_kind = dict(base)
    bad_kind["operators"] = [dict(base["operators"][0], kind="gpu")]
    with pytest.raises(ArchFormatError, match="operator kind"):
        from_dict(bad_kind)
    bad_device = dict(base)
    bad_device["fpga_devices"] = ["xc9999"]
    with pytest.raises(ArchFormatError, match="unknown FPGA device"):
        from_dict(bad_device)


def test_loaded_board_usable_in_flow():
    """A deserialized board drives the full design flow unchanged."""
    from repro.dfg.library import default_library
    from repro.flows import DesignFlow
    from repro.mccdma.casestudy import CaseStudyDesign, build_mccdma_graph

    board = loads(dumps(sundance_board()))
    design = CaseStudyDesign(
        graph=build_mccdma_graph(), board=board, library=default_library()
    )
    flow = DesignFlow.from_design(design)
    flow.mapping.pin("mod_qpsk", "D1").pin("mod_qam16", "D1")
    result = flow.run()
    assert result.modular.par_report.ok
