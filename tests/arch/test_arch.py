"""Tests for operators, media, architecture graphs and boards."""

import pytest

from repro.arch import (
    ArchitectureError,
    ArchitectureGraph,
    Medium,
    MediumKind,
    Operator,
    OperatorKind,
    dual_region_board,
    sundance_board,
)
from repro.dfg.library import DSP_CLASS, FPGA_CLASS


def op(name, kind=OperatorKind.FPGA_STATIC, clock=50.0, device="xc2v2000", region=None):
    return Operator(name, kind, FPGA_CLASS, clock, device=device, region=region)


def test_operator_validation():
    with pytest.raises(ValueError, match="non-empty"):
        Operator("", OperatorKind.PROCESSOR, DSP_CLASS, 200, "c6201")
    with pytest.raises(ValueError, match="clock"):
        Operator("x", OperatorKind.PROCESSOR, DSP_CLASS, 0, "c6201")
    with pytest.raises(ValueError, match="must name its region"):
        op("d", OperatorKind.FPGA_DYNAMIC)
    with pytest.raises(ValueError, match="must not name a region"):
        op("f", OperatorKind.FPGA_STATIC, region="D1")


def test_operator_durations():
    o = op("f", clock=50.0)
    assert o.cycle_time_ns() == pytest.approx(20.0)
    assert o.duration_ns(100) == 2000
    assert o.duration_ns(3) == 60


def test_operator_flags():
    d = op("d", OperatorKind.FPGA_DYNAMIC, region="D1")
    assert d.is_reconfigurable and not d.is_processor
    p = Operator("p", OperatorKind.PROCESSOR, DSP_CLASS, 200, "c6201")
    assert p.is_processor and not p.is_reconfigurable


def test_medium_transfer_times():
    m = Medium("bus", MediumKind.BUS, bandwidth_mbps=100.0, latency_ns=500)
    assert m.transfer_ns(0) == 500
    # 1 MB at 100 MB/s = 10 ms = 10_000_000 ns, plus setup.
    assert m.transfer_ns(1_000_000) == 500 + 10_000_000


def test_medium_validation():
    with pytest.raises(ValueError):
        Medium("m", MediumKind.BUS, 0.0)
    with pytest.raises(ValueError):
        Medium("m", MediumKind.BUS, 10.0, latency_ns=-1)


def test_graph_duplicate_names_rejected():
    g = ArchitectureGraph()
    g.add_operator(op("x"))
    with pytest.raises(ArchitectureError):
        g.add_operator(op("x"))
    with pytest.raises(ArchitectureError):
        g.add_medium(Medium("x", MediumKind.BUS, 10))


def test_route_single_hop():
    g = ArchitectureGraph()
    a = g.add_operator(op("a"))
    b = g.add_operator(op("b"))
    bus = g.add_medium(Medium("bus", MediumKind.BUS, 100.0, 100))
    g.connect(a, bus)
    g.connect(b, bus)
    r = g.route("a", "b")
    assert [m.name for m in r.media] == ["bus"]
    assert r.transfer_ns(1000) == bus.transfer_ns(1000)


def test_route_local_is_free():
    g = ArchitectureGraph()
    g.add_operator(op("a"))
    r = g.route("a", "a")
    assert r.is_local
    assert r.transfer_ns(10**6) == 0


def test_route_multi_hop():
    g = ArchitectureGraph()
    for name in ("a", "b", "c"):
        g.add_operator(op(name))
    m1 = g.add_medium(Medium("m1", MediumKind.BUS, 100.0, 100))
    m2 = g.add_medium(Medium("m2", MediumKind.BUS, 50.0, 200))
    g.connect("a", "m1")
    g.connect("b", "m1")
    g.connect("b", "m2")
    g.connect("c", "m2")
    r = g.route("a", "c")
    assert [m.name for m in r.media] == ["m1", "m2"]
    assert r.transfer_ns(1000) == m1.transfer_ns(1000) + m2.transfer_ns(1000)


def test_route_missing_raises():
    g = ArchitectureGraph()
    g.add_operator(op("a"))
    g.add_operator(op("b"))
    with pytest.raises(ArchitectureError, match="no route"):
        g.route("a", "b")


def test_validate_detects_dangling_medium():
    g = ArchitectureGraph()
    a = g.add_operator(op("a"))
    m = g.add_medium(Medium("m", MediumKind.BUS, 10))
    g.connect(a, m)
    with pytest.raises(ArchitectureError, match="fewer than two"):
        g.validate()


def test_sundance_board_matches_paper():
    board = sundance_board()
    arch = board.architecture
    assert {o.name for o in arch.operators} == {"DSP", "F1", "D1"}
    assert {m.name for m in arch.media} == {"SHB", "IL"}
    assert board.dsp.name == "DSP"
    assert board.regions() == ["D1"]
    # DSP reaches D1 through SHB then IL (two hops).
    r = arch.route("DSP", "D1")
    assert [m.name for m in r.media] == ["SHB", "IL"]
    # FPGA device is the paper's XC2V2000.
    assert board.fpga_device_of("F1").name == "xc2v2000"
    assert board.fpga_device_of("D1").slices == 10_752


def test_fpga_device_lookup_fails_for_dsp():
    board = sundance_board()
    with pytest.raises(KeyError):
        board.fpga_device_of("DSP")


def test_dual_region_board():
    board = dual_region_board()
    assert board.regions() == ["D1", "D2"]
    # Both dynamic parts share the internal link.
    ops_on_il = {o.name for o in board.architecture.operators_on("IL")}
    assert {"F1", "D1", "D2"} <= ops_on_il


def test_board_operators_of_device():
    board = sundance_board()
    names = {o.name for o in board.architecture.operators_of_device("xc2v2000")}
    assert names == {"F1", "D1"}


def test_summary_text():
    board = sundance_board()
    text = board.architecture.summary()
    assert "DSP" in text and "SHB" in text and "IL" in text
