"""Incremental-scheduler equivalence and bookkeeping tests.

The tentpole guarantee of the indexed scheduling machinery is *byte
identity*: with ``incremental=True`` (the default) every scheduler must
produce exactly the schedule the retained naive reference path
(``incremental=False``, the seed's full-rescan implementation) produces —
same placements, same transfers, same reconfigurations, same commit order.
:meth:`repro.aaa.schedule.Schedule.digest` is the oracle.

Alongside the property tests live the adversarial validator fixtures, the
makespan-frontier cache checks and the pickle-round-trip (name-based
equality) checks that pin the supporting bookkeeping down.
"""

import pickle

import pytest

from repro.aaa import (
    EarliestFinishScheduler,
    InsertionScheduler,
    RandomMappingScheduler,
    ReconfigAwareScheduler,
    Schedule,
    ScheduleValidationError,
    SynDExScheduler,
    adequate,
)
from repro.aaa.costs import CostModel
from repro.aaa.schedule import ScheduledOp
from repro.arch import sundance_board
from repro.dfg.generators import (
    conditioned_chain_graph,
    fork_join_graph,
    layered_random_graph,
)
from repro.dfg.library import default_library

BOARD = sundance_board()
LIBRARY = default_library()

SCHEDULERS = [
    SynDExScheduler,
    InsertionScheduler,
    EarliestFinishScheduler,
    ReconfigAwareScheduler,
]


def _families(seed: int):
    """Three seeded graph families, shapes varied by the seed."""
    return [
        layered_random_graph(4, 3, seed=seed),
        fork_join_graph(2 + seed % 6),
        conditioned_chain_graph(3 + seed % 4, 2 + seed % 3),
    ]


def _run(graph, scheduler_cls, incremental):
    costs = CostModel(graph, BOARD.architecture, LIBRARY)
    scheduler = scheduler_cls(costs, incremental=incremental)
    schedule = scheduler.run()
    return schedule, scheduler.stats


# -- byte-identity property tests ---------------------------------------------


@pytest.mark.parametrize("seed", range(20))
def test_incremental_matches_naive_digest(seed):
    """20 seeds x 3 families x 4 schedulers: digests must be identical, and
    ``placements_requested`` must equal exactly what the naive reference
    computed (that equality is what lets a single incremental run stand in
    for the naive evaluation count in the regression guard)."""
    for graph in _families(seed):
        for scheduler_cls in SCHEDULERS:
            fast_schedule, fast_stats = _run(graph, scheduler_cls, incremental=True)
            naive_schedule, naive_stats = _run(graph, scheduler_cls, incremental=False)
            assert fast_schedule.digest() == naive_schedule.digest(), (
                f"{scheduler_cls.__name__} diverged on {graph.name} (seed {seed})"
            )
            assert fast_stats.placements_requested == naive_stats.placements_evaluated
            assert (
                fast_stats.placements_requested
                == fast_stats.placements_evaluated + fast_stats.placement_cache_hits
            )


def test_random_mapping_matches_naive_digest():
    """The seeded random baseline must also be bit-stable across paths."""
    for seed in range(5):
        graph = layered_random_graph(4, 3, seed=seed)
        fast_schedule, _ = _run(graph, RandomMappingScheduler, incremental=True)
        naive_schedule, _ = _run(graph, RandomMappingScheduler, incremental=False)
        assert fast_schedule.digest() == naive_schedule.digest()


# -- placement-evaluation regression guard ------------------------------------


def test_memo_cuts_evaluations_on_100_op_graph():
    """On a 100-operation layered graph the memo must serve a substantial
    share of the requests, and the absolute savings must grow with graph
    size — the counter-level signature of the quadratic-rescans fix."""
    small = layered_random_graph(10, 5, seed=42)  # ~50 ops
    large = layered_random_graph(10, 10, seed=42)  # ~100 ops

    _, small_stats = _run(small, SynDExScheduler, incremental=True)
    _, large_stats = _run(large, SynDExScheduler, incremental=True)

    assert large_stats.placements_evaluated <= 0.85 * large_stats.placements_requested
    small_saved = small_stats.placements_requested - small_stats.placements_evaluated
    large_saved = large_stats.placements_requested - large_stats.placements_evaluated
    assert large_saved > small_saved

    # The requested count is the naive workload: verify against an actual
    # naive run once, at the 100-op scale the guard targets.
    _, naive_stats = _run(large, SynDExScheduler, incremental=False)
    assert large_stats.placements_requested == naive_stats.placements_evaluated
    assert naive_stats.placement_cache_hits == 0


# -- adversarial validator fixtures -------------------------------------------


def _fork_join_fixture():
    graph = fork_join_graph(2)
    dsp = BOARD.architecture.operator("DSP")
    by_name = {op.name: op for op in graph.operations}
    return graph, dsp, by_name


def test_validator_ignores_zero_length_interval_inside_busy_window():
    """A zero-length interval occupies no time: strictly inside another
    operation's busy window it must not be flagged (the seed's sweep flagged
    this case while accepting the same interval at the window's edge)."""
    graph, dsp, ops = _fork_join_fixture()
    schedule = Schedule(
        ops=[
            ScheduledOp(op=ops["src"], operator=dsp, start=0, end=100),
            ScheduledOp(op=ops["b0"], operator=dsp, start=200, end=300),
            ScheduledOp(op=ops["b1"], operator=dsp, start=250, end=250),
            ScheduledOp(op=ops["sink"], operator=dsp, start=400, end=500),
        ]
    )
    schedule.validate(graph, BOARD.architecture)  # must not raise


def test_validator_ignores_zero_length_interval_at_window_boundary():
    graph, dsp, ops = _fork_join_fixture()
    schedule = Schedule(
        ops=[
            ScheduledOp(op=ops["src"], operator=dsp, start=0, end=100),
            ScheduledOp(op=ops["b0"], operator=dsp, start=200, end=300),
            ScheduledOp(op=ops["b1"], operator=dsp, start=200, end=200),
            ScheduledOp(op=ops["sink"], operator=dsp, start=400, end=500),
        ]
    )
    schedule.validate(graph, BOARD.architecture)  # must not raise


def test_validator_flags_start_tied_overlap():
    """Two non-empty intervals sharing a start must still be an overlap."""
    graph, dsp, ops = _fork_join_fixture()
    schedule = Schedule(
        ops=[
            ScheduledOp(op=ops["src"], operator=dsp, start=0, end=100),
            ScheduledOp(op=ops["b0"], operator=dsp, start=200, end=300),
            ScheduledOp(op=ops["b1"], operator=dsp, start=200, end=300),
            ScheduledOp(op=ops["sink"], operator=dsp, start=400, end=500),
        ]
    )
    with pytest.raises(ScheduleValidationError) as err:
        schedule.validate(graph, BOARD.architecture)
    assert any("overlap" in p for p in err.value.problems)


def test_validator_sees_raw_list_mutations():
    """Fixtures that bypass add_op and append to the raw lists must still be
    validated against the current contents (the index self-heals)."""
    graph, dsp, ops = _fork_join_fixture()
    schedule = Schedule(
        ops=[
            ScheduledOp(op=ops["src"], operator=dsp, start=0, end=100),
            ScheduledOp(op=ops["b0"], operator=dsp, start=200, end=300),
            ScheduledOp(op=ops["sink"], operator=dsp, start=400, end=500),
        ]
    )
    assert schedule.makespan() == 500  # prime the index
    schedule.ops.append(ScheduledOp(op=ops["b1"], operator=dsp, start=250, end=350))
    with pytest.raises(ScheduleValidationError) as err:
        schedule.validate(graph, BOARD.architecture)
    assert any("overlap" in p for p in err.value.problems)


# -- makespan frontier cache ---------------------------------------------------


def test_makespan_tracks_mutations():
    graph, dsp, ops = _fork_join_fixture()
    schedule = Schedule()
    assert schedule.makespan() == 0
    schedule.add_op(ScheduledOp(op=ops["src"], operator=dsp, start=0, end=100))
    assert schedule.makespan() == 100
    schedule.add_op(ScheduledOp(op=ops["b0"], operator=dsp, start=100, end=450))
    assert schedule.makespan() == 450
    # Direct raw-list mutation invalidates the cached frontier too.
    schedule.ops.append(ScheduledOp(op=ops["b1"], operator=dsp, start=450, end=700))
    assert schedule.makespan() == 700


def test_adequation_result_reports_cached_makespan():
    graph = layered_random_graph(4, 3, seed=1)
    result = adequate(graph, BOARD.architecture, LIBRARY, scheduler=SynDExScheduler)
    assert result.makespan_ns == result.schedule.makespan()
    assert result.iteration_period_ns == result.makespan_ns
    assert f"makespan {result.makespan_ns} ns" in result.report()
    before = result.makespan_ns
    dsp = BOARD.architecture.operator("DSP")
    extra = next(iter(graph.operations))
    result.schedule.ops.append(ScheduledOp(op=extra, operator=dsp, start=before, end=before + 10))
    assert result.makespan_ns == before + 10


# -- name-based equality across pickle boundaries ------------------------------


def test_unpickled_graph_schedules_identically():
    graph = conditioned_chain_graph(4, 2)
    fast_schedule, _ = _run(graph, ReconfigAwareScheduler, incremental=True)
    clone = pickle.loads(pickle.dumps(graph))
    clone_schedule, _ = _run(clone, ReconfigAwareScheduler, incremental=True)
    assert fast_schedule.digest() == clone_schedule.digest()


def test_unpickled_schedule_answers_queries_for_resident_objects():
    graph = layered_random_graph(4, 3, seed=5)
    schedule, _ = _run(graph, SynDExScheduler, incremental=True)
    clone = pickle.loads(pickle.dumps(schedule))
    assert clone.digest() == schedule.digest()
    assert clone.makespan() == schedule.makespan()
    for operator in BOARD.architecture.operators:
        assert [s.op.name for s in clone.of_operator(operator)] == [
            s.op.name for s in schedule.of_operator(operator)
        ]
    # Edge lookups key on endpoint names/ports, so the caller's resident
    # edges find the unpickled schedule's equal copies.
    for edge in graph.edges:
        assert [t.hop for t in clone.transfers_of_edge(edge)] == [
            t.hop for t in schedule.transfers_of_edge(edge)
        ]


def test_unpickled_graph_exclusivity_is_preserved():
    graph = conditioned_chain_graph(4, 3)
    clone = pickle.loads(pickle.dumps(graph))
    ops = {op.name: op for op in clone.operations}
    assert clone.exclusive(ops["alt0"], ops["alt1"])
    assert not clone.exclusive(ops["alt0"], ops["alt0"])
    assert not clone.exclusive(ops["select"], ops["alt0"])
