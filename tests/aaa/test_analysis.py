"""Tests for schedule analysis (period bounds, speedup, parallelism)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aaa import MappingConstraints, SynDExScheduler, adequate, analyze
from repro.arch import sundance_board
from repro.dfg.generators import chain_graph, fork_join_graph, layered_random_graph
from repro.dfg.library import default_library
from repro.executive import ExecutiveRunner, generate_executive


def run(graph, constraints=None):
    board = sundance_board()
    return adequate(
        graph, board.architecture, default_library(),
        scheduler=SynDExScheduler, constraints=constraints,
    )


def test_chain_on_one_operator_is_fully_serial():
    result = run(chain_graph(5))
    analysis = analyze(result.schedule, result.costs)
    # Whole chain on one operator: bound == makespan, parallelism 1.
    assert analysis.period_lower_bound_ns == analysis.makespan_ns
    assert analysis.max_parallelism == 1
    assert analysis.average_parallelism() == pytest.approx(1.0)
    assert analysis.utilization()[analysis.bottleneck] == pytest.approx(1.0)


def test_fork_join_shows_parallelism_and_speedup():
    result = run(fork_join_graph(6, kind="generic_large"))
    analysis = analyze(result.schedule, result.costs)
    assert analysis.max_parallelism >= 2
    assert analysis.speedup is not None and analysis.speedup > 1.0
    assert analysis.period_lower_bound_ns <= analysis.makespan_ns
    text = analysis.render()
    assert "bottleneck" in text and "speedup" in text


def test_split_pipeline_period_bound_matches_simulation():
    """The analysis's period lower bound is achieved by the pipelined
    executive: steady-state period == bound for a two-stage split chain."""
    g = chain_graph(4)
    mc = MappingConstraints().pin("n0", "DSP").pin("n1", "DSP").pin("n2", "F1").pin("n3", "F1")
    result = run(g, mc)
    analysis = analyze(result.schedule, result.costs)
    program = generate_executive(g, result.schedule)
    report = ExecutiveRunner(program, n_iterations=12).run()
    # Steady-state period (measured on the sink operator).
    period = report.iteration_period_ns("F1")
    assert period >= analysis.period_lower_bound_ns * 0.999
    assert period <= analysis.makespan_ns
    # For this deterministic pipeline the bound is tight.
    assert period == pytest.approx(analysis.period_lower_bound_ns, rel=0.05)


def test_media_counted_in_bottleneck():
    g = chain_graph(2, tokens=4096)  # big transfers
    mc = MappingConstraints().pin("n0", "DSP").pin("n1", "F1")
    result = run(g, mc)
    analysis = analyze(result.schedule, result.costs)
    assert "SHB" in analysis.medium_busy_ns
    assert analysis.medium_busy_ns["SHB"] > 0


def test_serial_best_none_when_no_common_operator():
    from repro.mccdma.casestudy import build_mccdma_design

    design = build_mccdma_design()
    result = adequate(design.graph, design.board.architecture, design.library)
    analysis = analyze(result.schedule, result.costs)
    # bit_source runs only on the DSP, dac only on the FPGA: no single
    # operator can host everything.
    assert analysis.serial_best_ns is None
    assert analysis.speedup is None


def test_empty_schedule_analysis():
    from repro.aaa.schedule import Schedule

    analysis = analyze(Schedule())
    assert analysis.makespan_ns == 0
    assert analysis.period_lower_bound_ns == 0
    assert analysis.average_parallelism() == 0.0
    assert analysis.utilization() == {}


@settings(max_examples=15, deadline=None)
@given(
    layers=st.integers(min_value=2, max_value=5),
    width=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=300),
)
def test_analysis_invariants_property(layers, width, seed):
    g = layered_random_graph(layers, width, seed=seed)
    result = run(g)
    analysis = analyze(result.schedule, result.costs)
    assert 0 < analysis.period_lower_bound_ns <= analysis.makespan_ns
    assert 1 <= analysis.max_parallelism <= len(sundance_board().architecture.operators)
    assert 0.0 < analysis.average_parallelism() <= analysis.max_parallelism
    for util in analysis.utilization().values():
        assert 0.0 <= util <= 1.0 + 1e-9
