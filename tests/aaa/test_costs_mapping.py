"""Tests for the cost model and mapping constraints."""

import pytest

from repro.aaa import CostError, CostModel, MappingConstraints, MappingError
from repro.arch import sundance_board
from repro.dfg.generators import conditioned_chain_graph
from repro.dfg.library import default_library
from repro.mccdma.casestudy import build_mccdma_graph


@pytest.fixture
def setup():
    graph = build_mccdma_graph()
    board = sundance_board()
    lib = default_library()
    return graph, board.architecture, CostModel(graph, board.architecture, lib)


def test_duration_scales_with_clock(setup):
    graph, arch, costs = setup
    ifft = graph.operation("ifft")
    f1 = arch.operator("F1")
    # 420 cycles at 50 MHz = 8400 ns.
    assert costs.duration(ifft, f1) == 8400


def test_dsp_only_kind_not_mappable_to_fpga(setup):
    graph, arch, costs = setup
    src = graph.operation("bit_src")
    assert not costs.can_map(src, arch.operator("F1"))
    assert costs.can_map(src, arch.operator("DSP"))
    with pytest.raises(CostError):
        costs.duration(src, arch.operator("F1"))


def test_dynamic_operator_hosts_only_conditioned_ops(setup):
    graph, arch, costs = setup
    d1 = arch.operator("D1")
    spreader = graph.operation("spreader")  # unconditioned
    qpsk = graph.operation("mod_qpsk")  # conditioned
    assert not costs.can_map(spreader, d1)
    assert costs.can_map(qpsk, d1)


def test_candidates_and_best_duration(setup):
    graph, arch, costs = setup
    qpsk = graph.operation("mod_qpsk")
    cands = {p.name for p in costs.candidates(qpsk)}
    assert cands == {"DSP", "F1", "D1"}
    # FPGA at 50 MHz: 96 cycles -> 1920 ns; DSP at 200 MHz: 1500 cycles -> 7500 ns.
    assert costs.best_duration(qpsk) == 1920


def test_comm_duration_uses_route(setup):
    graph, arch, costs = setup
    edge = graph.out_edges("bit_src")[0]
    dsp, f1 = arch.operator("DSP"), arch.operator("F1")
    shb = arch.medium("SHB")
    assert costs.comm_duration(edge, dsp, f1) == shb.transfer_ns(edge.size_bytes)
    assert costs.comm_duration(edge, dsp, dsp) == 0


def test_reconfiguration_latency_default_and_override(setup):
    graph, arch, costs = setup
    d1 = arch.operator("D1")
    assert costs.reconfiguration_ns(d1) == CostModel.DEFAULT_RECONFIG_NS
    costs.set_reconfiguration_ns("D1", 1_000_000)
    assert costs.reconfiguration_ns(d1) == 1_000_000
    with pytest.raises(CostError):
        costs.reconfiguration_ns(arch.operator("F1"))
    with pytest.raises(CostError):
        costs.set_reconfiguration_ns("D1", -1)


def test_pin_and_forbid(setup):
    graph, arch, costs = setup
    mc = MappingConstraints()
    mc.pin("ifft", "F1")
    assert mc.pinned_operator(graph.operation("ifft")) == "F1"
    assert [p.name for p in mc.candidates(graph.operation("ifft"), costs)] == ["F1"]
    mc.forbid("spreader", "DSP")
    cands = {p.name for p in mc.candidates(graph.operation("spreader"), costs)}
    assert cands == {"F1"}


def test_pin_conflicts_detected(setup):
    graph, arch, costs = setup
    mc = MappingConstraints().pin("ifft", "F1")
    with pytest.raises(MappingError):
        mc.pin("ifft", "DSP")
    with pytest.raises(MappingError):
        mc.forbid("ifft", "F1")
    mc.pin("ifft", "F1")  # re-pinning same target is fine
    assert len(mc) == 1


def test_pin_to_infeasible_operator_raises(setup):
    graph, arch, costs = setup
    mc = MappingConstraints().pin("bit_src", "F1")  # DSP-only kind
    with pytest.raises(MappingError, match="cannot host"):
        mc.candidates(graph.operation("bit_src"), costs)


def test_forbidding_everything_raises():
    graph = conditioned_chain_graph(5, 2)
    board = sundance_board()
    costs = CostModel(graph, board.architecture, default_library())
    mc = MappingConstraints()
    op = graph.operation("stage1")
    for p in costs.candidates(op):
        mc.forbid(op, p)
    with pytest.raises(MappingError, match="no feasible operator"):
        mc.candidates(op, costs)
