"""Tests for the schedulers and the schedule validator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aaa import (
    EarliestFinishScheduler,
    MappingConstraints,
    RandomMappingScheduler,
    ReconfigAwareScheduler,
    Schedule,
    ScheduleValidationError,
    SynDExScheduler,
    adequate,
)
from repro.aaa.schedule import ScheduledOp
from repro.arch import sundance_board
from repro.dfg.generators import chain_graph, conditioned_chain_graph, fork_join_graph, layered_random_graph
from repro.dfg.library import default_library
from repro.mccdma.casestudy import build_mccdma_design


def run_scheduler(graph, scheduler_cls=SynDExScheduler, constraints=None, reconfig_ns=None, **kw):
    board = sundance_board()
    result = adequate(
        graph,
        board.architecture,
        default_library(),
        constraints=constraints,
        scheduler=scheduler_cls,
        reconfig_ns=reconfig_ns,
        **kw,
    )
    return result, board


def test_chain_schedules_and_validates():
    result, board = run_scheduler(chain_graph(6))
    assert len(result.schedule.ops) == 6
    assert result.makespan_ns > 0
    # validate() already ran inside adequate(); run again explicitly.
    result.schedule.validate(chain_graph(6), board.architecture)


def test_fork_join_exploits_parallelism():
    """With two usable operators, a wide fork-join should beat the purely
    sequential single-operator schedule."""
    g = fork_join_graph(6, kind="generic_large")
    result, board = run_scheduler(g)
    costs = result.costs
    serial_dsp = sum(
        costs.duration(op, board.architecture.operator("DSP")) for op in g.operations
    )
    assert result.makespan_ns < serial_dsp
    assert len(result.schedule.operators_used()) >= 2


def test_syndex_beats_or_matches_random():
    g = layered_random_graph(5, 4, seed=3)
    best, _ = run_scheduler(g, SynDExScheduler)
    rand, _ = run_scheduler(g, RandomMappingScheduler, seed=11)
    assert best.makespan_ns <= rand.makespan_ns


def test_syndex_no_worse_than_earliest_finish_on_average():
    better = 0
    total = 0
    for seed in range(8):
        g = layered_random_graph(4, 4, seed=seed)
        p, _ = run_scheduler(g, SynDExScheduler)
        e, _ = run_scheduler(g, EarliestFinishScheduler)
        total += 1
        if p.makespan_ns <= e.makespan_ns:
            better += 1
    assert better >= total // 2


def test_transfers_scheduled_for_cross_operator_edges():
    design = build_mccdma_design()
    mc = MappingConstraints().pin("bit_src", "DSP").pin("coder", "F1")
    result = adequate(
        design.graph, design.board.architecture, design.library, constraints=mc,
        scheduler=SynDExScheduler,
    )
    # bit_src on DSP feeds interface; some edge crosses the SHB.
    shb_transfers = result.schedule.of_medium("SHB")
    assert shb_transfers, "expected at least one SHB transfer"
    for t in shb_transfers:
        src_pl = result.schedule.placement(t.edge.src.name)
        dst_pl = result.schedule.placement(t.edge.dst.name)
        assert t.start >= src_pl.end
        assert dst_pl.start >= t.end


def test_conditioned_alternatives_may_overlap_on_dynamic_operator():
    design = build_mccdma_design()
    mc = MappingConstraints().pin("mod_qpsk", "D1").pin("mod_qam16", "D1")
    result = adequate(
        design.graph, design.board.architecture, design.library, constraints=mc,
        scheduler=SynDExScheduler,
    )
    qpsk = result.schedule.placement("mod_qpsk")
    qam = result.schedule.placement("mod_qam16")
    assert qpsk.operator.name == "D1" and qam.operator.name == "D1"
    # Validator accepted it (adequate validates); overlap is allowed, not required.


def test_selector_scheduled_before_conditioned_ops():
    g = conditioned_chain_graph(5, 2)
    result, _ = run_scheduler(g)
    sel_end = result.schedule.placement("select").end
    for alt in ("alt0", "alt1"):
        assert result.schedule.placement(alt).start >= sel_end


def test_reconfig_aware_inserts_reconfigs_on_dynamic_operator():
    design = build_mccdma_design()
    mc = MappingConstraints().pin("mod_qpsk", "D1").pin("mod_qam16", "D1")
    result = adequate(
        design.graph, design.board.architecture, design.library, constraints=mc,
        scheduler=ReconfigAwareScheduler, reconfig_ns={"D1": 4_000_000},
    )
    recs = result.schedule.reconfigs_of("D1")
    assert len(recs) == 2
    assert {r.module for r in recs} == {"mod_qpsk", "mod_qam16"}
    for r in recs:
        assert r.duration == 4_000_000
        assert r.prefetched
        op = result.schedule.placement(r.module)
        assert op.start >= r.end  # module loaded before it runs


def test_prefetch_shortens_makespan_vs_reactive():
    design = build_mccdma_design()
    mc = MappingConstraints().pin("mod_qpsk", "D1").pin("mod_qam16", "D1")
    common = dict(
        constraints=mc, scheduler=ReconfigAwareScheduler, reconfig_ns={"D1": 4_000_000}
    )
    pre = adequate(design.graph, design.board.architecture, design.library, prefetch=True, **common)
    rea = adequate(design.graph, design.board.architecture, design.library, prefetch=False, **common)
    assert pre.makespan_ns < rea.makespan_ns
    # Within one iteration, prefetch pulls the reconfiguration start back to
    # the moment the Select value is known, instead of the module's own
    # would-be start time.  (The large cross-iteration gain is measured by
    # the runtime simulation benchmarks.)
    for module in ("mod_qpsk", "mod_qam16"):
        pre_r = next(r for r in pre.schedule.reconfigs if r.module == module)
        rea_r = next(r for r in rea.schedule.reconfigs if r.module == module)
        assert pre_r.start < rea_r.start


def test_reconfig_aware_with_zero_latency_matches_base():
    design = build_mccdma_design()
    mc = MappingConstraints().pin("mod_qpsk", "D1").pin("mod_qam16", "D1")
    base = adequate(
        design.graph, design.board.architecture, design.library, constraints=mc,
        scheduler=SynDExScheduler,
    )
    aware = adequate(
        design.graph, design.board.architecture, design.library, constraints=mc,
        scheduler=ReconfigAwareScheduler, reconfig_ns={"D1": 0},
    )
    assert aware.makespan_ns == base.makespan_ns
    assert not aware.schedule.reconfigs


def test_reconfig_aware_avoids_dynamic_region_when_latency_hurts():
    """Unpinned, the heuristic should keep the modulators off the dynamic
    region when reconfiguration is ruinously slow, and the resulting
    makespan must not exceed the pinned-dynamic one."""
    design = build_mccdma_design()
    free = adequate(
        design.graph, design.board.architecture, design.library,
        scheduler=ReconfigAwareScheduler, reconfig_ns={"D1": 50_000_000},
    )
    pinned = adequate(
        design.graph, design.board.architecture, design.library,
        constraints=MappingConstraints().pin("mod_qpsk", "D1").pin("mod_qam16", "D1"),
        scheduler=ReconfigAwareScheduler, reconfig_ns={"D1": 50_000_000},
    )
    assert free.makespan_ns <= pinned.makespan_ns
    mapping = free.schedule.mapping()
    assert mapping["mod_qpsk"] != "D1" or mapping["mod_qam16"] != "D1"


def test_validator_catches_missing_operation():
    g = chain_graph(3)
    board = sundance_board()
    sched = Schedule()
    with pytest.raises(ScheduleValidationError, match="not scheduled"):
        sched.validate(g, board.architecture)


def test_validator_catches_overlap():
    g = chain_graph(2)
    board = sundance_board()
    dsp = board.architecture.operator("DSP")
    a, b = g.operations
    sched = Schedule(
        ops=[
            ScheduledOp(op=a, operator=dsp, start=0, end=100),
            ScheduledOp(op=b, operator=dsp, start=50, end=150),
        ]
    )
    with pytest.raises(ScheduleValidationError) as err:
        sched.validate(g, board.architecture)
    assert any("overlap" in p for p in err.value.problems)


def test_validator_catches_missing_transfer():
    g = chain_graph(2)
    board = sundance_board()
    dsp = board.architecture.operator("DSP")
    f1 = board.architecture.operator("F1")
    a, b = g.operations
    sched = Schedule(
        ops=[
            ScheduledOp(op=a, operator=dsp, start=0, end=100),
            ScheduledOp(op=b, operator=f1, start=200, end=300),
        ]
    )
    with pytest.raises(ScheduleValidationError, match="no scheduled transfer"):
        sched.validate(g, board.architecture)


def test_schedule_table_renders():
    result, _ = run_scheduler(conditioned_chain_graph(5, 2), ReconfigAwareScheduler)
    text = result.report()
    assert "makespan" in text and "operator" in text


@settings(max_examples=15, deadline=None)
@given(
    layers=st.integers(min_value=2, max_value=5),
    width=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=500),
)
def test_property_schedules_always_valid(layers, width, seed):
    """Any generated DAG yields a schedule satisfying every invariant
    (adequate() runs the validator and would raise)."""
    g = layered_random_graph(layers, width, seed=seed)
    result, board = run_scheduler(g, SynDExScheduler)
    assert result.makespan_ns >= 0
    assert len(result.schedule.ops) == len(g.operations)


@settings(max_examples=10, deadline=None)
@given(
    alternatives=st.integers(min_value=2, max_value=4),
    latency_ms=st.integers(min_value=0, max_value=8),
    prefetch=st.booleans(),
)
def test_property_reconfig_aware_always_valid(alternatives, latency_ms, prefetch):
    g = conditioned_chain_graph(6, alternatives)
    result, _ = run_scheduler(
        g, ReconfigAwareScheduler, reconfig_ns={"D1": latency_ms * 1_000_000}, prefetch=prefetch
    )
    # Reconfigs (when any) always complete before their module runs.
    for r in result.schedule.reconfigs:
        assert result.schedule.placement(r.module).start >= r.end


def test_case_study_default_flow_mapping():
    """The full case-study adequation lands the modulators on D1 when the
    designer pins them there (the paper's final implementation)."""
    design = build_mccdma_design()
    mc = (
        MappingConstraints()
        .pin("mod_qpsk", "D1")
        .pin("mod_qam16", "D1")
        .pin("bit_src", "DSP")
        .pin("select", "DSP")
    )
    result = adequate(
        design.graph, design.board.architecture, design.library, constraints=mc,
        scheduler=ReconfigAwareScheduler, reconfig_ns={"D1": 4_000_000},
    )
    mapping = result.schedule.mapping()
    assert mapping["mod_qpsk"] == "D1"
    assert mapping["mod_qam16"] == "D1"
    assert mapping["bit_src"] == "DSP"
    # All the streaming blocks end up on the FPGA static part.
    for name in ("spreader", "ifft", "cyclic_prefix", "framer", "dac"):
        assert mapping[name] == "F1"
