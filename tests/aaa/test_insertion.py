"""Tests for the insertion-based (gap-filling) scheduler."""

import statistics

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aaa import InsertionScheduler, MappingConstraints, SynDExScheduler, adequate
from repro.arch import sundance_board
from repro.dfg import AlgorithmGraph, WORD32
from repro.dfg.generators import layered_random_graph
from repro.dfg.library import default_library


def run(graph, scheduler, constraints=None):
    board = sundance_board()
    return adequate(
        graph, board.architecture, default_library(),
        scheduler=scheduler, constraints=constraints,
    )


def gap_graph():
    """Engineered idle window on F1.

    Commit order under pressure selection: A (DSP, long, heads the critical
    chain) → E (F1, medium, source) → B (F1, dep on A: starts only when A's
    data crosses the SHB, leaving F1 idle after E) → C (F1, short source,
    lowest pressure).  Append-only puts C after B; insertion slots C into
    the [E.end, B.start) window."""
    g = AlgorithmGraph("gappy")
    a = g.add_operation("a_dsp_long", "generic_large")
    a.add_output("o", WORD32, 16)
    b = g.add_operation("b_f1_long", "generic_large")
    b.add_input("i", WORD32, 16)
    g.connect(a, "o", b, "i")
    e = g.add_operation("e_f1_medium", "generic_medium")
    e.add_output("o", WORD32, 16)
    sink_e = g.add_operation("sink_e", "generic_small")
    sink_e.add_input("i", WORD32, 16)
    g.connect(e, "o", sink_e, "i")
    c = g.add_operation("c_f1_short", "generic_small")
    c.add_output("o", WORD32, 16)
    sink_c = g.add_operation("sink_c", "generic_small")
    sink_c.add_input("i", WORD32, 16)
    g.connect(c, "o", sink_c, "i")
    return g


def test_insertion_fills_gap():
    g = gap_graph()
    mc = MappingConstraints().pin("a_dsp_long", "DSP")
    for name in ("b_f1_long", "e_f1_medium", "c_f1_short", "sink_e", "sink_c"):
        mc.pin(name, "F1")
    append = run(g, SynDExScheduler, mc)
    insert = run(g, InsertionScheduler, mc)
    assert insert.makespan_ns <= append.makespan_ns
    # Under insertion, the short source runs inside the idle window before
    # the DSP-fed operation starts on F1.
    c_pl = insert.schedule.placement("c_f1_short")
    b_pl = insert.schedule.placement("b_f1_long")
    assert c_pl.end <= b_pl.start
    # Append-only had scheduled it after instead.
    c_append = append.schedule.placement("c_f1_short")
    assert c_append.start >= b_pl.start


def test_insertion_validates_on_case_study():
    from repro.mccdma.casestudy import build_mccdma_design

    design = build_mccdma_design()
    result = adequate(
        design.graph, design.board.architecture, design.library,
        scheduler=InsertionScheduler,
    )
    assert result.makespan_ns > 0  # adequate() validated internally


def test_insertion_never_much_worse_and_often_better():
    deltas = []
    for seed in range(12):
        g = layered_random_graph(5, 4, seed=seed)
        append = run(g, SynDExScheduler).makespan_ns
        insert = run(g, InsertionScheduler).makespan_ns
        assert insert <= append * 1.05, f"seed {seed}: insertion much worse"
        deltas.append(append - insert)
    assert statistics.mean(deltas) >= 0


@settings(max_examples=20, deadline=None)
@given(
    layers=st.integers(min_value=2, max_value=5),
    width=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=400),
)
def test_insertion_schedules_always_valid(layers, width, seed):
    """Gap insertion must never violate precedence, exclusivity or media
    serialization (adequate() runs the full validator)."""
    g = layered_random_graph(layers, width, seed=seed)
    result = run(g, InsertionScheduler)
    assert len(result.schedule.ops) == len(g.operations)
