"""Tests for the algorithm graph, operations and conditioning."""

import pytest

from repro.dfg import AlgorithmGraph, GraphValidationError, Operation, WORD32, validate_graph
from repro.dfg.library import default_library


def simple_chain():
    g = AlgorithmGraph("t")
    a = g.add_operation("a", "generic_small")
    a.add_output("o", WORD32, 4)
    b = g.add_operation("b", "generic_small")
    b.add_input("i", WORD32, 4)
    b.add_output("o", WORD32, 4)
    c = g.add_operation("c", "generic_small")
    c.add_input("i", WORD32, 4)
    g.connect(a, "o", b, "i")
    g.connect(b, "o", c, "i")
    return g


def test_operation_requires_name_and_kind():
    with pytest.raises(ValueError):
        Operation(name="", kind="x")
    with pytest.raises(ValueError):
        Operation(name="x", kind="")


def test_duplicate_port_rejected():
    op = Operation("x", "generic_small")
    op.add_input("i", WORD32)
    with pytest.raises(ValueError):
        op.add_output("i", WORD32)


def test_duplicate_operation_rejected():
    g = AlgorithmGraph()
    g.add_operation("x", "k")
    with pytest.raises(ValueError):
        g.add_operation("x", "k")


def test_connect_validates_ports():
    g = AlgorithmGraph()
    a = g.add_operation("a", "k")
    a.add_output("o", WORD32, 4)
    b = g.add_operation("b", "k")
    b.add_input("i", WORD32, 8)  # token mismatch
    with pytest.raises(ValueError, match="incompatible"):
        g.connect(a, "o", b, "i")


def test_connect_direction_enforced():
    g = AlgorithmGraph()
    a = g.add_operation("a", "k")
    a.add_output("o", WORD32)
    b = g.add_operation("b", "k")
    b.add_input("i", WORD32)
    with pytest.raises(ValueError, match="not an output"):
        g.connect(a, "o", b, "i") if False else g.connect("b", "i", "a", "o")


def test_input_single_driver():
    g = AlgorithmGraph()
    a = g.add_operation("a", "k")
    a.add_output("o", WORD32)
    a2 = g.add_operation("a2", "k")
    a2.add_output("o", WORD32)
    b = g.add_operation("b", "k")
    b.add_input("i", WORD32)
    g.connect(a, "o", b, "i")
    with pytest.raises(ValueError, match="already driven"):
        g.connect(a2, "o", b, "i")


def test_foreign_operation_rejected():
    g = AlgorithmGraph()
    stranger = Operation("s", "k")
    stranger.add_output("o", WORD32)
    with pytest.raises(KeyError):
        g.out_edges(stranger)


def test_topological_order_and_queries():
    g = simple_chain()
    order = [op.name for op in g.topological_order()]
    assert order == ["a", "b", "c"]
    assert [o.name for o in g.sources()] == ["a"]
    assert [o.name for o in g.sinks()] == ["c"]
    assert [o.name for o in g.predecessors("b")] == ["a"]
    assert [o.name for o in g.successors("b")] == ["c"]
    assert g.in_edges("b")[0].size_bytes == 16


def test_critical_path_length():
    g = simple_chain()
    assert g.critical_path_length(lambda op: 10) == 30


def test_validate_passes_on_good_graph():
    g = simple_chain()
    validate_graph(g)  # no raise


def test_validate_rejects_undriven_input():
    g = AlgorithmGraph()
    b = g.add_operation("b", "k")
    b.add_input("i", WORD32)
    with pytest.raises(GraphValidationError, match="not driven"):
        validate_graph(g)


def test_validate_rejects_empty_graph():
    with pytest.raises(GraphValidationError, match="no operations"):
        validate_graph(AlgorithmGraph())


def test_validate_library_coverage():
    g = simple_chain()
    lib = default_library()
    validate_graph(g, lib)  # generic_small is characterized
    g.add_operation("weird", "not_a_kind")
    with pytest.raises(GraphValidationError, match="not characterized"):
        validate_graph(g, lib)


def test_condition_group_exclusivity():
    g = AlgorithmGraph()
    sel = g.add_operation("sel", "select_source")
    sel.add_output("v", WORD32, 1)
    src = g.add_operation("src", "k")
    src.add_output("o0", WORD32, 4)
    src.add_output("o1", WORD32, 4)
    sink = g.add_operation("sink", "k")
    sink.add_input("i0", WORD32, 4)
    sink.add_input("i1", WORD32, 4)
    alts = []
    for i in range(2):
        alt = g.add_operation(f"alt{i}", "k")
        alt.add_input("i", WORD32, 4)
        alt.add_output("o", WORD32, 4)
        g.connect(src, f"o{i}", alt, "i")
        g.connect(alt, "o", sink, f"i{i}")
        alts.append(alt)
    group = g.condition_group("mod", sel, "v")
    group.add_case("qpsk", [alts[0]])
    group.add_case("qam16", [alts[1]])

    assert g.exclusive(alts[0], alts[1])
    assert not g.exclusive(alts[0], src)
    assert group.alternatives_of(alts[0]) == [alts[1]]
    assert alts[0].condition.group == "mod"
    assert alts[0].is_conditioned and not src.is_conditioned


def test_condition_group_rejects_double_membership():
    g = AlgorithmGraph()
    sel = g.add_operation("sel", "select_source")
    sel.add_output("v", WORD32, 1)
    op = g.add_operation("x", "k")
    grp = g.condition_group("g1", sel, "v")
    grp.add_case(0, [op])
    grp2 = g.condition_group("g2", sel, "v")
    with pytest.raises(ValueError, match="already conditioned"):
        grp2.add_case(1, [op])


def test_condition_group_interface_mismatch_detected():
    g = AlgorithmGraph()
    sel = g.add_operation("sel", "select_source")
    sel.add_output("v", WORD32, 1)
    src = g.add_operation("src", "k")
    src.add_output("o0", WORD32, 4)
    src.add_output("o1", WORD32, 8)
    a = g.add_operation("a", "k")
    a.add_input("i", WORD32, 4)
    b = g.add_operation("b", "k")
    b.add_input("i", WORD32, 8)  # different token count -> mismatched interface
    g.connect(src, "o0", a, "i")
    g.connect(src, "o1", b, "i")
    grp = g.condition_group("m", sel, "v")
    grp.add_case(0, [a])
    grp.add_case(1, [b])
    with pytest.raises(GraphValidationError, match="differing port interfaces"):
        validate_graph(g)


def test_cycle_detection():
    g = AlgorithmGraph()
    a = g.add_operation("a", "k")
    a.add_input("i", WORD32)
    a.add_output("o", WORD32)
    b = g.add_operation("b", "k")
    b.add_input("i", WORD32)
    b.add_output("o", WORD32)
    g.connect(a, "o", b, "i")
    g.connect(b, "o", a, "i")
    assert not g.is_acyclic()
    with pytest.raises(GraphValidationError, match="cycle"):
        validate_graph(g)
    with pytest.raises(ValueError, match="cycle"):
        g.topological_order()


def test_summary_mentions_operations():
    g = simple_chain()
    text = g.summary()
    assert "a (generic_small)" in text and "3 operations" in text
