"""Tests for retrofitting dynamic reconfiguration onto fixed designs."""

import pytest

from repro.dfg import AlgorithmGraph, BIT, CPLX16, validate_graph
from repro.dfg.library import default_library
from repro.dfg.retrofit import RetrofitError, retrofit_alternatives


def fixed_transmitter():
    """A fixed (no conditioning) mini transmitter: src -> mod -> sink."""
    g = AlgorithmGraph("fixed_tx")
    src = g.add_operation("src", "interface_in_out")
    src.add_input("din", BIT, 36)
    src.add_output("dout", BIT, 36)
    feeder = g.add_operation("feeder", "channel_coder")
    feeder.add_output("coded", BIT, 36)
    feeder.add_input("bits", BIT, 16)
    head = g.add_operation("head", "bit_source")
    head.add_output("bits", BIT, 16)
    g.connect(head, "bits", feeder, "bits")
    g.connect(feeder, "coded", src, "din")
    mod = g.add_operation("mod", "qpsk_mod")
    mod.add_input("bits", BIT, 36)
    mod.add_output("symbols", CPLX16, 4)
    sink = g.add_operation("sink", "spreader")
    sink.add_input("symbols", CPLX16, 4)
    sink.add_output("chips", CPLX16, 64)
    tail = g.add_operation("tail", "dac_sink")
    tail.add_input("samples", CPLX16, 64)
    g.connect(src, "dout", mod, "bits")
    g.connect(mod, "symbols", sink, "symbols")
    g.connect(sink, "chips", tail, "samples")
    return g


def test_retrofit_creates_valid_conditioned_graph():
    g = fixed_transmitter()
    validate_graph(g, default_library())  # fixed design is valid
    group = retrofit_alternatives(
        g, "mod", {"qam16": "qam16_mod"}, group_name="modulation"
    )
    validate_graph(g, default_library())  # still valid after surgery
    assert set(group.cases) == {"base", "qam16"}
    assert g.operation("mod").condition.value == "base"
    alt = g.operation("mod_qam16")
    assert alt.condition.value == "qam16"
    # Alternatives are mutually exclusive and share the interface.
    assert g.exclusive(g.operation("mod"), alt)
    assert {str(p) for p in alt.ports.values()} == {
        str(p) for p in g.operation("mod").ports.values()
    }
    # A merge now sits between the alternatives and the old consumer.
    merge = g.operation("mod_symbols_modulation_merge")
    assert {e.src.name for e in g.in_edges(merge)} == {"mod", "mod_qam16"}
    assert [e.dst.name for e in g.out_edges(merge)] == ["sink"]


def test_retrofit_multiple_ip_blocks():
    g = fixed_transmitter()
    group = retrofit_alternatives(
        g, "mod", {"qam16": "qam16_mod", "fast": "generic_small"}, group_name="m"
    )
    assert len(group.cases) == 3
    validate_graph(g, default_library())


def test_retrofit_guardrails():
    g = fixed_transmitter()
    with pytest.raises(RetrofitError, match="at least one"):
        retrofit_alternatives(g, "mod", {}, group_name="m")
    with pytest.raises(RetrofitError, match="collides"):
        retrofit_alternatives(g, "mod", {"base": "qam16_mod"}, group_name="m")
    with pytest.raises(RetrofitError, match="no outputs"):
        retrofit_alternatives(g, "tail", {"x": "generic_small"}, group_name="m")
    retrofit_alternatives(g, "mod", {"qam16": "qam16_mod"}, group_name="m")
    with pytest.raises(RetrofitError, match="already conditioned"):
        retrofit_alternatives(g, "mod", {"other": "generic_small"}, group_name="m2")


def test_retrofitted_design_runs_the_full_flow():
    """The paper's claim end to end: a fixed design, made dynamic after the
    fact, goes through adequation, floorplanning and runtime simulation."""
    from repro.arch import sundance_board
    from repro.flows import DesignFlow, SystemSimulation

    g = fixed_transmitter()
    retrofit_alternatives(g, "mod", {"qam16": "qam16_mod"}, group_name="modulation")
    flow = DesignFlow(graph=g, board=sundance_board(), library=default_library())
    flow.mapping.pin("mod", "D1").pin("mod_qam16", "D1")
    result = flow.run()
    assert result.modular.par_report.ok
    assert {m for m in result.generated.variant_regions} == {
        "dyn_D1_mod", "dyn_D1_mod_qam16"
    }
    plan = ["base", "qam16"] * 3
    run = SystemSimulation(
        result, n_iterations=len(plan),
        selector_values={"modulation": lambda it: plan[it]},
    ).run()
    assert run.switches == 6  # swap every iteration (incl. initial load)
    assert run.n_iterations == 6


def test_disconnect_unknown_edge_raises():

    g = fixed_transmitter()
    real = g.edges[0]
    g.disconnect(real)
    with pytest.raises(KeyError):
        g.disconnect(real)
