"""Tests for data types and ports."""

import pytest

from repro.dfg import BIT, CPLX16, DataType, Direction, Port, WORD32


def test_datatype_bytes_rounding():
    assert BIT.bytes == 1
    assert DataType("odd", 9).bytes == 2
    assert WORD32.bytes == 4
    assert CPLX16.bytes == 4


def test_datatype_requires_positive_width():
    with pytest.raises(ValueError):
        DataType("bad", 0)


def test_port_sizes():
    p = Port("d", Direction.OUT, WORD32, tokens=16)
    assert p.size_bits == 512
    assert p.size_bytes == 64


def test_port_bit_packing():
    p = Port("b", Direction.OUT, BIT, tokens=12)
    assert p.size_bits == 12
    assert p.size_bytes == 2  # rounded up


def test_port_validation():
    with pytest.raises(ValueError):
        Port("", Direction.IN, WORD32)
    with pytest.raises(ValueError):
        Port("x", Direction.IN, WORD32, tokens=0)


def test_port_compatibility():
    out = Port("o", Direction.OUT, WORD32, 4)
    good = Port("i", Direction.IN, WORD32, 4)
    bad_type = Port("i", Direction.IN, CPLX16, 4)
    bad_tokens = Port("i", Direction.IN, WORD32, 8)
    bad_dir = Port("i", Direction.OUT, WORD32, 4)
    assert out.compatible_with(good)
    assert not out.compatible_with(bad_type)
    assert not out.compatible_with(bad_tokens)
    assert not out.compatible_with(bad_dir)
    assert not good.compatible_with(out)  # in cannot drive
