"""Tests for algorithm-graph serialization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dfg import validate_graph
from repro.dfg.generators import chain_graph, conditioned_chain_graph, layered_random_graph
from repro.dfg.io import GraphFormatError, dumps, from_dict, load, loads, save
from repro.dfg.library import default_library
from repro.mccdma.casestudy import build_mccdma_graph
from repro.mccdma.modulation import Modulation


def graphs_equal(a, b) -> bool:
    if a.name != b.name or len(a) != len(b):
        return False
    for op in a.operations:
        other = b.operation(op.name)
        if other.kind != op.kind or other.params != op.params:
            return False
        if {str(p) for p in op.ports.values()} != {str(p) for p in other.ports.values()}:
            return False
        if (op.condition is None) != (other.condition is None):
            return False
        if op.condition is not None and (
            op.condition.group != other.condition.group
            or op.condition.value != other.condition.value
        ):
            return False
    return {str(e) for e in a.edges} == {str(e) for e in b.edges}


def test_roundtrip_chain():
    g = chain_graph(5)
    assert graphs_equal(g, loads(dumps(g)))


def test_roundtrip_conditioned():
    g = conditioned_chain_graph(5, 3)
    back = loads(dumps(g))
    assert graphs_equal(g, back)
    validate_graph(back, default_library())
    assert set(back.condition_groups) == {"alt"}


def test_roundtrip_case_study_with_enum_values():
    g = build_mccdma_graph()
    back = loads(dumps(g))
    assert graphs_equal(g, back)
    group = back.condition_groups["modulation"]
    assert set(group.cases) == {Modulation.QPSK, Modulation.QAM16}
    # The restored values are the real enum members, not strings.
    assert all(isinstance(v, Modulation) for v in group.cases)


def test_save_load_file(tmp_path):
    g = build_mccdma_graph()
    path = tmp_path / "tx.json"
    save(g, path)
    assert graphs_equal(g, load(path))


def test_format_guardrails():
    with pytest.raises(GraphFormatError, match="invalid JSON"):
        loads("{nope")
    with pytest.raises(GraphFormatError, match="not a repro"):
        from_dict({"format": "something-else"})
    with pytest.raises(GraphFormatError, match="version"):
        from_dict({"format": "repro-algorithm-graph", "version": 99})
    with pytest.raises(GraphFormatError, match="unknown dtype"):
        from_dict(
            {
                "format": "repro-algorithm-graph",
                "version": 1,
                "dtypes": {},
                "operations": [
                    {"name": "a", "kind": "k",
                     "ports": [{"name": "o", "direction": "out", "dtype": "ghost", "tokens": 1}]}
                ],
                "edges": [],
                "condition_groups": [],
            }
        )


def test_unserializable_condition_value_rejected():
    g = conditioned_chain_graph(5, 2)
    group = g.condition_groups["alt"]
    # Sneak in an unserializable case value.
    op = group.cases[0][0]
    object.__setattr__(op.condition, "value", object()) if False else None
    # Direct API check instead: to_dict must reject complex objects.
    from repro.dfg.io import _condition_value_to_json

    with pytest.raises(GraphFormatError):
        _condition_value_to_json(object())


@settings(max_examples=20, deadline=None)
@given(
    layers=st.integers(min_value=2, max_value=5),
    width=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=500),
)
def test_roundtrip_property(layers, width, seed):
    g = layered_random_graph(layers, width, seed=seed)
    back = loads(dumps(g))
    assert graphs_equal(g, back)
    # Serialization is deterministic.
    assert dumps(g) == dumps(back)
