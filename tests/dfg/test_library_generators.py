"""Tests for the operation library and synthetic graph generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dfg import OperationLibrary, OperationSpec, validate_graph
from repro.dfg.generators import (
    chain_graph,
    conditioned_chain_graph,
    fork_join_graph,
    layered_random_graph,
)
from repro.dfg.library import DSP_CLASS, FPGA_CLASS, default_library


def test_library_register_and_query():
    lib = OperationLibrary()
    lib.define("foo", {DSP_CLASS: 100, FPGA_CLASS: 10}, {"luts": 5})
    assert "foo" in lib
    assert lib.cycles("foo", DSP_CLASS) == 100
    assert lib.supports("foo", FPGA_CLASS)
    assert not lib.supports("foo", "gpu")
    assert lib.get("foo").fpga_resources["luts"] == 5


def test_library_duplicate_kind_rejected():
    lib = OperationLibrary()
    lib.define("foo", {DSP_CLASS: 1})
    with pytest.raises(ValueError):
        lib.define("foo", {DSP_CLASS: 2})


def test_library_unknown_kind_raises():
    lib = OperationLibrary()
    with pytest.raises(KeyError):
        lib.get("nope")


def test_spec_validation():
    with pytest.raises(ValueError):
        OperationSpec(kind="", cycles={DSP_CLASS: 1})
    with pytest.raises(ValueError):
        OperationSpec(kind="x", cycles={})
    with pytest.raises(ValueError):
        OperationSpec(kind="x", cycles={DSP_CLASS: -1})
    spec = OperationSpec(kind="x", cycles={DSP_CLASS: 5})
    with pytest.raises(KeyError):
        spec.cycles_on(FPGA_CLASS)


def test_default_library_covers_mccdma_kinds():
    lib = default_library()
    for kind in ("bit_source", "qpsk_mod", "qam16_mod", "spreader", "ifft64", "dac_sink"):
        assert kind in lib
    # FPGA faster than DSP on every shared streaming kind.
    for kind in ("qpsk_mod", "qam16_mod", "spreader", "ifft64"):
        assert lib.cycles(kind, FPGA_CLASS) < lib.cycles(kind, DSP_CLASS)
    # Modulators carry resource estimates (needed for Table 1).
    assert lib.get("qam16_mod").fpga_resources["luts"] > lib.get("qpsk_mod").fpga_resources["luts"]


def test_chain_graph_valid():
    g = chain_graph(5)
    validate_graph(g, default_library())
    assert len(g) == 5
    assert [o.name for o in g.sources()] == ["n0"]
    assert [o.name for o in g.sinks()] == ["n4"]


def test_chain_length_validation():
    with pytest.raises(ValueError):
        chain_graph(0)


def test_fork_join_graph_valid():
    g = fork_join_graph(4)
    validate_graph(g, default_library())
    assert len(g) == 6
    assert len(g.successors("src")) == 4


@settings(max_examples=20, deadline=None)
@given(
    layers=st.integers(min_value=2, max_value=6),
    width=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=10_000),
    density=st.floats(min_value=0.0, max_value=1.0),
)
def test_layered_random_graph_always_valid(layers, width, seed, density):
    g = layered_random_graph(layers, width, seed=seed, density=density)
    validate_graph(g, default_library())
    assert g.is_acyclic()
    assert len(g) == layers * width


def test_layered_random_graph_deterministic():
    g1 = layered_random_graph(4, 3, seed=7)
    g2 = layered_random_graph(4, 3, seed=7)
    assert [str(e) for e in g1.edges] == [str(e) for e in g2.edges]


def test_conditioned_chain_graph_valid():
    g = conditioned_chain_graph(5, 3)
    validate_graph(g, default_library())
    group = g.condition_groups["alt"]
    assert len(group.cases) == 3
    alts = group.operations
    assert g.exclusive(alts[0], alts[1])


def test_conditioned_chain_graph_validation():
    with pytest.raises(ValueError):
        conditioned_chain_graph(2, 2)
    with pytest.raises(ValueError):
        conditioned_chain_graph(5, 1)
