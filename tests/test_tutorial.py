"""Executable version of docs/tutorial.md — keeps the documentation honest."""

from repro.arch import sundance_board
from repro.dfg import AlgorithmGraph, CPLX16, WORD32
from repro.dfg.library import DSP_CLASS, FPGA_CLASS, default_library
from repro.flows import DesignFlow, SystemSimulation, parse_constraints


def build_video_design():
    lib = default_library()
    lib.define("pixel_source", {DSP_CLASS: 400})
    lib.define("blur3x3", {DSP_CLASS: 9_000, FPGA_CLASS: 300}, {"luts": 220, "ffs": 180})
    lib.define(
        "edge_enhance", {DSP_CLASS: 22_000, FPGA_CLASS: 700},
        {"luts": 640, "ffs": 420, "mults": 2},
    )
    lib.define("pixel_sink", {FPGA_CLASS: 60}, {"luts": 50, "ffs": 60})

    g = AlgorithmGraph("video")
    sel = g.add_operation("mode", "select_source")
    sel.add_output("value", WORD32, 1)
    src = g.add_operation("pixels", "pixel_source")
    src.add_output("o_blur", CPLX16, 64)
    src.add_output("o_edge", CPLX16, 64)
    blur = g.add_operation("blur", "blur3x3")
    blur.add_input("i", CPLX16, 64)
    blur.add_output("o", CPLX16, 64)
    edge = g.add_operation("edge", "edge_enhance")
    edge.add_input("i", CPLX16, 64)
    edge.add_output("o", CPLX16, 64)
    merge = g.add_operation("filtered", "cond_merge")
    merge.add_input("a", CPLX16, 64)
    merge.add_input("b", CPLX16, 64)
    merge.add_output("o", CPLX16, 64)
    sink = g.add_operation("display", "pixel_sink")
    sink.add_input("i", CPLX16, 64)
    g.connect(src, "o_blur", blur, "i")
    g.connect(src, "o_edge", edge, "i")
    g.connect(blur, "o", merge, "a")
    g.connect(edge, "o", merge, "b")
    g.connect(merge, "o", sink, "i")
    group = g.condition_group("filter", sel, "value")
    group.add_case("blur", [blur])
    group.add_case("edge", [edge])

    constraints = parse_constraints("""
[module blur]
region    = D1
operation = blur
loading   = startup

[module edge]
region    = D1
operation = edge

[region D1]
sharing   = true
exclusive = blur, edge
""")
    return g, lib, constraints


def test_tutorial_flow_and_runtime():
    g, lib, constraints = build_video_design()
    flow = DesignFlow(
        graph=g,
        board=sundance_board(),
        library=lib,
        dynamic_constraints=constraints,
        iteration_deadline_ns=10_000_000,
    )
    result = flow.run()
    assert result.meets_deadline
    assert result.modular.par_report.ok
    assert result.startup_modules() == {"D1": "blur"}
    assert {m for m in result.generated.variant_regions.values()} == {"D1"}

    plan = ["blur"] * 10 + ["edge"] * 10
    run = SystemSimulation(
        result, n_iterations=len(plan),
        selector_values={"filter": lambda it: plan[it]},
    ).run()
    # blur ships at startup: only the blur -> edge swap costs a load.
    assert run.switches == 1
    assert run.n_iterations == 20
    vcd = run.to_vcd()
    assert "In_Reconf.D1" in vcd


def test_tutorial_deadline_violation_raises():
    import pytest

    from repro.flows.flow import TimingConstraintError

    g, lib, constraints = build_video_design()
    flow = DesignFlow(
        graph=g, board=sundance_board(), library=lib,
        dynamic_constraints=constraints,
        iteration_deadline_ns=100,  # impossible
    )
    with pytest.raises(TimingConstraintError):
        flow.run()


def test_tutorial_telemetry_slos_and_bench_gate(tmp_path):
    """Section 11: telemetry windows, SLO breaches, the history gate."""
    from repro.obs import SloMonitor, SloRule, TimeSeriesStore, bench_check
    from repro.obs.history import HistoryEntry, append_entry
    from repro.runtime import FleetConfig, run_fleet

    config = FleetConfig(n_boards=8, requests_per_board=40, policy="lru", seed=2)
    store = TimeSeriesStore(window=5_000_000, clock="sim")
    report = run_fleet(config, engine="fast", telemetry=store)
    assert store.total("fleet.demands", policy="lru") == report.total_requests
    # digest parity: telemetry on or off, same fingerprint
    assert run_fleet(config, engine="fast").digest() == report.digest()

    monitor = SloMonitor(store, [
        SloRule(name="hit-rate-floor", series="fleet.hits", kind="floor",
                threshold=1.01, denominator="fleet.demands"),
    ])
    assert monitor.evaluate()  # an unsatisfiable floor must breach

    history = tmp_path / "HISTORY.jsonl"
    for value in (100.0, 101.0, 99.0, 80.0):  # last run regressed 20%
        append_entry(history, HistoryEntry(
            bench="fleet_throughput", metric="fast.requests_per_sec",
            value=value, higher_is_better=True, unit="req/s", smoke=False,
            recorded_at="2026-08-09T00:00:00+00:00",
        ))
    (verdict,) = bench_check(history, threshold_pct=10.0)
    assert verdict.status == "regression"
