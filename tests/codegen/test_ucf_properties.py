"""Property tests for UCF constraint generation."""

import re

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen import generate_ucf
from repro.fabric import Floorplan, XC2V2000, plan_bus_macros
from repro.fabric.floorplan import WIDTH_STEP_CLB

_RANGE_RE = re.compile(r'RANGE = SLICE_X(\d+)Y(\d+):SLICE_X(\d+)Y(\d+);')
_LOC_RE = re.compile(r'LOC = "SLICE_X(\d+)Y(\d+)"')


@settings(max_examples=30, deadline=None)
@given(
    width=st.integers(min_value=1, max_value=10).map(lambda w: w * WIDTH_STEP_CLB),
    offset=st.integers(min_value=0, max_value=40),
    bits_in=st.integers(min_value=1, max_value=64),
    bits_out=st.integers(min_value=1, max_value=64),
)
def test_ucf_ranges_consistent_with_placement(width, offset, bits_in, bits_out):
    device = XC2V2000
    col0 = min(offset, device.clb_cols - width)
    plan = Floorplan(device)
    plan.place("D1", col0, width)
    boundary = plan.boundary_column("D1")
    plan.bus_macros["D1"] = plan_bus_macros(device, "D1", boundary, bits_in, bits_out)
    ucf = generate_ucf(plan)

    # AREA_GROUP range covers exactly the placed columns, full height.
    m = _RANGE_RE.search(ucf)
    assert m, ucf
    x0, y0, x1, y1 = map(int, m.groups())
    assert x0 == 2 * col0
    assert x1 == 2 * (col0 + width) - 1
    assert y0 == 0
    assert y1 == 2 * device.clb_rows - 1

    # Every bus macro LOC straddles the dividing line and sits inside the device.
    locs = [(int(a), int(b)) for a, b in _LOC_RE.findall(ucf)]
    assert len(locs) == len(plan.bus_macros["D1"])
    for x, y in locs:
        assert x == 2 * boundary - 1
        assert 0 <= y <= 2 * device.clb_rows - 1
    # One RECONFIG mode statement per region.
    assert ucf.count("MODE = RECONFIG") == 1


@settings(max_examples=15, deadline=None)
@given(
    widths=st.lists(
        st.integers(min_value=1, max_value=4).map(lambda w: w * WIDTH_STEP_CLB),
        min_size=1,
        max_size=3,
    )
)
def test_ucf_multi_region_sections(widths):
    device = XC2V2000
    plan = Floorplan(device)
    col = 0
    names = []
    for i, width in enumerate(widths):
        if col + width > device.clb_cols:
            break
        name = f"R{i}"
        plan.place(name, col, width)
        names.append(name)
        col += width + 2  # leave static gaps
    ucf = generate_ucf(plan)
    for name in names:
        assert f'AREA_GROUP "AG_{name}"' in ucf
    assert ucf.count("MODE = RECONFIG") == len(names)
