"""Tests for VHDL generation, the constraints file and the checker."""

import pytest

from repro.aaa import MappingConstraints, ReconfigAwareScheduler, adequate
from repro.codegen import (
    VhdlCheckError,
    VhdlWriter,
    check_vhdl,
    generate_design,
    generate_ucf,
    lex_vhdl,
    vhdl_identifier,
)
from repro.codegen.checker import entity_ports
from repro.codegen.vhdl import Port, vector
from repro.fabric import Floorplan, XC2V2000, plan_bus_macros
from repro.mccdma.casestudy import build_mccdma_design


@pytest.fixture(scope="module")
def case_study_codegen():
    design = build_mccdma_design()
    mc = (
        MappingConstraints()
        .pin("mod_qpsk", "D1").pin("mod_qam16", "D1")
        .pin("bit_src", "DSP").pin("select", "DSP")
    )
    result = adequate(
        design.graph, design.board.architecture, design.library, constraints=mc,
        scheduler=ReconfigAwareScheduler, reconfig_ns={"D1": 4_000_000},
    )
    gen = generate_design(design.graph, result.schedule, design.board.architecture)
    return design, result, gen


def test_identifier_sanitization():
    assert vhdl_identifier("mod_qpsk") == "mod_qpsk"
    assert vhdl_identifier("a.b->c") == "a_b_c"
    assert vhdl_identifier("select") == "select_i"  # reserved word
    assert vhdl_identifier("3stage") == "s_3stage"


def test_vector_types():
    assert vector(1) == "std_logic"
    assert vector(8) == "std_logic_vector(7 downto 0)"
    with pytest.raises(ValueError):
        vector(0)


def test_writer_balanced_output():
    w = VhdlWriter()
    w.header("demo")
    w.entity("demo", [Port("clk", "in", "std_logic")])
    w.begin_architecture("rtl", "demo")
    w.declare_signal("x", "std_logic")
    w.begin_body()
    w.begin_process("p", ["clk"])
    w.line("x <= '0';")
    w.end_process("p")
    w.end_architecture("rtl")
    text = w.render()
    check_vhdl({"demo.vhd": text})  # no raise
    assert "entity demo is" in text


def test_writer_unbalanced_detected():
    w = VhdlWriter()
    w.begin_architecture("rtl", "demo")
    with pytest.raises(ValueError, match="unbalanced"):
        w.render()


def test_lexer_strips_comments_and_strings():
    toks = lex_vhdl('signal x : std_logic; -- comment with entity keyword\ny <= "1010";')
    words = [t.text for t in toks]
    assert "signal" in words and '"1010"' in words
    assert not any("comment" in t.text for t in toks if t.kind == "ident")


def test_checker_catches_unbalanced_process():
    bad = """
    entity e is end entity e;
    architecture a of e is begin
      p : process (clk)
      begin
        x <= '1';
    end architecture a;
    """
    with pytest.raises(VhdlCheckError, match="process"):
        check_vhdl({"bad.vhd": bad})


def test_checker_catches_unbalanced_parens():
    bad = "entity e is port ( x : in std_logic; end entity e;"
    with pytest.raises(VhdlCheckError, match="unclosed"):
        check_vhdl({"bad.vhd": bad})


def test_checker_catches_unknown_component():
    bad = """
    entity e is end entity e;
    architecture a of e is begin
      u0 : entity work.missing_thing port map (x => y);
    end architecture a;
    """
    with pytest.raises(VhdlCheckError, match="unknown entity"):
        check_vhdl({"bad.vhd": bad})


def test_case_study_generates_expected_modules(case_study_codegen):
    _, _, gen = case_study_codegen
    names = gen.file_names()
    assert "static_f1.vhd" in names
    assert "dyn_d1_mod_qpsk.vhd" in names
    assert "dyn_d1_mod_qam16.vhd" in names
    assert "bus_macro.vhd" in names and "top.vhd" in names
    assert gen.variant_regions["dyn_D1_mod_qpsk"] == "D1"
    assert gen.module_ops["dyn_D1_mod_qpsk"] == ["mod_qpsk"]
    # The static module implements the whole streaming pipeline.
    for op in ("spreader", "ifft", "cyclic_prefix", "framer", "dac"):
        assert op in gen.module_ops["static_F1"]


def test_generated_vhdl_passes_structure_check(case_study_codegen):
    _, _, gen = case_study_codegen
    check_vhdl(gen.files)  # raises on any structural problem


def test_dynamic_variants_share_identical_pinout(case_study_codegen):
    """Any variant must drop into the region: identical entity ports."""
    _, _, gen = case_study_codegen
    qpsk_ports = entity_ports(gen.files["dyn_d1_mod_qpsk.vhd"], "dyn_D1_mod_qpsk")
    qam_ports = entity_ports(gen.files["dyn_d1_mod_qam16.vhd"], "dyn_D1_mod_qam16")
    normalize = lambda ports: sorted(
        (n.replace("qam16", "X").replace("qpsk", "X"), d) for n, d in ports
    )
    assert normalize(qpsk_ports) == normalize(qam_ports)


def test_dynamic_variant_has_reconfig_interface(case_study_codegen):
    _, _, gen = case_study_codegen
    text = gen.files["dyn_d1_mod_qpsk.vhd"]
    assert "in_reconf" in text
    assert "reconf_req" in text
    assert "lock up" in text  # the In_Reconf lock-up logic comment


def test_static_part_has_sequencer_processes(case_study_codegen):
    _, _, gen = case_study_codegen
    text = gen.files["static_f1.vhd"]
    assert "comp_seq : process" in text
    assert "comm_seq : process" in text
    assert "st_ifft" in text  # a state per operation


def test_generated_entities_have_clk_rst(case_study_codegen):
    _, _, gen = case_study_codegen
    for fname in ("static_f1.vhd", "dyn_d1_mod_qpsk.vhd"):
        ports = dict(entity_ports(gen.files[fname], fname[:-4]))
        assert ports.get("clk") == "in"
        assert ports.get("rst") == "in"


def test_ucf_generation():
    plan = Floorplan(XC2V2000)
    plan.place("D1", 44, 4)
    plan.bus_macros["D1"] = plan_bus_macros(XC2V2000, "D1", 44, 16, 16)
    ucf = generate_ucf(plan)
    assert 'AREA_GROUP "AG_D1" RANGE = SLICE_X88Y0:SLICE_X95Y111;' in ucf
    assert 'MODE = RECONFIG' in ucf
    assert ucf.count("LOC =") == len(plan.bus_macros["D1"])
    # Bus macros straddle the dividing column (slice X87 is left of column 44).
    assert 'LOC = "SLICE_X87Y0"' in ucf


def test_generate_operator_requires_scheduled_ops():
    from repro.codegen import generate_operator_vhdl
    design = build_mccdma_design()
    result = adequate(
        design.graph, design.board.architecture, design.library,
        constraints=MappingConstraints().pin("mod_qpsk", "F1").pin("mod_qam16", "F1"),
    )
    d1 = design.board.architecture.operator("D1")
    with pytest.raises(ValueError, match="no scheduled operations"):
        generate_operator_vhdl(design.graph, result.schedule, d1)
