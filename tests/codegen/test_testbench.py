"""Tests for generated VHDL testbenches."""

import pytest

from repro.aaa import MappingConstraints, ReconfigAwareScheduler, adequate
from repro.codegen import check_vhdl, generate_design
from repro.codegen.checker import entity_ports
from repro.codegen.testbench import generate_all_testbenches, generate_testbench
from repro.mccdma.casestudy import build_mccdma_design


@pytest.fixture(scope="module")
def generated():
    design = build_mccdma_design()
    mc = (
        MappingConstraints()
        .pin("mod_qpsk", "D1").pin("mod_qam16", "D1")
        .pin("bit_src", "DSP").pin("select", "DSP")
    )
    result = adequate(
        design.graph, design.board.architecture, design.library, constraints=mc,
        scheduler=ReconfigAwareScheduler, reconfig_ns={"D1": 4_000_000},
    )
    return generate_design(design.graph, result.schedule, design.board.architecture)


def test_testbench_for_dynamic_variant(generated):
    text = generated.files["dyn_d1_mod_qpsk.vhd"]
    tb = generate_testbench(text, "dyn_D1_mod_qpsk")
    # The testbench + DUT together pass the structural check.
    check_vhdl({"dut.vhd": text, "tb.vhd": tb})
    assert "dut : entity work.dyn_D1_mod_qpsk" in tb
    assert "watchdog" in tb
    # in_reconf driven low so the FSM leaves idle.
    assert "s_in_reconf <= '0';" in tb


def test_testbench_drives_every_input(generated):
    text = generated.files["static_f1.vhd"]
    tb = generate_testbench(text, "static_F1")
    for name, direction in entity_ports(text, "static_F1"):
        if direction == "in" and name not in ("clk", "rst"):
            assert f"s_{name} <=" in tb, f"input {name} not driven"


def test_all_testbenches_generated_and_check(generated):
    benches = generate_all_testbenches(generated.files)
    # One per module file except top and bus_macro.
    expected = {f"tb_{n[:-4]}.vhd" for n in generated.files if n not in ("top.vhd", "bus_macro.vhd")}
    assert set(benches) == expected
    check_vhdl({**generated.files, **benches})


def test_testbench_requires_ports():
    with pytest.raises(ValueError, match="no ports"):
        generate_testbench("entity empty is end entity empty;", "empty")
