"""Executes the README's quickstart code block — documentation stays honest."""

import pathlib
import re

README = pathlib.Path(__file__).parent.parent / "README.md"


def extract_first_python_block(text: str) -> str:
    m = re.search(r"```python\n(.*?)```", text, re.DOTALL)
    assert m, "README has no python code block"
    return m.group(1)


def test_readme_quickstart_runs(capsys):
    code = extract_first_python_block(README.read_text())
    namespace: dict = {}
    exec(compile(code, str(README), "exec"), namespace)  # noqa: S102 - our own docs
    out = capsys.readouterr().out
    # The quickstart prints the flow report, UCF, macro-code and runtime summary.
    assert "Design flow report" in out
    assert "AREA_GROUP" in out
    assert "loop_" in out
    assert "runtime[" in out


def test_readme_mentions_all_examples():
    text = README.read_text()
    for example in pathlib.Path("examples").glob("*.py"):
        assert example.name in text, f"README does not mention {example.name}"
