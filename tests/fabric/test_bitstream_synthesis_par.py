"""Tests for bitstream generation, synthesis estimation and PAR checks."""

import pytest

from repro.dfg import Operation
from repro.dfg.library import default_library
from repro.fabric import (
    Bitstream,
    BitstreamError,
    Netlist,
    NetlistModule,
    PlaceAndRoute,
    PortSpec,
    ResourceVector,
    Synthesizer,
    XC2V2000,
    generate_full_bitstream,
    generate_partial_bitstream,
)
from repro.fabric.floorplan import Floorplan, ModulePlacement
from repro.fabric.netlist import NetlistPort
from repro.fabric.synthesis import SynthesisError


PLACEMENT = ModulePlacement("D1", 44, 4)


def test_partial_bitstream_size_consistent_with_device_model():
    bs = generate_partial_bitstream(XC2V2000, PLACEMENT, "qpsk")
    expected = XC2V2000.partial_bitstream_bits(44, 4)
    # Byte-quantized frames may add a little slack, never remove data.
    assert bs.size_bits >= expected
    assert bs.size_bits < expected * 1.05


def test_partial_bitstream_deterministic():
    a = generate_partial_bitstream(XC2V2000, PLACEMENT, "qpsk")
    b = generate_partial_bitstream(XC2V2000, PLACEMENT, "qpsk")
    assert a.crc == b.crc
    assert [f.payload for f in a.frames] == [f.payload for f in b.frames]


def test_partial_bitstreams_differ_by_module():
    a = generate_partial_bitstream(XC2V2000, PLACEMENT, "qpsk")
    b = generate_partial_bitstream(XC2V2000, PLACEMENT, "qam16")
    assert a.crc != b.crc


def test_crc_detects_corruption():
    bs = generate_partial_bitstream(XC2V2000, PLACEMENT, "qpsk")
    assert bs.verify_crc()
    bad = bs.corrupted(frame_index=3)
    assert not bad.verify_crc()


def test_corrupted_frame_index_validated():
    bs = generate_partial_bitstream(XC2V2000, PLACEMENT, "qpsk")
    with pytest.raises(IndexError):
        bs.corrupted(frame_index=10**6)


def test_frame_addresses_cover_span():
    bs = generate_partial_bitstream(XC2V2000, PLACEMENT, "qpsk")
    majors = {f.major for f in bs.frames if f.block == 0}
    assert majors == set(range(44, 48))


def test_words_stream_structure():
    bs = generate_partial_bitstream(XC2V2000, PLACEMENT, "qpsk")
    words = list(bs.words())
    assert words[0] == 0xAA995566  # sync word first
    assert words[-1] == bs.crc & 0xFFFFFFFF


def test_empty_bitstream_rejected():
    with pytest.raises(BitstreamError):
        Bitstream("xc2v2000", "m", frames=[], header_bits=0)


def test_full_bitstream_larger_than_partial():
    full = generate_full_bitstream(XC2V2000, "design")
    part = generate_partial_bitstream(XC2V2000, PLACEMENT, "qpsk")
    assert full.size_bits > 5 * part.size_bits
    assert not full.partial


def make_ops(*kinds):
    return [Operation(f"op{i}", k) for i, k in enumerate(kinds)]


def test_synthesizer_datapath_sums_library_estimates():
    lib = default_library()
    syn = Synthesizer(lib)
    dp = syn.datapath_of(make_ops("qpsk_mod", "spreader"))
    exp_luts = lib.get("qpsk_mod").fpga_resources["luts"] + lib.get("spreader").fpga_resources["luts"]
    assert dp.luts == exp_luts


def test_synthesizer_rejects_dsp_only_kind():
    syn = Synthesizer(default_library())
    with pytest.raises(SynthesisError, match="no FPGA implementation"):
        syn.datapath_of(make_ops("bit_source"))


def test_dynamic_variant_costs_more_than_fixed_block():
    """Core of Table 1: the reconfigurable variant of the QPSK modulator
    uses more resources than the same datapath inside a fixed design."""
    syn = Synthesizer(default_library())
    ports = [PortSpec("din", 16, "in"), PortSpec("dout", 16, "out")]
    fixed, _ = syn.synthesize_module("qpsk_fixed", make_ops("qpsk_mod"), ports)
    dyn, _ = syn.synthesize_module(
        "qpsk_dyn", make_ops("qpsk_mod"), ports, reconfigurable=True, region="D1"
    )
    assert dyn.resources.luts > fixed.resources.luts
    assert dyn.resources.ffs > fixed.resources.ffs
    assert dyn.resources.slices > fixed.resources.slices


def test_buffer_mapping_bram_vs_lutram():
    syn = Synthesizer(default_library())
    small = syn.buffers_of(64)
    large = syn.buffers_of(4096)
    assert small.brams == 0 and small.luts > 0
    assert large.brams == 2 and large.luts == 0
    assert syn.buffers_of(0).is_zero
    with pytest.raises(SynthesisError):
        syn.buffers_of(-1)


def test_synthesis_report_renders():
    syn = Synthesizer(default_library())
    _, report = syn.synthesize_module(
        "mod", make_ops("qam16_mod"), [PortSpec("d", 16, "in")], buffer_bytes=1024,
        reconfigurable=True, region="D1",
    )
    text = report.render(XC2V2000.capacity())
    assert "datapath" in text and "utilization" in text and "reconfigurable" in text


def build_checked_design():
    lib = default_library()
    syn = Synthesizer(lib)
    nl = Netlist("top")
    ports = [PortSpec("din", 16, "in"), PortSpec("dout", 16, "out")]
    static, _ = syn.synthesize_module(
        "static", make_ops("spreader", "ifft64", "cyclic_prefix"), ports, buffer_bytes=2048
    )
    nl.add_module(static)
    for name, kind in (("qpsk", "qpsk_mod"), ("qam16", "qam16_mod")):
        mod, _ = syn.synthesize_module(name, make_ops(kind), ports, reconfigurable=True, region="D1")
        nl.add_module(mod)
    nl.connect("static", "dout", "qpsk", "din")
    nl.connect("qpsk", "dout", "static", "din")
    return nl


def test_par_check_passes_on_planned_design():
    from repro.fabric import Floorplanner

    nl = build_checked_design()
    plan = Floorplanner(XC2V2000).plan(nl)
    report = PlaceAndRoute(plan, nl).check()
    assert report.ok, report.problems
    assert 25.0 <= report.clock_mhz <= 66.0
    assert "<static>" in report.module_utilization


def test_par_detects_unplaced_region():
    nl = build_checked_design()
    plan = Floorplan(XC2V2000)  # nothing placed
    report = PlaceAndRoute(plan, nl).check()
    assert not report.ok
    assert any("no placement" in p for p in report.problems)


def test_par_detects_overflowing_variant():
    from repro.fabric import Floorplanner

    nl = build_checked_design()
    plan = Floorplanner(XC2V2000).plan(nl)
    # Add a monster variant after planning.
    nl.add_module(
        NetlistModule(
            name="huge",
            resources=ResourceVector(slices=5000, luts=9000, ffs=9000),
            ports=[NetlistPort("din", 16, "in"), NetlistPort("dout", 16, "out")],
            reconfigurable=True,
            region="D1",
        )
    )
    report = PlaceAndRoute(plan, nl).check()
    assert not report.ok
    assert any("exceeds region" in p for p in report.problems)


def test_par_detects_missing_bus_macros():
    nl = build_checked_design()
    plan = Floorplan(XC2V2000)
    plan.place("D1", 44, 4)  # no bus macros planned
    report = PlaceAndRoute(plan, nl).check()
    assert not report.ok
    assert any("bus macros carry" in p for p in report.problems)


def test_par_report_renders():
    from repro.fabric import Floorplanner

    nl = build_checked_design()
    plan = Floorplanner(XC2V2000).plan(nl)
    text = PlaceAndRoute(plan, nl).check().render()
    assert "PAR check PASSED" in text
