"""Tests for the modular floorplanner."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric import (
    Floorplan,
    FloorplanError,
    Floorplanner,
    Netlist,
    NetlistModule,
    ResourceVector,
    XC2V2000,
)
from repro.fabric.floorplan import MIN_WIDTH_CLB, WIDTH_STEP_CLB
from repro.fabric.netlist import NetlistPort


def region_variant(name, region, luts=500, ffs=400, brams=0, width_bits=16):
    return NetlistModule(
        name=name,
        resources=ResourceVector(slices=-(-max(luts, ffs) // 2), luts=luts, ffs=ffs, brams=brams),
        ports=[NetlistPort("din", width_bits, "in"), NetlistPort("dout", width_bits, "out")],
        reconfigurable=True,
        region=region,
    )


def static_module(luts=2000, ffs=1500):
    return NetlistModule(
        name="static",
        resources=ResourceVector(slices=-(-max(luts, ffs) // 2), luts=luts, ffs=ffs),
        ports=[NetlistPort("dout", 16, "out"), NetlistPort("din", 16, "in")],
    )


def one_region_netlist():
    nl = Netlist("top")
    nl.add_module(static_module())
    nl.add_module(region_variant("qpsk", "D1", luts=400, ffs=350))
    nl.add_module(region_variant("qam16", "D1", luts=700, ffs=500))
    nl.connect("static", "dout", "qpsk", "din")
    nl.connect("qpsk", "dout", "static", "din")
    return nl


def test_place_enforces_min_width():
    plan = Floorplan(XC2V2000)
    with pytest.raises(FloorplanError, match="4-slice minimum"):
        plan.place("D1", 0, 1)


def test_place_enforces_width_step():
    plan = Floorplan(XC2V2000)
    with pytest.raises(FloorplanError, match="multiple of 4 slices"):
        plan.place("D1", 0, 3)


def test_place_enforces_bounds_and_overlap():
    plan = Floorplan(XC2V2000)
    plan.place("D1", 44, 4)
    with pytest.raises(FloorplanError, match="outside"):
        plan.place("D2", 46, 4)
    with pytest.raises(FloorplanError, match="overlaps"):
        plan.place("D2", 42, 4)
    with pytest.raises(FloorplanError, match="already placed"):
        plan.place("D1", 0, 2)


def test_static_columns_and_capacity():
    plan = Floorplan(XC2V2000)
    plan.place("D1", 44, 4)
    static_cols = plan.static_columns()
    assert len(static_cols) == 44
    assert 44 not in static_cols
    cap = plan.static_capacity()
    assert cap.slices == 44 * 56 * 4


def test_boundary_column_right_edge_region():
    plan = Floorplan(XC2V2000)
    plan.place("D1", 44, 4)  # touches right edge
    assert plan.boundary_column("D1") == 44


def test_boundary_column_left_edge_region():
    plan = Floorplan(XC2V2000)
    plan.place("D1", 0, 4)
    assert plan.boundary_column("D1") == 4


def test_area_and_bitstream_queries():
    plan = Floorplan(XC2V2000)
    plan.place("D1", 44, 4)
    assert plan.area_fraction("D1") == pytest.approx(4 / 48)
    assert plan.partial_bitstream_bytes("D1") == XC2V2000.partial_bitstream_bytes(44, 4)


def test_floorplanner_places_one_region():
    nl = one_region_netlist()
    plan = Floorplanner(XC2V2000).plan(nl)
    p = plan.placements["D1"]
    assert p.width >= MIN_WIDTH_CLB
    assert p.width % WIDTH_STEP_CLB == 0
    # Worst variant (qam16, with margin) must fit the span.
    worst = nl.module("qam16").resources.scaled(1.10)
    assert worst.fits_in(plan.region_capacity("D1"))
    # Bus macros cover the boundary bits (32 total).
    carried = sum(m.data_bits for m in plan.bus_macros["D1"])
    assert carried >= 32


def test_floorplanner_paper_sizing_lands_near_8_percent():
    """With the case-study-scale variants, the region should be a narrow
    strip (<= ~12% of the device), like the paper's 8%."""
    plan = Floorplanner(XC2V2000).plan(one_region_netlist())
    assert plan.area_fraction("D1") <= 0.125


def test_floorplanner_two_regions_disjoint():
    nl = one_region_netlist()
    nl.add_module(region_variant("fft_a", "D2", luts=900, ffs=700, brams=2))
    nl.add_module(region_variant("fft_b", "D2", luts=800, ffs=650, brams=3))
    plan = Floorplanner(XC2V2000).plan(nl)
    p1, p2 = plan.placements["D1"], plan.placements["D2"]
    assert not p1.overlaps(p2)
    # BRAM requirement honoured.
    assert plan.region_capacity("D2").brams >= 3


def test_floorplanner_rejects_oversized_variant():
    nl = one_region_netlist()
    nl.add_module(region_variant("huge", "D1", luts=30_000, ffs=30_000))
    with pytest.raises(FloorplanError):
        Floorplanner(XC2V2000).plan(nl)


def test_floorplanner_rejects_oversized_static():
    nl = Netlist("top")
    nl.add_module(static_module(luts=21_000, ffs=21_000))
    nl.add_module(region_variant("a", "D1"))
    nl.add_module(region_variant("b", "D1"))
    with pytest.raises(FloorplanError, match="static"):
        Floorplanner(XC2V2000).plan(nl)


def test_floorplanner_margin_validation():
    with pytest.raises(ValueError):
        Floorplanner(XC2V2000, margin=0.5)


def test_summary_text():
    plan = Floorplanner(XC2V2000).plan(one_region_netlist())
    text = plan.summary()
    assert "D1" in text and "bus macros" in text and "static part" in text


@settings(max_examples=25, deadline=None)
@given(
    luts_a=st.integers(min_value=50, max_value=4000),
    luts_b=st.integers(min_value=50, max_value=4000),
    bits=st.integers(min_value=1, max_value=64),
)
def test_floorplanner_invariants_property(luts_a, luts_b, bits):
    """Whatever the variant sizes, a produced plan obeys the modular rules."""
    nl = Netlist("top")
    nl.add_module(static_module())
    nl.add_module(region_variant("va", "D1", luts=luts_a, ffs=luts_a, width_bits=bits))
    nl.add_module(region_variant("vb", "D1", luts=luts_b, ffs=luts_b, width_bits=bits))
    nl.connect("static", "dout", "va", "din") if bits == 16 else None
    plan = Floorplanner(XC2V2000).plan(nl)
    p = plan.placements["D1"]
    assert p.width % WIDTH_STEP_CLB == 0 and p.width >= MIN_WIDTH_CLB
    assert 0 <= p.col0 and p.col_end <= XC2V2000.clb_cols
    worst_luts = max(luts_a, luts_b)
    assert plan.region_capacity("D1").luts >= worst_luts
