"""Tests for bus-macro boundary pricing: monotone in crossing count,
heterogeneous-column premium on BRAM columns."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric import XC2V1000, XC2V2000, boundary_cost
from repro.fabric.busmacro import (
    BITS_PER_MACRO,
    HETEROGENEOUS_PREMIUM_NS,
    MACRO_DELAY_NS,
    TBUFS_PER_MACRO,
    BusMacroError,
    macros_needed,
)


def plain_column(device=XC2V2000):
    """An internal column that is not a BRAM column."""
    for col in range(1, device.clb_cols):
        if col not in device.bram_cols:
            return col
    raise AssertionError("device has no homogeneous internal column")


def test_zero_bits_cost_nothing():
    cost = boundary_cost(XC2V2000, plain_column(), 0, 0)
    assert cost.macros == 0
    assert cost.cost_ns == 0
    assert cost.tbufs == 0


def test_cost_counts_both_directions():
    cost = boundary_cost(XC2V2000, plain_column(), 8, 8)
    assert cost.macros == macros_needed(8) + macros_needed(8)
    assert cost.cost_ns == cost.macros * MACRO_DELAY_NS
    assert cost.tbufs == cost.macros * TBUFS_PER_MACRO


@settings(max_examples=60, deadline=None)
@given(
    bits=st.integers(min_value=0, max_value=512),
    extra=st.integers(min_value=1, max_value=512),
)
def test_cost_is_monotone_in_crossing_bits(bits, extra):
    """Satellite property: more crossing bits never cost less."""
    column = plain_column()
    narrow = boundary_cost(XC2V2000, column, bits, bits)
    wider_in = boundary_cost(XC2V2000, column, bits + extra, bits)
    wider_out = boundary_cost(XC2V2000, column, bits, bits + extra)
    assert wider_in.cost_ns >= narrow.cost_ns
    assert wider_out.cost_ns >= narrow.cost_ns
    assert wider_in.macros >= narrow.macros


def test_cost_steps_at_macro_granularity():
    column = plain_column()
    one = boundary_cost(XC2V2000, column, BITS_PER_MACRO, 0)
    same = boundary_cost(XC2V2000, column, 1, 0)
    more = boundary_cost(XC2V2000, column, BITS_PER_MACRO + 1, 0)
    assert one.macros == same.macros == 1
    assert more.macros == 2
    assert more.cost_ns == 2 * MACRO_DELAY_NS


def test_heterogeneous_column_pays_the_premium():
    bram_col = XC2V2000.bram_cols[1]
    assert 0 < bram_col < XC2V2000.clb_cols
    hetero = boundary_cost(XC2V2000, bram_col, 32, 32)
    homo = boundary_cost(XC2V2000, plain_column(), 32, 32)
    assert hetero.heterogeneous and not homo.heterogeneous
    assert hetero.macros == homo.macros
    assert hetero.cost_ns == homo.cost_ns + hetero.macros * HETEROGENEOUS_PREMIUM_NS
    assert hetero.cost_ns > homo.cost_ns


def test_premium_applies_on_every_device():
    for device in (XC2V1000, XC2V2000):
        bram_col = next(c for c in device.bram_cols if 0 < c < device.clb_cols)
        cost = boundary_cost(device, bram_col, 16, 16)
        assert cost.heterogeneous
        assert cost.cost_ns == cost.macros * (MACRO_DELAY_NS + HETEROGENEOUS_PREMIUM_NS)


def test_monotonicity_holds_across_the_heterogeneous_premium():
    """Even on a premium column, pricing stays monotone in bits."""
    bram_col = XC2V2000.bram_cols[0]
    costs = [boundary_cost(XC2V2000, bram_col, bits, 0).cost_ns for bits in range(0, 256, 8)]
    assert costs == sorted(costs)


def test_non_internal_columns_rejected():
    with pytest.raises(BusMacroError, match="not internal"):
        boundary_cost(XC2V2000, 0, 8, 8)
    with pytest.raises(BusMacroError, match="not internal"):
        boundary_cost(XC2V2000, XC2V2000.clb_cols, 8, 8)


def test_negative_bits_rejected():
    with pytest.raises(ValueError, match=">= 0"):
        boundary_cost(XC2V2000, plain_column(), -1, 8)
