"""Tests for configuration word-stream construction and parsing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric import XC2V2000, generate_partial_bitstream
from repro.fabric.bitstream import BitstreamError, SYNC_WORD, parse_word_stream
from repro.fabric.floorplan import ModulePlacement
from repro.reconfig import BitstreamStore, ICAP_V2, ProtocolConfigurationBuilder
from repro.reconfig.protocol import ProtocolError
from repro.sim import Simulator


def make_stream(module="qpsk", col0=44, width=4):
    bs = generate_partial_bitstream(XC2V2000, ModulePlacement("D1", col0, width), module)
    frame_payload_words = -(-(-(-XC2V2000.frame_bits // 8)) // 4)
    return bs, list(bs.words()), frame_payload_words


def test_stream_roundtrip():
    bs, words, fpw = make_stream()
    parsed = parse_word_stream(words, fpw)
    assert parsed["crc"] == bs.crc & 0xFFFFFFFF
    assert len(parsed["addresses"]) == len(bs.frames)
    # Addresses decode back to the module's column span.
    majors = {(a >> 17) & 0xFF for a in parsed["addresses"] if (a >> 25) == 0}
    assert majors == set(range(44, 48))


def test_stream_requires_sync_word():
    _, words, fpw = make_stream()
    with pytest.raises(BitstreamError, match="sync"):
        parse_word_stream(words[1:], fpw)
    with pytest.raises(BitstreamError, match="empty"):
        parse_word_stream([], fpw)


def test_stream_detects_truncation():
    _, words, fpw = make_stream()
    with pytest.raises(BitstreamError, match="truncated"):
        parse_word_stream(words[:-10], fpw)


def test_stream_detects_malformed_address():
    _, words, fpw = make_stream()
    # Find the first frame-address word (after sync + command words) and
    # corrupt its reserved low bits.
    idx = 1
    while (words[idx] >> 28) == 0x3:
        idx += 1
    corrupted = list(words)
    corrupted[idx] |= 0x1
    with pytest.raises(BitstreamError, match="malformed frame address"):
        parse_word_stream(corrupted, fpw)


def test_builder_build_stream():
    sim = Simulator()
    store = BitstreamStore()
    bs, _, fpw = make_stream("qam16")
    store.register("D1", "qam16", bs)
    store.register("D1", "size_only", 1_000)
    builder = ProtocolConfigurationBuilder(sim, ICAP_V2, store)
    words = builder.build_stream("D1", "qam16")
    assert words[0] == SYNC_WORD
    parsed = parse_word_stream(words, fpw)
    assert parsed["crc"] == bs.crc & 0xFFFFFFFF
    with pytest.raises(ProtocolError, match="only the size"):
        builder.build_stream("D1", "size_only")


@settings(max_examples=15, deadline=None)
@given(
    col0=st.integers(min_value=0, max_value=44),
    width=st.integers(min_value=1, max_value=4),
    name=st.text(alphabet="abcdefgh", min_size=1, max_size=8),
)
def test_stream_roundtrip_property(col0, width, name):
    bs = generate_partial_bitstream(XC2V2000, ModulePlacement("D1", col0, width), name)
    fpw = -(-(-(-XC2V2000.frame_bits // 8)) // 4)
    parsed = parse_word_stream(list(bs.words()), fpw)
    assert len(parsed["addresses"]) == len(bs.frames)
    assert parsed["crc"] == bs.crc & 0xFFFFFFFF
