"""Tests for the power/energy model."""

import pytest

from repro.fabric import ResourceVector
from repro.fabric.power import PowerModel


def test_validation():
    with pytest.raises(ValueError):
        PowerModel(clock_mhz=0)
    with pytest.raises(ValueError):
        PowerModel(clock_mhz=50, activity=0.0)
    model = PowerModel(50.0)
    with pytest.raises(ValueError):
        model.reconfiguration_energy_uj(-1)
    with pytest.raises(ValueError):
        model.interval_energy(ResourceVector(), ResourceVector(), -1)


def test_static_power_scales_with_configured_slices():
    model = PowerModel(50.0)
    small = model.static_mw(ResourceVector(slices=100))
    large = model.static_mw(ResourceVector(slices=1000))
    assert large > small > model.static_mw(ResourceVector()) - 1e-9
    # Linear in slices above the base.
    base = model.static_mw(ResourceVector())
    assert (large - base) == pytest.approx(10 * (small - base))


def test_dynamic_power_scales_with_clock_and_activity():
    active = ResourceVector(slices=500, brams=2, mults=1)
    slow = PowerModel(25.0).dynamic_mw(active)
    fast = PowerModel(50.0).dynamic_mw(active)
    assert fast == pytest.approx(2 * slow)
    lazy = PowerModel(50.0, activity=0.1).dynamic_mw(active)
    busy = PowerModel(50.0, activity=0.2).dynamic_mw(active)
    assert busy == pytest.approx(2 * lazy)


def test_reconfiguration_energy():
    model = PowerModel(50.0)
    # 4 ms at 180 mW = 720 uJ.
    assert model.reconfiguration_energy_uj(4_000_000) == pytest.approx(720.0)
    assert model.reconfiguration_energy_uj(0) == 0.0


def test_interval_energy_breakdown():
    model = PowerModel(50.0)
    configured = ResourceVector(slices=1000)
    active = ResourceVector(slices=400)
    e = model.interval_energy(configured, active, duration_ns=10_000_000,
                              n_reconfigs=2, reconfig_ns=4_000_000)
    assert e.static_uj == pytest.approx(model.static_mw(configured) * 10.0)
    assert e.dynamic_uj == pytest.approx(model.dynamic_mw(active) * 10.0)
    assert e.reconfig_uj == pytest.approx(2 * 720.0)
    assert e.total_uj == pytest.approx(e.static_uj + e.dynamic_uj + e.reconfig_uj)
    assert "uJ" in e.render()


def test_dynamic_scheme_leaks_less_than_fixed_with_many_alternatives():
    """The §2 motivation: the fixed design configures every alternative and
    leaks through all of them; the dynamic region holds one at a time."""
    model = PowerModel(50.0)
    variant = ResourceVector(slices=260)
    n_alternatives = 4
    fixed_configured = ResourceVector(slices=variant.slices * n_alternatives)
    dynamic_configured = ResourceVector(slices=300)  # one variant + harness
    assert model.static_mw(dynamic_configured) < model.static_mw(fixed_configured)
