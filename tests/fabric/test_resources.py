"""Tests for resource vectors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fabric import ResourceVector

small_ints = st.integers(min_value=0, max_value=10_000)
vectors = st.builds(
    ResourceVector,
    slices=small_ints,
    luts=small_ints,
    ffs=small_ints,
    tbufs=small_ints,
    brams=small_ints,
    mults=small_ints,
)


def test_construction_rejects_negative():
    with pytest.raises(ValueError):
        ResourceVector(luts=-1)


def test_construction_rejects_float():
    with pytest.raises(TypeError):
        ResourceVector(luts=1.5)  # type: ignore[arg-type]


def test_from_mapping_rejects_unknown_keys():
    with pytest.raises(KeyError):
        ResourceVector.from_mapping({"luts": 1, "gpus": 2})


def test_add_sub_roundtrip():
    a = ResourceVector(luts=10, ffs=5, brams=1)
    b = ResourceVector(luts=3, ffs=2)
    assert (a + b) - b == a


def test_sub_underflow_rejected():
    a = ResourceVector(luts=1)
    b = ResourceVector(luts=2)
    with pytest.raises(ValueError):
        _ = a - b


def test_fits_in():
    need = ResourceVector(luts=100, brams=2)
    cap = ResourceVector(slices=60, luts=120, ffs=120, brams=2)
    assert need.fits_in(cap)
    assert not cap.fits_in(need)


def test_utilization_and_dominant():
    need = ResourceVector(luts=50, brams=1)
    cap = ResourceVector(luts=100, ffs=100, brams=2)
    util = need.utilization(cap)
    assert util["luts"] == pytest.approx(0.5)
    assert util["brams"] == pytest.approx(0.5)
    assert util["slices"] == 0.0  # zero capacity -> 0, not NaN
    assert need.dominant_utilization(cap) == pytest.approx(0.5)


def test_scaled_rounds_up():
    v = ResourceVector(luts=10)
    assert v.scaled(1.01).luts == 11
    assert v.scaled(1.0).luts == 10


def test_headroom_signs():
    need = ResourceVector(luts=10)
    cap = ResourceVector(luts=8, ffs=5)
    head = need.headroom(cap)
    assert head["luts"] == -2
    assert head["ffs"] == 5


def test_sum_and_zero():
    vs = [ResourceVector(luts=i) for i in range(5)]
    assert ResourceVector.sum(vs).luts == 10
    assert ResourceVector().is_zero
    assert not ResourceVector(ffs=1).is_zero


@given(a=vectors, b=vectors)
def test_addition_commutative(a, b):
    assert a + b == b + a


@given(a=vectors, b=vectors)
def test_fits_monotone_under_addition(a, b):
    assert a.fits_in(a + b)


@given(v=vectors)
def test_scaled_identity(v):
    assert v.scaled(1.0) == v


@given(v=vectors, factor=st.floats(min_value=1.0, max_value=3.0))
def test_scaled_never_shrinks(v, factor):
    s = v.scaled(factor)
    assert v.fits_in(s)
