"""Tests for the Virtex-II device model."""

import pytest

from repro.fabric import XC2V1000, XC2V2000, XC2V3000, device_by_name
from repro.fabric.device import FRAMES_PER_CLB_COLUMN, VirtexIIDevice


def test_xc2v2000_datasheet_capacity():
    """The paper's device: 56x48 CLBs -> 10752 slices, 21504 LUT/FF, 56 BRAM."""
    d = XC2V2000
    assert d.slices == 10_752
    assert d.luts == 21_504
    assert d.ffs == 21_504
    assert d.brams == 56
    assert d.mults == 56
    assert d.full_bitstream_bits == 8_391_936


def test_catalog_lookup():
    assert device_by_name("XC2V2000") is XC2V2000
    assert device_by_name("xc2v1000") is XC2V1000
    with pytest.raises(KeyError):
        device_by_name("xc7z020")


def test_capacity_vector_consistent():
    cap = XC2V2000.capacity()
    assert cap.slices == XC2V2000.slices
    assert cap.brams == 56


def test_column_span_capacity():
    # 4 columns full height: 56*4 CLBs = 224 CLBs = 896 slices.
    span = XC2V2000.column_span_capacity(44, 4)
    assert span.slices == 896
    assert span.luts == 1792
    assert span.tbufs == 896


def test_column_span_includes_bram_columns():
    total_brams = sum(
        XC2V2000.column_span_capacity(c, 1).brams for c in range(XC2V2000.clb_cols)
    )
    assert total_brams == XC2V2000.brams


def test_column_span_validation():
    with pytest.raises(ValueError):
        XC2V2000.column_span_capacity(46, 4)  # runs off the edge
    with pytest.raises(ValueError):
        XC2V2000.column_span_capacity(0, 0)


def test_area_fraction_8_percent_point():
    """The paper's dynamic region is 8% of the FPGA; 4 of 48 columns = 8.3%."""
    assert XC2V2000.area_fraction(4) == pytest.approx(4 / 48)
    assert 0.07 < XC2V2000.area_fraction(4) < 0.09


def test_partial_bitstream_size_matches_paper_scale():
    """A 4-column module's partial bitstream should be in the tens of KB,
    consistent with ~4 ms at memory-limited configuration bandwidth."""
    size = XC2V2000.partial_bitstream_bytes(44, 4)
    assert 60_000 < size < 110_000  # ~82 KB in our calibration


def test_partial_bitstream_monotone_in_width():
    sizes = [XC2V2000.partial_bitstream_bits(0, w) for w in (2, 4, 8, 16)]
    assert sizes == sorted(sizes)
    assert sizes[0] < sizes[-1]


def test_partial_bitstream_less_than_full():
    assert XC2V2000.partial_bitstream_bits(0, 8) < XC2V2000.full_bitstream_bits


def test_frames_for_span_counts_bram_frames():
    # A span containing a BRAM column has 4 extra frames.
    with_bram = None
    without_bram = None
    for c in range(XC2V2000.clb_cols - 1):
        frames = XC2V2000.frames_for_span(c, 2)
        if frames == FRAMES_PER_CLB_COLUMN * 2:
            without_bram = frames
        elif frames == FRAMES_PER_CLB_COLUMN * 2 + 4:
            with_bram = frames
    assert without_bram is not None and with_bram is not None


def test_device_validation():
    with pytest.raises(ValueError):
        VirtexIIDevice("bad", 0, 10, 1000, (), 0)
    with pytest.raises(ValueError):
        VirtexIIDevice("bad", 10, 10, -5, (), 0)
    with pytest.raises(ValueError):
        VirtexIIDevice("bad", 10, 10, 1000, (99,), 4)


def test_devices_scale_with_size():
    assert XC2V1000.slices < XC2V2000.slices < XC2V3000.slices
    assert (
        XC2V1000.full_bitstream_bits
        < XC2V2000.full_bitstream_bits
        < XC2V3000.full_bitstream_bits
    )


def test_frame_bits_positive_and_plausible():
    for d in (XC2V1000, XC2V2000, XC2V3000):
        assert d.frame_bits > 0
        # CLB frames should dominate the stream.
        clb_bits = d.clb_cols * FRAMES_PER_CLB_COLUMN * d.frame_bits
        assert clb_bits > 0.7 * d.full_bitstream_bits
