"""Adversarial floorplan fixtures: degenerate spans, touching ranges,
injected placements — the edge cases the co-optimizer's move generator
feeds straight into ``Floorplan.placements``."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric import Floorplan, FloorplanError, ModulePlacement, XC2V2000
from repro.fabric.busmacro import BusMacro
from repro.fabric.floorplan import MIN_WIDTH_CLB, WIDTH_STEP_CLB


def inject(plan, region, col0, width):
    """Bypass place() the way the search move generator does."""
    plan.placements[region] = ModulePlacement(region, col0, width)


# -- zero-width and degenerate spans -----------------------------------------


def test_place_rejects_zero_width_by_name():
    plan = Floorplan(XC2V2000)
    with pytest.raises(FloorplanError, match="zero-width"):
        plan.place("D1", 10, 0)


def test_place_rejects_negative_width_as_zero_width():
    plan = Floorplan(XC2V2000)
    with pytest.raises(FloorplanError, match="zero-width"):
        plan.place("D1", 10, -2)


def test_violations_reports_zero_width_consistently():
    plan = Floorplan(XC2V2000)
    inject(plan, "D1", 10, 0)
    problems = plan.violations()
    assert len(problems) == 1
    assert "zero-width" in problems[0]
    with pytest.raises(FloorplanError, match="zero-width"):
        plan.validate()


def test_zero_width_span_does_not_phantom_overlap():
    """A degenerate span occupies no columns; it must not also be reported
    as overlapping a real region sitting at the same column."""
    plan = Floorplan(XC2V2000)
    inject(plan, "D1", 10, 0)
    inject(plan, "D2", 10, 2)
    problems = plan.violations()
    assert any("zero-width" in p for p in problems)
    assert not any("overlaps" in p for p in problems)


# -- touching vs overlapping ranges ------------------------------------------


def test_touching_ranges_are_legal_via_place():
    plan = Floorplan(XC2V2000)
    plan.place("D1", 10, 2)
    plan.place("D2", 12, 2)  # shares the boundary column 12, no overlap
    assert plan.violations() == []
    plan.validate()


def test_touching_ranges_are_legal_via_injection():
    plan = Floorplan(XC2V2000)
    inject(plan, "D1", 10, 4)
    inject(plan, "D2", 14, 2)
    assert plan.violations() == []


def test_one_column_overlap_rejected_both_ways():
    plan = Floorplan(XC2V2000)
    plan.place("D1", 10, 2)
    with pytest.raises(FloorplanError, match="overlaps"):
        plan.place("D2", 11, 2)
    injected = Floorplan(XC2V2000)
    inject(injected, "D1", 10, 2)
    inject(injected, "D2", 11, 2)
    assert any("overlaps" in p for p in injected.violations())


@settings(max_examples=60, deadline=None)
@given(
    col_a=st.integers(min_value=0, max_value=XC2V2000.clb_cols - 2),
    col_b=st.integers(min_value=0, max_value=XC2V2000.clb_cols - 2),
)
def test_place_and_violations_agree_on_min_width_spans(col_a, col_b):
    """Property: for any two min-width spans, place() accepts exactly the
    configurations violations() calls clean — touching included."""
    via_place = Floorplan(XC2V2000)
    via_place.place("D1", col_a, MIN_WIDTH_CLB)
    try:
        via_place.place("D2", col_b, MIN_WIDTH_CLB)
        placed_ok = True
    except FloorplanError:
        placed_ok = False
    injected = Floorplan(XC2V2000)
    inject(injected, "D1", col_a, MIN_WIDTH_CLB)
    inject(injected, "D2", col_b, MIN_WIDTH_CLB)
    assert placed_ok == (injected.violations() == [])


# -- other injected-placement rules ------------------------------------------


def test_violations_reports_step_and_bounds():
    plan = Floorplan(XC2V2000)
    inject(plan, "D1", 10, 3)  # not a multiple of the step
    inject(plan, "D2", XC2V2000.clb_cols - 1, 2)  # spills past the edge
    problems = "\n".join(plan.violations())
    assert "multiple of 4 slices" in problems
    assert "outside" in problems


def test_violations_reports_below_minimum_width():
    assert WIDTH_STEP_CLB == MIN_WIDTH_CLB == 2
    plan = Floorplan(XC2V2000)
    inject(plan, "D1", 10, 1)
    problems = "\n".join(plan.violations())
    assert "4-slice minimum" in problems


def test_bus_macro_row_collision_detected():
    plan = Floorplan(XC2V2000)
    plan.place("D1", 10, 2)
    plan.place("D2", 14, 2)
    plan.bus_macros["D1"] = [BusMacro(name="bm_d1_0", column=12, row=0, direction="into_region")]
    plan.bus_macros["D2"] = [BusMacro(name="bm_d2_0", column=12, row=0, direction="out_of_region")]
    problems = plan.violations()
    assert any("bus-macro row collision" in p for p in problems)


def test_bus_macros_on_distinct_rows_coexist():
    plan = Floorplan(XC2V2000)
    plan.place("D1", 10, 2)
    plan.place("D2", 14, 2)
    plan.bus_macros["D1"] = [BusMacro(name="bm_d1_0", column=12, row=0, direction="into_region")]
    plan.bus_macros["D2"] = [BusMacro(name="bm_d2_0", column=12, row=1, direction="out_of_region")]
    assert plan.violations() == []


def test_clean_plan_validates_silently():
    plan = Floorplan(XC2V2000)
    plan.place("D1", 30, 4)
    plan.place("D2", 20, 2)
    plan.validate()
    assert plan.violations() == []
