"""Tests for the netlist abstraction and bus-macro planning."""

import pytest

from repro.fabric import BusMacro, Netlist, NetlistModule, ResourceVector, XC2V2000, plan_bus_macros
from repro.fabric.busmacro import BITS_PER_MACRO, BusMacroError, TBUFS_PER_MACRO, macros_needed
from repro.fabric.netlist import NetlistPort


def make_module(name, reconfigurable=False, region=None, ports=()):
    return NetlistModule(
        name=name,
        resources=ResourceVector(luts=100, ffs=80),
        ports=[NetlistPort(*p) for p in ports],
        reconfigurable=reconfigurable,
        region=region,
    )


def test_port_validation():
    with pytest.raises(ValueError):
        NetlistPort("p", 0, "in")
    with pytest.raises(ValueError):
        NetlistPort("p", 8, "inout")


def test_module_requires_region_when_reconfigurable():
    with pytest.raises(ValueError):
        make_module("m", reconfigurable=True, region=None)


def test_module_duplicate_ports_rejected():
    with pytest.raises(ValueError):
        make_module("m", ports=[("a", 8, "in"), ("a", 4, "out")])


def test_netlist_connect_and_queries():
    nl = Netlist("top")
    nl.add_module(make_module("static", ports=[("dout", 8, "out"), ("din", 8, "in")]))
    nl.add_module(
        make_module("qpsk", True, "D1", ports=[("din", 8, "in"), ("dout", 8, "out")])
    )
    nl.add_module(
        make_module("qam16", True, "D1", ports=[("din", 8, "in"), ("dout", 8, "out")])
    )
    nl.connect("static", "dout", "qpsk", "din")
    nl.connect("qpsk", "dout", "static", "din")
    assert [m.name for m in nl.static_modules()] == ["static"]
    assert {m.name for m in nl.reconfigurable_modules("D1")} == {"qpsk", "qam16"}
    assert nl.regions() == ["D1"]
    assert nl.boundary_bits_between("static", "qpsk") == 16
    # Worst-case over variants: qam16 has no nets yet -> worst is qpsk's 16.
    assert nl.boundary_bits_of_region("D1") == 16


def test_netlist_connect_validation():
    nl = Netlist("top")
    nl.add_module(make_module("a", ports=[("o", 8, "out")]))
    nl.add_module(make_module("b", ports=[("i", 4, "in")]))
    with pytest.raises(ValueError, match="width mismatch"):
        nl.connect("a", "o", "b", "i")
    with pytest.raises(ValueError, match="not an output"):
        nl.connect("b", "i", "a", "o")
    with pytest.raises(KeyError):
        nl.connect("a", "o", "zz", "i")


def test_netlist_duplicate_module_rejected():
    nl = Netlist("top")
    nl.add_module(make_module("a"))
    with pytest.raises(ValueError):
        nl.add_module(make_module("a"))


def test_macros_needed_rounding():
    assert macros_needed(0) == 0
    assert macros_needed(1) == 1
    assert macros_needed(BITS_PER_MACRO) == 1
    assert macros_needed(BITS_PER_MACRO + 1) == 2


def test_plan_bus_macros_counts_and_rows():
    macros = plan_bus_macros(XC2V2000, "D1", boundary_column=44, bits_in=16, bits_out=9)
    ins = [m for m in macros if m.direction == "into_region"]
    outs = [m for m in macros if m.direction == "out_of_region"]
    assert len(ins) == 4  # 16 bits / 4
    assert len(outs) == 3  # ceil(9/4)
    rows = [m.row for m in macros]
    assert rows == list(range(len(macros)))  # stacked from the bottom
    assert all(m.column == 44 for m in macros)
    assert all(m.tbufs == TBUFS_PER_MACRO for m in macros)


def test_plan_bus_macros_boundary_must_be_internal():
    with pytest.raises(BusMacroError):
        plan_bus_macros(XC2V2000, "D1", boundary_column=0, bits_in=4, bits_out=4)
    with pytest.raises(BusMacroError):
        plan_bus_macros(XC2V2000, "D1", boundary_column=48, bits_in=4, bits_out=4)


def test_plan_bus_macros_height_limit():
    # 56 rows -> at most 56 macros -> at most 224 bits total.
    too_many = 56 * BITS_PER_MACRO + 1
    with pytest.raises(BusMacroError, match="bus macros"):
        plan_bus_macros(XC2V2000, "D1", 44, bits_in=too_many, bits_out=0)


def test_eight_tbufs_per_macro_paper_constant():
    """The paper: 'the bus macro uses eight 3-state buffers'."""
    m = BusMacro("bm", 44, 0, "into_region")
    assert m.tbufs == 8
    assert m.resources().tbufs == 8
