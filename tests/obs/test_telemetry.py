"""Windowed time-series store, write-behind array path, SLOs, the hub.

The store's contract has two halves this file pins down separately: the
*scalar* recording path aggregates eagerly, and the *array* path is a
write-behind buffer — references (or zero-argument batch closures) are
captured at record time and the windowed aggregation runs at first read.
Both must produce identical windows.
"""

import io

import numpy as np
import pytest

from repro.obs import (
    QuantileSketch,
    SloMonitor,
    SloRule,
    Telemetry,
    TimeSeriesStore,
    get_telemetry,
    use_telemetry,
)


def _mixed_store(**kwargs):
    return TimeSeriesStore(window=100, **kwargs)


# -- scalar/array equivalence ----------------------------------------------


def test_array_paths_match_scalar_paths_exactly():
    rng = np.random.default_rng(7)
    t = rng.integers(0, 5_000, size=3_000)
    weights = rng.integers(0, 50, size=3_000)
    latencies = rng.integers(0, 10_000, size=3_000).astype(np.float64)

    scalar = _mixed_store()
    for ti, wi, li in zip(t.tolist(), weights.tolist(), latencies.tolist()):
        scalar.counter_add("hits", ti)
        scalar.counter_add("bytes", ti, wi)
        scalar.observe("lat", ti, li)

    vector = _mixed_store()
    vector.counter_add_array("hits", t)
    vector.counter_add_array("bytes", t, weights)
    vector.observe_array("lat", t, latencies)

    assert vector.series("hits") == scalar.series("hits")
    assert vector.series("bytes") == scalar.series("bytes")
    scalar_lat = dict(scalar.series("lat"))
    for w, sketch in vector.series("lat"):
        assert sketch.to_dict() == scalar_lat[w].to_dict()


def test_interleaved_scalar_and_array_counter_updates_accumulate():
    store = _mixed_store()
    store.counter_add("n", 5)
    store.counter_add_array("n", np.asarray([10, 110, 110]))
    store.counter_add("n", 120)
    assert store.series("n") == [(0, 2), (1, 3)]
    assert store.total("n") == 5


def test_gauge_add_array_sums_contributions_per_window():
    store = _mixed_store()
    store.gauge_add_array("util", np.asarray([10, 20, 150]), np.asarray([0.25, 0.25, 1.0]))
    assert dict(store.series("util")) == pytest.approx({0: 0.5, 1: 1.0})


# -- write-behind semantics -------------------------------------------------


def test_array_recording_is_deferred_until_first_read():
    store = _mixed_store()
    store.counter_add_array("n", np.asarray([1, 2, 3]))
    series = next(iter(store._series.values()))
    assert series.pending and not series.windows  # buffered, not aggregated
    assert store.total("n") == 3
    assert not series.pending and series.windows  # drained at first read


def test_defer_array_runs_closure_once_at_drain():
    store = _mixed_store()
    calls = []

    def batch():
        calls.append(1)
        return np.asarray([10, 20]), np.asarray([2, 3])

    store.defer_array("n", "counter", batch)
    assert calls == []  # nothing materialized yet
    assert store.total("n") == 5
    assert store.total("n") == 5
    assert calls == [1]  # drained once, then served from windows


def test_defer_array_rejects_unknown_kind_eagerly():
    store = _mixed_store()
    with pytest.raises(ValueError):
        store.defer_array("n", "bogus", lambda: (np.asarray([1]), None))


def test_deferred_batch_validation_happens_at_materialization():
    store = _mixed_store()
    store.defer_array("n", "counter", lambda: (np.asarray([1]), np.asarray([-2])))
    with pytest.raises(ValueError):
        store.total("n")


def test_array_validation_is_eager_for_direct_arrays():
    store = _mixed_store()
    with pytest.raises(ValueError):
        store.counter_add_array("n", np.asarray([1]), np.asarray([-1]))
    with pytest.raises(ValueError):
        store.observe_array("lat", np.asarray([1.0]), np.asarray([np.nan]))
    with pytest.raises(ValueError):
        store.counter_add_array("n", np.asarray([1, 2]), np.asarray([1]))


# -- store basics -----------------------------------------------------------


def test_kind_mismatch_and_bad_parameters_raise():
    store = _mixed_store()
    store.counter_add("x", 0)
    with pytest.raises(TypeError):
        store.gauge_set("x", 0, 1.0)
    with pytest.raises(ValueError):
        store.counter_add("x", 0, value=-1)
    assert store.total("missing") == 0
    with pytest.raises(TypeError):
        store.observe("x", 0, 1.0)
    with pytest.raises(ValueError):
        TimeSeriesStore(window=0)
    with pytest.raises(ValueError):
        TimeSeriesStore(window=10, retention=1)


def test_label_sets_are_order_insensitive_dimensions():
    store = _mixed_store()
    store.counter_add("n", 0, policy="lru", region="r0")
    store.counter_add("n", 0, region="r0", policy="lru")
    store.counter_add("n", 0, policy="fifo", region="r0")
    assert store.total("n", policy="lru", region="r0") == 2
    assert store.total("n", policy="fifo", region="r0") == 1
    assert len(store.label_sets("n")) == 2


def test_ring_retention_drops_oldest_windows_and_counts_them():
    store = TimeSeriesStore(window=10, retention=3)
    for w in range(5):
        store.counter_add("n", w * 10)
    assert [w for w, _ in store.series("n")] == [2, 3, 4]
    assert store.evicted_windows == 2
    assert store.total("n") == 3  # totals cover retained windows only


def test_merge_is_commutative_for_counters_and_sketches():
    def fill(store, offset):
        store.counter_add_array("n", np.asarray([5, 15, 25]) + offset)
        store.observe_array(
            "lat", np.asarray([5, 15]) + offset, np.asarray([10.0, 20.0]) + offset
        )

    a1, b1 = _mixed_store(), _mixed_store()
    fill(a1, 0), fill(b1, 200)
    a1.merge(b1)
    a2, b2 = _mixed_store(), _mixed_store()
    fill(a2, 0), fill(b2, 200)
    b2.merge(a2)
    assert [r for r in a1.to_rows() if not r.get("meta")] == [
        r for r in b2.to_rows() if not r.get("meta")
    ]


def test_merge_rejects_mixed_window_widths():
    with pytest.raises(ValueError):
        TimeSeriesStore(window=100).merge(TimeSeriesStore(window=50))


def test_jsonl_roundtrip_rebuilds_equivalent_store():
    store = _mixed_store()
    store.counter_add_array("n", np.asarray([1, 150]), policy="lru")
    store.gauge_set("depth", 120, 4, pool="workers")
    store.observe_array("lat", np.asarray([10, 10, 210]), np.asarray([5.0, 7.0, 900.0]))
    buffer = io.StringIO()
    count = store.write_jsonl(buffer)
    assert count == len(store.to_rows())
    buffer.seek(0)
    rebuilt = TimeSeriesStore.from_rows(
        [__import__("json").loads(line) for line in buffer if line.strip()]
    )
    assert rebuilt.window == store.window
    assert rebuilt.to_rows() == store.to_rows()


def test_from_rows_rejects_newer_schema():
    with pytest.raises(ValueError):
        TimeSeriesStore.from_rows([{"schema": 999, "meta": True, "window": 10}])


# -- SLO monitoring ---------------------------------------------------------


def _hit_rate_store():
    store = _mixed_store()
    # window 0: 8/10 hits; window 1: 2/10 hits (breach); window 2: 1/2 (skip)
    store.counter_add("demands", 0, 10, policy="lru")
    store.counter_add("hits", 0, 8, policy="lru")
    store.counter_add("demands", 100, 10, policy="lru")
    store.counter_add("hits", 100, 2, policy="lru")
    store.counter_add("demands", 200, 2, policy="lru")
    store.counter_add("hits", 200, 1, policy="lru")
    return store


def test_ratio_floor_rule_flags_only_qualified_windows():
    store = _hit_rate_store()
    monitor = SloMonitor(
        store,
        [
            SloRule(
                name="hit-rate",
                series="hits",
                kind="floor",
                threshold=0.5,
                denominator="demands",
                min_count=5,
            )
        ],
    )
    breaches = monitor.evaluate()
    assert [b.window for b in breaches] == [1]
    assert breaches[0].observed == pytest.approx(0.2)
    assert breaches[0].low == 0.5
    assert "required >= 0.5" in breaches[0].describe()
    # window 2 was below min_count: never judged, never breached
    assert monitor.windows_judged["hit-rate"] == 2


def test_monitor_reports_each_window_once_across_evaluations():
    store = _hit_rate_store()
    monitor = SloMonitor(
        store,
        [SloRule(name="hr", series="hits", kind="floor", threshold=0.5,
                 denominator="demands")],
    )
    first = monitor.evaluate()
    assert len(first) == 1
    assert monitor.evaluate() == []  # same data: no repeats
    store.counter_add("demands", 300, 10, policy="lru")
    store.counter_add("hits", 300, 0, policy="lru")
    fresh = monitor.evaluate()
    assert [b.window for b in fresh] == [3]  # only the new window


def test_quantile_ceiling_rule_and_up_to_exclusion():
    store = _mixed_store()
    store.observe_array("lat", np.asarray([10] * 100), np.full(100, 50.0))
    store.observe_array("lat", np.asarray([110] * 100), np.full(100, 9_000.0))
    monitor = SloMonitor(
        store,
        [SloRule(name="p99", series="lat", kind="ceiling", threshold=1_000.0,
                 quantile=0.99)],
    )
    assert monitor.evaluate(up_to=1) == []  # window 1 still open: not judged
    breaches = monitor.evaluate()
    assert [b.window for b in breaches] == [1]
    assert breaches[0].observed == pytest.approx(9_000.0, rel=0.02)


def test_band_rule_and_rule_validation():
    rule = SloRule(name="util", series="u", kind="band", low=0.1, high=0.9)
    assert rule.violated_by(0.05) and rule.violated_by(0.95)
    assert not rule.violated_by(0.5)
    with pytest.raises(ValueError):
        SloRule(name="x", series="s", kind="sideways", threshold=1.0)
    with pytest.raises(ValueError):
        SloRule(name="x", series="s", kind="band", low=2.0, high=1.0)
    with pytest.raises(ValueError):
        SloRule(name="x", series="s", kind="floor")
    with pytest.raises(ValueError):
        SloMonitor(_mixed_store(), [rule, rule])


def test_breach_to_dict_is_json_safe():
    store = _hit_rate_store()
    monitor = SloMonitor(
        store,
        [SloRule(name="hr", series="hits", kind="floor", threshold=0.5,
                 denominator="demands")],
    )
    (breach,) = monitor.evaluate()
    payload = breach.to_dict()
    assert payload["labels"] == {"policy": "lru"}
    __import__("json").dumps(payload)


# -- the ambient hub --------------------------------------------------------


def test_hub_creates_domain_stores_lazily_with_default_widths():
    hub = Telemetry(windows={"search": 25})
    sim = hub.store("sim")
    assert sim is hub.store("sim")
    assert sim.clock == "sim"
    assert hub.store("search").window == 25
    assert hub.store("search").clock == "index"
    assert hub.domains() == ["search", "sim"]


def test_hub_rows_are_tagged_with_their_domain():
    hub = Telemetry()
    hub.store("sim").counter_add("n", 0)
    domains = {row["domain"] for row in hub.to_rows()}
    assert domains == {"sim"}


def test_use_telemetry_scopes_the_ambient_hub():
    assert get_telemetry() is None  # disabled by default
    with use_telemetry() as hub:
        assert get_telemetry() is hub
        with use_telemetry() as inner:
            assert get_telemetry() is inner
        assert get_telemetry() is hub
    assert get_telemetry() is None
