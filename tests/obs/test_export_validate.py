"""Exporters: Chrome trace JSON + validator, Gantt views, run manifests."""

import json

import pytest

from repro.obs import (
    Span,
    SpanContext,
    build_manifest,
    chrome_trace,
    manifest_path_for,
    region_timeline,
    render_region_gantt,
    render_region_gantt_svg,
    validate_chrome_trace,
    validate_trace_file,
    write_chrome_trace,
    write_manifest,
)


def _span(name, span_id, start, dur, parent=None, clock="wall", process="main",
          track="main", **attributes):
    return Span(
        name=name,
        context=SpanContext(trace_id="t", span_id=span_id, parent_id=parent),
        start_ns=start,
        duration_ns=dur,
        clock=clock,
        process=process,
        track=track,
        attributes=attributes,
    )


def _sample_spans():
    return [
        _span("flow", "s1", 1_000_000, 500_000),
        _span("stage", "s2", 1_100_000, 100_000, parent="s1"),
        _span("compute", "sim1-1", 0, 40_000, parent="s1", clock="sim",
              process="sim", track="op.fft"),
    ]


def test_chrome_trace_structure_and_lanes():
    payload = chrome_trace(_sample_spans(), metadata={"trace_id": "t"})
    assert payload["displayTimeUnit"] == "ms"
    assert payload["metadata"] == {"trace_id": "t"}
    events = payload["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    names = {e["args"]["name"] for e in meta if e["name"] == "process_name"}
    # Sim-clock spans live on their own lane: the clocks are unrelated.
    assert names == {"main", "sim [sim time]"}
    xs = {e["name"]: e for e in events if e["ph"] == "X"}
    assert xs["flow"]["ts"] == 0.0  # wall spans rebase to the earliest start
    assert xs["stage"]["ts"] == 100.0  # 0.1 ms later, in microseconds
    assert xs["flow"]["dur"] == 500.0
    assert xs["compute"]["ts"] == 0.0  # sim time stays absolute
    assert xs["stage"]["args"]["parent_id"] == "s1"
    assert xs["flow"]["pid"] != xs["compute"]["pid"]


def test_write_and_validate_roundtrip(tmp_path):
    path = write_chrome_trace(tmp_path / "trace.json", _sample_spans())
    assert validate_trace_file(path) == []
    payload = json.loads(path.read_text())
    assert validate_chrome_trace(payload) == []


def test_validator_catches_broken_traces(tmp_path):
    assert validate_chrome_trace({"nope": 1}) == ["top-level object has no 'traceEvents' list"]
    assert validate_chrome_trace([]) == ["trace contains no events"]
    errors = validate_chrome_trace(
        [
            {"ph": "X", "name": "a", "ts": -1, "dur": "x", "pid": 1, "tid": 1,
             "args": {"span_id": "s2", "parent_id": "missing", "trace_id": "t1"}},
            {"ph": "X", "name": "b", "ts": 0, "dur": 1, "pid": 1, "tid": 1,
             "args": {"span_id": "s3", "trace_id": "t2"}},
            {"ph": "B", "name": "open", "pid": 1, "tid": 1},
            {"ph": "?", "name": "junk"},
        ]
    )
    text = "\n".join(errors)
    assert "negative 'ts'" in text
    assert "non-numeric 'dur'" in text
    assert "parent_id 'missing'" in text
    assert "'B' never closed" in text
    assert "unknown phase" in text
    assert "2 traces" in text
    assert validate_trace_file(tmp_path / "absent.json")[0].startswith("cannot read")
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert "not valid JSON" in validate_trace_file(bad)[0]


def _region_spans():
    return [
        _span("resident:qpsk", "r1", 0, 4_000, clock="sim", process="sim",
              track="region.D1", region="D1", module="qpsk", kind="resident"),
        _span("load:qam16", "r2", 4_000, 2_000, clock="sim", process="sim",
              track="region.D1", region="D1", module="qam16", kind="load"),
        _span("prefetch:qpsk", "r3", 8_000, 2_000, clock="sim", process="sim",
              track="region.D1", region="D1", module="qpsk", kind="prefetch"),
        _span("resident:qam16", "r4", 6_000, 4_000, clock="sim", process="sim",
              track="region.D1", region="D1", module="qam16", kind="resident"),
        # Wall spans and attribute-free sim spans stay out of the timeline.
        _span("flow", "s1", 0, 1_000),
        _span("compute", "c1", 0, 1_000, clock="sim", process="sim", track="op.fft"),
    ]


def test_region_timeline_classifies_intervals():
    timeline = region_timeline(_region_spans())
    assert set(timeline) == {"D1"}
    assert [m for m, *_ in timeline["D1"]["resident"]] == ["qpsk", "qam16"]
    assert [(m, k) for m, _, _, k in timeline["D1"]["loads"]] == [
        ("qam16", "load"),
        ("qpsk", "prefetch"),
    ]


def test_gantt_renders_residency_loads_and_prefetch():
    text = render_region_gantt(_region_spans(), width=40)
    assert "D1 |" in text
    row = text.splitlines()[0]
    assert "a" in row and "b" in row  # two resident modules
    assert "B" in row or "A" in row  # a demand load in flight
    assert "*" in row  # the prefetch overlay
    assert "*=prefetch" in text
    assert render_region_gantt([]) == "(no region residency spans in trace)"


def test_gantt_svg_is_wellformed():
    svg = render_region_gantt_svg(_region_spans())
    assert svg.startswith("<svg") and svg.endswith("</svg>")
    assert "region.D1" not in svg  # labelled by region name, not actor
    assert ">D1</text>" in svg
    assert svg.count("<rect") >= 6
    assert "#999" in svg  # prefetch hatch


def test_manifest_contents_and_sibling_path(tmp_path):
    manifest = build_manifest(
        argv=["repro", "sweep"], seed=7,
        metrics={"a": {"type": "counter", "value": 1}},
        extra={"command": "sweep"},
    )
    assert manifest["argv"] == ["repro", "sweep"]
    assert manifest["seed"] == 7
    assert manifest["command"] == "sweep"
    assert manifest["python"]
    assert manifest["created_unix_s"] > 0
    assert manifest_path_for("out/trace.json") == manifest_path_for("out/trace.json").with_name(
        "trace.manifest.json"
    )
    path = write_manifest(tmp_path / "run.manifest.json", manifest)
    assert json.loads(path.read_text())["metrics"]["a"]["value"] == 1


# -- counter tracks ----------------------------------------------------------


def test_counter_events_from_snapshot_samples_counters_and_gauges():
    from repro.obs import MetricsRegistry, counter_events_from_snapshot

    registry = MetricsRegistry()
    registry.counter("jobs").inc(3)
    registry.gauge("depth").set(2)
    registry.histogram("t").observe(0.5)  # not a counter track
    events = counter_events_from_snapshot(registry, ts_us=42.0, pid=7)
    assert [e["name"] for e in events] == ["depth", "jobs"]
    assert all(e["ph"] == "C" and e["ts"] == 42.0 and e["pid"] == 7 for e in events)
    assert events[1]["args"] == {"value": 3}


def test_counter_events_from_store_unrolls_windows_and_quantiles():
    import numpy as np

    from repro.obs import TimeSeriesStore, counter_events_from_store

    store = TimeSeriesStore(window=1_000)
    store.counter_add_array("hits", np.asarray([100, 1_500]), policy="lru")
    store.observe_array(
        "lat", np.full(100, 100), np.asarray([10.0] * 98 + [90.0] * 2)
    )
    events = counter_events_from_store(store, pid=3, quantiles=(0.99,))
    by_name = {}
    for e in events:
        by_name.setdefault(e["name"], []).append(e)
    # counter series: one sample per window, labels become a track suffix
    hits = by_name["hits{policy=lru}"]
    assert [(e["ts"], e["args"]["value"]) for e in hits] == [(0.0, 1), (1.0, 1)]
    # quantile series fan out into /count and /p99 tracks
    assert by_name["lat/count"][0]["args"]["value"] == 100
    assert by_name["lat/p99"][0]["args"]["value"] == pytest.approx(90.0, rel=0.02)
    assert all(e["ph"] == "C" and e["pid"] == 3 for e in events)
    # deterministic ordering: by (name, ts)
    assert events == sorted(events, key=lambda e: (e["name"], e["ts"]))


def test_chrome_trace_carries_counter_lanes_and_validates(tmp_path):
    import numpy as np

    from repro.obs import MetricsRegistry, TimeSeriesStore

    registry = MetricsRegistry()
    registry.counter("jobs").inc(1)
    store = TimeSeriesStore(window=1_000)
    store.counter_add_array("fleet.demands", np.asarray([10, 2_000]), policy="lru")
    payload = chrome_trace(_sample_spans(), counters=registry, telemetry=store)
    counters = [e for e in payload["traceEvents"] if e["ph"] == "C"]
    assert {e["name"] for e in counters} >= {"jobs", "fleet.demands{policy=lru}"}
    lanes = {e["args"]["name"] for e in payload["traceEvents"]
             if e["ph"] == "M" and e["name"] == "process_name"}
    assert "telemetry [sim time]" in lanes
    assert validate_chrome_trace(payload) == []
    path = tmp_path / "trace.json"
    write_chrome_trace(path, _sample_spans(), counters=registry, telemetry=store)
    assert validate_trace_file(path) == []


def test_validator_rejects_malformed_counter_events():
    base = {"ph": "C", "name": "x", "pid": 0, "tid": 0}
    assert validate_chrome_trace(
        {"traceEvents": [{**base, "ts": -1.0, "args": {"value": 1}}]}
    )
    assert validate_chrome_trace(
        {"traceEvents": [{**base, "ts": 0.0, "args": {}}]}
    )
    assert validate_chrome_trace(
        {"traceEvents": [{**base, "ts": 0.0, "args": {"value": float("nan")}}]}
    )
    assert validate_chrome_trace(
        {"traceEvents": [{**base, "ts": 0.0, "args": {"value": True}}]}
    )
    assert validate_chrome_trace(
        {"traceEvents": [{**base, "ts": 0.0, "args": {"value": 1.0}}]}
    ) == []
