"""Bridging the sim kernel's trace and legacy stat bags into the obs layer."""

from repro.obs import (
    MetricsRegistry,
    SpanContext,
    record_cache_stats,
    record_config_service_stats,
    record_manager_stats,
    record_scheduler_stats,
    spans_from_sim_trace,
)
from repro.reconfig.manager import ManagerStats
from repro.sim import Trace


def make_sim_trace() -> Trace:
    trace = Trace()
    trace.begin(0, "op.fft", "compute", detail="fft8")
    trace.end(4_000, "op.fft", "compute")
    trace.begin(1_000, "region.D1", "load", detail="qam16")
    trace.end(3_000, "region.D1", "load")
    trace.begin(3_000, "region.D1", "resident", detail="qam16")
    trace.end(9_000, "region.D1", "resident")
    return trace


def test_bridged_spans_carry_sim_clock_and_parent():
    parent = SpanContext(trace_id="t", span_id="job-1")
    spans = spans_from_sim_trace(make_sim_trace(), parent=parent)
    assert len(spans) == 3
    assert all(s.clock == "sim" for s in spans)
    assert all(s.context.trace_id == "t" for s in spans)
    assert all(s.context.parent_id == "job-1" for s in spans)
    assert len({s.context.span_id for s in spans}) == 3
    compute = next(s for s in spans if s.name == "compute:fft8")
    assert compute.track == "op.fft"
    assert compute.start_ns == 0 and compute.duration_ns == 4_000


def test_region_spans_expose_region_and_module():
    spans = spans_from_sim_trace(make_sim_trace())
    resident = next(s for s in spans if s.name == "resident:qam16")
    assert resident.attributes["region"] == "D1"
    assert resident.attributes["module"] == "qam16"
    assert resident.context.parent_id is None  # parentless bridge still works


def test_include_kinds_filters():
    spans = spans_from_sim_trace(make_sim_trace(), include_kinds=("load", "resident"))
    assert {s.attributes["kind"] for s in spans} == {"load", "resident"}


def test_bridge_span_ids_unique_across_calls():
    trace = make_sim_trace()
    first = spans_from_sim_trace(trace)
    second = spans_from_sim_trace(trace)
    ids = {s.context.span_id for s in first} | {s.context.span_id for s in second}
    assert len(ids) == 6


def test_record_manager_stats_feeds_counters():
    registry = MetricsRegistry()
    stats = ManagerStats(demand_requests=4, demand_loads=2, prefetch_loads=1,
                         useful_prefetches=1, stall_ns=12_345)
    record_manager_stats(registry, stats)
    snapshot = registry.snapshot()
    assert snapshot["reconfig.demand_loads"]["value"] == 2
    assert snapshot["reconfig.useful_prefetches"]["value"] == 1
    assert snapshot["reconfig.stall_ns"]["value"] == 12_345
    # zero-valued counters still register (explicit zero beats absence)
    assert snapshot["reconfig.crc_failures"]["value"] == 0


def test_record_scheduler_stats_accepts_mappings():
    registry = MetricsRegistry()
    record_scheduler_stats(registry, {"placements_evaluated": 10, "label": "x"})
    assert registry.snapshot() == {
        "scheduler.placements_evaluated": {"type": "counter", "value": 10}
    }


class _Cache:
    hits, misses, stores, evictions, corruptions = 3, 1, 4, 0, 0


class _Service:
    swap_count, stall_ns, hints_seen, prefetch_starts = 2, 500, 6, 2


def test_record_cache_and_service_stats():
    registry = MetricsRegistry()
    record_cache_stats(registry, _Cache())
    record_config_service_stats(registry, _Service())
    snapshot = registry.snapshot()
    assert snapshot["cache.hits"]["value"] == 3
    assert snapshot["configsvc.swap_count"]["value"] == 2
