"""Quantile sketch: relative-error bound, merges, serialization.

The sketch promises ``quantile(q)`` within ``alpha`` *relative* error of
``sorted(values)[floor(q * (n - 1))]`` — exactly the rank model
:class:`repro.obs.sketch.ExactQuantiles` implements, so the property is
tested verbatim against the reference on generated inputs.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import DEFAULT_RELATIVE_ACCURACY, ExactQuantiles, QuantileSketch

QUANTILES = (0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0)

positive_values = st.lists(
    st.floats(min_value=1e-6, max_value=1e12, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=400,
)


def assert_within_alpha(sketch, exact, q):
    estimate = sketch.quantile(q)
    truth = exact.quantile(q)
    if truth < sketch.min_value:
        assert estimate == 0.0
    else:
        assert abs(estimate - truth) <= sketch.alpha * truth + 1e-12, (
            f"q={q}: estimate {estimate} vs exact {truth}"
        )


@settings(max_examples=60, deadline=None)
@given(positive_values)
def test_quantiles_within_relative_error_of_exact_reference(values):
    sketch = QuantileSketch()
    exact = ExactQuantiles()
    for v in values:
        sketch.add(v)
        exact.add(v)
    for q in QUANTILES:
        assert_within_alpha(sketch, exact, q)


@settings(max_examples=30, deadline=None)
@given(positive_values, positive_values)
def test_merge_equals_single_sketch_over_union(left, right):
    merged = QuantileSketch()
    for v in left:
        merged.add(v)
    other = QuantileSketch()
    for v in right:
        other.add(v)
    merged.merge(other)

    union = QuantileSketch()
    exact = ExactQuantiles()
    for v in left + right:
        union.add(v)
        exact.add(v)
    # bucket-exact merge: identical counts, identical estimates
    assert merged._buckets == union._buckets
    assert merged.count == union.count == len(left) + len(right)
    assert merged.sum == pytest.approx(union.sum)
    for q in QUANTILES:
        assert merged.quantile(q) == union.quantile(q)
        assert_within_alpha(merged, exact, q)


@settings(max_examples=30, deadline=None)
@given(positive_values)
def test_add_array_matches_scalar_adds(values):
    looped = QuantileSketch()
    for v in values:
        looped.add(v)
    batched = QuantileSketch()
    batched.add_array(np.asarray(values))
    assert batched._buckets == looped._buckets
    assert batched.count == looped.count
    assert batched.zero_count == looped.zero_count
    assert batched.sum == pytest.approx(looped.sum)
    assert batched.min == looped.min
    assert batched.max == looped.max


def test_tighter_accuracy_shrinks_error():
    values = [float(v) for v in range(1, 2000)]
    loose = QuantileSketch(relative_accuracy=0.05)
    tight = QuantileSketch(relative_accuracy=0.001)
    exact = ExactQuantiles()
    for v in values:
        loose.add(v)
        tight.add(v)
        exact.add(v)
    for q in (0.5, 0.99):
        truth = exact.quantile(q)
        assert abs(tight.quantile(q) - truth) <= 0.001 * truth
        assert abs(tight.quantile(q) - truth) <= abs(loose.quantile(q) - truth) + 1e-9


def test_zero_and_subthreshold_values_collapse_into_zero_bucket():
    sketch = QuantileSketch()
    sketch.add(0.0)
    sketch.add(1e-12)
    sketch.add(100.0)
    assert sketch.zero_count == 2
    assert sketch.count == 3
    assert sketch.quantile(0.0) == 0.0
    assert sketch.quantile(1.0) == pytest.approx(100.0, rel=sketch.alpha)


def test_empty_sketch_is_inert():
    sketch = QuantileSketch()
    assert sketch.count == 0
    assert sketch.quantile(0.5) == 0.0
    assert sketch.min == 0.0 and sketch.max == 0.0 and sketch.mean == 0.0
    assert len(sketch) == 0


def test_rejects_bad_values_and_parameters():
    sketch = QuantileSketch()
    for bad in (-1.0, math.nan, math.inf):
        with pytest.raises(ValueError):
            sketch.add(bad)
    with pytest.raises(ValueError):
        sketch.add(1.0, count=0)
    with pytest.raises(ValueError):
        sketch.quantile(1.5)
    with pytest.raises(ValueError):
        QuantileSketch(relative_accuracy=0.0)
    with pytest.raises(ValueError):
        QuantileSketch(min_value=0.0)
    with pytest.raises(ValueError):
        sketch.add_array(np.asarray([1.0, -2.0]))


def test_merge_rejects_mismatched_parameters():
    a = QuantileSketch(relative_accuracy=0.01)
    b = QuantileSketch(relative_accuracy=0.02)
    with pytest.raises(ValueError):
        a.merge(b)


def test_serialization_roundtrip_is_exact():
    sketch = QuantileSketch()
    sketch.add_array(np.asarray([0.0, 3.5, 3.5, 700.0, 1e9]))
    clone = QuantileSketch.from_dict(sketch.to_dict())
    assert clone.to_dict() == sketch.to_dict()
    for q in QUANTILES:
        assert clone.quantile(q) == sketch.quantile(q)


def test_default_accuracy_is_one_percent():
    assert DEFAULT_RELATIVE_ACCURACY == 0.01
    assert QuantileSketch().alpha == 0.01
