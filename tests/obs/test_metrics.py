"""Metrics registry: instruments, snapshots, cross-process merging."""

import pytest

from repro.obs import (
    MetricsRegistry,
    STAGE_SECONDS_BUCKETS,
    get_metrics,
    set_metrics,
    use_metrics,
)


def test_counter_accumulates_and_rejects_negative():
    registry = MetricsRegistry()
    counter = registry.counter("jobs")
    counter.inc()
    counter.inc(4)
    assert registry.counter("jobs") is counter  # get-or-create
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_keeps_last_value():
    registry = MetricsRegistry()
    registry.gauge("depth").set(3)
    registry.gauge("depth").set(1)
    assert registry.gauge("depth").value == 1


def test_histogram_buckets_and_overflow():
    registry = MetricsRegistry()
    hist = registry.histogram("t", boundaries=(1.0, 10.0))
    for value in (0.5, 5.0, 100.0, 0.1):
        hist.observe(value)
    assert hist.counts == [2, 1, 1]
    assert hist.total == 4
    assert hist.sum == pytest.approx(105.6)
    with pytest.raises(ValueError):
        registry.histogram("bad", boundaries=(5.0, 1.0))


def test_kind_mismatch_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")


def test_record_counts_skips_non_numeric_and_negative():
    registry = MetricsRegistry()
    registry.record_counts("mgr", {"loads": 3, "name": "D1", "flag": True, "delta": -2})
    snapshot = registry.snapshot()
    assert list(snapshot) == ["mgr.loads"]
    assert snapshot["mgr.loads"]["value"] == 3


def test_snapshot_is_sorted_and_typed():
    registry = MetricsRegistry()
    registry.gauge("b").set(2)
    registry.counter("a").inc()
    registry.histogram("c").observe(0.002)
    snapshot = registry.snapshot()
    assert list(snapshot) == ["a", "b", "c"]
    assert snapshot["a"]["type"] == "counter"
    assert snapshot["b"]["type"] == "gauge"
    assert snapshot["c"]["boundaries"] == list(STAGE_SECONDS_BUCKETS)


def test_merge_snapshot_combines_all_kinds():
    worker = MetricsRegistry()
    worker.counter("jobs").inc(2)
    worker.gauge("depth").set(7)
    worker.histogram("t", boundaries=(1.0, 2.0)).observe(0.5)
    main = MetricsRegistry()
    main.counter("jobs").inc(1)
    main.histogram("t", boundaries=(1.0, 2.0)).observe(0.7)
    main.histogram("t", boundaries=(1.0, 2.0)).observe(1.5)

    main.merge_snapshot(worker.snapshot())
    assert main.counter("jobs").value == 3
    assert main.gauge("depth").value == 7
    hist = main.histogram("t", boundaries=(1.0, 2.0))
    assert hist.counts == [2, 1, 0]
    assert hist.total == 3
    assert hist.sum == pytest.approx(2.7)


def test_merge_snapshot_rejects_boundary_mismatch_and_unknown_type():
    main = MetricsRegistry()
    main.histogram("t", boundaries=(1.0, 2.0))
    with pytest.raises(ValueError):
        main.merge_snapshot(
            {"t": {"type": "histogram", "boundaries": [5.0], "counts": [0, 0], "count": 0, "sum": 0.0}}
        )
    with pytest.raises(ValueError):
        main.merge_snapshot({"x": {"type": "meter", "value": 1}})


def test_ambient_registry_scoping():
    default = get_metrics()
    with use_metrics() as registry:
        assert get_metrics() is registry
        assert registry is not default
        registry.counter("scoped").inc()
    assert get_metrics() is default
    assert "scoped" not in get_metrics().snapshot()
    previous = set_metrics(None)  # None installs a fresh registry
    assert get_metrics() is not previous
    set_metrics(default)


def test_merge_snapshot_into_empty_registry_adopts_everything():
    worker = MetricsRegistry()
    worker.counter("jobs").inc(4)
    worker.gauge("depth").set(2)
    worker.histogram("t", boundaries=(1.0, 2.0)).observe(1.5)
    empty = MetricsRegistry()
    empty.merge_snapshot(worker.snapshot())
    assert empty.snapshot() == worker.snapshot()
    # and an empty snapshot folded in changes nothing
    empty.merge_snapshot(MetricsRegistry().snapshot())
    assert empty.snapshot() == worker.snapshot()


def test_merge_snapshot_is_associative_across_workers():
    def worker(jobs, depth, sample):
        registry = MetricsRegistry()
        registry.counter("jobs").inc(jobs)
        registry.gauge("depth").set(depth)
        registry.histogram("t", boundaries=(1.0, 2.0)).observe(sample)
        return registry.snapshot()

    a, b, c = worker(1, 5, 0.5), worker(2, 6, 1.5), worker(3, 7, 9.0)

    left = MetricsRegistry()   # (a + b) + c
    left.merge_snapshot(a)
    left.merge_snapshot(b)
    left.merge_snapshot(c)

    inner = MetricsRegistry()  # a + (b + c)
    inner.merge_snapshot(b)
    inner.merge_snapshot(c)
    right = MetricsRegistry()
    right.merge_snapshot(a)
    right.merge_snapshot(inner.snapshot())

    # counters and histograms agree exactly; the gauge takes the last
    # value in merge order, which both orders share (c's)
    assert left.snapshot() == right.snapshot()


def test_merge_snapshot_disjoint_histogram_names_coexist():
    main = MetricsRegistry()
    main.histogram("coarse", boundaries=(10.0,)).observe(3.0)
    other = MetricsRegistry()
    other.histogram("fine", boundaries=(0.1, 1.0)).observe(0.5)
    main.merge_snapshot(other.snapshot())
    snapshot = main.snapshot()
    # same registry, different names: each keeps its own boundaries
    assert snapshot["coarse"]["boundaries"] == [10.0]
    assert snapshot["fine"]["boundaries"] == [0.1, 1.0]
    assert snapshot["coarse"]["counts"] == [1, 0]
    assert snapshot["fine"]["counts"] == [0, 1, 0]
