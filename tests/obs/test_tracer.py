"""Tracer core: span lifecycle, parenting, context propagation, no-op path."""

import pickle

import pytest

from repro.obs import (
    NOOP_TRACER,
    NoopTracer,
    Span,
    SpanContext,
    Tracer,
    get_tracer,
    new_trace_id,
    set_tracer,
    use_tracer,
)


def test_span_records_interval_and_attributes():
    tracer = Tracer(trace_id="t1")
    with tracer.span("work", attributes={"k": 1}) as handle:
        handle.set_attribute("extra", "v")
    assert len(tracer.spans) == 1
    span = tracer.spans[0]
    assert span.name == "work"
    assert span.context.trace_id == "t1"
    assert span.context.parent_id is None
    assert span.duration_ns >= 0
    assert span.end_ns == span.start_ns + span.duration_ns
    assert span.attributes == {"k": 1, "extra": "v"}
    assert span.to_dict()["span_id"] == span.context.span_id


def test_nested_spans_parent_to_innermost_open():
    tracer = Tracer()
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            assert inner.context.parent_id == outer.context.span_id
            assert tracer.current_context() is inner.context
    assert tracer.current_context() is None
    names = {s.name: s for s in tracer.spans}
    assert names["inner"].context.parent_id == names["outer"].context.span_id


def test_explicit_parent_overrides_stack():
    tracer = Tracer()
    remote = SpanContext(trace_id=tracer.trace_id, span_id="remote-1")
    with tracer.span("ambient"):
        with tracer.span("child", parent=remote) as child:
            assert child.context.parent_id == "remote-1"
            assert child.context.trace_id == tracer.trace_id


def test_exception_sets_error_attribute():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("boom"):
            raise RuntimeError("no")
    assert tracer.spans[0].attributes["error"] == "RuntimeError: no"


def test_double_end_is_idempotent():
    tracer = Tracer()
    handle = tracer.span("once").start()
    assert handle.end() is not None
    assert handle.end() is None
    assert len(tracer.spans) == 1


def test_span_ids_unique_and_prefixed():
    tracer = Tracer(span_id_prefix="w3-")
    ids = [tracer.span(f"s{i}").start().context.span_id for i in range(5)]
    assert len(set(ids)) == 5
    assert all(i.startswith("w3-") for i in ids)


def test_span_context_pickles_and_children():
    ctx = SpanContext(trace_id="t", span_id="a", parent_id=None)
    child = ctx.child_of("b")
    assert child == SpanContext(trace_id="t", span_id="b", parent_id="a")
    assert pickle.loads(pickle.dumps(child)) == child


def test_noop_tracer_is_inert_and_shared():
    noop = NoopTracer()
    h1 = noop.span("a")
    h2 = noop.span("b", attributes={"x": 1})
    assert h1 is h2  # one shared handle, no allocation per call
    assert h1.context is None
    with h1 as handle:
        handle.set_attribute("ignored", 1)
    assert h1.end() is None
    noop.add_span(Span("x", SpanContext("t", "s"), 0, 1))
    assert not noop.enabled


def test_ambient_tracer_set_and_restore():
    assert get_tracer() is NOOP_TRACER
    tracer = Tracer()
    with use_tracer(tracer):
        assert get_tracer() is tracer
        inner = Tracer()
        previous = set_tracer(inner)
        assert previous is tracer
        set_tracer(previous)
    assert get_tracer() is NOOP_TRACER
    set_tracer(None)
    assert get_tracer() is NOOP_TRACER


def test_trace_ids_unique():
    assert new_trace_id() != new_trace_id()


def test_adopted_spans_join_the_list():
    tracer = Tracer()
    foreign = Span("远", SpanContext(tracer.trace_id, "w1-1"), 10, 5, clock="sim")
    tracer.add_spans([foreign])
    assert tracer.spans == [foreign]
