"""Benchmark headline history and the bench-check regression gate."""

import json
from pathlib import Path

import pytest

from repro.obs import (
    CheckResult,
    HistoryEntry,
    append_from_result,
    backfill,
    bench_check,
    extract_headline,
    load_history,
)
from repro.obs.history import HEADLINES, append_entry, host_fingerprint


def _entry(value, bench="fleet_throughput", metric="fast.requests_per_sec",
           higher_is_better=True, smoke=False):
    return HistoryEntry(
        bench=bench,
        metric=metric,
        value=value,
        higher_is_better=higher_is_better,
        unit="req/s",
        smoke=smoke,
        recorded_at="2026-08-09T00:00:00+00:00",
    )


def _seed(path, values, **kwargs):
    for value in values:
        append_entry(path, _entry(value, **kwargs))


def test_extract_headline_digs_dotted_paths_and_suffixes():
    payload = {"headline": {"fast": {"requests_per_sec": 123.5}}, "digest": "abc"}
    entry = extract_headline("fleet_throughput", payload)
    assert entry.value == 123.5
    assert entry.detail["digest"] == "abc"
    assert entry.host == host_fingerprint()
    smoke = extract_headline("fleet_throughput_smoke", payload)
    assert smoke.bench == "fleet_throughput"  # suffix selects the lineage...
    assert smoke.smoke is True                # ...not a separate bench name
    assert extract_headline("unknown_bench", payload) is None


def test_extract_headline_rejects_non_finite_values():
    with pytest.raises(ValueError):
        extract_headline(
            "fleet_throughput",
            {"headline": {"fast": {"requests_per_sec": float("inf")}}},
        )


def test_append_from_result_roundtrips_through_load(tmp_path):
    path = tmp_path / "HISTORY.jsonl"
    payload = {"headline": {"fast": {"requests_per_sec": 10.0}}, "smoke": False}
    entry = append_from_result(path, "fleet_throughput", payload)
    assert entry is not None
    (loaded,) = load_history(path)
    assert loaded.value == 10.0
    assert append_from_result(path, "not_registered", {}) is None
    assert len(load_history(path)) == 1


def test_gate_passes_on_stable_history(tmp_path):
    path = tmp_path / "HISTORY.jsonl"
    _seed(path, [100.0, 102.0, 98.0, 101.0])
    (result,) = bench_check(path, threshold_pct=10.0)
    assert result.ok and result.status == "ok"
    assert result.baseline == pytest.approx(100.0)
    assert result.n_prior == 3


def test_gate_fails_on_injected_twenty_percent_regression(tmp_path):
    path = tmp_path / "HISTORY.jsonl"
    _seed(path, [100.0, 102.0, 98.0])
    append_entry(path, _entry(80.0))  # 20% below the trailing median
    (result,) = bench_check(path, threshold_pct=10.0)
    assert not result.ok
    assert result.status == "regression"
    assert result.change_pct == pytest.approx(-20.0)
    assert "regression" in result.describe()


def test_gate_direction_awareness_for_lower_is_better_metrics(tmp_path):
    path = tmp_path / "HISTORY.jsonl"
    kwargs = dict(bench="obs_overhead", metric="noop_span_ns", higher_is_better=False)
    _seed(path, [100.0, 100.0, 100.0, 120.0], **kwargs)  # 20% slower span
    (result,) = bench_check(path, threshold_pct=10.0)
    assert result.status == "regression"
    assert result.change_pct == pytest.approx(-20.0)  # normalized: + = better
    _seed(path, [80.0], **kwargs)  # faster is an improvement
    (result,) = bench_check(path, threshold_pct=10.0)
    assert result.status == "ok"


def test_smoke_and_full_runs_are_separate_lineages(tmp_path):
    path = tmp_path / "HISTORY.jsonl"
    _seed(path, [100.0, 100.0])
    _seed(path, [10.0, 5.0], smoke=True)  # smoke collapse must not gate full
    results = {(r.smoke): r for r in bench_check(path, threshold_pct=10.0)}
    assert results[False].status == "ok"
    assert results[True].status == "regression"


def test_gate_with_no_prior_entries_passes_as_insufficient_history(tmp_path):
    path = tmp_path / "HISTORY.jsonl"
    _seed(path, [100.0])
    (result,) = bench_check(path)
    assert result.status == "insufficient-history"
    assert result.ok
    assert "no prior entries" in result.describe()


def test_gate_on_missing_file_and_bench_filter(tmp_path):
    assert bench_check(tmp_path / "missing.jsonl") == []
    path = tmp_path / "HISTORY.jsonl"
    _seed(path, [100.0, 100.0])
    _seed(path, [1.0, 1.0], bench="linklevel_throughput", metric="overall_speedup")
    results = bench_check(path, benches=["fleet_throughput"])
    assert [r.bench for r in results] == ["fleet_throughput"]


def test_load_history_rejects_malformed_and_newer_schema(tmp_path):
    path = tmp_path / "HISTORY.jsonl"
    path.write_text("not json\n", encoding="utf-8")
    with pytest.raises(ValueError):
        load_history(path)
    path.write_text(json.dumps({"schema": 999, "bench": "x", "metric": "m",
                                "value": 1.0}) + "\n", encoding="utf-8")
    with pytest.raises(ValueError):
        load_history(path)


def test_backfill_seeds_from_bench_json_and_is_idempotent(tmp_path):
    results_dir = tmp_path / "results"
    results_dir.mkdir()
    (results_dir / "BENCH_fleet_throughput.json").write_text(
        json.dumps({"headline": {"fast": {"requests_per_sec": 55.0}}}),
        encoding="utf-8",
    )
    (results_dir / "BENCH_unrelated.json").write_text("{}", encoding="utf-8")
    history = tmp_path / "HISTORY.jsonl"

    first = backfill(results_dir, history)
    assert [e.bench for e in first] == ["fleet_throughput"]
    (loaded,) = load_history(history)
    assert loaded.detail["backfilled_from"] == "BENCH_fleet_throughput.json"

    assert backfill(results_dir, history) == []  # second run: no duplicates
    assert len(load_history(history)) == 1


def test_committed_results_backfill_cleanly_and_pass_the_gate(tmp_path):
    """The repo's own BENCH_*.json snapshots must feed the gate."""
    results_dir = Path(__file__).resolve().parents[2] / "benchmarks" / "results"
    history = tmp_path / "HISTORY.jsonl"
    entries = backfill(results_dir, history)
    assert {e.bench for e in entries} >= {"fleet_throughput", "linklevel_throughput"}
    assert all(r.ok for r in bench_check(history))


def test_headline_registry_entries_are_well_formed():
    for bench, (metric, extractor, higher_is_better, unit) in HEADLINES.items():
        assert isinstance(metric, str) and metric
        assert callable(extractor) or isinstance(extractor, str)
        assert isinstance(higher_is_better, bool)
        assert isinstance(unit, str)
