"""Tests for the designspace search wiring (search_multiregion)."""

import json

import pytest

from repro.dfg.generators import multiregion_graph
from repro.dfg.library import default_library
from repro.fabric.device import XC2V3000
from repro.flows import SearchReport, search_multiregion
from repro.flows.pipeline import ArtifactCache
from repro.reconfig.architectures import case_b_processor


@pytest.fixture(scope="module")
def report():
    return search_multiregion(
        multiregion_graph(2, 2), default_library(), budget=60, seed=0
    )


def test_report_carries_the_fixed_frontier(report):
    assert isinstance(report, SearchReport)
    assert sorted(report.fixed) == list(range(1, max(report.fixed) + 1))
    assert all(c.makespan_ns > 0 for c in report.fixed.values())


def test_search_never_loses_to_the_fixed_sweep(report):
    """The tentpole acceptance bound: annealer <= best fixed point."""
    assert report.searched.total_ns <= report.best_fixed_cost_ns
    assert report.gain <= 1.0


def test_best_fixed_k_matches_the_frontier(report):
    k = report.best_fixed_k
    assert report.fixed[k].total_ns == report.best_fixed_cost_ns


def test_render_lists_every_frontier_point(report):
    text = report.render()
    for k in report.fixed:
        assert f"fixed k={k}" in text
    assert "gain vs best fixed" in text
    assert report.result.digest() in text


def test_to_dict_is_json_serializable(report):
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["graph"] == "multiregion2x2"
    assert payload["gain"] <= 1.0
    assert payload["searched"]["total_ns"] == report.searched.total_ns
    assert str(payload["best_fixed_k"]) in payload["fixed"]


def test_search_multiregion_is_deterministic():
    a = search_multiregion(multiregion_graph(2, 2), default_library(), budget=30, seed=3)
    b = search_multiregion(multiregion_graph(2, 2), default_library(), budget=30, seed=3)
    assert a.result.digest() == b.result.digest()
    assert a.searched.total_ns == b.searched.total_ns


def test_tiny_budget_falls_back_to_the_frontier():
    """With budget=1 only the start point is evaluated; the report must
    still honour the <=-best-fixed guarantee via the frontier fallback."""
    report = search_multiregion(
        multiregion_graph(2, 2), default_library(), budget=1, seed=0, restarts=1
    )
    assert report.searched.total_ns <= report.best_fixed_cost_ns


def test_alternate_device_and_architecture_flow_through():
    report = search_multiregion(
        multiregion_graph(2, 2),
        default_library(),
        device=XC2V3000,
        architecture=case_b_processor(),
        budget=20,
        seed=0,
    )
    assert report.device == "xc2v3000"
    assert report.architecture == case_b_processor().name


def test_shared_cache_skips_repeat_evaluations():
    cache = ArtifactCache()
    search_multiregion(
        multiregion_graph(2, 2), default_library(), budget=20, seed=1, cache=cache
    )
    before = cache.stats.hits
    search_multiregion(
        multiregion_graph(2, 2), default_library(), budget=20, seed=1, cache=cache
    )
    assert cache.stats.hits > before


def test_method_is_forwarded():
    report = search_multiregion(
        multiregion_graph(2, 2), default_library(), method="greedy", budget=20, seed=0
    )
    assert report.method == "greedy"
    assert report.result.method == "greedy"
