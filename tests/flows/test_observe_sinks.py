"""Observer sinks: JSONL file handling, composite fault isolation, profiles."""

import json
import logging

import pytest

from repro.flows.observe import (
    CompositeObserver,
    FlowEvent,
    JsonLinesObserver,
    RecordingObserver,
    render_profile,
)


def make_event(stage="adequation", cache_hit=False, wall=0.002, flow="f@a"):
    return FlowEvent(
        flow=flow, stage=stage, cache_hit=cache_hit, wall_time_s=wall,
        fingerprint="deadbeef" * 8, metrics={"n": 1},
    )


# -- JsonLinesObserver --------------------------------------------------------


def test_jsonl_path_target_uses_one_handle(tmp_path):
    target = tmp_path / "events.jsonl"
    with JsonLinesObserver(target) as observer:
        first_stream = observer._stream
        observer.on_event(make_event(stage="a"))
        observer.on_event(make_event(stage="b", cache_hit=True))
        assert observer._stream is first_stream  # no reopen per event
        # flushed per line: visible to concurrent readers before close
        lines = target.read_text().splitlines()
        assert len(lines) == 2
    assert first_stream.closed
    rows = [json.loads(line) for line in target.read_text().splitlines()]
    assert [r["stage"] for r in rows] == ["a", "b"]
    assert rows[1]["status"] == "hit"


def test_jsonl_appends_across_observers(tmp_path):
    target = tmp_path / "events.jsonl"
    with JsonLinesObserver(target) as observer:
        observer.on_event(make_event(stage="a"))
    with JsonLinesObserver(target) as observer:
        observer.on_event(make_event(stage="b"))
    assert len(target.read_text().splitlines()) == 2


def test_jsonl_close_is_idempotent(tmp_path):
    observer = JsonLinesObserver(tmp_path / "e.jsonl")
    observer.close()
    observer.close()


def test_jsonl_stream_target_not_closed():
    import io

    stream = io.StringIO()
    with JsonLinesObserver(stream) as observer:
        observer.on_event(make_event())
    assert not stream.closed
    assert json.loads(stream.getvalue())["flow"] == "f@a"


# -- CompositeObserver fault isolation ---------------------------------------


class _Broken:
    def __init__(self):
        self.calls = 0

    def on_event(self, event):
        self.calls += 1
        raise RuntimeError("sink down")


def test_composite_isolates_raising_observer(caplog):
    broken, recorder = _Broken(), RecordingObserver()
    composite = CompositeObserver(broken, recorder)
    with caplog.at_level(logging.ERROR, logger="repro.flows"):
        composite.on_event(make_event(stage="a"))
        composite.on_event(make_event(stage="b"))
    # The run survived and the healthy sink saw every event.
    assert [e.stage for e in recorder.events] == ["a", "b"]
    # The broken sink kept being offered events but was logged only once.
    assert broken.calls == 2
    failures = [r for r in caplog.records if "raised on" in r.message]
    assert len(failures) == 1
    assert "_Broken" in failures[0].getMessage()


def test_composite_logs_each_distinct_failing_observer(caplog):
    first, second = _Broken(), _Broken()
    composite = CompositeObserver(first, second)
    with caplog.at_level(logging.ERROR, logger="repro.flows"):
        composite.on_event(make_event())
        composite.on_event(make_event())
    assert len([r for r in caplog.records if "raised on" in r.message]) == 2


# -- render_profile -----------------------------------------------------------


def _sweep_events():
    return [
        make_event(stage="adequation", cache_hit=False, wall=0.004),
        make_event(stage="adequation", cache_hit=True, wall=0.001),
        make_event(stage="modular_backend", cache_hit=False, wall=0.010),
        make_event(stage="adequation", cache_hit=True, wall=0.001),
    ]


def test_render_profile_default_is_per_event():
    text = render_profile(_sweep_events())
    assert len([line for line in text.splitlines() if "adequation" in line]) == 3


def test_render_profile_aggregate_groups_by_stage():
    text = render_profile(_sweep_events(), aggregate=True)
    lines = text.splitlines()
    assert lines[0].split() == ["stage", "count", "hits", "rate", "total", "mean"]
    # Busiest stage first.
    assert lines[1].startswith("modular_backend")
    adequation = next(line for line in lines if line.startswith("adequation"))
    fields = adequation.split()
    assert fields[1] == "3" and fields[2] == "2" and fields[3] == "67%"
    assert pytest.approx(float(fields[4]), abs=0.01) == 6.0  # total ms
    assert pytest.approx(float(fields[6]), abs=0.01) == 2.0  # mean ms
    total = lines[-1].split()
    assert total[0] == "total" and total[1] == "4" and total[2] == "2"


def test_render_profile_empty():
    assert "no stage events" in render_profile([])
    assert "no stage events" in render_profile([], aggregate=True)


def test_jsonl_closed_handle_degrades_to_one_warning(tmp_path, caplog):
    """A handle closed under the observer must not crash the run.

    Interpreter shutdown (or an aggressive caller) can close the stream
    while late stage events are still in flight; the sink logs one warning,
    marks itself dead and swallows everything after that.
    """
    target = tmp_path / "events.jsonl"
    observer = JsonLinesObserver(target)
    observer.on_event(make_event(stage="a"))
    observer._stream.close()  # torn down underneath the observer
    with caplog.at_level(logging.WARNING, logger="repro.flows"):
        observer.on_event(make_event(stage="b"))  # must not raise
        observer.on_event(make_event(stage="c"))
    warnings = [r for r in caplog.records if "dropping further events" in r.message]
    assert len(warnings) == 1
    assert observer._dead
    observer.close()  # idempotent even with the stream already closed
    rows = [json.loads(line) for line in target.read_text().splitlines()]
    assert [r["stage"] for r in rows] == ["a"]  # only the pre-close event
