"""Tests for the dynamic-module constraints file."""

import pytest

from repro.flows import ConstraintsError, parse_constraints
from repro.mccdma.casestudy import build_mccdma_graph

GOOD = """
# MC-CDMA transmitter dynamic modules
[module mod_qpsk]
region    = D1
operation = mod_qpsk
loading   = runtime
unloading = on_switch

[module mod_qam16]
region    = D1
operation = mod_qam16

[region D1]
sharing   = true
exclusive = mod_qpsk, mod_qam16
"""


def test_parse_good_file():
    cons = parse_constraints(GOOD)
    assert set(cons.modules) == {"mod_qpsk", "mod_qam16"}
    assert cons.modules["mod_qpsk"].loading == "runtime"
    assert cons.modules["mod_qam16"].unloading == "on_switch"  # default
    assert cons.regions["D1"].sharing
    assert cons.regions["D1"].exclusive == ["mod_qpsk", "mod_qam16"]
    assert [m.name for m in cons.modules_of_region("D1")] == ["mod_qpsk", "mod_qam16"]


def test_roundtrip_render_parse():
    cons = parse_constraints(GOOD)
    again = parse_constraints(cons.render())
    assert set(again.modules) == set(cons.modules)
    assert again.regions["D1"].exclusive == cons.regions["D1"].exclusive


def test_validates_against_case_study_graph():
    cons = parse_constraints(GOOD)
    cons.validate_against(build_mccdma_graph())  # no raise


def test_unknown_operation_rejected():
    cons = parse_constraints(GOOD.replace("operation = mod_qpsk", "operation = nonexistent"))
    with pytest.raises(ConstraintsError, match="unknown operation"):
        cons.validate_against(build_mccdma_graph())


def test_unconditioned_operation_rejected():
    text = """
[module bad]
region    = D1
operation = spreader
"""
    cons = parse_constraints(text)
    with pytest.raises(ConstraintsError, match="not conditioned"):
        cons.validate_against(build_mccdma_graph())


def test_non_exclusive_sharing_rejected():
    """Two modules in one region must be mutually exclusive alternatives."""
    text = """
[module a]
region    = D1
operation = mod_qpsk

[module b]
region    = D1
operation = spreader
"""
    cons = parse_constraints(text)
    with pytest.raises(ConstraintsError):
        cons.validate_against(build_mccdma_graph())


def test_sharing_disabled_with_multiple_modules_rejected():
    text = GOOD.replace("sharing   = true", "sharing   = false")
    cons = parse_constraints(text)
    with pytest.raises(ConstraintsError, match="sharing disabled"):
        cons.validate_against(build_mccdma_graph())


def test_exclusive_list_membership_checked():
    text = GOOD + "\n[region D2]\nexclusive = ghost\n"
    cons = parse_constraints(text)
    with pytest.raises(ConstraintsError, match="unknown module"):
        cons.validate_against(build_mccdma_graph())


def test_parse_errors():
    with pytest.raises(ConstraintsError, match="missing key"):
        parse_constraints("[module x]\nregion = D1\n")
    with pytest.raises(ConstraintsError, match="outside any section"):
        parse_constraints("region = D1\n")
    with pytest.raises(ConstraintsError, match="expected 'key = value'"):
        parse_constraints("[module x]\nnonsense\n")
    with pytest.raises(ConstraintsError, match="duplicate key"):
        parse_constraints("[module x]\nregion = D1\nregion = D2\n")
    with pytest.raises(ConstraintsError, match="duplicate module"):
        parse_constraints(
            "[module x]\nregion = D1\noperation = a\n[module x]\nregion = D1\noperation = b\n"
        )
    with pytest.raises(ConstraintsError, match="bad loading"):
        parse_constraints("[module x]\nregion = D1\noperation = a\nloading = sometimes\n")
    with pytest.raises(ConstraintsError, match="unterminated"):
        parse_constraints("[module x\n")
    with pytest.raises(ConstraintsError, match="sharing must be"):
        parse_constraints("[region D1]\nsharing = maybe\n")


def test_comments_and_blank_lines_ignored():
    text = "# leading comment\n\n[module m]\nregion = D1  # inline\noperation = op\n"
    cons = parse_constraints(text)
    assert cons.modules["m"].region == "D1"
