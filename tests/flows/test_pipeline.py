"""The staged flow pipeline: cache correctness and observability.

Covers the content-addressed :class:`ArtifactCache` (LRU + disk tier),
fingerprint stability across processes, key invalidation when any flow
input changes, warm-run cache hits for the full case study, the shared
cache of :func:`explore_design_space`, and the no-stdout guarantee of
library code.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.dfg.generators import layered_random_graph
from repro.dfg.library import DSP_CLASS, FPGA_CLASS, OperationLibrary, default_library
from repro.fabric.device import XC2V1000
from repro.flows import (
    STAGE_NAMES,
    ArtifactCache,
    DesignFlow,
    JsonLinesObserver,
    RecordingObserver,
    explore_design_space,
    parse_constraints,
)
from repro.aaa.scheduler import SynDExScheduler
from repro.arch.boards import sundance_board
from repro.mccdma.casestudy import build_mccdma_design, build_mccdma_graph

CONSTRAINTS = """
[module mod_qpsk]
region    = D1
operation = mod_qpsk

[module mod_qam16]
region    = D1
operation = mod_qam16

[region D1]
sharing   = true
exclusive = mod_qpsk, mod_qam16
"""


def case_study_flow(**overrides):
    design = build_mccdma_design()
    kwargs = dict(dynamic_constraints=parse_constraints(CONSTRAINTS))
    kwargs.update(overrides)
    flow = DesignFlow.from_design(design, **kwargs)
    flow.mapping.pin("bit_src", "DSP").pin("select", "DSP")
    return flow


def static_stage_keys(flow):
    """Derivation keys of the stages whose keys don't need run artefacts."""
    flow._apply_dynamic_constraints()
    pipeline = flow.build_pipeline()
    by_name = {s.name: s for s in pipeline.stages}
    return {
        name: by_name[name].key({})
        for name in ("modelisation", "adequation", "vhdl_generation", "modular_backend")
    }


# -- ArtifactCache -----------------------------------------------------------------


def test_cache_lru_eviction_and_stats():
    cache = ArtifactCache(max_entries=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refreshes "a": "b" is now the LRU entry
    cache.put("c", 3)
    assert len(cache) == 2
    assert cache.get("b") is None
    assert cache.get("a") == 1 and cache.get("c") == 3
    assert cache.stats.evictions == 1
    assert cache.stats.misses == 1
    assert cache.stats.hits == 3
    assert 0 < cache.stats.hit_rate() < 1


def test_cache_disk_tier_survives_process_state(tmp_path):
    first = ArtifactCache(disk_dir=tmp_path)
    first.put("key1", {"makespan": 42})
    # A brand-new cache over the same directory starts warm.
    second = ArtifactCache(disk_dir=tmp_path)
    assert second.get("key1") == {"makespan": 42}
    assert second.stats.hits == 1
    assert second.get("missing") is None


def test_cache_rejects_bad_capacity():
    with pytest.raises(ValueError):
        ArtifactCache(max_entries=0)


# -- fingerprint stability ---------------------------------------------------------

_FINGERPRINT_SNIPPET = """
from repro.dfg.library import default_library
from repro.flows.pipeline import fingerprint_architecture, fingerprint_graph, fingerprint_library
from repro.arch.boards import sundance_board
from repro.mccdma.casestudy import build_mccdma_graph

print(fingerprint_graph(build_mccdma_graph()))
print(fingerprint_architecture(sundance_board().architecture))
print(fingerprint_library(default_library()))
"""


def test_fingerprints_stable_across_processes():
    """Digests must not depend on process-local state (hash seed, id)."""
    from repro.flows.pipeline import (
        fingerprint_architecture,
        fingerprint_graph,
        fingerprint_library,
    )

    local = [
        fingerprint_graph(build_mccdma_graph()),
        fingerprint_architecture(sundance_board().architecture),
        fingerprint_library(default_library()),
    ]
    proc = subprocess.run(
        [sys.executable, "-c", _FINGERPRINT_SNIPPET],
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONHASHSEED": "random"},
        check=True,
    )
    assert proc.stdout.split() == local


def test_stage_keys_reproducible_between_flow_objects():
    assert static_stage_keys(case_study_flow()) == static_stage_keys(case_study_flow())


# -- key invalidation --------------------------------------------------------------


def test_graph_change_invalidates_from_modelisation():
    board = sundance_board()
    lib = default_library()
    k1 = static_stage_keys(
        DesignFlow(graph=layered_random_graph(4, 3, seed=1), board=board, library=lib)
    )
    k2 = static_stage_keys(
        DesignFlow(graph=layered_random_graph(4, 3, seed=2), board=sundance_board(), library=lib)
    )
    assert all(k1[name] != k2[name] for name in k1)


def test_library_change_invalidates_adequation():
    def library(fir_cycles):
        lib = OperationLibrary()
        for kind, cycles in (("src", {DSP_CLASS: 100}), ("fir", {FPGA_CLASS: fir_cycles})):
            lib.define(kind, cycles, {"luts": 10, "ffs": 10})
        return lib

    graph = layered_random_graph(3, 2, seed=5)
    flows = [
        DesignFlow(graph=graph, board=sundance_board(), library=library(c)) for c in (300, 301)
    ]
    k1, k2 = (static_stage_keys(f) for f in flows)
    assert k1["modelisation"] != k2["modelisation"]  # validate_graph reads the library
    assert k1["adequation"] != k2["adequation"]


def test_scheduler_and_prefetch_change_invalidates_adequation_only():
    base = static_stage_keys(case_study_flow())
    other_sched = static_stage_keys(case_study_flow(scheduler=SynDExScheduler))
    no_prefetch = static_stage_keys(case_study_flow(prefetch=False))
    for changed in (other_sched, no_prefetch):
        assert changed["modelisation"] == base["modelisation"]
        assert changed["adequation"] != base["adequation"]
        assert changed["vhdl_generation"] != base["vhdl_generation"]  # downstream


def test_dynamic_constraints_change_invalidates_modelisation():
    relaxed = parse_constraints(CONSTRAINTS.replace("loading   = runtime", ""))
    startup = parse_constraints(
        CONSTRAINTS.replace("operation = mod_qpsk", "operation = mod_qpsk\nloading   = startup")
    )
    k1 = static_stage_keys(case_study_flow(dynamic_constraints=relaxed))
    k2 = static_stage_keys(case_study_flow(dynamic_constraints=startup))
    assert k1["modelisation"] != k2["modelisation"]


def test_device_change_keeps_upstream_keys():
    """Swapping the FPGA part must invalidate only the modular back-end."""
    design = build_mccdma_design()
    small = case_study_flow()
    big = case_study_flow()
    big.board = sundance_board(device=XC2V1000)
    k_small, k_big = static_stage_keys(small), static_stage_keys(big)
    assert k_small["modelisation"] == k_big["modelisation"]
    assert k_small["adequation"] == k_big["adequation"]
    assert k_small["vhdl_generation"] == k_big["vhdl_generation"]
    assert k_small["modular_backend"] != k_big["modular_backend"]
    assert design.board.name == big.board.name  # same platform, different part


# -- warm runs over the full case study --------------------------------------------


def test_warm_rerun_hits_every_stage():
    cache = ArtifactCache()
    recorder = RecordingObserver()
    case_study_flow(cache=cache, observer=recorder).run()
    assert recorder.executions() == len(STAGE_NAMES)
    assert recorder.hits() == 0

    recorder.clear()
    result = case_study_flow(cache=cache, observer=recorder).run()
    assert [e.stage for e in recorder.events] == list(STAGE_NAMES)
    assert recorder.hits() == len(STAGE_NAMES)
    assert recorder.executions() == 0
    assert result.makespan_ns > 0
    # The FlowResult carries its own events for profiling.
    assert all(e.cache_hit for e in result.events)


def test_input_change_invalidates_warm_cache_at_runtime():
    cache = ArtifactCache()
    case_study_flow(cache=cache).run()
    recorder = RecordingObserver()
    case_study_flow(cache=cache, prefetch=False, observer=recorder).run()
    assert recorder.hits("modelisation") == 1
    assert recorder.executions("adequation") == 1
    assert recorder.executions("adequation_refine") == 1


# -- shared cache across the design space ------------------------------------------


def sweep(share_cache):
    recorder = RecordingObserver()
    points = explore_design_space(
        build_mccdma_graph(),
        default_library(),
        dynamic_constraints=parse_constraints(CONSTRAINTS),
        configure_flow=lambda flow: flow.mapping.pin("bit_src", "DSP").pin("select", "DSP"),
        share_cache=share_cache,
        observer=recorder,
    )
    return points, recorder


def test_designspace_shared_cache_halves_adequation_executions():
    """Acceptance criterion: >= 2x fewer adequation executions when shared."""
    cold_points, cold = sweep(share_cache=False)
    warm_points, warm = sweep(share_cache=True)
    assert len(cold_points) == len(warm_points) == 6  # stock 3-device x 2-arch grid
    assert cold.executions("adequation") >= 2 * warm.executions("adequation")
    assert warm.executions("adequation") == 1  # one first-pass adequation for the sweep
    assert warm.executions("vhdl_generation") == 1
    assert warm.executions("modelisation") == 1
    # Identical results either way.
    for a, b in zip(cold_points, warm_points):
        assert (a.device, a.architecture, a.makespan_ns) == (b.device, b.architecture, b.makespan_ns)
        assert a.reconfig_latency_ns == b.reconfig_latency_ns


# -- observability -----------------------------------------------------------------


def test_library_code_writes_nothing_to_stdout(capsys):
    """The observer/logging channel replaces bare prints: a full flow run
    must leave stdout and stderr untouched."""
    case_study_flow().run()
    captured = capsys.readouterr()
    assert captured.out == ""
    assert captured.err == ""


def test_jsonl_observer_writes_one_event_per_stage(tmp_path):
    target = tmp_path / "events.jsonl"
    case_study_flow(observer=JsonLinesObserver(target)).run()
    lines = target.read_text().splitlines()
    assert len(lines) == len(STAGE_NAMES)
    events = [json.loads(line) for line in lines]
    assert [e["stage"] for e in events] == list(STAGE_NAMES)
    for event in events:
        assert event["status"] in ("hit", "miss")
        assert len(event["fingerprint"]) == 64


def test_flow_result_to_dict_is_json_safe():
    result = case_study_flow().run()
    payload = json.loads(json.dumps(result.to_dict()))
    assert payload["graph"] == "mccdma_tx"
    assert payload["regions"]["D1"]["reconfig_latency_ns"] > 0
    assert len(payload["stages"]) == len(STAGE_NAMES)
    assert payload["makespan_ns"] == result.makespan_ns
