"""Integration tests: the complete design flow and runtime simulation."""

import numpy as np
import pytest

from repro.flows import DesignFlow, SystemSimulation, parse_constraints, table1_report
from repro.flows.report import build_table1
from repro.codegen import check_vhdl
from repro.mccdma import Modulation, SnrTrace
from repro.mccdma.bindings import make_case_study_bindings, reference_symbol
from repro.mccdma.casestudy import build_mccdma_design
from repro.reconfig import (
    HistoryPrefetchPolicy,
    NoPrefetchPolicy,
    OnSelectPrefetchPolicy,
    case_b_processor,
)

CONSTRAINTS = """
[module mod_qpsk]
region    = D1
operation = mod_qpsk

[module mod_qam16]
region    = D1
operation = mod_qam16

[region D1]
sharing   = true
exclusive = mod_qpsk, mod_qam16
"""


@pytest.fixture(scope="module")
def flow_result():
    design = build_mccdma_design()
    flow = DesignFlow.from_design(design, dynamic_constraints=parse_constraints(CONSTRAINTS))
    flow.mapping.pin("bit_src", "DSP").pin("select", "DSP")
    return flow.run()


def test_flow_places_modulators_on_region(flow_result):
    mapping = flow_result.adequation.schedule.mapping()
    assert mapping["mod_qpsk"] == "D1"
    assert mapping["mod_qam16"] == "D1"


def test_flow_region_matches_paper_scale(flow_result):
    """Paper: dynamic region 8% of the XC2V2000, reconfiguration ≈ 4 ms."""
    area = flow_result.modular.region_area_fraction("D1")
    assert 0.03 <= area <= 0.125
    latency_ms = flow_result.region_latency_ns("D1") / 1e6
    assert 1.5 <= latency_ms <= 5.0


def test_flow_par_passes_and_bitstreams_exist(flow_result):
    assert flow_result.modular.par_report.ok, flow_result.modular.par_report.problems
    keys = set(flow_result.modular.bitstreams)
    assert ("D1", "dyn_D1_mod_qpsk") in keys
    assert ("D1", "dyn_D1_mod_qam16") in keys
    for bs in flow_result.modular.bitstreams.values():
        assert bs.verify_crc()
        assert bs.partial


def test_flow_generated_vhdl_checks(flow_result):
    check_vhdl(flow_result.generated.files)
    assert "AREA_GROUP" in flow_result.modular.ucf


def test_flow_refinement_uses_measured_latency(flow_result):
    recs = flow_result.adequation.schedule.reconfigs_of("D1")
    assert recs
    measured = flow_result.region_latency_ns("D1")
    for r in recs:
        assert r.duration == measured


def test_flow_report_renders(flow_result):
    text = flow_result.report()
    assert "Design flow report" in text
    assert "final makespan" in text
    assert "reconfiguration" in text


def test_runtime_simulation_prefetch_beats_reactive(flow_result):
    """The paper's headline runtime claim: prefetching minimizes the
    reconfiguration latency.  Prefetch = the region issues its
    reconfiguration request as soon as the Select value is known, before the
    symbol's data has worked through the upstream pipeline; reactive = the
    request fires only when the data arrives at the modulation block."""
    design = build_mccdma_design()
    reactive_flow = DesignFlow.from_design(
        design, dynamic_constraints=parse_constraints(CONSTRAINTS), prefetch=False
    ).run()
    plan = ([Modulation.QPSK] * 4 + [Modulation.QAM16] * 4) * 4
    results = {}
    for name, flow in (("prefetch", flow_result), ("reactive", reactive_flow)):
        sim = SystemSimulation(
            flow,
            n_iterations=len(plan),
            selector_values={"modulation": lambda it: plan[it]},
        )
        results[name] = sim.run()
    prefetch, reactive = results["prefetch"], results["reactive"]
    assert reactive.switches == prefetch.switches == 8  # 7 changes + initial load
    # The loads themselves take the same ~4 ms; prefetching starts them as
    # soon as Select is known, overlapping the upstream pipeline, so the
    # end-to-end time shrinks by roughly (pipeline depth) x (switches).
    assert prefetch.total_stall_ns <= reactive.total_stall_ns
    assert prefetch.end_time_ns < reactive.end_time_ns


def test_runtime_on_select_speculation_can_thrash(flow_result):
    """Documented hazard: manager-side on-select speculation is issued from
    the DSP out of region order, so with a deeply pipelined executive it can
    evict a module the in-flight iteration still needs, causing reloads.
    The manager stays functionally correct (every iteration completes), but
    the naive speculation must never be silently treated as a win."""
    plan = ([Modulation.QPSK] * 4 + [Modulation.QAM16] * 4) * 2
    safe = SystemSimulation(
        flow_result, n_iterations=len(plan),
        selector_values={"modulation": lambda it: plan[it]},
        policy=NoPrefetchPolicy(),
    ).run()
    speculative = SystemSimulation(
        flow_result, n_iterations=len(plan),
        selector_values={"modulation": lambda it: plan[it]},
        policy=OnSelectPrefetchPolicy(),
    ).run()
    assert speculative.n_iterations == safe.n_iterations
    # The speculative run performs at least as many loads as the safe run.
    spec_loads = speculative.manager_stats.demand_loads + speculative.manager_stats.prefetch_loads
    safe_loads = safe.manager_stats.demand_loads + safe.manager_stats.prefetch_loads
    assert spec_loads >= safe_loads


def test_runtime_history_policy_on_periodic_pattern(flow_result):
    plan = [Modulation.QPSK, Modulation.QAM16] * 10  # perfectly predictable
    sim = SystemSimulation(
        flow_result,
        n_iterations=len(plan),
        selector_values={"modulation": lambda it: plan[it]},
        policy=HistoryPrefetchPolicy(min_confidence=0.5),
    )
    result = sim.run()
    assert result.manager_stats.useful_prefetches > 0


def test_runtime_no_switch_no_stall_after_first(flow_result):
    plan = [Modulation.QPSK] * 10
    sim = SystemSimulation(
        flow_result,
        n_iterations=len(plan),
        selector_values={"modulation": lambda it: plan[it]},
        policy=NoPrefetchPolicy(),
    )
    result = sim.run()
    assert result.switches == 1  # only the initial load
    assert result.manager_stats.demand_loads <= 1


def test_runtime_case_b_slower_than_case_a(flow_result):
    design = build_mccdma_design()
    flow_b = DesignFlow.from_design(
        design,
        dynamic_constraints=parse_constraints(CONSTRAINTS),
        reconfig_architecture=case_b_processor(),
    )
    result_b = flow_b.run()
    assert result_b.region_latency_ns("D1") > flow_result.region_latency_ns("D1")


def test_functional_verification_against_reference(flow_result):
    """End-to-end dynamic verification: the samples leaving the simulated
    DAC equal the monolithic numpy reference, iteration by iteration,
    across modulation switches."""
    snr = SnrTrace.step(low_db=8.0, high_db=22.0, period=3, n=12)
    state = make_case_study_bindings(snr, seed=7)
    sim = SystemSimulation(
        flow_result,
        n_iterations=12,
        bindings=state.bindings,
        capture={"dac", "mod_out"},
    )
    result = sim.run()
    captured = result.execution.captured["dac"]
    assert len(captured) == 12
    assert len(state.selected) == 12
    # Both modulations were exercised.
    assert {m for m in state.selected} == {Modulation.QPSK, Modulation.QAM16}
    for it in range(12):
        samples = captured[it]["samples"]
        expected = reference_symbol(state.source_bits[it], state.selected[it])
        assert samples is not None
        assert np.allclose(samples, expected), f"iteration {it} diverged"


def test_table1_shape(flow_result):
    design = build_mccdma_design()
    data = build_table1(design.library, flow=flow_result)
    qpsk_fix = data.row("QPSK fix").resources
    qam_fix = data.row("QAM-16 fix").resources
    qpsk_dyn = data.row("QPSK dyn").resources
    qam_dyn = data.row("QAM-16 dyn").resources
    # Paper's Table 1 shape: dynamic scheme costs more resources...
    assert qpsk_dyn.slices > qpsk_fix.slices
    assert qam_dyn.slices > qam_fix.slices
    assert qpsk_dyn.luts > qpsk_fix.luts and qam_dyn.ffs > qam_fix.ffs
    # ...QAM-16 is the bigger modulator either way...
    assert qam_fix.slices > qpsk_fix.slices
    # ...fixed blocks need no reconfiguration; dynamic takes ≈4 ms.
    assert data.row("QPSK fix").reconfig_time_ms == 0
    assert 1.5 <= data.row("QPSK dyn").reconfig_time_ms <= 5.0
    text = data.render()
    assert "Slices" in text and "Reconfiguration time" in text


def test_table1_report_without_flow():
    design = build_mccdma_design()
    text = table1_report(design.library)
    assert "QPSK dyn" in text and "4.0 ms" in text
