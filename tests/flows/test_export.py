"""Tests for executive serialization and the build-directory export."""

import pytest

from repro.executive import ExecutiveRunner
from repro.executive import io as executive_io
from repro.flows import DesignFlow, parse_constraints
from repro.flows.export import export_build_directory
from repro.mccdma import Modulation
from repro.mccdma.casestudy import build_mccdma_design

CONSTRAINTS = """
[module mod_qpsk]
region    = D1
operation = mod_qpsk

[module mod_qam16]
region    = D1
operation = mod_qam16

[region D1]
sharing   = true
exclusive = mod_qpsk, mod_qam16
"""


@pytest.fixture(scope="module")
def flow_result():
    design = build_mccdma_design()
    flow = DesignFlow.from_design(
        design, dynamic_constraints=parse_constraints(CONSTRAINTS)
    )
    flow.mapping.pin("bit_src", "DSP").pin("select", "DSP")
    return flow.run()


def test_executive_json_roundtrip(flow_result):
    program = flow_result.executive
    back = executive_io.loads(executive_io.dumps(program))
    assert back.render() == program.render()
    assert back.edge_hops == program.edge_hops
    assert back.input_sources == program.input_sources
    # Enum condition values survive (Modulation members, not strings).
    values = back.condition_groups["modulation"]
    assert set(values) == {Modulation.QPSK, Modulation.QAM16}
    assert back.case_modules["modulation"][Modulation.QPSK]["D1"] == "mod_qpsk"


def test_reloaded_executive_simulates_identically(flow_result):
    program = flow_result.executive
    back = executive_io.loads(executive_io.dumps(program))
    plan = [Modulation.QPSK, Modulation.QAM16] * 2

    def run(p):
        report = ExecutiveRunner(
            p, n_iterations=len(plan),
            selector_values={"modulation": lambda it: plan[it]},
        ).run()
        return report.end_time_ns

    assert run(program) == run(back)


def test_executive_format_guards():
    with pytest.raises(executive_io.ExecutiveFormatError, match="invalid JSON"):
        executive_io.loads("{")
    with pytest.raises(executive_io.ExecutiveFormatError, match="not a repro"):
        executive_io.from_dict({"format": "x"})
    with pytest.raises(executive_io.ExecutiveFormatError, match="version"):
        executive_io.from_dict({"format": "repro-executive", "version": 7})
    with pytest.raises(executive_io.ExecutiveFormatError, match="unknown instruction"):
        executive_io.from_dict(
            {
                "format": "repro-executive",
                "version": 1,
                "operator_code": {"A": [{"type": "teleport"}]},
            }
        )


def test_export_build_directory(flow_result, tmp_path):
    written = export_build_directory(flow_result, tmp_path)
    relative = {str(p.relative_to(tmp_path)) for p in written}
    for expected in (
        "hdl/static_f1.vhd",
        "hdl/dyn_d1_mod_qpsk.vhd",
        "hdl/tb_dyn_d1_mod_qpsk.vhd",
        "constraints/top.ucf",
        "executive/macrocode.txt",
        "executive/executive.json",
        "models/algorithm.json",
        "models/board.json",
        "models/dynamic.constraints",
        "bitstreams/D1_dyn_D1_mod_qpsk.bit",
        "reports/flow.txt",
        "reports/synthesis.txt",
        "reports/par.txt",
    ):
        assert expected in relative, expected
    # The exported bitstream has the size the model predicts (address words
    # add 4 bytes per frame on top of the payload).
    bit = tmp_path / "bitstreams/D1_dyn_D1_mod_qpsk.bit"
    bs = flow_result.modular.bitstreams[("D1", "dyn_D1_mod_qpsk")]
    expected_size = sum(4 + len(f.payload) for f in bs.frames)
    assert bit.stat().st_size == expected_size
    # The exported models reload.
    from repro.arch import io as arch_io
    from repro.dfg import io as dfg_io

    graph = dfg_io.load(tmp_path / "models/algorithm.json")
    assert "mod_qpsk" in graph
    board = arch_io.load(tmp_path / "models/board.json")
    assert board.regions() == ["D1"]
    program = executive_io.load(tmp_path / "executive/executive.json")
    assert program.render() == flow_result.executive.render()


def test_export_without_optional_parts(flow_result, tmp_path):
    written = export_build_directory(
        flow_result, tmp_path, include_bitstreams=False, include_testbenches=False
    )
    relative = {str(p.relative_to(tmp_path)) for p in written}
    assert not any(r.startswith("bitstreams/") for r in relative)
    assert not any("tb_" in r for r in relative)
