"""Static-vs-runtime consistency: the numbers the scheduler plans with are
the numbers the simulated hardware delivers."""

import pytest

from repro.flows import DesignFlow, SystemSimulation, parse_constraints
from repro.mccdma import Modulation
from repro.mccdma.casestudy import build_mccdma_design

CONSTRAINTS = """
[module mod_qpsk]
region    = D1
operation = mod_qpsk

[module mod_qam16]
region    = D1
operation = mod_qam16

[region D1]
sharing   = true
exclusive = mod_qpsk, mod_qam16
"""


@pytest.fixture(scope="module")
def flow_result():
    design = build_mccdma_design()
    flow = DesignFlow.from_design(
        design, dynamic_constraints=parse_constraints(CONSTRAINTS)
    )
    flow.mapping.pin("bit_src", "DSP").pin("select", "DSP")
    return flow.run()


def test_scheduled_reconfig_duration_equals_runtime_load(flow_result):
    """The refined schedule's reconfiguration intervals use exactly the
    latency the runtime manager then measures per demand load."""
    scheduled = {r.duration for r in flow_result.adequation.schedule.reconfigs_of("D1")}
    assert len(scheduled) == 1
    planned = scheduled.pop()

    plan = [Modulation.QPSK, Modulation.QAM16] * 3
    run = SystemSimulation(
        flow_result, n_iterations=len(plan),
        selector_values={"modulation": lambda it: plan[it]},
    ).run()
    # Every demand load stalls for exactly the planned latency (reconfigure_
    # is issued when Select is known and the region idle, so nothing hides).
    loads = run.manager_stats.demand_loads
    assert loads == len(plan)
    per_load = run.total_stall_ns / loads
    assert per_load == pytest.approx(planned, rel=0.01)


def test_flow_latency_equals_architecture_estimate(flow_result):
    """FlowResult.region_latency_ns is the Fig. 2 architecture's analytic
    estimate for the floorplanned bitstream size."""
    arch = flow_result.modular.reconfig_architecture
    nbytes = flow_result.modular.floorplan.partial_bitstream_bytes("D1")
    assert flow_result.region_latency_ns("D1") == arch.estimate_latency_ns(nbytes)


def test_runtime_first_iteration_latency_close_to_makespan(flow_result):
    """One simulated iteration (including its reconfiguration) completes at
    the scheduled makespan within the request-latency rounding."""
    run = SystemSimulation(
        flow_result, n_iterations=1,
        selector_values={"modulation": lambda it: Modulation.QPSK},
    ).run()
    assert run.end_time_ns == pytest.approx(flow_result.makespan_ns, rel=0.02)
