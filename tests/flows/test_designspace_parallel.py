"""Parallel design-space exploration: jobs>1 delegates to the sweep engine."""

import pytest

from repro.dfg.library import default_library
from repro.fabric import XC2V1000, XC2V2000
from repro.flows import parse_constraints
from repro.flows.designspace import (
    design_point_from_payload,
    explore_design_space,
    sweep_jobs_for_grid,
)
from repro.mccdma.casestudy import build_mccdma_graph
from repro.reconfig import case_a_standalone, case_b_processor

CONSTRAINTS = parse_constraints("""
[module mod_qpsk]
region    = D1
operation = mod_qpsk

[module mod_qam16]
region    = D1
operation = mod_qam16

[region D1]
sharing   = true
exclusive = mod_qpsk, mod_qam16
""")

PINS = (("bit_src", "DSP"), ("select", "DSP"))


def explore(**kwargs):
    return explore_design_space(
        build_mccdma_graph(),
        default_library(),
        devices=(XC2V1000, XC2V2000),
        architectures=(case_a_standalone(), case_b_processor()),
        dynamic_constraints=CONSTRAINTS,
        pins=PINS,
        **kwargs,
    )


def point_key(p):
    return (
        p.device,
        p.architecture,
        p.fits,
        p.makespan_ns,
        p.clock_mhz,
        tuple(sorted(p.reconfig_latency_ns.items())),
        tuple(sorted(p.bitstream_bytes.items())),
    )


def test_parallel_exploration_matches_serial(tmp_path):
    serial = explore(cache_dir=tmp_path / "serial")
    parallel = explore(jobs=2, timeout_s=300, cache_dir=tmp_path / "parallel")
    assert len(parallel) == len(serial) == 4
    assert [point_key(p) for p in parallel] == [point_key(p) for p in serial]
    assert all(p.fits for p in parallel)


def test_pins_apply_in_serial_mode():
    points = explore()
    assert len(points) == 4 and all(p.fits for p in points)


def test_parallel_mode_rejects_unpicklable_configuration():
    with pytest.raises(ValueError, match="configure_flow"):
        explore(jobs=2, configure_flow=lambda flow: None)
    with pytest.raises(ValueError, match="keep_flow_results"):
        explore(jobs=2, keep_flow_results=True)


def test_sweep_jobs_enumerate_devices_major():
    jobs = sweep_jobs_for_grid(
        build_mccdma_graph(),
        default_library(),
        devices=(XC2V1000, XC2V2000),
        architectures=(case_a_standalone(), case_b_processor()),
        dynamic_constraints=CONSTRAINTS,
        pins=PINS,
    )
    assert [j.job_id for j in jobs] == [
        "xc2v1000@case_a_standalone",
        "xc2v1000@case_b_processor",
        "xc2v2000@case_a_standalone",
        "xc2v2000@case_b_processor",
    ]
    assert all(j.pins == PINS for j in jobs)


def test_failed_job_becomes_unfit_point():
    class FailedResult:
        job_id = "xc2v1000@case_a_standalone"
        ok = False
        attempts = 2
        error = "RuntimeError: boom"
        payload = None

    point = design_point_from_payload(FailedResult())
    assert point.device == "xc2v1000"
    assert point.architecture == "case_a_standalone"
    assert not point.fits
    assert "2 attempt(s)" in point.error and "boom" in point.error
