"""Runtime feature tests: startup loading, failure injection, traces."""

import pytest

from repro.flows import DesignFlow, SystemSimulation, parse_constraints
from repro.mccdma import Modulation
from repro.mccdma.casestudy import build_mccdma_design
from repro.reconfig import ReconfigError, ReconfigurationManager
from repro.reconfig.memory import BitstreamStore
from repro.reconfig.ports import ICAP_V2
from repro.reconfig.protocol import ProtocolConfigurationBuilder
from repro.sim import Simulator

STARTUP_CONSTRAINTS = """
[module mod_qpsk]
region    = D1
operation = mod_qpsk
loading   = startup

[module mod_qam16]
region    = D1
operation = mod_qam16

[region D1]
sharing   = true
exclusive = mod_qpsk, mod_qam16
"""


@pytest.fixture(scope="module")
def startup_flow():
    design = build_mccdma_design()
    flow = DesignFlow.from_design(
        design, dynamic_constraints=parse_constraints(STARTUP_CONSTRAINTS)
    )
    return flow.run()


def test_startup_module_listed(startup_flow):
    assert startup_flow.startup_modules() == {"D1": "mod_qpsk"}


def test_startup_loading_avoids_first_load(startup_flow):
    """With QPSK in the startup bitstream and a QPSK-only plan, the runtime
    performs zero reconfigurations."""
    result = SystemSimulation(
        startup_flow, n_iterations=6,
        selector_values={"modulation": lambda it: Modulation.QPSK},
    ).run()
    assert result.switches == 0
    assert result.total_stall_ns == 0


def test_startup_loading_still_swaps_on_change(startup_flow):
    plan = [Modulation.QPSK] * 3 + [Modulation.QAM16] * 3
    result = SystemSimulation(
        startup_flow, n_iterations=len(plan),
        selector_values={"modulation": lambda it: plan[it]},
    ).run()
    assert result.switches == 1  # only the QPSK -> QAM-16 swap


def test_preload_guards():
    sim = Simulator()
    store = BitstreamStore()
    store.register("D1", "a", 1_000)
    builder = ProtocolConfigurationBuilder(sim, ICAP_V2, store)
    mgr = ReconfigurationManager(sim, builder)
    with pytest.raises(ReconfigError, match="no bitstream"):
        mgr.preload("D1", "ghost")
    mgr.preload("D1", "a")
    assert mgr.loaded_module("D1") == "a"
    with pytest.raises(ReconfigError, match="already configured"):
        mgr.preload("D1", "a")


def test_runtime_corrupted_bitstream_fails_loudly():
    """Failure injection: a corrupted partial bitstream must fail the
    simulation with a CRC error, not silently activate a broken module."""
    design = build_mccdma_design()
    flow = DesignFlow.from_design(
        design,
        dynamic_constraints=parse_constraints(
            STARTUP_CONSTRAINTS.replace("loading   = startup", "loading   = runtime")
        ),
    ).run()
    # Corrupt the QAM-16 bitstream in place.
    key = ("D1", "dyn_D1_mod_qam16")
    flow.modular.bitstreams[key] = flow.modular.bitstreams[key].corrupted(frame_index=5)
    plan = [Modulation.QPSK, Modulation.QAM16]
    sim = SystemSimulation(
        flow, n_iterations=2,
        selector_values={"modulation": lambda it: plan[it]},
    )
    with pytest.raises(ReconfigError, match="CRC"):
        sim.run()


def test_runtime_trace_contains_port_and_compute_activity(startup_flow):
    plan = [Modulation.QPSK, Modulation.QAM16] * 2
    result = SystemSimulation(
        startup_flow, n_iterations=len(plan),
        selector_values={"modulation": lambda it: plan[it]},
    ).run()
    trace = result.execution.trace
    port_loads = trace.spans_of(kind="reconfig")
    assert len(port_loads) == result.switches
    computes = trace.spans_of(actor="op.F1", kind="compute")
    assert computes  # the static pipeline ran
    # Gantt rendering works on the combined trace.
    chart = trace.gantt(width=60)
    assert "op.F1" in chart


def test_throughput_reporting(startup_flow):
    result = SystemSimulation(
        startup_flow, n_iterations=8,
        selector_values={"modulation": lambda it: Modulation.QPSK},
    ).run()
    assert result.mean_iteration_ns() > 0
    assert result.throughput_iterations_per_s() > 0
    assert "0 reconfigurations" in result.summary()
