"""Tests for design-space exploration and pilot-based channel estimation."""

import numpy as np
import pytest

from repro.fabric import XC2V1000, XC2V2000
from repro.flows import parse_constraints
from repro.flows.designspace import explore_design_space
from repro.mccdma import MCCDMAReceiver, MCCDMATransmitter, Modulation, bit_error_rate
from repro.mccdma.casestudy import build_mccdma_graph
from repro.dfg.library import default_library
from repro.reconfig import case_a_standalone, case_b_processor

CONSTRAINTS = parse_constraints("""
[module mod_qpsk]
region    = D1
operation = mod_qpsk

[module mod_qam16]
region    = D1
operation = mod_qam16

[region D1]
sharing   = true
exclusive = mod_qpsk, mod_qam16
""")


def test_explore_case_study_over_two_devices():
    points = explore_design_space(
        build_mccdma_graph(),
        default_library(),
        devices=(XC2V1000, XC2V2000),
        architectures=(case_a_standalone(), case_b_processor()),
        dynamic_constraints=CONSTRAINTS,
        configure_flow=lambda flow: flow.mapping.pin("bit_src", "DSP").pin("select", "DSP"),
    )
    assert len(points) == 4
    assert all(p.fits for p in points)
    by_key = {(p.device, p.architecture): p for p in points}
    # Smaller device: bigger area fraction but smaller bitstream.
    small = by_key[("xc2v1000", "case_a_standalone")]
    big = by_key[("xc2v2000", "case_a_standalone")]
    assert small.region_area["D1"] > big.region_area["D1"]
    assert small.bitstream_bytes["D1"] < big.bitstream_bytes["D1"]
    assert small.reconfig_latency_ns["D1"] < big.reconfig_latency_ns["D1"]
    # Case b slower than case a on every device.
    for device in ("xc2v1000", "xc2v2000"):
        a = by_key[(device, "case_a_standalone")]
        b = by_key[(device, "case_b_processor")]
        assert b.reconfig_latency_ns["D1"] > a.reconfig_latency_ns["D1"]
    # Flow results dropped unless requested.
    assert all(p.flow_result is None for p in points)
    assert "clock=" in points[0].render()


def test_explore_reports_unfit_points():
    """A graph too large for the small device is reported, not raised."""
    from repro.dfg import AlgorithmGraph, WORD32

    g = AlgorithmGraph("huge")
    sel = g.add_operation("sel", "select_source")
    sel.add_output("value", WORD32, 1)
    src = g.add_operation("src", "generic_small")
    group = g.condition_group("big", sel, "value")
    alts = []
    for i in range(2):
        src.add_output(f"o{i}", WORD32, 16)
        alt = g.add_operation(f"alt{i}", "generic_large")
        alt.add_input("i", WORD32, 16)
        for _ in range(40):  # inflate the variant far beyond any region
            pass
        alts.append(alt)
        g.connect(src, f"o{i}", alt, "i")
    group.add_case(0, [alts[0]])
    group.add_case(1, [alts[1]])

    lib = default_library()
    # A monstrous kind that cannot fit even a full-height region.
    lib.define("monster", {"virtex2": 100}, {"luts": 50_000, "ffs": 50_000})
    for alt in alts:
        alt.kind = "monster"

    points = explore_design_space(
        g, lib, devices=(XC2V1000,), architectures=(case_a_standalone(),),
    )
    assert len(points) == 1
    assert not points[0].fits
    assert "DOES NOT FIT" in points[0].render()


def test_pilot_channel_estimation_recovers_flat_channel():
    tx = MCCDMATransmitter()
    rx = MCCDMAReceiver()
    plan = [Modulation.QAM16] * tx.config.frame.n_data_symbols
    rng = np.random.default_rng(0)
    bits = rng.integers(0, 2, size=(1, tx.frame_bits(plan))).astype(np.uint8)
    frame = tx.transmit_frame(bits, plan)
    # Apply a flat complex channel (no genie at the receiver).
    gain = 0.6 * np.exp(1j * 1.1)
    received = frame.samples * gain
    estimated = rx.estimate_gain(frame, received)
    assert abs(estimated - gain) < 1e-9
    equalized = rx.equalize_with_pilots(frame, received)
    out = rx.receive_frame(frame, samples=equalized)
    assert bit_error_rate(bits, out) == 0.0


def test_pilot_estimation_under_noise():
    tx = MCCDMATransmitter()
    rx = MCCDMAReceiver()
    plan = [Modulation.QPSK] * tx.config.frame.n_data_symbols
    rng = np.random.default_rng(1)
    bits = rng.integers(0, 2, size=(1, tx.frame_bits(plan))).astype(np.uint8)
    frame = tx.transmit_frame(bits, plan)
    gain = 1.3 * np.exp(-1j * 0.7)
    noisy = frame.samples * gain + 0.02 * (
        rng.standard_normal(frame.samples.size)
        + 1j * rng.standard_normal(frame.samples.size)
    )
    estimated = rx.estimate_gain(frame, noisy)
    assert abs(estimated - gain) / abs(gain) < 0.05
    out = rx.receive_frame(frame, samples=rx.equalize_with_pilots(frame, noisy))
    assert bit_error_rate(bits, out) == 0.0


def test_pilot_estimation_guards():
    from repro.mccdma import FrameConfig, MCCDMAConfig

    cfg = MCCDMAConfig(frame=FrameConfig(n_pilot_symbols=0, n_data_symbols=8))
    tx = MCCDMATransmitter(cfg)
    rx = MCCDMAReceiver(cfg)
    plan = [Modulation.QPSK] * 8
    bits = np.zeros((1, tx.frame_bits(plan)), dtype=np.uint8)
    frame = tx.transmit_frame(bits, plan)
    with pytest.raises(ValueError, match="no pilot"):
        rx.estimate_gain(frame, frame.samples)
