"""Tests for the AAA time-constraint support."""

import pytest

from repro.arch import sundance_board
from repro.dfg.generators import chain_graph
from repro.dfg.library import default_library
from repro.flows import DesignFlow
from repro.flows.flow import TimingConstraintError


def make_flow(deadline_ns=None, strict=True):
    return DesignFlow(
        graph=chain_graph(4),
        board=sundance_board(),
        library=default_library(),
        iteration_deadline_ns=deadline_ns,
        strict_deadline=strict,
    )


def test_no_deadline_always_meets():
    result = make_flow().run()
    assert result.meets_deadline
    assert "time constraint" not in result.report()


def test_generous_deadline_satisfied():
    result = make_flow(deadline_ns=1_000_000_000).run()
    assert result.meets_deadline
    assert "satisfied" in result.report()


def test_impossible_deadline_raises():
    with pytest.raises(TimingConstraintError) as err:
        make_flow(deadline_ns=10).run()
    assert err.value.deadline_ns == 10
    assert err.value.makespan_ns > 10
    assert "exceeds the deadline" in str(err.value)


def test_non_strict_deadline_reports_violation():
    result = make_flow(deadline_ns=10, strict=False).run()
    assert not result.meets_deadline
    assert "VIOLATED" in result.report()
