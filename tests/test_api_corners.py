"""Mop-up coverage of API corners not exercised elsewhere."""

import pytest

from repro.aaa import MappingConstraints, SynDExScheduler, adequate
from repro.arch import sundance_board
from repro.dfg import AlgorithmGraph, WORD32
from repro.dfg.generators import chain_graph
from repro.dfg.library import default_library
from repro.sim import Resource, Simulator, Trace


def test_resource_use_helper():
    sim = Simulator()
    res = Resource(sim, name="bus")
    order = []

    def user(tag):
        yield sim.process(res.use(10))
        order.append((tag, sim.now))

    sim.process(user("a"))
    sim.process(user("b"))
    sim.run()
    assert order == [("a", 10), ("b", 20)]


def test_trace_filter_and_payloads():
    tr = Trace()
    tr.record(5, "mgr", "load_start", detail="qpsk", payload={"bytes": 10})
    tr.record(9, "mgr", "load_end", detail="qpsk")
    hits = list(tr.filter(lambda r: r.kind == "load_start"))
    assert len(hits) == 1 and hits[0].payload == {"bytes": 10}
    assert tr.actors() == ["mgr"]


def test_gantt_empty_trace():
    assert Trace().gantt() == "(empty trace)"


def test_library_kinds_listing():
    lib = default_library()
    kinds = lib.kinds()
    assert kinds == sorted(kinds)
    assert "qpsk_mod" in kinds


def test_route_and_operator_str():
    board = sundance_board()
    arch = board.architecture
    route = arch.route("DSP", "F1")
    assert "SHB" in str(route)
    local = arch.route("DSP", "DSP")
    assert "(local)" in str(local)
    assert "D1" in str(arch.operator("D1"))
    assert "MB/s" in str(arch.medium("SHB"))


def test_adequation_report_and_schedule_table():
    result = adequate(
        chain_graph(3), sundance_board().architecture, default_library(),
        scheduler=SynDExScheduler,
    )
    report = result.report()
    assert "Adequation by SynDExScheduler" in report
    assert "operator" in report
    assert result.throughput_iterations_per_s() > 0


def test_empty_schedule_throughput_infinite():
    from repro.aaa.adequation import AdequationResult
    from repro.aaa.costs import CostModel
    from repro.aaa.schedule import Schedule

    g = AlgorithmGraph("empty-ish")
    g.add_operation("only", "generic_small")
    board = sundance_board()
    costs = CostModel(g, board.architecture, default_library())
    result = AdequationResult(schedule=Schedule(), costs=costs, scheduler_name="x")
    assert result.throughput_iterations_per_s() == float("inf")


def test_schedule_placement_missing_raises():
    result = adequate(
        chain_graph(3), sundance_board().architecture, default_library(),
        scheduler=SynDExScheduler,
    )
    with pytest.raises(KeyError):
        result.schedule.placement("ghost")


def test_mapping_constraints_len_and_chaining():
    mc = MappingConstraints().pin("a", "DSP").forbid("b", "F1").forbid("b", "DSP")
    assert len(mc) == 3


def test_condition_group_case_of_missing():
    g = AlgorithmGraph("t")
    sel = g.add_operation("sel", "select_source")
    sel.add_output("v", WORD32, 1)
    grp = g.condition_group("g", sel, "v")
    a = g.add_operation("a", "k")
    grp.add_case(0, [a])
    assert grp.case_of(0) == [a]
    with pytest.raises(KeyError):
        grp.case_of(1)
    with pytest.raises(ValueError):
        grp.add_case(0, [g.add_operation("b", "k")])


def test_operation_byte_accounting():
    from repro.dfg import BIT, Operation

    op = Operation("x", "k")
    op.add_input("i", BIT, 12)
    op.add_output("o", BIT, 20)
    assert op.input_bytes() == 2
    assert op.output_bytes() == 3
    assert not op.is_source and not op.is_sink


def test_netlist_boundary_helpers():
    from repro.fabric import Netlist, NetlistModule, ResourceVector
    from repro.fabric.netlist import NetlistPort

    nl = Netlist("top")
    nl.add_module(
        NetlistModule(
            name="m",
            resources=ResourceVector(luts=1),
            ports=[NetlistPort("a", 8, "in"), NetlistPort("b", 4, "out")],
        )
    )
    assert nl.module("m").boundary_bits == 12
    with pytest.raises(KeyError):
        nl.module("m").port("zzz")
    assert nl.total_resources().luts == 1


def test_floorplan_whole_device_region_has_no_boundary():
    from repro.fabric import Floorplan, FloorplanError, XC2V2000

    plan = Floorplan(XC2V2000)
    plan.place("D1", 0, XC2V2000.clb_cols)
    with pytest.raises(FloorplanError, match="whole device"):
        plan.boundary_column("D1")


def test_units_to_seconds():
    from repro.sim import units

    assert units.to_seconds(units.seconds(2.5)) == pytest.approx(2.5)
    assert units.to_us(units.us(7)) == pytest.approx(7.0)


def test_executive_program_render_covers_all_instructions():
    from repro.executive.macrocode import (
        ComputeInstr,
        ExecutiveProgram,
        RecvInstr,
        ReconfigureInstr,
        SendInstr,
        TransferInstr,
    )

    program = ExecutiveProgram(
        operator_code={
            "A": [
                ComputeInstr(op_name="x", kind="k", duration_ns=5, decides_group="g"),
                SendInstr(edge_id="e", size_bytes=4, condition_group="g", condition_value=1),
                RecvInstr(edge_id="f", size_bytes=4),
                ReconfigureInstr(region="D1", module="m"),
            ]
        },
        medium_code={"M": [TransferInstr(edge_id="e", hop=0, size_bytes=4, duration_ns=2)]},
    )
    text = program.render()
    for token in ("compute_", "send_", "recv_", "reconfigure_", "transfer_", "decides(g)", "when g==1"):
        assert token in text
