"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_flow_command():
    code, text = run_cli("flow")
    assert code == 0
    assert "Design flow report" in text
    assert "final makespan" in text


def test_flow_json_command():
    import json

    code, text = run_cli("flow", "--json")
    assert code == 0
    payload = json.loads(text)
    assert payload["graph"] == "mccdma_tx"
    assert payload["board"] == "sundance"
    assert payload["makespan_ns"] > 0
    assert "D1" in payload["regions"]
    assert [s["stage"] for s in payload["stages"]] == [
        "modelisation",
        "adequation",
        "vhdl_generation",
        "modular_backend",
        "adequation_refine",
        "executive",
    ]


def test_flow_profile_flag():
    code, text = run_cli("--profile", "flow")
    assert code == 0
    assert "modelisation" in text
    assert "adequation_refine" in text
    assert "miss" in text
    assert "Design flow report" in text  # report still follows the profile


def test_log_json_flag(tmp_path):
    import json

    target = tmp_path / "events.jsonl"
    code, text = run_cli("--log-json", str(target), "flow")
    assert code == 0
    lines = target.read_text().splitlines()
    assert len(lines) == 6
    assert {json.loads(line)["stage"] for line in lines} >= {"modelisation", "executive"}


def test_table1_command():
    code, text = run_cli("table1")
    assert code == 0
    assert "Fix-Dynamic modulation implementation comparison" in text
    assert "QAM-16 dyn" in text


def test_macrocode_command():
    code, text = run_cli("macrocode")
    assert code == 0
    assert "loop_" in text and "reconfigure_ D1" in text


def test_vhdl_command(tmp_path):
    code, text = run_cli("vhdl", "--out", str(tmp_path))
    assert code == 0
    names = {p.name for p in tmp_path.iterdir()}
    assert "static_f1.vhd" in names
    assert "dyn_d1_mod_qpsk.vhd" in names
    assert "tb_dyn_d1_mod_qpsk.vhd" in names
    assert "top.ucf" in names
    # Written files are checkable as a design.
    from repro.codegen import check_vhdl

    files = {
        p.name: p.read_text() for p in tmp_path.iterdir() if p.suffix == ".vhd"
    }
    check_vhdl(files)


def test_simulate_command():
    code, text = run_cli("simulate", "-n", "12", "--pattern", "step")
    assert code == 0
    assert "runtime[" in text
    assert "modulation plan:" in text
    assert "qpsk" in text and "qam16" in text


def test_simulate_with_gantt_and_policy():
    code, text = run_cli(
        "simulate", "-n", "8", "--pattern", "sinus", "--policy", "history", "--gantt"
    )
    assert code == 0
    assert "runtime[history]" in text
    assert "|" in text  # gantt rows


def test_graph_dump_roundtrips(tmp_path):
    from repro.dfg import io as dfg_io

    path = tmp_path / "g.json"
    code, text = run_cli("graph-dump", "--out", str(path))
    assert code == 0 and "wrote" in text
    graph = dfg_io.load(path)
    assert "mod_qpsk" in graph and "ifft" in graph


def test_board_dump_to_stdout():
    code, text = run_cli("board-dump")
    assert code == 0
    assert '"format": "repro-board"' in text
    assert "xc2v2000" in text


def test_export_command(tmp_path):
    code, text = run_cli("export", "--out", str(tmp_path))
    assert code == 0
    assert "artefacts under" in text
    assert (tmp_path / "hdl" / "static_f1.vhd").exists()
    assert (tmp_path / "executive" / "executive.json").exists()
    assert (tmp_path / "reports" / "flow.txt").exists()


def test_case_b_architecture_flag():
    code, text = run_cli("--architecture", "case_b", "flow")
    assert code == 0
    assert "case_b_processor" in text


def test_sweep_serial_one_point():
    code, text = run_cli(
        "sweep", "--jobs", "0", "--devices", "xc2v1000", "--architectures", "case_a"
    )
    assert code == 0
    assert "xc2v1000" in text and "case_a_standalone" in text
    assert "1/1 jobs ok" in text


def test_sweep_json_report(tmp_path):
    import json

    code, text = run_cli(
        "sweep", "--jobs", "0", "--devices", "xc2v1000,xc2v2000",
        "--architectures", "case_a", "--cache-dir", str(tmp_path / "cache"),
    )
    assert code == 0
    code, text = run_cli(
        "sweep", "--jobs", "0", "--devices", "xc2v1000,xc2v2000",
        "--architectures", "case_a", "--cache-dir", str(tmp_path / "cache"), "--json",
    )
    assert code == 0
    payload = json.loads(text)
    assert payload["succeeded"] == 2 and payload["failed"] == 0
    assert [r["job_id"] for r in payload["results"]] == [
        "xc2v1000@case_a_standalone",
        "xc2v2000@case_a_standalone",
    ]
    # Second run over the same cache dir: every stage hits.
    assert payload["cache_hits"] == payload["cache_lookups"]


def test_sweep_profile_covers_parallel_run(tmp_path):
    code, text = run_cli(
        "--profile", "--log-json", str(tmp_path / "events.jsonl"),
        "sweep", "--jobs", "2", "--timeout", "300",
        "--devices", "xc2v1000", "--architectures", "case_a,case_b",
    )
    assert code == 0
    assert "adequation" in text  # worker stage events reached the profile
    assert "sweep:job_finished" in text or "sweep:sweep_completed" in text
    lines = (tmp_path / "events.jsonl").read_text().splitlines()
    assert any('"sweep:sweep_completed"' in line for line in lines)


def test_sweep_unknown_device_is_a_clean_error():
    code, text = run_cli("sweep", "--jobs", "0", "--devices", "xc9999")
    assert code == 2
    assert text.startswith("error:") and "xc9999" in text


def test_sweep_unknown_architecture_is_a_clean_error():
    code, text = run_cli("sweep", "--jobs", "0", "--architectures", "case_z")
    assert code == 2
    assert text.startswith("error:") and "case_z" in text
    assert "case_a" in text  # the error lists the known choices


def test_linklevel_table_and_json():
    import json

    code, text = run_cli(
        "linklevel", "--snr", "0:8:4", "--frames", "8", "--batch", "4",
        "--strategies", "qpsk,adaptive",
    )
    assert code == 0
    assert "qpsk:" in text and "adaptive:" in text
    assert text.count("snr") == 6  # 3 SNR points x 2 strategies
    code, text = run_cli(
        "linklevel", "--snr", "0,6", "--frames", "8", "--batch", "4",
        "--strategies", "qpsk", "--json",
    )
    assert code == 0
    payload = json.loads(text)
    assert [row["snr_db"] for row in payload["qpsk"]] == [0.0, 6.0]
    assert all(row["n_frames"] == 8 for row in payload["qpsk"])


def test_linklevel_reference_path_matches_batched():
    import json

    args = ("linklevel", "--snr", "2,5", "--frames", "8", "--batch", "4",
            "--strategies", "adaptive", "--users", "3", "--json")
    code_a, batched = run_cli(*args)
    code_b, reference = run_cli(*args, "--reference")
    assert code_a == code_b == 0
    assert json.loads(batched) == json.loads(reference)


def test_linklevel_profile_shows_engine_events(tmp_path):
    code, text = run_cli(
        "--profile", "--log-json", str(tmp_path / "events.jsonl"),
        "linklevel", "--snr", "4", "--frames", "8", "--batch", "4",
        "--strategies", "qpsk",
    )
    assert code == 0
    assert "link:batch" in text and "link:point" in text
    lines = (tmp_path / "events.jsonl").read_text().splitlines()
    assert any('"link:point"' in line for line in lines)


def test_linklevel_bad_grid_and_strategy_are_clean_errors():
    code, text = run_cli("linklevel", "--snr", "0:8")
    assert code == 2 and text.startswith("error:")
    code, text = run_cli("linklevel", "--strategies", "bpsk")
    assert code == 2 and "bpsk" in text


def test_trace_flag_writes_chrome_trace_and_manifest(tmp_path):
    import json

    from repro.obs import validate_trace_file

    trace_path = tmp_path / "run.json"
    code, text = run_cli("--trace", str(trace_path), "flow")
    assert code == 0
    assert "wrote trace" in text
    assert validate_trace_file(trace_path) == []
    payload = json.loads(trace_path.read_text())
    names = [e["name"] for e in payload["traceEvents"] if e["ph"] == "X"]
    assert any(n.startswith("flow:") for n in names)
    assert any(n.startswith("stage:") for n in names)
    manifest = json.loads((tmp_path / "run.manifest.json").read_text())
    assert manifest["command"] == "flow"
    assert manifest["argv"][0] == "repro"
    assert "flow.stages_total" in manifest["metrics"]


def test_trace_command_runs_sim_and_renders_gantt(tmp_path):
    from repro.obs import validate_trace_file

    trace_path = tmp_path / "t.json"
    svg_path = tmp_path / "t.svg"
    code, text = run_cli(
        "trace", "-n", "12", "--out", str(trace_path), "--svg", str(svg_path)
    )
    assert code == 0
    assert "runtime[on_select]" in text
    assert "D1 |" in text  # the Fig. 4 residency row
    assert "*=prefetch" in text
    assert svg_path.read_text().startswith("<svg")
    assert validate_trace_file(trace_path) == []


def test_trace_check_mode(tmp_path):
    good = tmp_path / "good.json"
    run_cli("--trace", str(good), "table1")
    code, text = run_cli("trace", "--check", str(good))
    assert code == 0 and "OK" in text

    bad = tmp_path / "bad.json"
    bad.write_text('{"traceEvents": [{"name": "x"}]}')
    code, text = run_cli("trace", "--check", str(bad))
    assert code == 1
    assert "INVALID" in text


def test_traced_sweep_contains_worker_and_reconfig_spans(tmp_path):
    import json

    from repro.obs import validate_trace_file

    trace_path = tmp_path / "sweep.json"
    code, text = run_cli(
        "--trace", str(trace_path),
        "sweep", "--jobs", "2", "--timeout", "300",
        "--devices", "xc2v1000", "--architectures", "case_a",
    )
    assert code == 0
    assert validate_trace_file(trace_path) == []
    payload = json.loads(trace_path.read_text())
    events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    by_id = {e["args"]["span_id"]: e for e in events if "span_id" in e["args"]}
    attempts = [e for e in events if e["name"].startswith("attempt:")]
    assert attempts
    for event in attempts:  # worker spans resolve to engine-side job spans
        parent = by_id[event["args"]["parent_id"]]
        assert parent["name"].startswith("job:")
    # --trace implies per-point simulations: reconfiguration spans appear.
    kinds = {e["name"].split(":")[0] for e in events}
    assert "load" in kinds and "resident" in kinds
    manifest = json.loads((tmp_path / "sweep.manifest.json").read_text())
    assert "reconfig.demand_requests" in manifest["metrics"]


# -- fleet command ----------------------------------------------------------


def test_fleet_command_prints_frontier_table():
    code, text = run_cli(
        "fleet", "--boards", "4", "--requests", "20", "--policy", "none,history"
    )
    assert code == 0
    assert "fleet[none/poisson]" in text
    assert "fleet[history/poisson]" in text
    assert "policy" in text and "hit rate" in text and "digest" in text


def test_fleet_json_output():
    import json

    code, text = run_cli(
        "fleet", "--boards", "3", "--requests", "15", "--policy", "lru",
        "--traffic", "thrash", "--seed", "7", "--json",
    )
    assert code == 0
    payload = json.loads(text)
    assert set(payload) == {"lru"}
    report = payload["lru"]
    assert report["n_boards"] == 3
    assert report["total_requests"] == 45
    assert report["traffic"] == "thrash"
    assert len(report["digest"]) == 64


def test_fleet_rejects_unknown_policy_at_parse_time(capsys):
    with pytest.raises(SystemExit):
        run_cli("fleet", "--policy", "oracle")
    err = capsys.readouterr().err
    assert "unknown policy 'oracle'" in err
    assert "belady" in err  # the error lists the registry


def test_sweep_rejects_clairvoyant_policy(capsys):
    with pytest.raises(SystemExit):
        run_cli("sweep", "--simulate-policy", "belady")
    err = capsys.readouterr().err
    assert "clairvoyant" in err


def test_simulate_policy_accepts_registry_names():
    code, text = run_cli("simulate", "--policy", "markov", "-n", "6")
    assert code == 0
    assert "runtime[markov]" in text


def test_fleet_trace_bridges_per_board_lanes(tmp_path):
    import json

    from repro.obs import validate_trace_file

    trace_path = tmp_path / "fleet.json"
    code, _ = run_cli(
        "--trace", str(trace_path),
        "fleet", "--boards", "4", "--requests", "15",
        "--policy", "fixed", "--trace-boards", "2",
    )
    assert code == 0
    assert validate_trace_file(trace_path) == []
    payload = json.loads(trace_path.read_text())
    lanes = {
        e["args"]["name"]
        for e in payload["traceEvents"]
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    # Each traced board gets its own Perfetto lane, named by board id.
    assert {"b0000 [sim time]", "b0001 [sim time]"} <= lanes


def test_search_command():
    code, text = run_cli("search", "--budget", "25", "--seed", "1")
    assert code == 0
    assert "search report: multiregion2x2" in text
    assert "fixed k=1" in text
    assert "gain vs best fixed" in text


def test_search_json_command():
    import json

    code, text = run_cli(
        "search", "--budget", "20", "--seed", "2", "--method", "greedy", "--json"
    )
    assert code == 0
    payload = json.loads(text)
    assert payload["method"] == "greedy"
    assert payload["gain"] <= 1.0
    assert payload["result"]["digest"] == json.loads(text)["result"]["digest"]


def test_search_same_seed_same_digest():
    import json

    _, a = run_cli("search", "--budget", "20", "--seed", "5", "--json")
    _, b = run_cli("search", "--budget", "20", "--seed", "5", "--json")
    assert json.loads(a)["result"]["digest"] == json.loads(b)["result"]["digest"]


def test_search_rejects_unknown_device():
    code, text = run_cli("search", "--budget", "5", "--device", "xc9999")
    assert code == 2
    assert "xc9999" in text


def test_search_traced_writes_trace_and_manifest(tmp_path):
    import json

    from repro.obs import validate_trace_file

    trace_path = tmp_path / "search.json"
    code, text = run_cli(
        "--trace", str(trace_path), "search", "--budget", "15", "--seed", "0"
    )
    assert code == 0
    assert validate_trace_file(trace_path) == []
    names = {e["name"] for e in json.loads(trace_path.read_text())["traceEvents"]}
    assert "search:anneal" in names
    manifest = json.loads((tmp_path / "search.manifest.json").read_text())
    assert manifest["metrics"]["search.evaluations"]["value"] >= 15


# -- fleet telemetry / dashboard / tail / bench-check ------------------------


def test_fleet_live_renders_policy_rows_and_sparklines():
    code, text = run_cli(
        "fleet", "--live", "--ascii", "--boards", "6", "--requests", "40",
        "--policy", "lru,none", "--engine", "fast",
    )
    assert code == 0
    assert "fleet 2/2 policies" in text
    assert "hit%" in text and "p99 stall" in text  # per-policy hit rate / p99
    assert "policy=lru" in text and "policy=none" in text
    assert "fleet.port_util" in text  # non-panel series get their own rows


def test_fleet_slo_breach_sets_exit_code_three():
    code, text = run_cli(
        "fleet", "--boards", "4", "--requests", "30", "--policy", "none",
        "--engine", "fast", "--slo-hit-floor", "1.01",  # unsatisfiable
    )
    assert code == 3
    assert "SLO BREACH" in text
    assert "hit-rate-floor" in text


def test_fleet_slo_pass_keeps_exit_code_zero():
    code, text = run_cli(
        "fleet", "--boards", "4", "--requests", "30", "--policy", "lru",
        "--engine", "fast", "--slo-hit-floor", "0.0",
    )
    assert code == 0
    assert "no breaches" in text


def test_fleet_telemetry_jsonl_roundtrips_through_tail(tmp_path):
    stream = tmp_path / "fleet.jsonl"
    code, text = run_cli(
        "fleet", "--boards", "5", "--requests", "40", "--policy", "lru",
        "--engine", "fast", "--telemetry", str(stream),
    )
    assert code == 0
    assert f"wrote telemetry {stream}" in text
    code, text = run_cli("tail", str(stream), "--ascii")
    assert code == 0
    assert "policy=lru" in text and "p99 stall" in text


def test_tail_missing_and_malformed_files_exit_two(tmp_path):
    code, text = run_cli("tail", str(tmp_path / "nope.jsonl"))
    assert code == 2
    assert "cannot read" in text
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"schema": 999, "meta": true, "window": 1}\n', encoding="utf-8")
    code, text = run_cli("tail", str(bad))
    assert code == 2
    assert "error" in text


def test_bench_check_gate_passes_and_fails_on_injected_regression(tmp_path):
    import json as _json

    history = tmp_path / "HISTORY.jsonl"
    row = {
        "schema": 1, "bench": "fleet_throughput", "metric": "fast.requests_per_sec",
        "higher_is_better": True, "unit": "req/s", "smoke": False,
        "recorded_at": "2026-08-09T00:00:00+00:00", "host": {}, "detail": {},
    }
    with history.open("w", encoding="utf-8") as f:
        for value in (100.0, 101.0, 99.0, 100.0):
            f.write(_json.dumps({**row, "value": value}) + "\n")
    code, text = run_cli("bench-check", "--history", str(history))
    assert code == 0
    assert "-> ok" in text

    with history.open("a", encoding="utf-8") as f:
        f.write(_json.dumps({**row, "value": 80.0}) + "\n")  # injected -20%
    code, text = run_cli("bench-check", "--history", str(history))
    assert code == 1
    assert "regression" in text


def test_bench_check_backfill_seeds_from_results_dir(tmp_path):
    import json as _json

    results = tmp_path / "results"
    results.mkdir()
    (results / "BENCH_fleet_throughput.json").write_text(
        _json.dumps({"headline": {"fast": {"requests_per_sec": 50.0}}}),
        encoding="utf-8",
    )
    history = tmp_path / "HISTORY.jsonl"
    code, text = run_cli(
        "bench-check", "--backfill", "--results-dir", str(results),
        "--history", str(history), "--check-after-backfill",
    )
    assert code == 0
    assert "backfilled 1 entries" in text
    assert "no prior entries" in text  # single entry: insufficient history
