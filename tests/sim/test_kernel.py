"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_timeout_advances_clock():
    sim = Simulator()
    done = []

    def proc():
        yield sim.timeout(10)
        done.append(sim.now)
        yield sim.timeout(5)
        done.append(sim.now)

    sim.process(proc())
    sim.run()
    assert done == [10, 15]


def test_timeout_value_passthrough():
    sim = Simulator()
    got = []

    def proc():
        v = yield sim.timeout(3, value="hello")
        got.append(v)

    sim.process(proc())
    sim.run()
    assert got == ["hello"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_simultaneous_events_fifo_order():
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(5)
        order.append(tag)

    for tag in range(6):
        sim.process(proc(tag))
    sim.run()
    assert order == [0, 1, 2, 3, 4, 5]


def test_process_join_returns_value():
    sim = Simulator()
    result = []

    def child():
        yield sim.timeout(7)
        return 42

    def parent():
        value = yield sim.process(child())
        result.append((sim.now, value))

    sim.process(parent())
    sim.run()
    assert result == [(7, 42)]


def test_process_exception_propagates_to_parent():
    sim = Simulator()
    caught = []

    def child():
        yield sim.timeout(1)
        raise RuntimeError("boom")

    def parent():
        try:
            yield sim.process(child())
        except RuntimeError as err:
            caught.append(str(err))

    sim.process(parent())
    sim.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_surfaces_via_run_until():
    sim = Simulator()

    def bad():
        yield sim.timeout(1)
        raise ValueError("nope")

    proc = sim.process(bad())
    with pytest.raises(ValueError, match="nope"):
        sim.run(until=proc)


def test_event_succeed_once_only():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_value_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_run_until_time_stops_exactly():
    sim = Simulator()
    ticks = []

    def proc():
        while True:
            yield sim.timeout(10)
            ticks.append(sim.now)

    sim.process(proc())
    sim.run(until=35)
    assert ticks == [10, 20, 30]
    assert sim.now == 35


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(4)
        return "done"

    p = sim.process(proc())
    assert sim.run(until=p) == "done"
    assert sim.now == 4


def test_step_on_empty_calendar_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process([])  # type: ignore[arg-type]


def test_any_of_fires_on_first():
    sim = Simulator()
    seen = []

    def proc():
        t1 = sim.timeout(5, value="a")
        t2 = sim.timeout(9, value="b")
        result = yield AnyOf(sim, [t1, t2])
        seen.append((sim.now, set(result.values())))

    sim.process(proc())
    sim.run()
    assert seen == [(5, {"a"})]


def test_all_of_waits_for_all():
    sim = Simulator()
    seen = []

    def proc():
        t1 = sim.timeout(5, value="a")
        t2 = sim.timeout(9, value="b")
        result = yield AllOf(sim, [t1, t2])
        seen.append((sim.now, sorted(result.values())))

    sim.process(proc())
    sim.run()
    assert seen == [(9, ["a", "b"])]


def test_all_of_empty_triggers_immediately():
    sim = Simulator()
    seen = []

    def proc():
        result = yield AllOf(sim, [])
        seen.append((sim.now, result))

    sim.process(proc())
    sim.run()
    assert seen == [(0, {})]


def test_interrupt_wakes_waiting_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100)
            log.append("finished")
        except Interrupt as intr:
            log.append(("interrupted", sim.now, intr.cause))

    def interrupter(target):
        yield sim.timeout(30)
        target.interrupt("evict")

    target = sim.process(sleeper())
    sim.process(interrupter(target))
    sim.run()
    assert log == [("interrupted", 30, "evict")]


def test_interrupt_finished_process_raises():
    sim = Simulator()

    def quick():
        yield sim.timeout(1)

    p = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_waiting_on_already_processed_event():
    sim = Simulator()
    order = []

    def proc():
        t = sim.timeout(2, value="x")
        yield sim.timeout(10)  # t fires and is processed meanwhile
        v = yield t
        order.append((sim.now, v))

    sim.process(proc())
    sim.run()
    assert order == [(10, "x")]


def test_yield_non_event_fails_process():
    sim = Simulator()

    def bad():
        yield 42

    p = sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run(until=p)


def test_clock_monotonicity_across_many_processes():
    sim = Simulator()
    times = []

    def proc(delay, reps):
        for _ in range(reps):
            yield sim.timeout(delay)
            times.append(sim.now)

    for d in (3, 7, 11, 13):
        sim.process(proc(d, 20))
    sim.run()
    assert times == sorted(times)
    assert sim.now == max(times)
