"""Additional kernel edge cases: failure propagation, interrupts on waits,
condition composition under failure, and determinism."""

import pytest

from repro.sim import AllOf, AnyOf, Channel, Interrupt, Semaphore, Simulator


def test_anyof_propagates_failure():
    sim = Simulator()
    caught = []

    def failer():
        yield sim.timeout(5)
        raise RuntimeError("inner")

    def waiter():
        p = sim.process(failer())
        t = sim.timeout(100)
        try:
            yield AnyOf(sim, [p, t])
        except RuntimeError as err:
            caught.append((sim.now, str(err)))

    sim.process(waiter())
    sim.run()
    assert caught == [(5, "inner")]


def test_allof_fails_fast():
    sim = Simulator()
    caught = []

    def failer():
        yield sim.timeout(3)
        raise ValueError("first")

    def slow():
        yield sim.timeout(50)
        return "late"

    def waiter():
        try:
            yield AllOf(sim, [sim.process(failer()), sim.process(slow())])
        except ValueError:
            caught.append(sim.now)

    sim.process(waiter())
    sim.run()
    assert caught == [3]  # did not wait for the slow one


def test_interrupt_while_waiting_on_channel():
    sim = Simulator()
    chan = Channel(sim)
    log = []

    def consumer():
        try:
            yield chan.get()
        except Interrupt as intr:
            log.append(("interrupted", sim.now, intr.cause))

    def interrupter(target):
        yield sim.timeout(42)
        target.interrupt("abort-recv")

    target = sim.process(consumer())
    sim.process(interrupter(target))
    sim.run()
    assert log == [("interrupted", 42, "abort-recv")]


def test_interrupt_while_waiting_on_semaphore():
    sim = Simulator()
    sem = Semaphore(sim)
    log = []

    def waiter():
        try:
            yield sem.acquire()
        except Interrupt:
            log.append(sim.now)

    def interrupter(target):
        yield sim.timeout(7)
        target.interrupt()

    target = sim.process(waiter())
    sim.process(interrupter(target))
    sim.run()
    assert log == [7]


def test_interrupted_process_can_continue():
    sim = Simulator()
    log = []

    def worker():
        try:
            yield sim.timeout(1000)
        except Interrupt:
            log.append(("preempted", sim.now))
        yield sim.timeout(10)  # resumes with new work
        log.append(("done", sim.now))

    def interrupter(target):
        yield sim.timeout(100)
        target.interrupt()

    target = sim.process(worker())
    sim.process(interrupter(target))
    sim.run()
    assert log == [("preempted", 100), ("done", 110)]


def test_interrupted_getter_does_not_swallow_data():
    """Regression: an interrupted channel waiter must not consume a later
    put — the item has to reach the next live consumer."""
    sim = Simulator()
    chan = Channel(sim)
    got = []

    def doomed():
        yield chan.get()  # interrupted before any data arrives

    def survivor():
        yield sim.timeout(20)
        item = yield chan.get()
        got.append((item, sim.now))

    def director(victim):
        yield sim.timeout(10)
        victim.interrupt()
        yield sim.timeout(20)
        yield chan.put("payload")

    victim = sim.process(doomed())
    sim.process(survivor())
    sim.process(director(victim))
    sim.run()
    assert got == [("payload", 30)]


def test_interrupted_semaphore_waiter_does_not_steal_permit():
    sim = Simulator()
    sem = Semaphore(sim)
    got = []

    def doomed():
        yield sem.acquire()

    def survivor():
        yield sim.timeout(20)
        yield sem.acquire()
        got.append(sim.now)

    def director(victim):
        yield sim.timeout(10)
        victim.interrupt()
        yield sim.timeout(20)
        sem.release()

    victim = sim.process(doomed())
    sim.process(survivor())
    sim.process(director(victim))
    sim.run()
    assert got == [30]


def test_event_fail_requires_exception():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")  # type: ignore[arg-type]


def test_run_until_past_horizon_rejected():
    sim = Simulator()

    def proc():
        yield sim.timeout(100)

    sim.process(proc())
    sim.run(until=50)
    with pytest.raises(ValueError):
        sim.run(until=10)


def test_peek_next_event_time():
    sim = Simulator()
    assert sim.peek() is None

    def proc():
        yield sim.timeout(30)

    sim.process(proc())
    # The bootstrap event is at t=0.
    assert sim.peek() == 0


def test_determinism_across_runs():
    def scenario():
        sim = Simulator()
        order = []

        def proc(tag, delays):
            for d in delays:
                yield sim.timeout(d)
                order.append((tag, sim.now))

        sim.process(proc("a", [3, 3, 3]))
        sim.process(proc("b", [2, 4, 3]))
        sim.process(proc("c", [9]))
        sim.run()
        return order

    assert scenario() == scenario()


def test_nested_process_chain_values():
    sim = Simulator()

    def level3():
        yield sim.timeout(1)
        return 3

    def level2():
        v = yield sim.process(level3())
        yield sim.timeout(1)
        return v + 2

    def level1():
        v = yield sim.process(level2())
        return v + 1

    assert sim.run(until=sim.process(level1())) == 6
    assert sim.now == 2


def test_interrupt_while_waiting_on_anyof_abandons_members():
    """Interrupting ``yield AnyOf([...])`` must release the condition's hold
    on every still-pending member — a queued ``sem.acquire()`` left live in
    the semaphore would silently eat the next permit."""
    sim = Simulator()
    sem = Semaphore(sim)
    log = []

    def waiter():
        try:
            yield AnyOf(sim, [sem.acquire(), sim.timeout(100)])
        except Interrupt as intr:
            log.append(("interrupted", sim.now, intr.cause))

    def controller():
        p = sim.process(waiter())
        yield sim.timeout(5)
        p.interrupt("give up")
        yield sim.timeout(1)
        # The interrupted waiter's acquire must not consume this permit.
        sem.release()
        got = sem.acquire()
        assert got.triggered
        log.append(("acquired", sim.now))

    sim.run(until=sim.process(controller()))
    assert log == [("interrupted", 5, "give up"), ("acquired", 6)]


def test_interrupt_while_waiting_on_allof_abandons_members():
    sim = Simulator()
    sem = Semaphore(sim)
    chan = Channel(sim)
    log = []

    def waiter():
        try:
            yield AllOf(sim, [sem.acquire(), chan.get()])
        except Interrupt:
            log.append(("interrupted", sim.now))

    def controller():
        p = sim.process(waiter())
        yield sim.timeout(2)
        p.interrupt()
        yield sim.timeout(1)
        # Both member events were abandoned: the permit banks, and the
        # channel item goes to the next live getter instead of the ghost.
        sem.release()
        assert sem.count == 1
        yield chan.put("fresh")
        item = yield chan.get()
        log.append(("got", item, sim.now))

    sim.run(until=sim.process(controller()))
    assert log == [("interrupted", 2), ("got", "fresh", 3)]


def test_interrupt_anyof_with_already_triggered_member_still_delivers():
    """A member that fired before the interrupt settles the condition first;
    the interrupt then has nothing to abandon and the waiter saw the value."""
    sim = Simulator()
    log = []

    def waiter():
        try:
            result = yield AnyOf(sim, [sim.timeout(1, value="fast"), sim.timeout(50)])
            log.append(("value", sorted(result.values()), sim.now))
            yield sim.timeout(100)
        except Interrupt:
            log.append(("interrupted", sim.now))

    def controller():
        p = sim.process(waiter())
        yield sim.timeout(10)  # after the AnyOf settled at t=1
        p.interrupt()
        yield sim.timeout(1)

    sim.run(until=sim.process(controller()))
    assert log == [("value", ["fast"], 1), ("interrupted", 10)]
