"""Tests for VCD trace export."""

import re


from repro.sim import Signal, Simulator, Span, Trace
from repro.sim.vcd import _identifier, trace_to_vcd


def test_identifier_uniqueness():
    ids = [_identifier(i) for i in range(500)]
    assert len(set(ids)) == 500
    assert all(all(33 <= ord(c) <= 126 for c in i) for i in ids)


def make_trace():
    tr = Trace()
    tr.add_span(Span("op.F1", "compute", 10, 50))
    tr.add_span(Span("op.F1", "compute", 60, 90))
    tr.add_span(Span("port.icap", "reconfig", 20, 70))
    return tr


def test_vcd_structure():
    vcd = trace_to_vcd(make_trace())
    assert "$timescale 1 ns $end" in vcd
    assert "$enddefinitions $end" in vcd
    assert "op.F1.compute" in vcd
    assert "port.icap.reconfig" in vcd
    # Time markers are monotone.
    times = [int(m.group(1)) for m in re.finditer(r"^#(\d+)$", vcd, re.MULTILINE)]
    assert times == sorted(times)


def test_vcd_span_toggles():
    vcd = trace_to_vcd(make_trace())
    # Find the id of the compute wire.
    m = re.search(r"\$var wire 1 (\S+) op\.F1\.compute \$end", vcd)
    assert m
    wid = re.escape(m.group(1))
    rises = re.findall(rf"^1{wid}$", vcd, re.MULTILINE)
    falls = re.findall(rf"^0{wid}$", vcd, re.MULTILINE)
    assert len(rises) == 2  # two disjoint busy intervals
    assert len(falls) == 3  # initial 0 plus two span ends


def test_vcd_merges_overlapping_spans():
    tr = Trace()
    tr.add_span(Span("x", "compute", 0, 50))
    tr.add_span(Span("x", "compute", 40, 80))
    vcd = trace_to_vcd(tr)
    m = re.search(r"\$var wire 1 (\S+) x\.compute \$end", vcd)
    wid = re.escape(m.group(1))
    rises = re.findall(rf"^1{wid}$", vcd, re.MULTILINE)
    assert len(rises) == 1  # merged into one interval


def test_vcd_includes_signals():
    sim = Simulator()
    sig = Signal(sim, value=False, name="In_Reconf")

    def proc():
        yield sim.timeout(100)
        sig.set(True)
        yield sim.timeout(50)
        sig.set(False)

    sim.process(proc())
    sim.run()
    vcd = trace_to_vcd(Trace(), signals={"In_Reconf.D1": sig})
    assert "In_Reconf.D1" in vcd
    assert "#100" in vcd and "#150" in vcd


def test_runtime_result_vcd_export():
    from repro.flows import DesignFlow, SystemSimulation, parse_constraints
    from repro.mccdma import Modulation
    from repro.mccdma.casestudy import build_mccdma_design

    constraints = """
[module mod_qpsk]
region    = D1
operation = mod_qpsk

[module mod_qam16]
region    = D1
operation = mod_qam16

[region D1]
sharing   = true
exclusive = mod_qpsk, mod_qam16
"""
    design = build_mccdma_design()
    flow = DesignFlow.from_design(
        design, dynamic_constraints=parse_constraints(constraints)
    ).run()
    plan = [Modulation.QPSK, Modulation.QAM16] * 2
    result = SystemSimulation(
        flow, n_iterations=len(plan),
        selector_values={"modulation": lambda it: plan[it]},
    ).run()
    vcd = result.to_vcd(design_name="mccdma")
    assert "$scope module mccdma $end" in vcd
    assert "In_Reconf.D1" in vcd
    assert "port.icap.reconfig" in vcd
    # In_Reconf toggles once per load.
    m = re.search(r"\$var wire 1 (\S+) In_Reconf\.D1 \$end", vcd)
    wid = re.escape(m.group(1))
    rises = re.findall(rf"^1{wid}$", vcd, re.MULTILINE)
    assert len(rises) == result.switches
