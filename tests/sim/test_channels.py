"""Unit tests for semaphores, channels, resources and signals."""

import pytest

from repro.sim import Channel, Mailbox, Resource, Semaphore, Signal, SimulationError, Simulator


def test_semaphore_banked_permit():
    sim = Simulator()
    sem = Semaphore(sim, value=1)
    got = []

    def proc():
        yield sem.acquire()
        got.append(sim.now)

    sim.process(proc())
    sim.run()
    assert got == [0]
    assert sem.count == 0


def test_semaphore_blocks_until_release():
    sim = Simulator()
    sem = Semaphore(sim)
    got = []

    def consumer():
        yield sem.acquire()
        got.append(sim.now)

    def producer():
        yield sim.timeout(25)
        sem.release()

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [25]


def test_semaphore_fifo_order():
    sim = Simulator()
    sem = Semaphore(sim)
    got = []

    def waiter(tag):
        yield sem.acquire()
        got.append(tag)

    for tag in "abc":
        sim.process(waiter(tag))

    def releaser():
        for _ in range(3):
            yield sim.timeout(1)
            sem.release()

    sim.process(releaser())
    sim.run()
    assert got == ["a", "b", "c"]


def test_semaphore_negative_init_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Semaphore(sim, value=-1)


def test_channel_put_get_roundtrip():
    sim = Simulator()
    chan = Channel(sim, capacity=2)
    got = []

    def producer():
        for i in range(4):
            yield chan.put(i)
            yield sim.timeout(1)

    def consumer():
        for _ in range(4):
            item = yield chan.get()
            got.append(item)
            yield sim.timeout(3)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == [0, 1, 2, 3]


def test_channel_put_blocks_when_full():
    sim = Simulator()
    chan = Channel(sim, capacity=1)
    events = []

    def producer():
        yield chan.put("a")
        events.append(("put-a", sim.now))
        yield chan.put("b")
        events.append(("put-b", sim.now))

    def consumer():
        yield sim.timeout(10)
        item = yield chan.get()
        events.append((f"got-{item}", sim.now))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert ("put-a", 0) in events
    put_b = next(t for tag, t in events if tag == "put-b")
    assert put_b == 10  # unblocked by the consumer's get


def test_channel_get_blocks_when_empty():
    sim = Simulator()
    chan = Channel(sim)
    got = []

    def consumer():
        item = yield chan.get()
        got.append((item, sim.now))

    def producer():
        yield sim.timeout(42)
        yield chan.put("x")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [("x", 42)]


def test_channel_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Channel(sim, capacity=0)


def test_mailbox_never_blocks_poster():
    sim = Simulator()
    box = Mailbox(sim)
    for i in range(100):
        box.post(i)
    assert len(box) == 100
    got = []

    def consumer():
        for _ in range(100):
            item = yield box.get()
            got.append(item)

    sim.process(consumer())
    sim.run()
    assert got == list(range(100))


def test_resource_mutual_exclusion():
    sim = Simulator()
    res = Resource(sim)
    spans = []

    def user(tag, hold):
        token = yield res.request()
        start = sim.now
        yield sim.timeout(hold)
        res.release(token)
        spans.append((tag, start, sim.now))

    sim.process(user("a", 10))
    sim.process(user("b", 5))
    sim.process(user("c", 3))
    sim.run()
    # FIFO grant order and no overlap.
    assert [s[0] for s in spans] == ["a", "b", "c"]
    for (_, s1, e1), (_, s2, _) in zip(spans, spans[1:]):
        assert s2 >= e1


def test_resource_stale_token_rejected():
    sim = Simulator()
    res = Resource(sim)

    def user():
        token = yield res.request()
        res.release(token)
        with pytest.raises(SimulationError):
            res.release(token)

    p = sim.process(user())
    sim.run(until=p)


def test_signal_change_events():
    sim = Simulator()
    sig = Signal(sim, value=False, name="In_Reconf")
    seen = []

    def watcher():
        v = yield sig.changed()
        seen.append((sim.now, v))

    def driver():
        yield sim.timeout(5)
        sig.set(False)  # no change -> no event
        yield sim.timeout(5)
        sig.set(True)

    sim.process(watcher())
    sim.process(driver())
    sim.run()
    assert seen == [(10, True)]
    assert sig.history == [(0, False), (10, True)]


def test_signal_wait_for_predicate():
    sim = Simulator()
    sig = Signal(sim, value=0)
    reached = []

    def watcher():
        v = yield sim.process(sig.wait_for(lambda x: x >= 3))
        reached.append((sim.now, v))

    def driver():
        for i in range(1, 5):
            yield sim.timeout(10)
            sig.set(i)

    sim.process(watcher())
    sim.process(driver())
    sim.run()
    assert reached == [(30, 3)]
