"""Tests for tracing, spans, and metric helpers."""

import math

import pytest

from repro.sim import Accumulator, Span, Trace, UtilizationTracker, busy_time, interval_union, stall_time
from repro.sim import units


def test_trace_begin_end_span():
    tr = Trace()
    tr.begin(10, "fpga.D1", "compute", detail="qpsk")
    span = tr.end(25, "fpga.D1", "compute")
    assert span.duration == 15
    assert tr.spans_of("fpga.D1") == [span]


def test_trace_double_begin_rejected():
    tr = Trace()
    tr.begin(0, "a", "compute")
    with pytest.raises(ValueError):
        tr.begin(1, "a", "compute")


def test_trace_end_without_begin_rejected():
    tr = Trace()
    with pytest.raises(ValueError):
        tr.end(5, "a", "compute")


def test_trace_end_before_begin_rejected():
    tr = Trace()
    tr.begin(10, "a", "compute")
    with pytest.raises(ValueError):
        tr.end(5, "a", "compute")


def test_trace_records_query_sorted():
    tr = Trace()
    tr.record(5, "m", "request", "cfg2")
    tr.record(2, "m", "request", "cfg1")
    tr.record(9, "n", "grant")
    recs = tr.records_of(actor="m")
    assert [r.time for r in recs] == [2, 5]
    assert tr.end_time() == 9


def test_span_overlap():
    a = Span("x", "compute", 0, 10)
    b = Span("x", "compute", 9, 12)
    c = Span("x", "compute", 10, 12)
    assert a.overlaps(b)
    assert not a.overlaps(c)


def test_interval_union_merges():
    assert interval_union([(0, 5), (3, 8), (10, 12)]) == [(0, 8), (10, 12)]
    assert interval_union([]) == []
    assert interval_union([(5, 5)]) == []  # empty interval dropped
    assert interval_union([(0, 2), (2, 4)]) == [(0, 4)]  # adjacent merge


def test_busy_and_stall_time():
    tr = Trace()
    tr.add_span(Span("op", "compute", 0, 10))
    tr.add_span(Span("op", "compute", 5, 12))
    tr.add_span(Span("op", "stall", 12, 20))
    assert busy_time(tr.spans_of("op", "compute")) == 12
    assert stall_time(tr, "op") == 8


def test_utilization_tracker():
    tr = Trace()
    tr.add_span(Span("op", "compute", 0, 30))
    tr.add_span(Span("op", "stall", 30, 100))
    ut = UtilizationTracker(tr, "op")
    assert ut.utilization(kind="compute") == pytest.approx(0.3)
    assert ut.utilization(kind="compute", horizon=60) == pytest.approx(0.5)


def test_gantt_renders_rows():
    tr = Trace()
    tr.add_span(Span("dsp", "compute", 0, 50))
    tr.add_span(Span("fpga", "reconfig", 50, 100))
    chart = tr.gantt(width=20)
    assert "dsp" in chart and "fpga" in chart
    assert "#" in chart and "R" in chart


def test_accumulator_statistics():
    acc = Accumulator()
    acc.extend([1.0, 2.0, 3.0, 4.0])
    assert acc.mean == pytest.approx(2.5)
    assert acc.stddev == pytest.approx(math.sqrt(1.25))
    assert acc.minimum == 1.0
    assert acc.maximum == 4.0
    assert acc.total == 10.0
    assert acc.summary()["n"] == 4


def test_accumulator_empty():
    acc = Accumulator()
    assert acc.mean == 0.0
    assert acc.variance == 0.0
    assert acc.summary()["min"] == 0.0


def test_units_conversions():
    assert units.ms(4) == 4_000_000
    assert units.to_ms(units.ms(4)) == pytest.approx(4.0)
    assert units.us(1.5) == 1500
    assert units.seconds(0.001) == units.ms(1)


def test_cycles_to_ns_rounds_up():
    # 3 cycles at 66 MHz = 45.45... ns -> 46
    assert units.cycles_to_ns(3, 66.0) == 46
    assert units.cycles_to_ns(0, 66.0) == 0
    with pytest.raises(ValueError):
        units.cycles_to_ns(1, 0)


def test_transfer_time_ceil():
    # 1 byte at 1 GB/s = 1 ns exactly
    assert units.transfer_time_ns(1, 1_000_000_000) == 1
    # 10 bytes at 3 B/s -> ceil(3.33..s) in ns
    assert units.transfer_time_ns(10, 3) == math.ceil(10 / 3 * 1e9)
    with pytest.raises(ValueError):
        units.transfer_time_ns(-1, 10)
    with pytest.raises(ValueError):
        units.transfer_time_ns(1, 0)
