"""Trace-context propagation across the sweep engine's process boundary.

The acceptance property of the observability layer: one traced
``ParallelSweepEngine`` run yields a *single* span tree — worker-side stage
spans parent (transitively) under the job span the engine opened, worker
metrics merge into the ambient registry, and the exported file passes the
Chrome-trace validator.
"""

import dataclasses

from repro.dfg.library import default_library
from repro.exec import ParallelSweepEngine
from repro.fabric.device import XC2V1000, XC2V2000
from repro.flows import parse_constraints, sweep_jobs_for_grid
from repro.mccdma.casestudy import build_mccdma_graph
from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace,
    use_metrics,
    use_tracer,
    validate_chrome_trace,
)

CONSTRAINTS = parse_constraints("""
[module mod_qpsk]
region    = D1
operation = mod_qpsk

[module mod_qam16]
region    = D1
operation = mod_qam16

[region D1]
sharing   = true
exclusive = mod_qpsk, mod_qam16
""")


def grid_jobs(devices=(XC2V1000,), simulate=0):
    jobs = sweep_jobs_for_grid(
        build_mccdma_graph(),
        default_library(),
        devices=devices,
        architectures=(),
        dynamic_constraints=CONSTRAINTS,
        pins=(("bit_src", "DSP"), ("select", "DSP")),
    )
    if simulate:
        jobs = [
            dataclasses.replace(j, simulate_iterations=simulate, simulate_policy="on_select")
            for j in jobs
        ]
    return jobs


def run_traced(jobs, n_workers):
    tracer = Tracer()
    registry = MetricsRegistry()
    with use_tracer(tracer), use_metrics(registry):
        report = ParallelSweepEngine(jobs=n_workers, sweep_name="traced").run(jobs)
    return report, tracer, registry


def ancestors(span, by_id):
    chain = []
    parent = span.context.parent_id
    while parent is not None:
        node = by_id[parent]
        chain.append(node.name)
        parent = node.context.parent_id
    return chain


def test_parallel_sweep_produces_single_connected_trace():
    jobs = grid_jobs((XC2V1000, XC2V2000), simulate=4)
    report, tracer, registry = run_traced(jobs, 2)
    assert not report.failed

    spans = tracer.spans
    assert {s.context.trace_id for s in spans} == {tracer.trace_id}
    by_id = {s.context.span_id: s for s in spans}

    # Worker-side stage spans chain up through flow -> attempt -> job -> sweep.
    stage_spans = [s for s in spans if s.name.startswith("stage:")]
    assert stage_spans and all(s.process.startswith("worker-") for s in stage_spans)
    for span in stage_spans:
        chain = ancestors(span, by_id)
        assert chain[-1].startswith("sweep:")
        assert any(name.startswith("job:") for name in chain)
        assert any(name.startswith("attempt:") for name in chain)

    # Per-region reconfiguration activity from the in-worker simulations.
    load_spans = [s for s in spans if s.clock == "sim" and
                  s.attributes.get("kind") in ("load", "prefetch")]
    assert load_spans
    assert {s.attributes["region"] for s in load_spans} == {"D1"}

    # Worker metrics crossed the pipe and merged into the ambient registry.
    snapshot = registry.snapshot()
    assert snapshot["flow.stages_total"]["value"] >= len(jobs) * 6
    assert "reconfig.demand_requests" in snapshot
    assert snapshot["sweep.jobs_total"]["value"] == len(jobs)

    # The exported Chrome trace passes the CI validator.
    assert validate_chrome_trace(chrome_trace(spans)) == []


def test_serial_sweep_traces_without_workers():
    report, tracer, _ = run_traced(grid_jobs(), 0)
    assert not report.failed
    by_id = {s.context.span_id: s for s in tracer.spans}
    stage_spans = [s for s in tracer.spans if s.name.startswith("stage:")]
    assert stage_spans
    for span in stage_spans:
        assert ancestors(span, by_id)[-1].startswith("sweep:")
    assert validate_chrome_trace(chrome_trace(tracer.spans)) == []


def test_untraced_sweep_records_nothing():
    report = ParallelSweepEngine(jobs=0, sweep_name="quiet").run(grid_jobs())
    assert not report.failed  # no ambient tracer: the engine stays silent
