"""File-lock and atomic-write primitives of the execution subsystem."""

import threading

import pytest

from repro.exec.locks import FileLock, atomic_write_bytes


def test_filelock_context_manager(tmp_path):
    lock = FileLock(tmp_path / "a.lock")
    assert not lock.locked
    with lock:
        assert lock.locked
        assert (tmp_path / "a.lock").exists()
    assert not lock.locked


def test_filelock_creates_parent_dirs(tmp_path):
    with FileLock(tmp_path / "deep" / "nested" / "k.lock") as lock:
        assert lock.locked


def test_filelock_rejects_reentrant_acquire(tmp_path):
    lock = FileLock(tmp_path / "a.lock")
    lock.acquire()
    try:
        with pytest.raises(RuntimeError):
            lock.acquire()
    finally:
        lock.release()


def test_filelock_release_is_idempotent(tmp_path):
    lock = FileLock(tmp_path / "a.lock")
    lock.acquire()
    lock.release()
    lock.release()  # no error
    assert not lock.locked


def test_filelock_serializes_threads(tmp_path):
    """Two contenders over the same path never hold the lock together."""
    path = tmp_path / "shared.lock"
    inside = []
    overlaps = []

    def contend():
        for _ in range(10):
            with FileLock(path):
                inside.append(1)
                if len(inside) > 1:
                    overlaps.append(True)
                inside.pop()

    threads = [threading.Thread(target=contend) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not overlaps


def test_atomic_write_replaces_and_leaves_no_temp(tmp_path):
    target = tmp_path / "value.pkl"
    atomic_write_bytes(target, b"one")
    atomic_write_bytes(target, b"two")
    assert target.read_bytes() == b"two"
    assert [p.name for p in tmp_path.iterdir()] == ["value.pkl"]


def test_atomic_write_concurrent_writers_leave_complete_file(tmp_path):
    target = tmp_path / "contended.bin"
    payloads = [bytes([i]) * 4096 for i in range(8)]

    def write(payload):
        for _ in range(20):
            atomic_write_bytes(target, payload)

    threads = [threading.Thread(target=write, args=(p,)) for p in payloads]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    data = target.read_bytes()
    assert data in payloads  # some complete payload, never interleaved
    assert [p.name for p in tmp_path.iterdir()] == ["contended.bin"]
