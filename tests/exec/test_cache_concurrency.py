"""Concurrent and corruption behaviour of the ArtifactCache disk tier."""

import pickle
import threading

from repro.flows.pipeline import ArtifactCache


def disk_entry(cache: ArtifactCache, key: str):
    return cache.disk_dir / f"{key}.pkl"


# -- corruption tolerance ----------------------------------------------------------


def test_truncated_entry_is_miss_deleted_and_warned(tmp_path):
    writer = ArtifactCache(disk_dir=tmp_path)
    writer.put("key", {"payload": list(range(100))})
    path = disk_entry(writer, "key")
    path.write_bytes(path.read_bytes()[:10])  # truncate mid-stream

    warnings = []
    reader = ArtifactCache(disk_dir=tmp_path, on_warning=warnings.append)
    assert reader.get("key") is None  # miss, not an exception
    assert not path.exists()  # bad entry self-healed away
    assert reader.stats.misses == 1
    assert reader.stats.corruptions == 1
    assert len(warnings) == 1 and "corrupt" in warnings[0]
    assert reader.warnings == warnings


def test_garbage_entry_is_miss_and_deleted(tmp_path):
    cache = ArtifactCache(disk_dir=tmp_path)
    bad = disk_entry(cache, "junk")
    bad.write_bytes(b"this is not a pickle at all")
    assert cache.get("junk") is None
    assert not bad.exists()
    assert cache.stats.corruptions == 1


def test_empty_entry_is_miss_and_deleted(tmp_path):
    cache = ArtifactCache(disk_dir=tmp_path)
    disk_entry(cache, "empty").write_bytes(b"")
    assert cache.get("empty") is None
    assert not disk_entry(cache, "empty").exists()


def test_corrupt_entry_can_be_rewritten_and_read(tmp_path):
    cache = ArtifactCache(disk_dir=tmp_path)
    disk_entry(cache, "k").write_bytes(b"\x80garbage")
    assert cache.get("k") is None
    cache.put("k", 42)
    fresh = ArtifactCache(disk_dir=tmp_path)
    assert fresh.get("k") == 42


def test_unpicklable_value_stays_in_memory_with_warning(tmp_path):
    warnings = []
    cache = ArtifactCache(disk_dir=tmp_path, on_warning=warnings.append)
    value = {"fn": lambda: None}  # lambdas don't pickle
    cache.put("k", value)
    assert cache.get("k") is value  # memory tier still serves it
    assert not disk_entry(cache, "k").exists()
    assert warnings and "not persisted" in warnings[0]


# -- cross-process / pickling safety -----------------------------------------------


def test_cache_object_pickles_without_lock_or_entries(tmp_path):
    cache = ArtifactCache(disk_dir=tmp_path)
    cache.put("k", [1, 2, 3])
    clone = pickle.loads(pickle.dumps(cache))
    assert len(clone) == 0  # memory tier is process-local
    assert clone.get("k") == [1, 2, 3]  # disk tier carries over
    clone.put("other", "fine")  # lock was recreated


def test_two_instances_share_one_directory(tmp_path):
    a = ArtifactCache(disk_dir=tmp_path)
    b = ArtifactCache(disk_dir=tmp_path)
    a.put("from-a", 1)
    b.put("from-b", 2)
    assert a.get("from-b") == 2
    assert b.get("from-a") == 1


def test_threaded_hammer_over_shared_directory(tmp_path):
    """Many writers/readers over one directory: no exception, no bad read."""
    caches = [ArtifactCache(max_entries=4, disk_dir=tmp_path) for _ in range(4)]
    errors = []

    def hammer(cache, base):
        try:
            for i in range(25):
                key = f"key-{(base + i) % 10}"
                cache.put(key, {"key": key})
                got = cache.get(key)
                assert got is None or got == {"key": key}
        except Exception as err:  # pragma: no cover - failure reporting
            errors.append(err)

    threads = [
        threading.Thread(target=hammer, args=(cache, n * 3)) for n, cache in enumerate(caches)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    assert sum(c.stats.corruptions for c in caches) == 0


def test_lock_files_do_not_pollute_entry_namespace(tmp_path):
    cache = ArtifactCache(disk_dir=tmp_path)
    cache.put("k", 1)
    cache.get("k")
    entries = [p.name for p in tmp_path.iterdir() if p.is_file()]
    assert entries == ["k.pkl"]  # locks live under .locks/, never *.pkl
