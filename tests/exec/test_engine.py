"""The parallel sweep engine: scheduling, fault tolerance, determinism.

The acceptance-critical properties live here:

- a ``--jobs 4`` sweep of the stock 3-device x 2-architecture grid leaves
  **byte-identical artifacts** on disk to a serial run;
- fault injection (a worker raising, hard-exiting, or sleeping past the
  timeout) shows the engine retries, then completes with the failed job
  reported — never deadlocking, never failing the sweep as a whole.

Worker processes are real spawn-context children, so this module leans on
small grids to keep wall time reasonable.
"""

import dataclasses

import pytest

from repro.dfg.library import default_library
from repro.exec import ParallelSweepEngine, SweepEvent
from repro.fabric.device import XC2V1000
from repro.flows import RecordingObserver, parse_constraints, sweep_jobs_for_grid
from repro.mccdma.casestudy import build_mccdma_graph
from repro.reconfig import case_a_standalone, case_b_processor

CONSTRAINTS = parse_constraints("""
[module mod_qpsk]
region    = D1
operation = mod_qpsk

[module mod_qam16]
region    = D1
operation = mod_qam16

[region D1]
sharing   = true
exclusive = mod_qpsk, mod_qam16
""")

PINS = (("bit_src", "DSP"), ("select", "DSP"))


def grid_jobs(devices=(XC2V1000,), architectures=()):
    return sweep_jobs_for_grid(
        build_mccdma_graph(),
        default_library(),
        devices=devices,
        architectures=architectures,
        dynamic_constraints=CONSTRAINTS,
        pins=PINS,
    )


def with_fault(job, job_id, fault):
    return dataclasses.replace(job, job_id=job_id, fault=fault)


# -- construction ------------------------------------------------------------------


def test_engine_rejects_bad_parameters():
    with pytest.raises(ValueError):
        ParallelSweepEngine(jobs=-1)
    with pytest.raises(ValueError):
        ParallelSweepEngine(retries=-1)
    with pytest.raises(ValueError):
        ParallelSweepEngine(timeout_s=0)


def test_engine_rejects_duplicate_job_ids():
    jobs = grid_jobs()
    with pytest.raises(ValueError, match="duplicate"):
        ParallelSweepEngine(jobs=0).run([jobs[0], jobs[0]])


def test_empty_sweep_completes():
    report = ParallelSweepEngine(jobs=0).run([])
    assert report.results == []
    assert report.failed == []


def test_sweep_event_kind_is_validated():
    with pytest.raises(ValueError, match="unknown sweep event kind"):
        SweepEvent(kind="not_a_kind")
    event = SweepEvent(kind="job_finished", job="j1", worker=3, attempt=2, detail="x")
    flow_event = event.to_flow_event()
    assert flow_event.stage == "sweep:job_finished"
    assert flow_event.flow.endswith("/j1")
    assert flow_event.metrics["worker"] == 3
    assert flow_event.metrics["attempt"] == 2


# -- serial in-process mode (jobs=0) ------------------------------------------------


def test_serial_mode_runs_the_grid_and_streams_events(tmp_path):
    recorder = RecordingObserver()
    engine = ParallelSweepEngine(
        jobs=0, cache_dir=tmp_path / "cache", observer=recorder, sweep_name="serial"
    )
    report = engine.run(grid_jobs(architectures=(case_a_standalone(), case_b_processor())))
    assert [r.ok for r in report.results] == [True, True]
    assert [r.job_id for r in report.results] == [
        "xc2v1000@case_a_standalone",
        "xc2v1000@case_b_processor",
    ]
    # Stage events flowed through the observer; shared cache produced hits.
    assert report.cache_lookups() == 12  # 2 jobs x 6 stages
    assert report.cache_hits() > 0
    kinds = [e.stage for e in report.events if e.stage.startswith("sweep:")]
    assert kinds.count("sweep:job_finished") == 2
    assert kinds[-1] == "sweep:sweep_completed"
    assert recorder.events  # same stream reached the observer


def test_serial_mode_retries_then_reports_failure():
    jobs = grid_jobs()
    flaky = with_fault(jobs[0], "flaky", "fail_below:2")
    dead = with_fault(jobs[0], "dead", "raise")
    report = ParallelSweepEngine(jobs=0, retries=1).run([flaky, dead])
    by_id = {r.job_id: r for r in report.results}
    assert by_id["flaky"].ok and by_id["flaky"].attempts == 2
    assert not by_id["dead"].ok and by_id["dead"].attempts == 2
    assert "injected fault" in by_id["dead"].error


# -- parallel workers --------------------------------------------------------------


def test_parallel_sweep_matches_expected_points(tmp_path):
    recorder = RecordingObserver()
    engine = ParallelSweepEngine(
        jobs=2, timeout_s=300, retries=1, cache_dir=tmp_path / "cache", observer=recorder
    )
    jobs = grid_jobs(architectures=(case_a_standalone(), case_b_processor()))
    report = engine.run(jobs)
    # Results in submission order, independent of completion order.
    assert [r.job_id for r in report.results] == [j.job_id for j in jobs]
    assert all(r.ok for r in report.results)
    payload = report.results[0].payload
    assert payload["fits"] is True
    assert payload["makespan_ns"] > 0
    assert payload["reconfig_latency_ns"]["D1"] > 0
    # Worker stage events were streamed back into the observer layer.
    stage_names = {e.stage for e in recorder.events if not e.stage.startswith("sweep:")}
    assert "adequation" in stage_names and "modular_backend" in stage_names
    assert report.to_dict()["succeeded"] == 2


def test_parallel_faults_retry_then_report_without_deadlock(tmp_path):
    """A raising worker, a hard-crashing worker and a hung worker each fail
    only their own job; the sweep completes with partial results."""
    jobs = grid_jobs(architectures=(case_a_standalone(),))
    good = jobs[0]
    raiser = with_fault(good, "raiser", "raise")
    crasher = with_fault(good, "crasher", "exit")
    hung = with_fault(good, "hung", "hang")
    engine = ParallelSweepEngine(
        jobs=2, timeout_s=15, retries=1, backoff_s=0.01, cache_dir=tmp_path / "cache"
    )
    report = engine.run([good, raiser, crasher, hung])
    by_id = {r.job_id: r for r in report.results}
    assert len(report.results) == 4  # nothing lost
    assert by_id[good.job_id].ok
    assert not by_id["raiser"].ok and by_id["raiser"].attempts == 2
    assert "injected fault" in by_id["raiser"].error
    assert not by_id["crasher"].ok and "crashed" in by_id["crasher"].error
    assert not by_id["hung"].ok and "timed out" in by_id["hung"].error
    kinds = [e.stage for e in report.events if e.stage.startswith("sweep:")]
    assert "sweep:job_retried" in kinds
    assert "sweep:job_timeout" in kinds
    assert "sweep:worker_crashed" in kinds
    assert kinds[-1] == "sweep:sweep_completed"


def test_flaky_job_succeeds_on_parallel_retry(tmp_path):
    jobs = grid_jobs(architectures=(case_a_standalone(),))
    flaky = with_fault(jobs[0], "flaky", "fail_below:2")
    engine = ParallelSweepEngine(
        jobs=1, timeout_s=300, retries=2, backoff_s=0.01, cache_dir=tmp_path / "cache"
    )
    report = engine.run([flaky])
    (result,) = report.results
    assert result.ok and result.attempts == 2
    assert result.payload["fits"] is True


# -- the acceptance criterion: byte-identical artifacts ----------------------------


def stock_grid_jobs():
    from repro.fabric.device import XC2V2000, XC2V3000

    return sweep_jobs_for_grid(
        build_mccdma_graph(),
        default_library(),
        devices=(XC2V1000, XC2V2000, XC2V3000),
        architectures=(case_a_standalone(), case_b_processor()),
        dynamic_constraints=CONSTRAINTS,
        pins=PINS,
    )


def artifact_bytes(cache_dir):
    return {p.name: p.read_bytes() for p in cache_dir.glob("*.pkl")}


def test_parallel_artifacts_byte_identical_to_serial(tmp_path):
    """Stock 3-device x 2-architecture grid, --jobs 4 vs serial: the shared
    disk caches must contain the same entries with the same bytes."""
    serial_dir = tmp_path / "serial"
    parallel_dir = tmp_path / "parallel"
    serial = ParallelSweepEngine(jobs=0, cache_dir=serial_dir).run(stock_grid_jobs())
    parallel = ParallelSweepEngine(
        jobs=4, timeout_s=300, retries=1, cache_dir=parallel_dir
    ).run(stock_grid_jobs())
    assert all(r.ok for r in serial.results)
    assert all(r.ok for r in parallel.results)
    serial_artifacts = artifact_bytes(serial_dir)
    parallel_artifacts = artifact_bytes(parallel_dir)
    assert set(serial_artifacts) == set(parallel_artifacts)
    assert serial_artifacts == parallel_artifacts  # byte-identical payloads
    # And the reported numbers agree point by point.
    for a, b in zip(serial.results, parallel.results):
        assert a.job_id == b.job_id
        assert a.payload["makespan_ns"] == b.payload["makespan_ns"]
        assert a.payload["reconfig_latency_ns"] == b.payload["reconfig_latency_ns"]
