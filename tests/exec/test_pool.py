"""The warm worker pool: reuse, crash respawn accounting, cache resets.

These are the regression tests for the parallel-sweep slowdown fix:

- a second ``run()`` on the same engine reuses the warm workers (no
  respawn, ``pool_reused`` narrated);
- results and artifacts stay byte-identical to serial no matter what
  order jobs are submitted in (pull dispatch must not leak scheduling
  into results);
- a hung job degrades exactly that job; the pool survives and the next
  run still works;
- a worker dying *between* a failed attempt and its redispatch (the
  ``raise_exit`` fault) is respawned and the retry still lands — the
  crash-accounting case where an untracked job would deadlock the engine;
- span ids stay unique when one worker serves many traced runs.

Worker processes are real spawn-context children; the cheap compute-bound
:class:`~repro.mccdma.engine.LinkPointJob` keeps wall time reasonable.
"""

import dataclasses
import random

import pytest

from repro.dfg.library import default_library
from repro.exec import ParallelSweepEngine, WorkerPool
from repro.fabric.device import XC2V1000
from repro.flows import parse_constraints, sweep_jobs_for_grid
from repro.mccdma.casestudy import build_mccdma_graph
from repro.mccdma.engine import LinkEngineConfig, LinkPointJob
from repro.mccdma.transmitter import MCCDMAConfig
from repro.obs import Tracer, use_tracer
from repro.reconfig import case_a_standalone, case_b_processor

CONSTRAINTS = parse_constraints("""
[module mod_qpsk]
region    = D1
operation = mod_qpsk

[module mod_qam16]
region    = D1
operation = mod_qam16

[region D1]
sharing   = true
exclusive = mod_qpsk, mod_qam16
""")

PINS = (("bit_src", "DSP"), ("select", "DSP"))


def link_jobs(n, frames=6, faults=()):
    """``n`` cheap compute-bound jobs; ``faults`` maps index -> fault spec."""
    faults = dict(faults)
    config = MCCDMAConfig(user_codes=(0,))
    engine = LinkEngineConfig(batch_frames=8)
    return [
        LinkPointJob(
            job_id=f"pt{i:02d}",
            strategy="qpsk",
            snr_db=6.0 + i,
            n_frames=frames,
            seed_entropy=0,
            point_index=i,
            config=config,
            engine=engine,
            fault=faults.get(i),
        )
        for i in range(n)
    ]


def sweep_kinds(report):
    return [e.stage for e in report.events if e.stage.startswith("sweep:")]


# -- pool mechanics ----------------------------------------------------------------


def test_pool_rejects_bad_size_and_double_borrow():
    with pytest.raises(ValueError):
        WorkerPool(0)
    pool = WorkerPool(1)
    pool.acquire("first")
    with pytest.raises(RuntimeError, match="one pool serves one run"):
        pool.acquire("second")
    pool.release()
    pool.acquire("third")
    pool.release()
    pool.close()


def test_closed_pool_refuses_spawn_and_close_is_idempotent():
    pool = WorkerPool(1)
    pool.close()
    pool.close()
    with pytest.raises(RuntimeError, match="closed"):
        pool.spawn()


def test_engine_ignores_jobs_param_when_pool_given():
    with WorkerPool(2, name="sized") as pool:
        engine = ParallelSweepEngine(jobs=7, pool=pool)
        assert engine.n_workers == 2


# -- warm reuse --------------------------------------------------------------------


def test_second_run_reuses_warm_workers_without_respawn():
    engine = ParallelSweepEngine(jobs=2, timeout_s=120, sweep_name="warm")
    try:
        first = engine.run(link_jobs(4))
        assert all(r.ok for r in first.results)
        assert sweep_kinds(first).count("sweep:worker_spawned") == 2
        assert "sweep:pool_reused" not in sweep_kinds(first)

        second = engine.run(link_jobs(4))
        assert all(r.ok for r in second.results)
        kinds = sweep_kinds(second)
        assert "sweep:pool_reused" in kinds
        assert "sweep:worker_spawned" not in kinds  # nothing respawned
        assert engine.pool.spawned_total == 2  # lifetime: exactly one spawn each
    finally:
        engine.close()
    assert engine.pool is None  # close() releases the owned pool


def test_shared_pool_serves_many_engines():
    with WorkerPool(2, name="shared") as pool:
        for sweep in ("alpha", "beta", "gamma"):
            engine = ParallelSweepEngine(pool=pool, timeout_s=120, sweep_name=sweep)
            report = engine.run(link_jobs(3))
            assert all(r.ok for r in report.results)
        assert pool.spawned_total == 2


def test_parallel_results_identical_to_serial_under_shuffled_order():
    """Pull-based dispatch must not leak scheduling order into results:
    a shuffled submission returns the shuffled order's results, with every
    payload field-identical to the serial run of the same point."""
    jobs = link_jobs(6)
    serial = ParallelSweepEngine(jobs=0).run(jobs)
    shuffled = list(jobs)
    random.Random(7).shuffle(shuffled)
    with ParallelSweepEngine(jobs=2, timeout_s=120) as engine:
        parallel = engine.run(shuffled)
    assert [r.job_id for r in parallel.results] == [j.job_id for j in shuffled]
    serial_by_id = {r.job_id: r.payload for r in serial.results}
    for result in parallel.results:
        assert result.ok
        assert result.payload["result"] == serial_by_id[result.job_id]["result"]


def test_shuffled_design_sweep_artifacts_byte_identical_to_serial(tmp_path):
    """The design-flow grid, submitted shuffled on the pool, leaves the
    same artifact bytes on disk as an in-order serial run."""
    def grid():
        return sweep_jobs_for_grid(
            build_mccdma_graph(),
            default_library(),
            devices=(XC2V1000,),
            architectures=(case_a_standalone(), case_b_processor()),
            dynamic_constraints=CONSTRAINTS,
            pins=PINS,
        )

    serial_dir = tmp_path / "serial"
    pool_dir = tmp_path / "pool"
    serial = ParallelSweepEngine(jobs=0, cache_dir=serial_dir).run(grid())
    shuffled = grid()
    random.Random(3).shuffle(shuffled)
    with ParallelSweepEngine(jobs=2, timeout_s=300, cache_dir=pool_dir) as engine:
        parallel = engine.run(shuffled)
    assert all(r.ok for r in serial.results) and all(r.ok for r in parallel.results)
    serial_bytes = {p.name: p.read_bytes() for p in serial_dir.glob("*.pkl")}
    pool_bytes = {p.name: p.read_bytes() for p in pool_dir.glob("*.pkl")}
    assert serial_bytes == pool_bytes


# -- fault tolerance on the warm pool ----------------------------------------------


def test_hang_degrades_one_job_and_pool_survives_for_next_run():
    engine = ParallelSweepEngine(
        jobs=2, timeout_s=4, retries=0, backoff_s=0.01, sweep_name="hangs"
    )
    try:
        jobs = link_jobs(4, faults={1: "hang"})
        report = engine.run(jobs)
        by_id = {r.job_id: r for r in report.results}
        assert len(report.results) == 4
        assert not by_id["pt01"].ok and "timed out" in by_id["pt01"].error
        for job_id in ("pt00", "pt02", "pt03"):
            assert by_id[job_id].ok, by_id[job_id].error
        assert "sweep:job_timeout" in sweep_kinds(report)

        # The pool is still serviceable: the next run completes cleanly.
        again = engine.run(link_jobs(3))
        assert all(r.ok for r in again.results)
        assert engine.pool.warm_count == 2
    finally:
        engine.close()


def test_worker_death_between_failed_attempt_and_redispatch_is_respawned():
    """The ``raise_exit`` fault: the worker reports the failed attempt
    (the engine schedules a backoff retry) and then dies.  The engine must
    notice the crash, respawn into the warm pool, and run the retry there
    — nothing may be left waiting on a job no live worker owns."""
    engine = ParallelSweepEngine(
        jobs=1, timeout_s=120, retries=1, backoff_s=0.05, sweep_name="respawn"
    )
    try:
        report = engine.run(link_jobs(2, faults={0: "raise_exit"}))
        by_id = {r.job_id: r for r in report.results}
        assert len(report.results) == 2  # nothing lost
        assert by_id["pt00"].ok and by_id["pt00"].attempts == 2
        assert by_id["pt01"].ok
        kinds = sweep_kinds(report)
        assert "sweep:job_retried" in kinds
        assert "sweep:worker_crashed" in kinds
        assert "sweep:worker_respawned" in kinds
    finally:
        engine.close()


def test_crashed_worker_unstarted_jobs_keep_their_attempts():
    """Jobs queued behind a crash that never started must not burn an
    attempt: with retries=0 they would otherwise be reported failed."""
    engine = ParallelSweepEngine(
        jobs=1, timeout_s=120, retries=1, backoff_s=0.01, prefetch_depth=3,
        sweep_name="prefetched",
    )
    try:
        # Worker 0 gets pt00 (crashes after reporting) with pt01/pt02
        # prefetched behind it; both must still succeed on first attempt.
        report = engine.run(link_jobs(3, faults={0: "raise_exit"}))
        by_id = {r.job_id: r for r in report.results}
        assert by_id["pt00"].ok and by_id["pt00"].attempts == 2
        assert by_id["pt01"].ok and by_id["pt01"].attempts == 1
        assert by_id["pt02"].ok and by_id["pt02"].attempts == 1
    finally:
        engine.close()


# -- batched submission ------------------------------------------------------------


def test_prefetch_batches_jobs_ahead_of_completion():
    with ParallelSweepEngine(jobs=1, timeout_s=120, prefetch_depth=2) as engine:
        report = engine.run(link_jobs(4))
    assert all(r.ok for r in report.results)
    kinds = sweep_kinds(report)
    # Two dispatches land before the first completion: the worker always
    # has the next job in hand when it finishes one.
    first_finish = kinds.index("sweep:job_finished")
    assert kinds[:first_finish].count("sweep:job_dispatched") == 2


# -- cache control on a warm pool --------------------------------------------------


def test_engine_cache_dir_redirects_borrowed_pool(tmp_path):
    def grid():
        return sweep_jobs_for_grid(
            build_mccdma_graph(),
            default_library(),
            devices=(XC2V1000,),
            architectures=(case_a_standalone(),),
            dynamic_constraints=CONSTRAINTS,
            pins=PINS,
        )

    dir_a = tmp_path / "a"
    dir_b = tmp_path / "b"
    with WorkerPool(1, cache_dir=dir_a, name="caches") as pool:
        ParallelSweepEngine(pool=pool, timeout_s=300, cache_dir=dir_a).run(grid())
        assert list(dir_a.glob("*.pkl"))
        # Same warm worker, new cache dir: the engine resets the pool's
        # caches before dispatch, so artifacts land in the new tier.
        ParallelSweepEngine(pool=pool, timeout_s=300, cache_dir=dir_b).run(grid())
        assert list(dir_b.glob("*.pkl"))
        assert pool.spawned_total == 1
        assert pool.cache_dir == str(dir_b)


# -- tracing across runs -----------------------------------------------------------


def test_worker_span_ids_stay_unique_across_traced_runs():
    """One warm worker serves two traced runs; its ``w0-`` span ids must
    never repeat even though each run brings a fresh trace."""
    engine = ParallelSweepEngine(jobs=1, timeout_s=120, sweep_name="traced")
    try:
        worker_spans = []
        for _ in range(2):
            with use_tracer(Tracer()) as tracer:
                report = engine.run(link_jobs(2))
                assert all(r.ok for r in report.results)
                worker_spans.extend(
                    s for s in tracer.spans if s.context.span_id.startswith("w0-")
                )
        assert worker_spans  # the workers did contribute spans
        ids = [s.context.span_id for s in worker_spans]
        assert len(ids) == len(set(ids)), f"duplicated span ids: {sorted(ids)}"
        # Both runs' worker spans carry the worker process lane.
        assert {s.process for s in worker_spans} == {"worker-0"}
    finally:
        engine.close()


def test_raise_exit_fault_is_cheap_to_validate_in_process():
    """The fault spec itself: attempt 1 raises the reporting-then-exit
    error, attempt 2 passes (in-process, so no actual exit here)."""
    from repro.exec.worker import ExitAfterReport, _apply_fault

    with pytest.raises(ExitAfterReport):
        _apply_fault("raise_exit", attempt=1)
    _apply_fault("raise_exit", attempt=2)  # no raise


def test_link_jobs_helper_is_picklable_with_faults():
    import pickle

    job = link_jobs(1, faults={0: "raise"})[0]
    clone = pickle.loads(pickle.dumps(job))
    assert dataclasses.asdict(clone) == dataclasses.asdict(job)
