"""Tests for macro-code generation and the executive interpreter."""

import pytest

from repro.aaa import MappingConstraints, ReconfigAwareScheduler, SynDExScheduler, adequate
from repro.arch import sundance_board
from repro.dfg.generators import chain_graph, conditioned_chain_graph
from repro.dfg.library import default_library
from repro.executive import (
    ComputeInstr,
    ExecutiveRunner,
    FixedLatencyConfigService,
    MacroCodeError,
    RecvInstr,
    ReconfigureInstr,
    SendInstr,
    generate_executive,
)
from repro.executive.macrocode import ExecutiveProgram
from repro.mccdma.casestudy import build_mccdma_design
from repro.mccdma.modulation import Modulation
from repro.sim import Simulator


def adequate_graph(graph, scheduler=SynDExScheduler, constraints=None, reconfig_ns=None, **kw):
    board = sundance_board()
    result = adequate(
        graph, board.architecture, default_library(),
        constraints=constraints, scheduler=scheduler, reconfig_ns=reconfig_ns, **kw,
    )
    return result, board


def test_generate_chain_executive():
    g = chain_graph(4)
    result, _ = adequate_graph(g)
    program = generate_executive(g, result.schedule)
    program.validate()
    computes = [
        i for code in program.operator_code.values() for i in code if isinstance(i, ComputeInstr)
    ]
    assert {c.op_name for c in computes} == {op.name for op in g.operations}


def test_sends_recvs_balanced_for_cross_edges():
    design = build_mccdma_design()
    mc = MappingConstraints().pin("bit_src", "DSP").pin("coder", "F1")
    result = adequate(
        design.graph, design.board.architecture, design.library, constraints=mc,
        scheduler=SynDExScheduler,
    )
    program = generate_executive(design.graph, result.schedule)
    sends = [i for code in program.operator_code.values() for i in code if isinstance(i, SendInstr)]
    recvs = [i for code in program.operator_code.values() for i in code if isinstance(i, RecvInstr)]
    assert len(sends) == len(recvs) == len(program.edge_hops)


def test_render_macrocode_listing():
    g = chain_graph(3)
    result, _ = adequate_graph(g)
    program = generate_executive(g, result.schedule)
    text = program.render()
    assert "loop_" in text and "compute_" in text and "endloop_" in text


def test_executive_timing_matches_schedule_single_iteration():
    """One simulated iteration must complete exactly at the schedule makespan
    (same durations, same orderings, no reconfiguration)."""
    g = chain_graph(5)
    result, _ = adequate_graph(g)
    program = generate_executive(g, result.schedule)
    report = ExecutiveRunner(program, n_iterations=1).run()
    assert report.end_time_ns == result.makespan_ns


def test_executive_iterations_back_to_back_on_one_operator():
    """Operators have no internal parallelism: when the whole chain maps to
    one operator, n iterations take exactly n makespans."""
    g = chain_graph(5)
    result, _ = adequate_graph(g)
    assert len(result.schedule.operators_used()) == 1
    program = generate_executive(g, result.schedule)
    n = 10
    report = ExecutiveRunner(program, n_iterations=n).run()
    assert report.end_time_ns == n * result.makespan_ns


def test_executive_multiple_iterations_pipeline_across_operators():
    """A chain split across DSP and FPGA pipelines: successive iterations
    overlap, so n iterations finish in less than n makespans."""
    g = chain_graph(4)
    mc = MappingConstraints().pin("n0", "DSP").pin("n1", "DSP").pin("n2", "F1").pin("n3", "F1")
    result, _ = adequate_graph(g, constraints=mc)
    assert len(result.schedule.operators_used()) == 2
    program = generate_executive(g, result.schedule)
    n = 10
    report = ExecutiveRunner(program, n_iterations=n).run()
    assert report.end_time_ns < n * result.makespan_ns
    assert report.end_time_ns >= result.makespan_ns
    # Steady-state period approaches the bottleneck stage, not the makespan.
    period = report.iteration_period_ns("F1")
    assert period < result.makespan_ns


def test_conditioned_executive_runs_selected_case_only():
    g = conditioned_chain_graph(5, 2)
    result, _ = adequate_graph(g)
    program = generate_executive(g, result.schedule)
    plan = [0, 1, 1, 0]
    runner = ExecutiveRunner(
        program,
        n_iterations=len(plan),
        selector_values={"alt": lambda it: plan[it]},
        capture={"alt0", "alt1"},
    )
    report = runner.run()
    assert report.condition_history == plan
    assert len(report.captured["alt0"]) == plan.count(0)
    assert len(report.captured["alt1"]) == plan.count(1)


def test_reconfiguration_stalls_accounted():
    design = build_mccdma_design()
    mc = MappingConstraints().pin("mod_qpsk", "D1").pin("mod_qam16", "D1")
    result = adequate(
        design.graph, design.board.architecture, design.library, constraints=mc,
        scheduler=ReconfigAwareScheduler, reconfig_ns={"D1": 4_000_000},
    )
    program = generate_executive(design.graph, result.schedule)
    reconf_instrs = [
        i for code in program.operator_code.values() for i in code
        if isinstance(i, ReconfigureInstr)
    ]
    assert {i.module for i in reconf_instrs} == {"mod_qpsk", "mod_qam16"}

    sim = Simulator()
    plan = [Modulation.QPSK, Modulation.QAM16, Modulation.QAM16, Modulation.QPSK]
    service = FixedLatencyConfigService(sim, latency_ns=4_000_000)
    runner = ExecutiveRunner(
        program, n_iterations=len(plan), sim=sim,
        selector_values={"modulation": lambda it: plan[it]},
        config_service=service,
    )
    runner.run()
    # Three swaps: initial load (QPSK), ->QAM16, ->QPSK; unchanged iteration 3 free.
    assert service.swap_count == 3
    assert service.stall_ns == 3 * 4_000_000


def test_no_swap_when_selection_constant():
    design = build_mccdma_design()
    mc = MappingConstraints().pin("mod_qpsk", "D1").pin("mod_qam16", "D1")
    result = adequate(
        design.graph, design.board.architecture, design.library, constraints=mc,
        scheduler=ReconfigAwareScheduler, reconfig_ns={"D1": 4_000_000},
    )
    program = generate_executive(design.graph, result.schedule)
    sim = Simulator()
    service = FixedLatencyConfigService(sim, latency_ns=4_000_000)
    runner = ExecutiveRunner(
        program, n_iterations=6, sim=sim,
        selector_values={"modulation": lambda it: Modulation.QPSK},
        config_service=service,
    )
    runner.run()
    assert service.swap_count == 1  # only the initial load


def test_functional_bindings_thread_values():
    g = chain_graph(3, tokens=4)
    result, _ = adequate_graph(g)
    program = generate_executive(g, result.schedule)

    def produce(inputs, params):
        return {"o0": 7}

    def double(inputs, params):
        value = inputs.get("i0")
        out = {"o0": None if value is None else value * 2}
        return out

    runner = ExecutiveRunner(
        program, n_iterations=3,
        bindings={"generic_medium": _dispatch(produce, double)},
        capture={"n1", "n2"},
    )
    report = runner.run()
    # n1 doubles n0's 7 -> 14; n2 receives 14.
    assert [c.get("o0") for c in report.captured["n1"]] == [14, 14, 14]


def _dispatch(produce, transform):
    """Kind-level binding that produces at sources and transforms elsewhere."""

    def binding(inputs, params):
        if not inputs or all(v is None for v in inputs.values()):
            return produce(inputs, params)
        return transform(inputs, params)

    return binding


def test_deadlock_diagnosis_names_the_stuck_vertex():
    """A program whose recv can never be satisfied (no transfer, no send)
    fails with a per-vertex status dump, not a bare kernel error."""
    from repro.executive.macrocode import ExecutiveProgram

    program = ExecutiveProgram(
        operator_code={
            "A": [SendInstr(edge_id="x.o->y.i", size_bytes=4)],
            "B": [
                RecvInstr(edge_id="x.o->y.i", size_bytes=4),
                RecvInstr(edge_id="x.o->y.i", size_bytes=4),  # never satisfied
                ComputeInstr(op_name="y", kind="k", duration_ns=1),
            ],
        },
        medium_code={"M": [
            __import__("repro.executive.macrocode", fromlist=["TransferInstr"]).TransferInstr(
                edge_id="x.o->y.i", hop=0, size_bytes=4, duration_ns=1
            )
        ]},
        edge_hops={"x.o->y.i": 1},
    )
    # Bypass validate() (which would reject the double recv) to exercise the
    # runtime diagnosis itself.
    program.validate = lambda: None  # type: ignore[method-assign]
    runner = ExecutiveRunner(program, n_iterations=1)
    with pytest.raises(MacroCodeError, match="deadlocked") as err:
        runner.run()
    assert "B: iteration 0, instruction 1: RecvInstr" in str(err.value)


def test_runner_validation():
    program = ExecutiveProgram(operator_code={"X": []})
    with pytest.raises(ValueError):
        ExecutiveRunner(program, n_iterations=0)


def test_program_validate_catches_missing_transfer():
    program = ExecutiveProgram(
        operator_code={
            "A": [SendInstr(edge_id="a.o->b.i", size_bytes=4)],
            "B": [RecvInstr(edge_id="a.o->b.i", size_bytes=4)],
        },
        edge_hops={"a.o->b.i": 1},
    )
    with pytest.raises(MacroCodeError, match="hops incomplete"):
        program.validate()


def test_instruction_validation():
    with pytest.raises(MacroCodeError):
        ComputeInstr(op_name="", kind="k", duration_ns=1)
    with pytest.raises(MacroCodeError):
        ComputeInstr(op_name="x", kind="k", duration_ns=-1)
    with pytest.raises(MacroCodeError):
        SendInstr(edge_id="")
    with pytest.raises(MacroCodeError):
        ReconfigureInstr(region="", module="m")


def test_fixed_latency_service_tracks_state():
    sim = Simulator()
    service = FixedLatencyConfigService(sim, latency_ns=100)

    def proc():
        yield service.ensure_loaded("D1", "a")
        assert sim.now == 100
        yield service.ensure_loaded("D1", "a")  # already loaded: free
        assert sim.now == 100
        yield service.ensure_loaded("D1", "b")
        assert sim.now == 200

    p = sim.process(proc())
    sim.run(until=p)
    assert service.swap_count == 2
    assert service.loaded["D1"] == "b"
