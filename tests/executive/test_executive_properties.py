"""Property-based tests: schedule ↔ executive ↔ simulation consistency.

The strongest invariant of the reproduction: for *any* generated algorithm
graph, the synchronized executive produced from a valid schedule, when
interpreted on the discrete-event kernel for one iteration, finishes exactly
at the schedule's makespan — macro-code generation and interpretation
preserve the adequation's timing model.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aaa import EarliestFinishScheduler, SynDExScheduler, adequate
from repro.arch import sundance_board
from repro.dfg.generators import (
    chain_graph,
    conditioned_chain_graph,
    fork_join_graph,
    layered_random_graph,
)
from repro.dfg.library import default_library
from repro.executive import ExecutiveRunner, generate_executive
from repro.executive.macrocode import ComputeInstr


def adequate_and_generate(graph, scheduler=SynDExScheduler):
    board = sundance_board()
    result = adequate(graph, board.architecture, default_library(), scheduler=scheduler)
    program = generate_executive(graph, result.schedule)
    return result, program


@settings(max_examples=20, deadline=None)
@given(
    layers=st.integers(min_value=2, max_value=5),
    width=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=300),
    scheduler=st.sampled_from([SynDExScheduler, EarliestFinishScheduler]),
)
def test_one_iteration_matches_makespan(layers, width, seed, scheduler):
    graph = layered_random_graph(layers, width, seed=seed)
    result, program = adequate_and_generate(graph, scheduler)
    report = ExecutiveRunner(program, n_iterations=1).run()
    assert report.end_time_ns == result.makespan_ns


@settings(max_examples=15, deadline=None)
@given(
    layers=st.integers(min_value=2, max_value=4),
    width=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=200),
    iterations=st.integers(min_value=2, max_value=6),
)
def test_iterations_never_faster_than_bottleneck(layers, width, seed, iterations):
    """n iterations take at least n x (busiest operator's busy time) and at
    most n x makespan."""
    graph = layered_random_graph(layers, width, seed=seed)
    result, program = adequate_and_generate(graph)
    report = ExecutiveRunner(program, n_iterations=iterations).run()
    per_operator_busy = {}
    for s in result.schedule.ops:
        per_operator_busy.setdefault(s.operator.name, 0)
        per_operator_busy[s.operator.name] += s.duration
    bottleneck = max(per_operator_busy.values())
    assert report.end_time_ns >= iterations * bottleneck
    assert report.end_time_ns <= iterations * result.makespan_ns


@settings(max_examples=15, deadline=None)
@given(
    length=st.integers(min_value=3, max_value=7),
    alternatives=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=100),
    iterations=st.integers(min_value=1, max_value=8),
)
def test_conditioned_executive_runs_exactly_one_case(length, alternatives, seed, iterations):
    """In every iteration exactly one alternative of the condition group
    computes, whatever the selection sequence."""
    import random

    graph = conditioned_chain_graph(length, alternatives)
    _, program = adequate_and_generate(graph)
    rng = random.Random(seed)
    plan = [rng.randrange(alternatives) for _ in range(iterations)]
    alt_names = {f"alt{i}" for i in range(alternatives)}
    report = ExecutiveRunner(
        program,
        n_iterations=iterations,
        selector_values={"alt": lambda it: plan[it]},
        capture=alt_names,
    ).run()
    total_fires = sum(len(v) for v in report.captured.values())
    assert total_fires == iterations
    for i in range(alternatives):
        assert len(report.captured[f"alt{i}"]) == plan.count(i)


@settings(max_examples=20, deadline=None)
@given(
    layers=st.integers(min_value=2, max_value=5),
    width=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=300),
)
def test_program_structure_balanced(layers, width, seed):
    """Every cross-operator edge has exactly one send, one recv, and a full
    hop chain; every operation computes exactly once per iteration."""
    graph = layered_random_graph(layers, width, seed=seed)
    _, program = adequate_and_generate(graph)
    program.validate()  # raises on imbalance
    computes = [
        i.op_name
        for code in program.operator_code.values()
        for i in code
        if isinstance(i, ComputeInstr)
    ]
    assert sorted(computes) == sorted(op.name for op in graph.operations)


@settings(max_examples=10, deadline=None)
@given(width=st.integers(min_value=2, max_value=6))
def test_fork_join_executive_terminates(width):
    graph = fork_join_graph(width)
    result, program = adequate_and_generate(graph)
    report = ExecutiveRunner(program, n_iterations=3).run()
    assert report.end_time_ns >= result.makespan_ns


def test_chain_iteration_ends_strictly_increasing():
    graph = chain_graph(4)
    _, program = adequate_and_generate(graph)
    report = ExecutiveRunner(program, n_iterations=5).run()
    for ends in report.iteration_ends.values():
        assert all(b > a for a, b in zip(ends, ends[1:]))
