"""Prefetch-hint semantics of the FixedLatencyConfigService.

The service backs the executive's ``reconfigure_`` macros.  Hints are
always *counted*; they are *acted on* only when built with
``prefetch=True``, and ``stall_ns`` accounts the demand-visible wait only
(a fully absorbed prefetch costs the demand nothing).
"""

from repro.executive import FixedLatencyConfigService
from repro.sim import Simulator

LATENCY = 1_000


def drive(service, sim, steps):
    """Run ``steps`` — (time, fn) — inside the simulation and finish it."""

    def script():
        for at, fn in steps:
            if at > sim.now:
                yield sim.timeout(at - sim.now)
            result = fn()
            if result is not None:  # an ensure_loaded event: wait for it
                yield result

    sim.process(script(), name="driver")
    sim.run()


def test_hints_are_counted_even_when_ignored():
    sim = Simulator()
    service = FixedLatencyConfigService(sim, latency_ns=LATENCY)  # reactive
    drive(
        service,
        sim,
        [
            (0, lambda: service.notify_select("D1", "mod_qpsk")),
            (0, lambda: service.ensure_loaded("D1", "mod_qpsk")),
        ],
    )
    assert service.hints_seen == 1
    assert service.prefetch_starts == 0  # observed, deliberately not acted on
    assert service.swap_count == 1
    assert service.stall_ns == LATENCY  # full reactive latency


def test_early_hint_absorbs_the_swap_latency():
    sim = Simulator()
    service = FixedLatencyConfigService(sim, latency_ns=LATENCY, prefetch=True)
    drive(
        service,
        sim,
        [
            (0, lambda: service.notify_select("D1", "mod_qpsk")),
            # Demand arrives after the prefetched swap completed.
            (LATENCY + 50, lambda: service.ensure_loaded("D1", "mod_qpsk")),
        ],
    )
    assert service.prefetch_starts == 1
    assert service.swap_count == 1
    assert service.stall_ns == 0  # fully hidden behind the pipeline


def test_late_demand_pays_only_the_remaining_swap_time():
    sim = Simulator()
    service = FixedLatencyConfigService(sim, latency_ns=LATENCY, prefetch=True)
    drive(
        service,
        sim,
        [
            (0, lambda: service.notify_select("D1", "mod_qpsk")),
            # Demand mid-swap: 400 ns in, 600 ns still to go.
            (400, lambda: service.ensure_loaded("D1", "mod_qpsk")),
        ],
    )
    assert service.stall_ns == LATENCY - 400
    assert service.swap_count == 1
    assert sim.now == LATENCY  # demand released exactly at swap completion


def test_mispredicted_hint_costs_remaining_plus_full_swap():
    sim = Simulator()
    service = FixedLatencyConfigService(sim, latency_ns=LATENCY, prefetch=True)
    drive(
        service,
        sim,
        [
            (0, lambda: service.notify_select("D1", "mod_qam16")),  # wrong guess
            (400, lambda: service.ensure_loaded("D1", "mod_qpsk")),
        ],
    )
    # Waits out the wrong swap (600 ns left) then swaps again (1000 ns).
    assert service.stall_ns == (LATENCY - 400) + LATENCY
    assert service.swap_count == 2
    assert service.loaded["D1"] == "mod_qpsk"
    assert sim.now == 2 * LATENCY


def test_hint_for_resident_module_is_free():
    sim = Simulator()
    service = FixedLatencyConfigService(sim, latency_ns=LATENCY, prefetch=True)
    drive(
        service,
        sim,
        [
            (0, lambda: service.ensure_loaded("D1", "mod_qpsk")),
            (2 * LATENCY, lambda: service.notify_select("D1", "mod_qpsk")),
            (2 * LATENCY, lambda: service.ensure_loaded("D1", "mod_qpsk")),
        ],
    )
    assert service.hints_seen == 1
    assert service.prefetch_starts == 0  # already resident: nothing to do
    assert service.swap_count == 1
    assert service.stall_ns == LATENCY  # only the initial reactive load


def test_second_hint_during_swap_is_not_queued():
    sim = Simulator()
    service = FixedLatencyConfigService(sim, latency_ns=LATENCY, prefetch=True)
    drive(
        service,
        sim,
        [
            (0, lambda: service.notify_select("D1", "mod_qpsk")),
            (100, lambda: service.notify_select("D1", "mod_qam16")),  # mid-swap
        ],
    )
    assert service.hints_seen == 2
    assert service.prefetch_starts == 1  # one swap at a time per region
    assert service.loaded["D1"] == "mod_qpsk"
