"""Tests for the search-state encoding and move generator."""

import numpy as np
import pytest

from repro.dfg.generators import multiregion_graph
from repro.dfg.library import default_library
from repro.fabric.device import XC2V1000, XC2V2000
from repro.fabric.floorplan import MIN_WIDTH_CLB, WIDTH_STEP_CLB
from repro.search import MOVE_KINDS, SearchSpace, SearchState


@pytest.fixture(scope="module")
def space():
    return SearchSpace(multiregion_graph(2, 2), default_library())


def test_movable_ops_are_the_conditioned_operations(space):
    assert space.movable_ops == ("g0_alt0", "g0_alt1", "g1_alt0", "g1_alt1")


def test_rejects_graph_without_condition_groups():
    from repro.dfg.generators import chain_graph

    with pytest.raises(ValueError, match="no conditioned operations"):
        SearchSpace(chain_graph(4), default_library())


def test_state_key_is_stable(space):
    state = SearchState(assign=(0, 0, 1, 1), placements=((10, 2), (20, 4)))
    assert state.key() == "k2|a[0,0,1,1]|p[10+2;20+4]"
    assert str(state) == state.key()


def test_canonical_renumbers_by_first_appearance(space):
    a = space.canonical([1, 1, 0, 0], [(20, 2), (10, 2)])
    b = space.canonical([0, 0, 1, 1], [(10, 2), (20, 2)])
    assert a == b
    assert a.assign == (0, 0, 1, 1)
    assert a.placements == ((10, 2), (20, 2))


def test_canonical_drops_unused_placements(space):
    state = space.canonical([0, 0, 0, 0], [(10, 2), (20, 2), (30, 2)])
    assert state.n_regions == 1
    assert state.placements == ((10, 2),)


def test_initial_state_groups_share_regions(space):
    state = space.initial_state()
    assert state.n_regions == 2
    # Alternatives of the same condition group land in the same region.
    assert state.assign[0] == state.assign[1]
    assert state.assign[2] == state.assign[3]
    assert state.assign[0] != state.assign[2]


def test_initial_state_spans_are_legal_and_disjoint(space):
    state = space.initial_state()
    plan = space.floorplan_of(state)
    assert plan.violations() == []
    for col0, width in state.placements:
        assert width >= MIN_WIDTH_CLB
        assert width % WIDTH_STEP_CLB == 0
        assert 0 <= col0 and col0 + width <= space.device.clb_cols


def test_initial_state_respects_requested_region_count(space):
    assert space.initial_state(1).n_regions == 1
    with pytest.raises(ValueError, match="n_regions"):
        space.initial_state(space.max_regions + 1)


def test_random_state_is_deterministic_per_seed(space):
    a = space.random_state(np.random.default_rng(42))
    b = space.random_state(np.random.default_rng(42))
    c = space.random_state(np.random.default_rng(43))
    assert a == b
    assert a != c or a.key() == c.key()  # different seeds usually differ


def test_random_state_uses_every_region_index(space):
    for seed in range(20):
        state = space.random_state(np.random.default_rng(seed))
        assert sorted(set(state.assign)) == list(range(state.n_regions))


def test_neighbor_always_changes_the_state(space):
    rng = np.random.default_rng(7)
    state = space.initial_state()
    for _ in range(50):
        after = space.neighbor(state, rng)
        assert after != state
        state = after


def test_neighbor_keeps_per_region_geometry_legal(space):
    rng = np.random.default_rng(11)
    state = space.initial_state()
    for _ in range(100):
        state = space.neighbor(state, rng)
        for col0, width in state.placements:
            assert width >= MIN_WIDTH_CLB
            assert width % WIDTH_STEP_CLB == 0
            assert 0 <= col0 and col0 + width <= space.device.clb_cols
        assert 1 <= state.n_regions <= space.max_regions


def test_moves_cover_all_three_layers(space):
    """Over many draws the walk must change partition, region count and spans."""
    rng = np.random.default_rng(3)
    state = space.initial_state()
    seen_region_counts, seen_assigns, seen_spans = set(), set(), set()
    for _ in range(200):
        state = space.neighbor(state, rng)
        seen_region_counts.add(state.n_regions)
        seen_assigns.add(state.assign)
        seen_spans.add(state.placements)
    assert len(seen_region_counts) > 1
    assert len(seen_assigns) > 1
    assert len(seen_spans) > len(seen_assigns) // 2


def test_move_kinds_vocabulary():
    assert MOVE_KINDS == ("reassign", "split", "merge", "shift", "resize", "swap")


def test_region_need_is_worst_case_over_members(space):
    state = space.initial_state()
    need = space.region_need(state, 0)
    singles = [space._op_need[space.movable_ops[i]] for i in state.region_ops()[0]]
    for field_name, value in need.as_dict().items():
        assert value == max(getattr(s, field_name) for s in singles)


def test_boundary_bits_count_wires_not_tokens(space):
    # Each generic alternative has one 32-bit input and one 32-bit output
    # port (16 tokens each); the boundary crossing is the wire width.
    state = space.initial_state()
    bits_in, bits_out = space.region_boundary_bits(state, 0)
    assert bits_in == 32
    assert bits_out == 32


def test_describe_names_regions_and_ops(space):
    text = space.describe(space.initial_state())
    assert "D1" in text and "D2" in text
    assert "g0_alt0" in text


def test_smaller_device_constrains_spans():
    space = SearchSpace(multiregion_graph(2, 2), default_library(), device=XC2V1000)
    assert XC2V1000.clb_cols < XC2V2000.clb_cols
    rng = np.random.default_rng(0)
    state = space.initial_state()
    for _ in range(60):
        state = space.neighbor(state, rng)
        for col0, width in state.placements:
            assert col0 + width <= XC2V1000.clb_cols


def test_margin_below_one_rejected():
    with pytest.raises(ValueError, match="margin"):
        SearchSpace(multiregion_graph(2, 2), default_library(), margin=0.5)


def test_floorplan_of_injects_verbatim(space):
    state = SearchState(assign=(0, 0, 1, 1), placements=((5, 2), (5, 2)))
    plan = space.floorplan_of(state)
    assert set(plan.placements) == {"D1", "D2"}
    assert any("overlaps" in v for v in plan.violations())
