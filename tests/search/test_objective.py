"""Tests for the memoizing cost evaluator."""

import pickle

import pytest

from repro.dfg.generators import multiregion_graph
from repro.dfg.library import default_library
from repro.flows.pipeline import ArtifactCache
from repro.reconfig.architectures import case_b_processor
from repro.search import CostEvaluator, CostWeights, SearchSpace, SearchState


@pytest.fixture(scope="module")
def space():
    return SearchSpace(multiregion_graph(2, 2), default_library())


def test_initial_state_is_feasible(space):
    cost = CostEvaluator(space).evaluate(space.initial_state())
    assert cost.feasible
    assert cost.violations == ()
    assert cost.penalty_ns == 0.0
    assert cost.makespan_ns > 0
    assert cost.reconfig_busy_ns > 0
    assert cost.boundary_cost_ns > 0
    assert cost.total_ns >= cost.makespan_ns


def test_total_is_the_weighted_sum(space):
    weights = CostWeights(makespan=1.0, reconfig_busy=0.5, boundary=2.0)
    cost = CostEvaluator(space, weights=weights).evaluate(space.initial_state())
    expected = (
        cost.makespan_ns + 0.5 * cost.reconfig_busy_ns + 2.0 * cost.boundary_cost_ns
    )
    assert cost.total_ns == pytest.approx(expected)


def test_overlapping_spans_are_penalized_not_rejected(space):
    ev = CostEvaluator(space)
    bad = SearchState(assign=(0, 0, 1, 1), placements=((10, 2), (10, 2)))
    cost = ev.evaluate(bad)
    assert not cost.feasible
    assert any("overlaps" in v for v in cost.violations)
    assert cost.penalty_ns > 0
    good = ev.evaluate(space.initial_state())
    assert cost.total_ns > good.total_ns


def test_touching_spans_are_not_penalized(space):
    ev = CostEvaluator(space)
    touching = SearchState(assign=(0, 0, 1, 1), placements=((10, 2), (12, 2)))
    cost = ev.evaluate(touching)
    assert not any("overlaps" in v for v in cost.violations)


def test_zero_width_span_is_priced_as_infeasible(space):
    ev = CostEvaluator(space)
    bad = SearchState(assign=(0, 0, 1, 1), placements=((10, 0), (20, 2)))
    cost = ev.evaluate(bad)
    assert not cost.feasible
    assert any("zero-width" in v for v in cost.violations)
    assert cost.penalty_ns > 0


def test_narrow_span_capacity_shortfall_is_graded(space):
    ev = CostEvaluator(space)
    # A span at the device's left edge holds no BRAM column, so a region
    # needing block RAM overflows it — priced as a graded penalty (1 unit
    # plus the fractional shortfall), while the packed fixed-sweep span for
    # the same partition fits cleanly.
    cramped = ev.evaluate(space.canonical([0, 0, 0, 0], [(0, 2)]))
    assert any("exceed span capacity" in v for v in cramped.violations)
    assert cramped.penalty_units > 1.0
    fitting = ev.evaluate(space.initial_state(1))
    assert not any("exceed span capacity" in v for v in fitting.violations)
    assert cramped.penalty_ns > fitting.penalty_ns


def test_memoization_within_one_evaluator(space):
    ev = CostEvaluator(space)
    s = space.initial_state()
    first = ev.evaluate(s)
    second = ev.evaluate(s)
    assert first is second
    assert ev.stats.requested == 2
    assert ev.stats.computed == 1
    assert ev.stats.memo_hits == 1


def test_artifact_cache_shares_evaluations_across_evaluators(space):
    cache = ArtifactCache()
    s = space.initial_state()
    a = CostEvaluator(space, cache=cache)
    first = a.evaluate(s)
    b = CostEvaluator(space, cache=cache)
    second = b.evaluate(s)
    assert b.stats.cache_hits == 1
    assert b.stats.computed == 0
    assert second.total_ns == first.total_ns
    assert second.state_key == first.state_key


def test_cache_key_depends_on_architecture_and_weights(space):
    s = space.initial_state()
    base = CostEvaluator(space)
    other_arch = CostEvaluator(space, architecture=case_b_processor())
    other_weights = CostEvaluator(space, weights=CostWeights(reconfig_busy=0.5))
    assert base.cache_key(s) != other_arch.cache_key(s)
    assert base.cache_key(s) != other_weights.cache_key(s)


def test_architecture_changes_the_reconfig_pricing(space):
    s = space.initial_state()
    a = CostEvaluator(space).evaluate(s)
    b = CostEvaluator(space, architecture=case_b_processor()).evaluate(s)
    assert a.reconfig_busy_ns != b.reconfig_busy_ns


def test_breakdown_round_trips_and_serializes(space):
    cost = CostEvaluator(space).evaluate(space.initial_state())
    clone = pickle.loads(pickle.dumps(cost))
    assert clone == cost
    payload = cost.to_dict()
    assert payload["feasible"] is True
    assert payload["state"] == cost.state_key
    assert payload["total_ns"] == cost.total_ns


def test_whole_device_span_has_no_boundary(space):
    ev = CostEvaluator(space)
    whole = SearchState(
        assign=(0, 0, 0, 0), placements=((0, space.device.clb_cols),)
    )
    cost = ev.evaluate(whole)
    assert any("whole device" in v for v in cost.violations)
    assert cost.boundary_cost_ns == 0
