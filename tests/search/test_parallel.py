"""Search-restart sharding: determinism, budget slicing, merge semantics."""

import pytest

from repro.dfg.generators import multiregion_graph
from repro.dfg.library import default_library
from repro.search import (
    SearchConfig,
    merge_shard_results,
    run_search_sharded,
    shard_configs,
)
from repro.search.anneal import SearchResult


def small_problem():
    return multiregion_graph(n_groups=2, alternatives=2), default_library()


# -- shard planning ----------------------------------------------------------------


def test_shard_configs_slice_budget_exactly_like_sequential_limits():
    config = SearchConfig(budget=100, seed=5, restarts=3)
    shards = shard_configs(config)
    assert [s.restart_offset for s in shards] == [0, 1, 2]
    assert all(s.restarts == 1 for s in shards)
    # Slices reproduce the drivers' cumulative limits: 33, 33, 34.
    assert [s.budget for s in shards] == [33, 33, 34]
    assert sum(s.budget for s in shards) == config.budget


def test_shard_configs_respect_existing_offset():
    config = SearchConfig(budget=10, seed=0, restarts=2, restart_offset=4)
    assert [s.restart_offset for s in shard_configs(config)] == [4, 5]


def test_restart_offset_is_validated():
    with pytest.raises(ValueError, match="restart_offset"):
        SearchConfig(restart_offset=-1)


# -- the determinism acceptance criterion ------------------------------------------


def test_sharded_digest_identical_serial_vs_parallel():
    """jobs=0 (in-process shards) and jobs=2 (pooled workers) must agree
    bit-for-bit: same best state, same trajectory, same digest."""
    graph, library = small_problem()
    config = SearchConfig(budget=40, seed=3, restarts=3)
    serial = run_search_sharded(graph, library, method="anneal", config=config, jobs=0)
    pooled = run_search_sharded(graph, library, method="anneal", config=config, jobs=2)
    assert serial.digest() == pooled.digest()
    assert serial.best_state == pooled.best_state
    assert serial.trajectory == pooled.trajectory
    assert serial.evaluations == pooled.evaluations


def test_sharded_search_never_beats_nor_loses_to_itself_across_seeds():
    graph, library = small_problem()
    config = SearchConfig(budget=24, seed=11, restarts=2)
    once = run_search_sharded(graph, library, method="greedy", config=config, jobs=0)
    twice = run_search_sharded(graph, library, method="greedy", config=config, jobs=0)
    assert once.digest() == twice.digest()


def test_sharded_searched_optimum_not_worse_than_best_fixed():
    """Global restart 0 anchors to the frontier point, so the sharded
    search inherits search_multiregion's guarantee."""
    from repro.flows.designspace import search_multiregion

    graph, library = small_problem()
    report = search_multiregion(
        graph, library, method="anneal", budget=30, seed=0, restarts=2, jobs=2
    )
    assert report.gain <= 1.0
    assert report.result.restarts == 2


# -- merge semantics ---------------------------------------------------------------


def fake_shard(total_ns, trajectory, evaluations, accepted=0):
    from repro.search.space import SearchState
    from repro.search.objective import CostBreakdown

    state = SearchState(assign=(0,), placements=((0, 4),))
    cost = CostBreakdown(
        state_key=state.key(),
        total_ns=total_ns,
        makespan_ns=total_ns,
        reconfig_busy_ns=0.0,
        boundary_cost_ns=0.0,
        penalty_ns=0.0,
        penalty_units=0.0,
        violations=(),
        n_regions=1,
        n_reconfigs=0,
    )
    return SearchResult(
        method="anneal",
        best_state=state,
        best_cost=cost,
        trajectory=trajectory,
        evaluations=evaluations,
        accepted=accepted,
    )


def test_merge_rebases_trajectory_and_keeps_global_improvements_only():
    config = SearchConfig(budget=30, seed=0, restarts=3)
    shards = [
        fake_shard(100.0, [(1, 120.0), (4, 100.0)], evaluations=10),
        fake_shard(110.0, [(2, 110.0)], evaluations=10),  # never a global best
        fake_shard(90.0, [(1, 95.0), (6, 90.0)], evaluations=10),
    ]
    merged = merge_shard_results(shards, config, "anneal")
    assert merged.trajectory == [(1, 120.0), (4, 100.0), (21, 95.0), (26, 90.0)]
    assert merged.evaluations == 30
    assert merged.best_cost.total_ns == 90.0
    assert merged.improved == 4
    assert merged.restarts == 3 and merged.seed == 0


def test_merge_breaks_cost_ties_by_earliest_restart():
    config = SearchConfig(budget=10, seed=0, restarts=2)
    first = fake_shard(50.0, [(1, 50.0)], evaluations=5, accepted=2)
    second = fake_shard(50.0, [(1, 50.0)], evaluations=5, accepted=3)
    merged = merge_shard_results([first, second], config, "anneal")
    assert merged.best_state is first.best_state
    assert merged.accepted == 5


def test_merge_rejects_empty_input():
    with pytest.raises(ValueError, match="zero shard"):
        merge_shard_results([], SearchConfig(), "anneal")


def test_failed_shard_raises_instead_of_silently_dropping(monkeypatch):
    """A dropped restart would silently change the digest, so a shard that
    exhausts its retries must fail the whole sharded search."""
    from repro.search.parallel import SearchRestartJob

    graph, library = small_problem()
    config = SearchConfig(budget=8, seed=0, restarts=2)

    def boom(self, attempt=1, cache=None, observer=None):
        raise RuntimeError("injected shard failure")

    monkeypatch.setattr(SearchRestartJob, "execute", boom)
    with pytest.raises(RuntimeError, match="search sharding failed"):
        run_search_sharded(
            graph, library, method="anneal", config=config, jobs=0, retries=0
        )
