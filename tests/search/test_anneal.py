"""Tests for the annealer and baselines, above all determinism."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dfg.generators import multiregion_graph
from repro.dfg.library import default_library
from repro.search import (
    SEARCH_METHODS,
    CostEvaluator,
    SearchConfig,
    SearchSpace,
    anneal,
    greedy,
    random_search,
    run_search,
)


@pytest.fixture(scope="module")
def space():
    return SearchSpace(multiregion_graph(2, 2), default_library())


def run(space, method="anneal", **kwargs):
    config = SearchConfig(**{"budget": 40, "seed": 0, "restarts": 2, **kwargs})
    return run_search(space, CostEvaluator(space), config, method=method)


def test_config_validation():
    with pytest.raises(ValueError, match="budget"):
        SearchConfig(budget=0)
    with pytest.raises(ValueError, match="restarts"):
        SearchConfig(restarts=0)
    with pytest.raises(ValueError, match="cooling"):
        SearchConfig(cooling=1.0)


def test_unknown_method_rejected(space):
    with pytest.raises(ValueError, match="unknown search method"):
        run(space, method="tabu")


def test_method_registry_is_complete():
    assert set(SEARCH_METHODS) == {"anneal", "greedy", "random"}
    assert SEARCH_METHODS["anneal"] is anneal
    assert SEARCH_METHODS["greedy"] is greedy
    assert SEARCH_METHODS["random"] is random_search


def test_budget_is_respected(space):
    result = run(space, budget=25)
    assert result.evaluations <= 25


def test_anneal_never_worse_than_its_start(space):
    start = CostEvaluator(space).evaluate(space.initial_state())
    result = run(space, budget=60, seed=5)
    assert result.best_cost.total_ns <= start.total_ns


def test_trajectory_is_monotone_decreasing(space):
    result = run(space, budget=80, seed=2)
    totals = [total for _, total in result.trajectory]
    assert totals == sorted(totals, reverse=True)
    assert result.trajectory[0][0] == 1  # first evaluation seeds best-so-far
    assert result.improved == len(result.trajectory)


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_same_seed_means_identical_digest(space, seed):
    """The satellite determinism property: equal seeds, equal trajectories."""
    a = run(space, budget=30, seed=seed)
    b = run(space, budget=30, seed=seed)
    assert a.trajectory == b.trajectory
    assert a.best_state == b.best_state
    assert a.digest() == b.digest()


def test_different_seeds_usually_differ(space):
    digests = {run(space, method="random", budget=20, seed=s).digest() for s in range(4)}
    assert len(digests) > 1


def test_all_methods_are_deterministic(space):
    for method in SEARCH_METHODS:
        a = run(space, method=method, budget=30, seed=9)
        b = run(space, method=method, budget=30, seed=9)
        assert a.digest() == b.digest(), method


def test_restarts_share_one_seed_sequence(space):
    """More restarts must change the walk (children are spawned per restart),
    while the same (seed, restarts) pair reproduces it exactly."""
    one = run(space, budget=40, seed=1, restarts=1)
    two = run(space, budget=40, seed=1, restarts=2)
    again = run(space, budget=40, seed=1, restarts=2)
    assert two.digest() == again.digest()
    assert one.digest() != two.digest()


def test_result_serializes_to_json(space):
    result = run(space, budget=20)
    payload = json.loads(json.dumps(result.to_dict()))
    assert payload["method"] == "anneal"
    assert payload["digest"] == result.digest()
    assert payload["best"]["total_ns"] == result.best_cost.total_ns
    assert payload["evaluations"] == result.evaluations


def test_summary_mentions_method_and_digest(space):
    result = run(space, budget=20)
    text = result.summary()
    assert "anneal" in text
    assert result.digest() in text


def test_search_emits_spans_and_metrics(space):
    from repro.obs import MetricsRegistry, Tracer, use_metrics, use_tracer

    tracer = Tracer()
    registry = MetricsRegistry()
    with use_tracer(tracer), use_metrics(registry):
        run(space, budget=20, restarts=2)
    names = [s.name for s in tracer.spans]
    assert "search:anneal" in names
    assert names.count("search:restart") >= 1
    snapshot = registry.snapshot()
    assert snapshot["search.evaluations"]["value"] >= 1
    assert "search.improved" in snapshot


def test_greedy_never_worse_than_its_start(space):
    result = run(space, method="greedy", budget=60, seed=4)
    start = CostEvaluator(space).evaluate(space.initial_state())
    assert result.best_cost.total_ns <= start.total_ns


def test_record_search_stats_bridge(space):
    from repro.obs import MetricsRegistry, record_search_stats

    registry = MetricsRegistry()
    result = run(space, budget=20)
    record_search_stats(registry, result)
    snapshot = registry.snapshot()
    assert snapshot["search.evaluations"]["value"] == result.evaluations
    assert snapshot["search.best_total_ns"]["value"] == result.best_cost.total_ns
