"""Whole-stack determinism: identical inputs produce identical artefacts.

Reproducibility is a design goal (integer simulation time, FIFO event
ordering, seeded randomness).  These tests run major stages twice and
require bit-identical results.
"""

from repro.aaa import SynDExScheduler, adequate
from repro.arch import sundance_board
from repro.dfg.generators import layered_random_graph
from repro.dfg.library import default_library
from repro.executive import ExecutiveRunner, generate_executive
from repro.flows import ArtifactCache, DesignFlow, SystemSimulation, parse_constraints
from repro.mccdma import SnrTrace
from repro.mccdma.bindings import make_case_study_bindings
from repro.mccdma.casestudy import build_mccdma_design

CONSTRAINTS = """
[module mod_qpsk]
region    = D1
operation = mod_qpsk

[module mod_qam16]
region    = D1
operation = mod_qam16

[region D1]
sharing   = true
exclusive = mod_qpsk, mod_qam16
"""


def schedule_fingerprint(schedule):
    return (
        tuple((s.op.name, s.operator.name, s.start, s.end) for s in schedule.ops),
        tuple((str(t.edge), t.medium.name, t.start, t.end, t.hop) for t in schedule.transfers),
        tuple((r.module, r.start, r.end, r.prefetched) for r in schedule.reconfigs),
    )


def test_adequation_deterministic():
    g1 = layered_random_graph(5, 4, seed=9)
    g2 = layered_random_graph(5, 4, seed=9)
    board = sundance_board()
    r1 = adequate(g1, board.architecture, default_library(), scheduler=SynDExScheduler)
    r2 = adequate(g2, sundance_board().architecture, default_library(), scheduler=SynDExScheduler)
    assert schedule_fingerprint(r1.schedule) == schedule_fingerprint(r2.schedule)


def test_executive_simulation_deterministic():
    g = layered_random_graph(4, 3, seed=2)
    board = sundance_board()
    result = adequate(g, board.architecture, default_library(), scheduler=SynDExScheduler)
    program = generate_executive(g, result.schedule)

    def run_once():
        report = ExecutiveRunner(program, n_iterations=5).run()
        return (
            report.end_time_ns,
            tuple((s.actor, s.kind, s.start, s.end) for s in report.trace.spans),
        )

    assert run_once() == run_once()


def test_full_flow_and_runtime_deterministic():
    def run_once():
        design = build_mccdma_design()
        flow = DesignFlow.from_design(
            design, dynamic_constraints=parse_constraints(CONSTRAINTS)
        )
        result = flow.run()
        snr = SnrTrace.step(low_db=8.0, high_db=22.0, period=4, n=12)
        state = make_case_study_bindings(snr, seed=3)
        runtime = SystemSimulation(
            result, n_iterations=12, bindings=state.bindings, capture={"dac"}
        ).run()
        vhdl_digest = tuple(sorted((k, hash(v)) for k, v in result.generated.files.items()))
        return (
            schedule_fingerprint(result.adequation.schedule),
            result.modular.floorplan.placements["D1"],
            result.region_latency_ns("D1"),
            vhdl_digest,
            runtime.end_time_ns,
            runtime.switches,
            tuple(m.value for m in state.selected),
        )

    assert run_once() == run_once()


def test_cold_and_warm_flow_artefacts_byte_identical():
    """A cache-served run must reproduce an uncached run exactly: same
    schedule, same generated VHDL text, same UCF, same executive, same
    bitstream contents."""

    def make_flow(**kwargs):
        design = build_mccdma_design()
        flow = DesignFlow.from_design(
            design, dynamic_constraints=parse_constraints(CONSTRAINTS), **kwargs
        )
        flow.mapping.pin("bit_src", "DSP").pin("select", "DSP")
        return flow

    cold = make_flow().run()  # no cache at all
    cache = ArtifactCache()
    make_flow(cache=cache).run()  # populate
    warm = make_flow(cache=cache).run()  # every stage served from cache
    assert all(e.cache_hit for e in warm.events)

    assert schedule_fingerprint(cold.adequation.schedule) == schedule_fingerprint(
        warm.adequation.schedule
    )
    assert cold.first_pass_makespan_ns == warm.first_pass_makespan_ns
    assert cold.generated.files == warm.generated.files  # exact text equality
    assert cold.modular.ucf == warm.modular.ucf
    assert cold.executive.render() == warm.executive.render()
    assert set(cold.modular.bitstreams) == set(warm.modular.bitstreams)
    for key, bitstream in cold.modular.bitstreams.items():
        assert list(bitstream.words()) == list(warm.modular.bitstreams[key].words())
    assert cold.to_dict()["regions"] == warm.to_dict()["regions"]


def test_bitstream_generation_deterministic():
    from repro.fabric import XC2V2000, generate_partial_bitstream
    from repro.fabric.floorplan import ModulePlacement

    p = ModulePlacement("D1", 44, 4)
    a = generate_partial_bitstream(XC2V2000, p, "module_x")
    b = generate_partial_bitstream(XC2V2000, p, "module_x")
    assert a.crc == b.crc
    assert list(a.words()) == list(b.words())
