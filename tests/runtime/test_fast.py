"""Engine parity: the batched fast path must match the kernel digest-exactly.

The fast engine re-derives manager behaviour as closed forms (vector cores)
and a scalar micro-simulator; these tests are the contract that keeps both
honest.  The property sweep covers every policy bundle x traffic pattern x
seed x region-slot override and asserts bit-identical per-board counters
and end times — the same discipline PR 3 (incremental scheduler) and PR 4
(batched link engine) use for their reference paths.
"""

import pytest

from repro.reconfig.manager import COUNTER_FIELDS, ManagerStats, ReconfigError
from repro.runtime import (
    ENGINES,
    FleetConfig,
    generate_fleet_schedules,
    policy_names,
    run_fleet,
    run_frontier,
    vector_mode,
)

ALL_POLICIES = policy_names()

#: Policies the vector cores cover at their bundle-default slots.
VECTORIZED = [p for p in ALL_POLICIES if vector_mode(p) is not None]
SCALAR = [p for p in ALL_POLICIES if vector_mode(p) is None]


def _parity(config: FleetConfig) -> tuple:
    kernel = run_fleet(config, engine="kernel")
    fast = run_fleet(config, engine="fast")
    assert fast.digest() == kernel.digest(), (
        f"engine divergence for {config}: "
        f"kernel={kernel.digest()[:12]} fast={fast.digest()[:12]}"
    )
    assert fast.boards == kernel.boards
    assert fast.end_time_ns == kernel.end_time_ns
    return kernel, fast


@pytest.mark.parametrize("policy", ALL_POLICIES)
@pytest.mark.parametrize("traffic", ["poisson", "diurnal", "thrash"])
def test_engines_agree_across_policies_and_traffic(policy, traffic):
    for seed in (0, 11):
        _parity(
            FleetConfig(
                n_boards=3,
                requests_per_board=40,
                policy=policy,
                traffic=traffic,
                seed=seed,
            )
        )


@pytest.mark.parametrize("policy", ["none", "fixed", "history", "lru", "lfu", "belady"])
@pytest.mark.parametrize("slots", [1, 3])
def test_engines_agree_under_region_slot_overrides(policy, slots):
    _parity(
        FleetConfig(
            n_boards=3,
            requests_per_board=50,
            policy=policy,
            region_slots=slots,
            regions=3,
            modules_per_region=5,
            traffic="thrash",
            seed=7,
        )
    )


@pytest.mark.parametrize("mean_gap_ns", [2_000, 200_000, 20_000_000])
def test_engines_agree_across_contention_regimes(mean_gap_ns):
    """Tiny gaps force join/queue paths, huge gaps the idle-hit paths."""
    for policy in ("fixed", "history", "markov"):
        _parity(
            FleetConfig(
                n_boards=3,
                requests_per_board=40,
                policy=policy,
                mean_gap_ns=mean_gap_ns,
                seed=5,
            )
        )


def test_engines_agree_on_alternate_architectures():
    for arch in ("case_b_processor", "case_hybrid_mp", "case_c_jtag"):
        for policy in ("fixed", "history", "lru"):
            _parity(
                FleetConfig(
                    n_boards=2,
                    requests_per_board=30,
                    policy=policy,
                    architecture=arch,
                    mean_gap_ns=50_000,
                    seed=2,
                )
            )


def test_engines_agree_on_lexicographic_name_ties():
    """11 modules per region: 'm10' sorts before 'm2', so eviction
    tie-breaks exercise the name-rank encoding of the vector cores."""
    for policy in ("lru", "lfu", "none", "belady"):
        _parity(
            FleetConfig(
                n_boards=3,
                requests_per_board=60,
                policy=policy,
                modules_per_region=11,
                region_slots=2,
                traffic="thrash",
                mean_gap_ns=3_000,
                seed=9,
            )
        )


def test_engines_agree_on_empty_fleet():
    _parity(FleetConfig(n_boards=2, requests_per_board=0, policy="none"))


def test_fast_engine_is_the_default_and_reports_itself():
    config = FleetConfig(n_boards=2, requests_per_board=10, policy="fixed")
    assert config.engine == "fast"
    report = run_fleet(config)
    assert report.engine == "fast"
    assert report.engine_stats is not None
    assert report.engine_stats.mode == "vector:onselect"
    payload = report.to_dict()
    assert payload["engine"] == "fast"
    assert payload["engine_stats"]["vector_boards"] == 2
    kernel = run_fleet(config, engine="kernel")
    assert kernel.engine_stats is None
    assert kernel.to_dict()["engine"] == "kernel"


def test_unknown_engine_is_rejected():
    config = FleetConfig(n_boards=1, requests_per_board=5)
    with pytest.raises(ValueError, match="unknown engine"):
        run_fleet(config, engine="warp")
    assert set(ENGINES) == {"fast", "kernel"}


def test_vector_mode_dispatch_table():
    assert vector_mode("none") == "noprefetch-single"
    assert vector_mode("none", 3) == "noprefetch-fifo"
    assert vector_mode("fixed") == "onselect"
    assert vector_mode("on_select") == "onselect"
    assert vector_mode("lru") == "noprefetch-lru"
    assert vector_mode("lfu") == "noprefetch-lfu"
    # one slot makes eviction bookkeeping unobservable: plain sequential core
    assert vector_mode("lru", 1) == "noprefetch-single"
    # speculation and clairvoyance resist vectorization -> scalar micro-sim
    assert vector_mode("history") is None
    assert vector_mode("markov") is None
    assert vector_mode("belady") is None
    # a multi-slot override on a prefetching bundle falls back too
    assert vector_mode("fixed", 2) is None


def test_vectorized_policies_actually_vectorize():
    """Regression guard: the fast engine must not silently fall back to the
    scalar loop for the bundles the vector cores exist for (the analogue of
    the incremental scheduler's eval-count guard)."""
    for policy in VECTORIZED:
        report = run_fleet(
            FleetConfig(n_boards=4, requests_per_board=25, policy=policy),
            engine="fast",
        )
        stats = report.engine_stats
        assert stats is not None
        assert stats.mode == f"vector:{vector_mode(policy)}"
        assert stats.vector_boards == 4
        assert stats.scalar_boards == 0
        assert stats.vector_steps == 25
    for policy in SCALAR:
        report = run_fleet(
            FleetConfig(n_boards=4, requests_per_board=25, policy=policy),
            engine="fast",
        )
        stats = report.engine_stats
        assert stats is not None
        assert stats.mode == "scalar"
        assert stats.scalar_boards == 4
        assert stats.vector_boards == 0


def test_fast_engine_throughput_floor():
    """The fast path must clearly outrun the kernel even at test scale.

    The floor is deliberately loose (2x; the benchmark enforces 10x at
    headline scale) so a slow CI host never flakes, but a fast path that
    quietly degenerated to kernel speed fails.
    """
    config = FleetConfig(n_boards=24, requests_per_board=200, policy="fixed")
    schedules = generate_fleet_schedules(config)
    kernel = run_fleet(config, engine="kernel", schedules=schedules)
    fast = run_fleet(config, engine="fast", schedules=schedules)
    assert fast.digest() == kernel.digest()
    assert kernel.wall_s > fast.wall_s * 2, (
        f"fast engine too slow: kernel {kernel.wall_s:.3f}s vs "
        f"fast {fast.wall_s:.3f}s"
    )


def test_traced_boards_ride_the_kernel_inside_the_fast_engine():
    config = FleetConfig(
        n_boards=5, requests_per_board=30, policy="history", seed=11, trace_boards=2
    )
    kernel = run_fleet(config, engine="kernel")
    fast = run_fleet(config, engine="fast")
    assert fast.digest() == kernel.digest()
    assert [t.scope for t in fast.traces] == ["b0000", "b0001"]
    for fast_trace, kernel_trace in zip(fast.traces, kernel.traces):
        assert fast_trace.records == kernel_trace.records
        assert fast_trace.spans == kernel_trace.spans


def test_run_fleet_accepts_pregenerated_schedules():
    config = FleetConfig(n_boards=3, requests_per_board=20, policy="fixed")
    schedules = generate_fleet_schedules(config)
    assert run_fleet(config, schedules=schedules).digest() == run_fleet(config).digest()
    with pytest.raises(ValueError, match="schedules"):
        run_fleet(config, schedules=schedules[:-1])


def test_run_frontier_engine_override_preserves_digests():
    base = FleetConfig(n_boards=3, requests_per_board=30, seed=3)
    fast = run_frontier(base, ["none", "fixed", "history"])
    kernel = run_frontier(base, ["none", "fixed", "history"], engine="kernel")
    for name in fast:
        assert fast[name].digest() == kernel[name].digest(), name
        assert fast[name].engine == "fast"
        assert kernel[name].engine == "kernel"


# -- the ManagerStats array bridge the fast engine builds its rows through --


def test_manager_stats_counter_round_trip():
    stats = ManagerStats(
        demand_requests=7, demand_loads=3, prefetch_loads=2, useful_prefetches=1,
        wasted_prefetches=1, instant_hits=4, resident_hits=2, evictions=1,
        stall_ns=12345,
    )
    row = stats.as_counters()
    assert len(row) == len(COUNTER_FIELDS)
    assert ManagerStats.field_names() == COUNTER_FIELDS
    rebuilt = ManagerStats.from_counters(row)
    assert rebuilt == stats
    assert rebuilt.to_dict() == stats.to_dict()
    with pytest.raises(ValueError, match="counters"):
        ManagerStats.from_counters(row[:-1])


def test_manager_state_export_import_round_trip():
    """The manager's quiescent snapshot is lossless and guarded."""
    from repro.reconfig import case_a_standalone
    from repro.runtime import Board, board_rng, generate_schedule
    from repro.sim import Simulator

    arch = case_a_standalone()
    region_map = {"R0": ["m0", "m1", "m2"], "R1": ["m0", "m1"]}

    def build(run_requests: bool):
        sim = Simulator()
        store = arch.make_store()
        for region, modules in region_map.items():
            for module in modules:
                store.register(region, module, 88_000)
        board = Board("b0000", sim, arch, store)
        for region, modules in region_map.items():
            board.preload(region, modules[0])
        if run_requests:
            schedule = generate_schedule(
                "poisson", board_rng(4, "b0000"), region_map, 20
            )
            board.start(schedule)
            sim.run()
        return board

    board = build(run_requests=True)
    snapshot = board.manager.export_state()
    assert snapshot["stats"] == board.manager.stats.as_counters()
    fresh = build(run_requests=False)
    fresh.manager.import_state(snapshot)
    assert fresh.manager.export_state() == snapshot
    assert fresh.manager.stats == board.manager.stats
    for region in region_map:
        assert fresh.manager.loaded_module(region) == board.manager.loaded_module(region)


def test_manager_state_export_refuses_inflight_loads():
    from repro.reconfig import case_a_standalone
    from repro.runtime import Board
    from repro.sim import Simulator

    arch = case_a_standalone()
    sim = Simulator()
    store = arch.make_store()
    for module in ("m0", "m1"):
        store.register("R0", module, 88_000)
    board = Board("b0000", sim, arch, store)
    board.preload("R0", "m0")
    board.manager.ensure_loaded("R0", "m1")  # queued, not yet run
    with pytest.raises(ReconfigError, match="active or queued"):
        board.manager.export_state()


def test_property_sweep_full_matrix_smoke():
    """One broad randomized-ish sweep tying it together: every policy on a
    board mix with per-policy slot overrides, both engines, one digest map."""
    for policy in ALL_POLICIES:
        for slots in (None, 2):
            config = FleetConfig(
                n_boards=2,
                requests_per_board=35,
                policy=policy,
                region_slots=slots,
                traffic="diurnal",
                mean_gap_ns=20_000,
                seed=13,
            )
            _parity(config)
