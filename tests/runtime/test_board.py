"""Board: byte-identity with the hand-built stack, multi-board interleaving."""

from repro.reconfig import (
    ProtocolConfigurationBuilder,
    ReconfigurationManager,
    case_a_standalone,
)
from repro.runtime import Board, board_rng, generate_schedule
from repro.sim import Simulator, Trace

REGIONS = {"D1": ["qpsk", "qam16"], "D2": ["fft256", "fft512"]}


def make_store(arch):
    store = arch.make_store()
    for region, modules in REGIONS.items():
        for module in modules:
            store.register(region, module, 88_000)
    return store


def demand_sequence():
    return [
        (1_000, "D1", "qam16"),
        (5_000, "D2", "fft512"),
        (2_000, "D1", "qpsk"),
        (0, "D1", "qam16"),
        (10_000, "D2", "fft256"),
    ]


def run_with_board():
    arch = case_a_standalone()
    sim = Simulator()
    trace = Trace()
    board = Board("board", sim, arch, make_store(arch), trace=trace)
    board.preload("D1", "qpsk")
    board.preload("D2", "fft256")
    board.start(demand_sequence())
    sim.run()
    return sim.now, board.stats.to_dict(), trace


def run_hand_built():
    """The pre-Board construction sequence, verbatim: builder then manager
    on a private simulator, driven by the same request process."""
    arch = case_a_standalone()
    sim = Simulator()
    trace = Trace()
    store = make_store(arch)
    builder = ProtocolConfigurationBuilder(sim, arch.port, store, trace=trace)
    manager = ReconfigurationManager(
        sim, builder, request_latency_ns=arch.request_latency_ns, trace=trace
    )
    manager.preload("D1", "qpsk")
    manager.preload("D2", "fft256")

    def drive():
        for gap, region, module in demand_sequence():
            manager.notify_select(region, module)
            if gap:
                yield sim.timeout(gap)
            yield manager.ensure_loaded(region, module)

    sim.process(drive(), name="drive:board")
    sim.run()
    return sim.now, manager.stats.to_dict(), trace


def test_board_results_identical_to_hand_built_stack():
    """The Board refactor must not shift a single event: same end time,
    same counters, byte-identical trace records and spans."""
    board_end, board_stats, board_trace = run_with_board()
    hand_end, hand_stats, hand_trace = run_hand_built()
    assert board_end == hand_end
    assert board_stats == hand_stats
    assert board_trace.records == hand_trace.records
    assert board_trace.spans == hand_trace.spans


def test_two_boards_interleave_independently():
    """A second board on the same kernel must not perturb the first: the
    first board's trace is identical to its single-board run."""
    arch = case_a_standalone()

    def solo():
        sim = Simulator()
        trace = Trace(scope="b0")
        board = Board("b0", sim, arch, make_store(arch), trace=trace)
        board.preload("D1", "qpsk")
        board.preload("D2", "fft256")
        board.start(demand_sequence())
        sim.run()
        return trace, board.stats.to_dict()

    def duo():
        sim = Simulator()
        traces = []
        stats = []
        for name, shift in (("b0", 0), ("b1", 1)):
            trace = Trace(scope=name)
            board = Board(name, sim, arch, make_store(arch), trace=trace)
            board.preload("D1", "qpsk")
            board.preload("D2", "fft256")
            schedule = demand_sequence()
            if shift:
                # Offset the second board so the calendars interleave.
                schedule = [(gap + 137, r, m) for gap, r, m in schedule]
            board.start(schedule)
            traces.append(trace)
            stats.append(board)
        sim.run()
        return traces, [b.stats.to_dict() for b in stats]

    solo_trace, solo_stats = solo()
    duo_traces, duo_stats = duo()
    assert duo_stats[0] == solo_stats
    assert duo_traces[0].records == solo_trace.records
    assert duo_traces[0].spans == solo_trace.spans
    assert duo_traces[0].scope == "b0"
    assert duo_traces[1].scope == "b1"


def test_board_with_policy_bundle_and_schedule_generator():
    from repro.runtime import create_policy, future_from_schedule

    arch = case_a_standalone()
    sim = Simulator()
    schedule = generate_schedule(
        "poisson", board_rng(5, "b0"), REGIONS, 60, mean_gap_ns=50_000
    )
    bundle = create_policy("belady", future=future_from_schedule(schedule))
    board = Board(
        "b0", sim, arch, make_store(arch),
        policy=bundle.prefetch,
        eviction=bundle.eviction,
        region_slots=bundle.region_slots,
    )
    for region, modules in REGIONS.items():
        board.preload(region, modules[0])
    board.start(schedule)
    sim.run()
    assert board.stats.demand_requests == 60
    assert board.done_at_ns == sim.now
    # Two slots over two modules per region: after warmup everything is
    # resident, so the clairvoyant run serves most demands instantly.
    assert board.stats.resident_hits + board.stats.instant_hits > 30
