"""Fleet driver: determinism, registration-order invariance, frontier."""

import dataclasses
import random

from repro.reconfig import case_a_standalone
from repro.runtime import (
    Board,
    FleetConfig,
    FleetJob,
    board_rng,
    generate_schedule,
    run_fleet,
    run_frontier,
)
from repro.sim import Simulator, Trace

SMALL = FleetConfig(n_boards=6, requests_per_board=30, policy="history", seed=11)


def test_digest_is_stable_across_runs():
    first = run_fleet(SMALL)
    second = run_fleet(SMALL)
    assert first.digest() == second.digest()
    assert first.boards == second.boards
    assert first.end_time_ns == second.end_time_ns


def test_digest_ignores_wall_clock():
    report = run_fleet(SMALL)
    before = report.digest()
    report.wall_s *= 100  # a slow machine must not change the fingerprint
    assert report.digest() == before


def test_digest_changes_with_seed_and_policy():
    base = run_fleet(SMALL).digest()
    assert run_fleet(dataclasses.replace(SMALL, seed=12)).digest() != base
    assert run_fleet(dataclasses.replace(SMALL, policy="lru")).digest() != base


def _run_ordered(order, seed=4, n_requests=25):
    """Build one board per id on a shared kernel, registering in ``order``,
    and return {board_id: (stats, records, spans)} after a single run."""
    arch = case_a_standalone()
    region_map = {"R0": ["m0", "m1", "m2"], "R1": ["m0", "m1"]}
    sim = Simulator()
    boards = {}
    for board_id in order:
        schedule = generate_schedule(
            "poisson", board_rng(seed, board_id), region_map, n_requests
        )
        store = arch.make_store()
        for region, modules in region_map.items():
            for module in modules:
                store.register(region, module, 88_000)
        trace = Trace(scope=board_id)
        board = Board(board_id, sim, arch, store, trace=trace)
        for region, modules in region_map.items():
            board.preload(region, modules[0])
        board.start(schedule)
        boards[board_id] = board
    sim.run()
    out = {}
    for board_id, board in boards.items():
        board.trace.close_open(sim.now)
        out[board_id] = (
            board.stats.to_dict(),
            board.trace.records,
            board.trace.spans,
        )
    return out


def test_board_registration_order_does_not_change_per_board_traces():
    """The ISSUE.md determinism property: shuffling the order boards are
    registered on the shared kernel leaves every board's stats, trace
    records and spans byte-identical."""
    ids = [f"b{i:04d}" for i in range(8)]
    canonical = _run_ordered(ids)
    shuffled = list(ids)
    random.Random(99).shuffle(shuffled)
    assert shuffled != ids
    reordered = _run_ordered(shuffled)
    for board_id in ids:
        assert reordered[board_id] == canonical[board_id], board_id


def test_traced_boards_get_scoped_traces():
    report = run_fleet(dataclasses.replace(SMALL, trace_boards=2))
    assert [t.scope for t in report.traces] == ["b0000", "b0001"]
    for trace in report.traces:
        assert trace.records, "traced boards must actually record"


def test_totals_and_rates_aggregate_per_board_stats():
    report = run_fleet(SMALL)
    assert report.total_requests == SMALL.n_boards * SMALL.requests_per_board
    assert report.totals["demand_requests"] == report.total_requests
    assert len(report.boards) == SMALL.n_boards
    assert 0.0 <= report.hit_rate <= 1.0
    assert report.mean_stall_ns >= 0.0
    payload = report.to_dict()
    assert payload["digest"] == report.digest()
    assert payload["totals"] == report.totals


def test_frontier_replays_identical_traffic():
    base = FleetConfig(n_boards=4, requests_per_board=30, seed=3)
    frontier = run_frontier(base, ["none", "history"])
    assert set(frontier) == {"none", "history"}
    # Same schedules on both sides: demand totals match exactly.
    assert (
        frontier["none"].totals["demand_requests"]
        == frontier["history"].totals["demand_requests"]
    )


def test_unknown_policy_fails_before_building_the_fleet():
    import pytest

    with pytest.raises(ValueError, match="unknown policy"):
        run_fleet(dataclasses.replace(SMALL, policy="oracle"))


def test_fleet_job_rides_the_sweep_engine_protocol():
    job = FleetJob(config=dataclasses.replace(SMALL, n_boards=3))
    config = job.config
    assert job.job_id == (
        f"fleet-history-poisson-3x30-seed11-{config.fingerprint()[:12]}"
    )
    result = job.execute()
    assert result["n_boards"] == 3
    assert result["digest"] == run_fleet(job.config).digest()


def test_fleet_job_ids_cover_every_config_field():
    """Configs differing only in fields the old id omitted (regions, slots,
    architecture, mean gap, engine) must not collide in the sweep cache."""
    base = dataclasses.replace(SMALL, n_boards=3)
    variants = [
        dataclasses.replace(base, regions=3),
        dataclasses.replace(base, region_slots=2),
        dataclasses.replace(base, architecture="case_b_processor"),
        dataclasses.replace(base, mean_gap_ns=100_000),
        dataclasses.replace(base, modules_per_region=5),
        dataclasses.replace(base, bitstream_bytes=44_000),
        dataclasses.replace(base, trace_boards=1),
        dataclasses.replace(base, engine="kernel"),
    ]
    ids = {FleetJob(config=c).job_id for c in [base, *variants]}
    assert len(ids) == len(variants) + 1


def test_telemetry_never_perturbs_the_digest():
    """Hard invariant from the telemetry wiring: the recorder only reads
    simulation arrays, so a telemetry-enabled run is byte-identical to a
    bare one — for every fast-engine policy core, and with totals that
    reconcile against the report."""
    from repro.obs.telemetry import TimeSeriesStore

    for policy in ("none", "fixed", "history", "lru", "on_select"):
        config = dataclasses.replace(SMALL, policy=policy, engine="fast")
        bare = run_fleet(config)
        store = TimeSeriesStore(window=5_000_000, clock="sim")
        with_tel = run_fleet(config, telemetry=store)
        assert with_tel.digest() == bare.digest(), policy
        assert store.total("fleet.demands", policy=policy) == (
            config.n_boards * config.requests_per_board
        )
        hits = sum(b["instant_hits"] + b["resident_hits"] for b in bare.boards)
        assert store.total("fleet.hits", policy=policy) == hits
