"""Traffic generators: reproducibility and pattern properties."""

import pytest

from repro.runtime import board_rng, future_from_schedule, generate_schedule
from repro.runtime.traffic import TRAFFIC_PATTERNS

REGIONS = {"R0": ["m0", "m1", "m2"], "R1": ["m0", "m1"]}


@pytest.mark.parametrize("pattern", TRAFFIC_PATTERNS)
def test_schedules_are_pure_functions_of_seed_and_board(pattern):
    a = generate_schedule(pattern, board_rng(7, "b0001"), REGIONS, 200)
    b = generate_schedule(pattern, board_rng(7, "b0001"), REGIONS, 200)
    assert a == b
    other_board = generate_schedule(pattern, board_rng(7, "b0002"), REGIONS, 200)
    other_seed = generate_schedule(pattern, board_rng(8, "b0001"), REGIONS, 200)
    assert a != other_board
    assert a != other_seed


@pytest.mark.parametrize("pattern", TRAFFIC_PATTERNS)
def test_schedule_shape_and_vocabulary(pattern):
    schedule = generate_schedule(pattern, board_rng(0, "b0000"), REGIONS, 150)
    assert len(schedule) == 150
    for gap, region, module in schedule:
        assert gap >= 1
        assert region in REGIONS
        assert module in REGIONS[region]


def test_thrash_always_switches_modules():
    schedule = generate_schedule("thrash", board_rng(3, "b0000"), REGIONS, 300)
    last = {}
    for _gap, region, module in schedule:
        if region in last:
            assert module != last[region], "thrash must never repeat a module"
        last[region] = module


def test_poisson_has_bursts():
    schedule = generate_schedule("poisson", board_rng(1, "b0000"), REGIONS, 500,
                                 mean_gap_ns=100_000)
    gaps = [gap for gap, _r, _m in schedule]
    # Bursts compress gaps by ~10x: the small-gap tail must be well below
    # the overall mean, and plentiful.
    small = [g for g in gaps if g < 20_000]
    assert len(small) > 25


def test_future_from_schedule_groups_per_region():
    schedule = [(10, "R0", "m1"), (5, "R1", "m0"), (7, "R0", "m2")]
    assert future_from_schedule(schedule) == {"R0": ["m1", "m2"], "R1": ["m0"]}


def test_unknown_pattern_and_bad_inputs():
    rng = board_rng(0, "b")
    with pytest.raises(ValueError, match="unknown traffic pattern"):
        generate_schedule("solar-flare", rng, REGIONS, 10)
    with pytest.raises(ValueError, match="at least one module"):
        generate_schedule("poisson", rng, {"R0": []}, 10)
    with pytest.raises(ValueError, match="n_requests"):
        generate_schedule("poisson", rng, REGIONS, -1)
