"""The policy registry: names, bundles, clairvoyance gating."""

import pytest

from repro.reconfig import (
    BeladyEviction,
    HistoryPrefetchPolicy,
    MarkovPrefetchPolicy,
    NoPrefetchPolicy,
    OnSelectPrefetchPolicy,
)
from repro.runtime import POLICY_REGISTRY, create_policy, get_bundle, policy_names


def test_registry_exposes_the_required_zoo():
    names = policy_names()
    for required in ("none", "fixed", "history", "confidence", "markov", "lru", "lfu", "belady"):
        assert required in names
    assert len(names) >= 6


def test_bundles_instantiate_expected_prefetchers():
    assert isinstance(create_policy("none").prefetch, NoPrefetchPolicy)
    assert isinstance(create_policy("fixed").prefetch, OnSelectPrefetchPolicy)
    assert isinstance(create_policy("on_select").prefetch, OnSelectPrefetchPolicy)
    assert isinstance(create_policy("markov").prefetch, MarkovPrefetchPolicy)
    history = create_policy("history").prefetch
    confidence = create_policy("confidence").prefetch
    assert isinstance(history, HistoryPrefetchPolicy)
    assert isinstance(confidence, HistoryPrefetchPolicy)
    assert confidence.min_confidence > history.min_confidence


def test_eviction_bundles_carry_slots_and_policy():
    lru = create_policy("lru")
    assert lru.region_slots == 2
    assert lru.eviction is not None and lru.eviction.name == "lru"
    assert create_policy("lfu").eviction.name == "lfu"
    # slots override wins over the bundle default
    assert create_policy("lru", region_slots=4).region_slots == 4


def test_belady_requires_future_and_gets_it():
    with pytest.raises(ValueError, match="clairvoyant"):
        create_policy("belady")
    bundle = get_bundle("belady")
    assert bundle.needs_future
    policy = create_policy("belady", future={"R0": ["a", "b"]})
    assert isinstance(policy.eviction, BeladyEviction)


def test_unknown_name_lists_known_policies():
    with pytest.raises(ValueError) as err:
        create_policy("nope")
    message = str(err.value)
    assert "nope" in message
    for name in policy_names():
        assert name in message


def test_policy_names_can_exclude_clairvoyant():
    assert "belady" in policy_names()
    assert "belady" not in policy_names(include_future=False)


def test_fresh_instances_per_call():
    """Bundles are factories: two fleets must never share predictor state."""
    a = create_policy("history").prefetch
    b = create_policy("history").prefetch
    assert a is not b
    a.observe("x", "y")
    assert b.predict("x") is None


def test_every_bundle_has_description():
    for name, bundle in POLICY_REGISTRY.items():
        assert bundle.description, name
