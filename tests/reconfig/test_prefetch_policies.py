"""Edge cases of the prefetch policies (pure policy level, no manager).

Covers the corners the manager tests skate over: empty history, a single
region's steady state, and the history predictor when its prediction is
already resident.
"""

import pytest

from repro.reconfig import (
    HistoryPrefetchPolicy,
    NoPrefetchPolicy,
    OnSelectPrefetchPolicy,
)


# -- empty history -----------------------------------------------------------------


def test_policies_with_no_observations_never_speculate():
    for policy in (NoPrefetchPolicy(), OnSelectPrefetchPolicy(), HistoryPrefetchPolicy()):
        assert policy.on_idle("D1", None, []) is None
        assert policy.on_idle("D1", "qpsk", []) is None


def test_history_predict_with_nothing_loaded_and_no_history():
    policy = HistoryPrefetchPolicy()
    assert policy.predict(None) is None
    assert policy.on_idle("D1", None, []) is None


def test_history_falls_back_to_last_history_entry_when_region_is_empty():
    policy = HistoryPrefetchPolicy()
    policy.observe("qpsk", "qam16")
    # Region empty (loaded=None) but the demand history knows the last module.
    assert policy.on_idle("D1", None, ["qpsk"]) == "qam16"


def test_observe_ignores_the_initial_load():
    policy = HistoryPrefetchPolicy()
    policy.observe(None, "qpsk")  # first-ever configuration: no transition
    assert policy.predict("qpsk") is None


# -- single region, steady selection ------------------------------------------------


def test_steady_selection_predicts_stay_and_produces_no_churn():
    policy = HistoryPrefetchPolicy()
    for _ in range(5):
        policy.observe("qpsk", "qpsk")
    # Self-transition dominates: predict "stay", which on_idle suppresses.
    assert policy.predict("qpsk") == "qpsk"
    assert policy.on_idle("D1", "qpsk", ["qpsk"] * 5) is None


def test_alternating_selection_predicts_the_other_module():
    policy = HistoryPrefetchPolicy()
    for _ in range(3):
        policy.observe("qpsk", "qam16")
        policy.observe("qam16", "qpsk")
    assert policy.on_idle("D1", "qpsk", ["qam16", "qpsk"]) == "qam16"
    assert policy.on_idle("D1", "qam16", ["qpsk", "qam16"]) == "qpsk"


# -- predicted module already resident ----------------------------------------------


def test_prediction_equal_to_loaded_module_is_suppressed():
    policy = HistoryPrefetchPolicy()
    policy.observe("qpsk", "qam16")
    policy.observe("qam16", "qam16")
    # From qam16 the best successor is qam16 itself — already resident.
    assert policy.predict("qam16") == "qam16"
    assert policy.on_idle("D1", "qam16", ["qpsk", "qam16"]) is None


def test_low_confidence_prediction_is_withheld():
    policy = HistoryPrefetchPolicy(min_confidence=0.8)
    policy.observe("qpsk", "qam16")
    policy.observe("qpsk", "qpsk")  # 50/50: below the 0.8 bar
    assert policy.predict("qpsk") is None
    assert policy.on_idle("D1", "qpsk", ["qpsk"]) is None


def test_prediction_ties_break_deterministically():
    policy = HistoryPrefetchPolicy(min_confidence=0.5)
    policy.observe("qpsk", "qam16")
    policy.observe("qpsk", "bpsk")
    # Equal counts: highest name wins (stable across runs).
    assert policy.predict("qpsk") == "qam16"


# -- construction ------------------------------------------------------------------


def test_min_confidence_is_validated():
    with pytest.raises(ValueError):
        HistoryPrefetchPolicy(min_confidence=0.0)
    with pytest.raises(ValueError):
        HistoryPrefetchPolicy(min_confidence=1.5)
    HistoryPrefetchPolicy(min_confidence=1.0)  # inclusive upper bound


def test_on_select_policies():
    assert NoPrefetchPolicy().on_select("D1", "qpsk") is None
    assert OnSelectPrefetchPolicy().on_select("D1", "qpsk") == "qpsk"
    # The history policy deliberately ignores selects (program-order safety).
    assert HistoryPrefetchPolicy().on_select("D1", "qpsk") is None
