"""Eviction policies and the manager's multi-slot region area."""

import pytest

from repro.reconfig import (
    BeladyEviction,
    BitstreamStore,
    ICAP_V2,
    LFUEviction,
    LRUEviction,
    ProtocolConfigurationBuilder,
    ReconfigError,
    ReconfigurationManager,
    make_eviction,
)
from repro.sim import Simulator


# -- policy units -----------------------------------------------------------


def test_lru_evicts_least_recently_demanded():
    lru = LRUEviction()
    for m in ("a", "b", "c"):
        lru.on_demand("R", m)
        lru.on_insert("R", m)
    lru.on_demand("R", "a")  # refresh a
    assert lru.choose_victim("R", ["a", "b", "c"]) == "b"
    lru.on_evict("R", "b")
    assert lru.choose_victim("R", ["a", "c"]) == "c"


def test_lru_never_seen_module_goes_first():
    lru = LRUEviction()
    lru.on_demand("R", "hot")
    assert lru.choose_victim("R", ["hot", "cold"]) == "cold"


def test_lfu_evicts_least_frequent_with_name_tiebreak():
    lfu = LFUEviction()
    for _ in range(3):
        lfu.on_demand("R", "a")
    lfu.on_demand("R", "b")
    lfu.on_demand("R", "c")
    # b and c tie on frequency; the name breaks the tie deterministically.
    assert lfu.choose_victim("R", ["a", "b", "c"]) == "b"


def test_belady_evicts_farthest_next_use():
    belady = BeladyEviction({"R": ["a", "b", "a", "c", "b"]})
    belady.on_demand("R", "a")  # cursor -> 1
    # Next uses: b at 1, a at 2, c at 3 -> c is farthest among a/b/c? No:
    # candidates a, b: a next at 2, b next at 1 -> evict a.
    assert belady.choose_victim("R", ["a", "b"]) == "a"
    belady.on_demand("R", "b")  # cursor -> 2
    belady.on_demand("R", "a")  # cursor -> 3
    # Remaining future: c at 3, b at 4; a never again -> a goes first.
    assert belady.choose_victim("R", ["a", "b", "c"]) == "a"


def test_belady_resyncs_on_out_of_schedule_demand():
    belady = BeladyEviction({"R": ["a", "b", "c"]})
    belady.on_demand("R", "b")  # not the scheduled 'a': cursor resyncs past b
    # Future is now just c; a and b never recur -> name tie-break, b > a.
    assert belady.choose_victim("R", ["a", "b"]) == "b"


def test_make_eviction_factory():
    assert make_eviction("lru").name == "lru"
    assert make_eviction("lfu").name == "lfu"
    assert make_eviction("belady", future={"R": ["a"]}).name == "belady"
    with pytest.raises(ValueError, match="future demand schedule"):
        make_eviction("belady")
    with pytest.raises(ValueError, match="unknown eviction policy"):
        make_eviction("random")


# -- manager integration ----------------------------------------------------


MODULES = ("m0", "m1", "m2")


def make_multislot_manager(slots=2, eviction=None):
    sim = Simulator()
    store = BitstreamStore(bandwidth_bytes_per_s=22_000_000, access_ns=1_000)
    for module in MODULES:
        store.register("D1", module, 44_000)
    builder = ProtocolConfigurationBuilder(sim, ICAP_V2, store)
    mgr = ReconfigurationManager(
        sim, builder, request_latency_ns=1_000,
        region_slots=slots, eviction=eviction,
    )
    return sim, mgr


def drive(sim, gen):
    p = sim.process(gen)
    sim.run(until=p)


def test_region_slots_must_be_positive():
    sim = Simulator()
    store = BitstreamStore()
    store.register("D1", "m0", 1_000)
    builder = ProtocolConfigurationBuilder(sim, ICAP_V2, store)
    with pytest.raises(ReconfigError, match="region_slots"):
        ReconfigurationManager(sim, builder, region_slots=0)


def test_resident_module_hits_without_port_traffic():
    sim, mgr = make_multislot_manager(slots=2)

    def proc():
        yield mgr.ensure_loaded("D1", "m0")
        yield mgr.ensure_loaded("D1", "m1")
        t_before = sim.now
        yield mgr.ensure_loaded("D1", "m0")  # still resident: instant switch
        assert sim.now == t_before

    drive(sim, proc())
    assert mgr.stats.demand_loads == 2
    assert mgr.stats.resident_hits == 1
    assert mgr.stats.evictions == 0
    assert mgr.loaded_module("D1") == "m0"


def test_overflow_evicts_with_policy_and_counts():
    lru = LRUEviction()
    sim, mgr = make_multislot_manager(slots=2, eviction=lru)

    def proc():
        yield mgr.ensure_loaded("D1", "m0")
        yield mgr.ensure_loaded("D1", "m1")
        yield mgr.ensure_loaded("D1", "m2")  # area full: m0 is LRU, evicted
        yield mgr.ensure_loaded("D1", "m0")  # must reload -> a real load

    drive(sim, proc())
    assert mgr.stats.evictions == 2  # m0 evicted, then m1 evicted for m0
    assert mgr.stats.demand_loads == 4
    assert mgr.stats.resident_hits == 0


def test_single_slot_defaults_keep_legacy_counters_zero():
    sim, mgr = make_multislot_manager(slots=1)

    def proc():
        yield mgr.ensure_loaded("D1", "m0")
        yield mgr.ensure_loaded("D1", "m1")
        yield mgr.ensure_loaded("D1", "m0")

    drive(sim, proc())
    # The exclusive-region model never reports multi-slot activity.
    assert mgr.stats.resident_hits == 0
    assert mgr.stats.evictions == 0
    assert mgr.stats.demand_loads == 3


def test_belady_beats_lru_on_a_loop_over_three_modules():
    """Cyclic demand over 3 modules with 2 slots: LRU always evicts the
    module needed next (worst case); Belady keeps one stable resident."""
    pattern = [f"m{i % 3}" for i in range(12)]

    def run(eviction):
        sim, mgr = make_multislot_manager(slots=2, eviction=eviction)

        def proc():
            for module in pattern:
                yield mgr.ensure_loaded("D1", module)

        drive(sim, proc())
        return mgr.stats

    lru_stats = run(LRUEviction())
    belady_stats = run(BeladyEviction({"D1": list(pattern)}))
    assert belady_stats.resident_hits > lru_stats.resident_hits
    assert belady_stats.stall_ns < lru_stats.stall_ns


def test_stats_to_dict_tracks_dataclass_fields():
    sim, mgr = make_multislot_manager()
    payload = mgr.stats.to_dict()
    import dataclasses

    assert set(payload) == {f.name for f in dataclasses.fields(type(mgr.stats))}


def test_evict_trace_records_victims():
    from repro.sim import Trace

    sim = Simulator()
    trace = Trace()
    store = BitstreamStore(bandwidth_bytes_per_s=22_000_000, access_ns=1_000)
    for module in MODULES:
        store.register("D1", module, 44_000)
    builder = ProtocolConfigurationBuilder(sim, ICAP_V2, store, trace=trace)
    mgr = ReconfigurationManager(
        sim, builder, request_latency_ns=1_000, trace=trace,
        region_slots=2, eviction=LRUEviction(),
    )

    def proc():
        yield mgr.ensure_loaded("D1", "m0")
        yield mgr.ensure_loaded("D1", "m1")
        yield mgr.ensure_loaded("D1", "m2")

    drive(sim, proc())
    evicts = trace.records_of("region.D1", "evict")
    assert [r.detail for r in evicts] == ["m0"]
