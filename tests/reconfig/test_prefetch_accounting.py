"""Prefetch accounting edge cases in :class:`ReconfigurationManager`.

The useful/wasted prefetch counters drive the paper's policy comparison
(and now the metrics registry), so the corner cases must count exactly once:
duplicate hints, hints claimed while the load is still in flight, and
speculated modules evicted before anyone asked for them.
"""

from repro.reconfig import (
    BitstreamStore,
    ICAP_V2,
    OnSelectPrefetchPolicy,
    ProtocolConfigurationBuilder,
    ReconfigStats,
    ReconfigurationManager,
)
from repro.reconfig.manager import ManagerStats
from repro.sim import Simulator


def make_manager(size=88_000, request_latency_ns=1_000):
    sim = Simulator()
    store = BitstreamStore(bandwidth_bytes_per_s=22_000_000, access_ns=1_000)
    store.register("D1", "qpsk", size)
    store.register("D1", "qam16", size)
    builder = ProtocolConfigurationBuilder(sim, ICAP_V2, store)
    mgr = ReconfigurationManager(
        sim, builder, policy=OnSelectPrefetchPolicy(), request_latency_ns=request_latency_ns
    )
    return sim, mgr, builder


def drive(sim, gen):
    return sim.run(until=sim.process(gen))


def test_back_to_back_hints_same_module_load_once():
    sim, mgr, builder = make_manager()
    load = 1_000 + builder.estimate_ns(88_000)

    def proc():
        mgr.notify_select("D1", "qam16")
        mgr.notify_select("D1", "qam16")  # duplicate hint while first queued
        yield sim.timeout(3 * load)
        mgr.notify_select("D1", "qam16")  # already resident: no-op
        yield sim.timeout(load)

    drive(sim, proc())
    assert len(builder.loads) == 1
    assert mgr.stats.prefetch_loads == 1
    assert mgr.stats.wasted_prefetches == 0  # unclaimed but never evicted
    assert mgr.loaded_module("D1") == "qam16"


def test_hint_claimed_mid_flight_counts_one_useful_prefetch():
    sim, mgr, builder = make_manager()
    load = 1_000 + builder.estimate_ns(88_000)
    stalls = []

    def proc():
        mgr.notify_select("D1", "qam16")
        yield sim.timeout(load // 2)  # the prefetch is half done
        start = sim.now
        yield mgr.ensure_loaded("D1", "qam16")  # piggybacks on the flight
        stalls.append(sim.now - start)
        # A second demand for the now-resident module is an instant hit,
        # not a second useful prefetch.
        yield mgr.ensure_loaded("D1", "qam16")

    drive(sim, proc())
    assert mgr.stats.prefetch_loads == 1
    assert mgr.stats.useful_prefetches == 1
    assert mgr.stats.instant_hits == 1
    assert mgr.stats.demand_loads == 0
    assert 0 < stalls[0] < load


def test_wasted_prefetch_counted_on_eviction():
    sim, mgr, builder = make_manager()
    load = 1_000 + builder.estimate_ns(88_000)

    def proc():
        mgr.notify_select("D1", "qam16")  # speculated, never demanded
        yield sim.timeout(2 * load)
        yield mgr.ensure_loaded("D1", "qpsk")  # evicts the speculation

    drive(sim, proc())
    assert mgr.stats.prefetch_loads == 1
    assert mgr.stats.useful_prefetches == 0
    assert mgr.stats.wasted_prefetches == 1
    assert mgr.stats.demand_loads == 1
    assert mgr.loaded_module("D1") == "qpsk"


def test_claimed_prefetch_is_not_wasted_when_later_evicted():
    sim, mgr, builder = make_manager()
    load = 1_000 + builder.estimate_ns(88_000)

    def proc():
        mgr.notify_select("D1", "qam16")
        yield sim.timeout(2 * load)
        yield mgr.ensure_loaded("D1", "qam16")  # claims the prefetch
        yield mgr.ensure_loaded("D1", "qpsk")  # evicting it later is fine

    drive(sim, proc())
    assert mgr.stats.useful_prefetches == 1
    assert mgr.stats.wasted_prefetches == 0
    assert mgr.stats.demand_loads == 1


def test_reconfig_stats_alias_and_dict():
    assert ReconfigStats is ManagerStats
    stats = ReconfigStats(demand_loads=2, stall_ns=10)
    payload = stats.to_dict()
    assert payload["demand_loads"] == 2
    # to_dict is dataclasses.asdict-backed, so it tracks the field list.
    assert set(payload) == {
        "demand_requests", "demand_loads", "prefetch_loads", "useful_prefetches",
        "wasted_prefetches", "instant_hits", "resident_hits", "evictions",
        "stall_ns", "crc_failures", "readback_failures", "load_retries",
    }
