"""Tests for the configuration manager, prefetch policies and Fig. 2 cases."""

import pytest

from repro.reconfig import (
    BitstreamStore,
    HistoryPrefetchPolicy,
    ICAP_V2,
    NoPrefetchPolicy,
    OnSelectPrefetchPolicy,
    ProtocolConfigurationBuilder,
    ReconfigError,
    ReconfigurationManager,
    all_cases,
    case_a_standalone,
    case_b_processor,
)
from repro.fabric import XC2V2000, generate_partial_bitstream
from repro.fabric.floorplan import ModulePlacement
from repro.sim import Simulator


def make_manager(policy=None, size=88_000, request_latency_ns=1_000):
    sim = Simulator()
    store = BitstreamStore(bandwidth_bytes_per_s=22_000_000, access_ns=1_000)
    store.register("D1", "qpsk", size)
    store.register("D1", "qam16", size)
    builder = ProtocolConfigurationBuilder(sim, ICAP_V2, store)
    mgr = ReconfigurationManager(
        sim, builder, policy=policy, request_latency_ns=request_latency_ns
    )
    return sim, mgr, builder


def drive(sim, mgr, gen):
    p = sim.process(gen)
    return sim.run(until=p)


def test_demand_load_pays_full_latency():
    sim, mgr, builder = make_manager(NoPrefetchPolicy())
    full = 1_000 + builder.estimate_ns(88_000)

    def proc():
        yield mgr.ensure_loaded("D1", "qpsk")
        assert sim.now == full
        return sim.now

    drive(sim, mgr, proc())
    assert mgr.stats.demand_loads == 1
    assert mgr.stats.stall_ns == full


def test_repeat_demand_is_instant():
    sim, mgr, _ = make_manager(NoPrefetchPolicy())

    def proc():
        yield mgr.ensure_loaded("D1", "qpsk")
        t = sim.now
        yield mgr.ensure_loaded("D1", "qpsk")
        assert sim.now == t

    drive(sim, mgr, proc())
    assert mgr.stats.instant_hits == 1
    assert mgr.stats.demand_loads == 1


def test_prefetch_hides_latency_completely():
    sim, mgr, builder = make_manager(OnSelectPrefetchPolicy())
    load = 1_000 + builder.estimate_ns(88_000)

    def proc():
        mgr.notify_select("D1", "qam16")
        # Work elsewhere while the region loads.
        yield sim.timeout(load + 10_000)
        t = sim.now
        yield mgr.ensure_loaded("D1", "qam16")
        assert sim.now == t  # zero stall

    drive(sim, mgr, proc())
    assert mgr.stats.prefetch_loads == 1
    assert mgr.stats.useful_prefetches == 1
    assert mgr.stats.demand_loads == 0
    assert mgr.stats.stall_ns == 0


def test_prefetch_partial_overlap():
    sim, mgr, builder = make_manager(OnSelectPrefetchPolicy())
    load = 1_000 + builder.estimate_ns(88_000)
    overlap = load // 3

    def proc():
        mgr.notify_select("D1", "qam16")
        yield sim.timeout(overlap)
        start = sim.now
        yield mgr.ensure_loaded("D1", "qam16")
        stall = sim.now - start
        assert 0 < stall < load
        assert stall == load - overlap

    drive(sim, mgr, proc())
    assert mgr.stats.useful_prefetches == 1


def test_no_prefetch_policy_ignores_select():
    sim, mgr, _ = make_manager(NoPrefetchPolicy())
    mgr.notify_select("D1", "qam16")
    sim.run(until=10_000_000)
    assert mgr.stats.prefetch_loads == 0
    assert mgr.loaded_module("D1") is None


def test_redundant_select_no_reload():
    sim, mgr, _ = make_manager(OnSelectPrefetchPolicy())

    def proc():
        yield mgr.ensure_loaded("D1", "qpsk")
        mgr.notify_select("D1", "qpsk")  # already loaded
        yield sim.timeout(20_000_000)

    drive(sim, mgr, proc())
    assert mgr.stats.prefetch_loads == 0


def test_demand_cancels_stale_speculation():
    sim, mgr, builder = make_manager(OnSelectPrefetchPolicy())

    def proc():
        yield mgr.ensure_loaded("D1", "qpsk")
        # Two contradictory hints queue up; a demand for qpsk arrives before
        # the second speculative load starts.
        mgr.notify_select("D1", "qam16")
        mgr.notify_select("D1", "qam16")
        yield mgr.ensure_loaded("D1", "qam16")
        return sim.now

    drive(sim, mgr, proc())
    # Only two actual loads happened (qpsk demand + one qam16).
    assert len(builder.loads) == 2


def test_unknown_module_rejected():
    sim, mgr, _ = make_manager()
    with pytest.raises(ReconfigError):
        mgr.ensure_loaded("D1", "ofdm")


def test_in_reconf_signal_toggles():
    sim, mgr, builder = make_manager()
    seen = []

    def watcher():
        v = yield mgr.in_reconf["D1"].changed()
        seen.append((sim.now, v))
        v = yield mgr.in_reconf["D1"].changed()
        seen.append((sim.now, v))

    def proc():
        yield mgr.ensure_loaded("D1", "qpsk")

    sim.process(watcher())
    p = sim.process(proc())
    sim.run(until=p)
    assert seen[0][1] is True and seen[1][1] is False
    assert seen[1][0] - seen[0][0] == builder.estimate_ns(88_000)


def test_crc_failure_propagates():
    sim = Simulator()
    store = BitstreamStore()
    placement = ModulePlacement("D1", 44, 4)
    bad = generate_partial_bitstream(XC2V2000, placement, "qpsk").corrupted()
    store.register("D1", "qpsk", bad)
    builder = ProtocolConfigurationBuilder(sim, ICAP_V2, store)
    mgr = ReconfigurationManager(sim, builder)
    failures = []

    def proc():
        try:
            yield mgr.ensure_loaded("D1", "qpsk")
        except ReconfigError as err:
            failures.append(str(err))

    p = sim.process(proc())
    sim.run(until=p)
    assert failures and "CRC" in failures[0]
    assert mgr.stats.crc_failures == 1
    assert mgr.loaded_module("D1") is None  # old module stays


def test_history_policy_learns_alternation():
    policy = HistoryPrefetchPolicy(min_confidence=0.5)
    for _ in range(5):
        policy.observe("qpsk", "qam16")
        policy.observe("qam16", "qpsk")
    assert policy.predict("qpsk") == "qam16"
    assert policy.predict("qam16") == "qpsk"
    assert policy.predict("unknown") is None
    assert policy.on_idle("D1", "qpsk", ["qpsk"]) == "qam16"


def test_history_policy_confidence_guard():
    policy = HistoryPrefetchPolicy(min_confidence=0.9)
    policy.observe("a", "b")
    policy.observe("a", "c")
    assert policy.predict("a") is None  # 50% < 90%
    with pytest.raises(ValueError):
        HistoryPrefetchPolicy(min_confidence=0.0)


def test_history_policy_speculates_after_loads():
    sim, mgr, builder = make_manager(HistoryPrefetchPolicy(min_confidence=0.5))

    def proc():
        # Teach the alternation pattern with demand loads.
        for module in ("qpsk", "qam16", "qpsk", "qam16"):
            yield mgr.ensure_loaded("D1", module)
        # After the final load, the policy speculates the next module.
        yield sim.timeout(builder.estimate_ns(88_000) + 100_000)

    drive(sim, mgr, proc())
    assert mgr.stats.prefetch_loads >= 1
    assert mgr.loaded_module("D1") == "qpsk"  # speculated back to qpsk


def test_fig2_case_a_faster_than_case_b():
    """The paper's Fig. 2 point: placement of M and P drives latency.
    Standalone self-reconfiguration beats interrupt-driven processor
    reconfiguration for the same module."""
    nbytes = 88_000
    a = case_a_standalone().estimate_latency_ns(nbytes)
    b = case_b_processor().estimate_latency_ns(nbytes)
    assert a < b


def test_fig2_case_ordering_and_scale():
    nbytes = 88_000
    latencies = {arch.name: arch.estimate_latency_ns(nbytes) for arch in all_cases()}
    assert (
        latencies["case_a_standalone"]
        < latencies["case_hybrid_mp"]
        < latencies["case_b_processor"]
        < latencies["case_c_jtag"]
    )
    # The hybrid pays only the interrupt round trip over case a.
    assert latencies["case_hybrid_mp"] - latencies["case_a_standalone"] < 50_000
    # Case a is the paper's ~4 ms figure.
    assert 3.5e6 < latencies["case_a_standalone"] < 4.5e6


def test_manager_request_latency_validation():
    sim = Simulator()
    store = BitstreamStore()
    store.register("D1", "m", 10)
    builder = ProtocolConfigurationBuilder(sim, ICAP_V2, store)
    with pytest.raises(ReconfigError):
        ReconfigurationManager(sim, builder, request_latency_ns=-1)
