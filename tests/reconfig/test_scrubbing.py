"""Tests for SEU injection and configuration scrubbing."""

import pytest

from repro.reconfig import (
    BitstreamStore,
    ICAP_V2,
    ProtocolConfigurationBuilder,
    ReconfigurationManager,
)
from repro.reconfig.scrubbing import ConfigurationScrubber, SEUInjector
from repro.sim import Simulator, Trace
from repro.sim.units import ms


def make_system(scrub_interval_ns, upset_interval_ns=None, seed=1):
    sim = Simulator()
    store = BitstreamStore(bandwidth_bytes_per_s=80_000_000, access_ns=0)
    store.register("D1", "m", 80_000)  # 1 ms load
    trace = Trace()
    builder = ProtocolConfigurationBuilder(sim, ICAP_V2, store, trace=trace)
    manager = ReconfigurationManager(sim, builder, request_latency_ns=0)
    injector = None
    if upset_interval_ns is not None:
        injector = SEUInjector(sim, builder, ["D1"], upset_interval_ns, seed=seed)
        builder.upset_injector = lambda region, module: False
    scrubber = ConfigurationScrubber(
        sim, manager, scrub_interval_ns, injector=injector, trace=trace
    )
    return sim, manager, builder, injector, scrubber


def test_validation():
    sim, manager, builder, _, _ = make_system(ms(10))
    with pytest.raises(ValueError):
        ConfigurationScrubber(sim, manager, 0)
    with pytest.raises(ValueError):
        SEUInjector(sim, builder, [], 100)
    with pytest.raises(ValueError):
        SEUInjector(sim, builder, ["D1"], 0)


def test_no_upsets_no_repairs():
    sim, manager, builder, _, scrubber = make_system(ms(5))

    def boot():
        yield manager.ensure_loaded("D1", "m")

    sim.process(boot())
    sim.run(until=ms(100))
    assert scrubber.stats.scrub_cycles >= 19
    assert scrubber.stats.repairs == 0
    assert scrubber.availability(ms(100)) == 1.0


def test_upsets_get_repaired():
    sim, manager, builder, injector, scrubber = make_system(
        scrub_interval_ns=ms(5), upset_interval_ns=ms(20)
    )

    def boot():
        yield manager.ensure_loaded("D1", "m")

    sim.process(boot())
    sim.run(until=ms(200))
    assert injector.upsets > 0
    assert scrubber.stats.repairs > 0
    assert scrubber.stats.repairs <= injector.upsets
    # Fast scrubbing keeps availability high.
    assert scrubber.availability(ms(200)) > 0.5
    # Device content intact at the end or pending one open corruption.
    content = builder._device_content["D1"]
    assert content[0] == "m"


def test_faster_scrubbing_improves_availability():
    results = {}
    for interval in (ms(2), ms(40)):
        sim, manager, builder, injector, scrubber = make_system(
            scrub_interval_ns=interval, upset_interval_ns=ms(15), seed=3
        )

        def boot():
            yield manager.ensure_loaded("D1", "m")

        sim.process(boot())
        sim.run(until=ms(400))
        results[interval] = scrubber.availability(ms(400))
    assert results[ms(2)] > results[ms(40)]


def test_scrubber_respects_port_contention():
    """Repairs serialize with demand loads on the one configuration port —
    the simulation completes without deadlock and the port trace shows both
    kinds of traffic."""
    sim, manager, builder, injector, scrubber = make_system(
        scrub_interval_ns=ms(3), upset_interval_ns=ms(10), seed=5
    )
    store = builder.store
    store.register("D1", "n", 80_000)

    def workload():
        current = "m"
        for _ in range(12):
            yield manager.ensure_loaded("D1", current)
            yield sim.timeout(ms(8))
            current = "n" if current == "m" else "m"

    p = sim.process(workload())
    sim.run(until=ms(150))
    assert p.processed  # workload finished despite scrubbing traffic
    assert scrubber.stats.scrub_cycles > 0
