"""Tests for configuration readback verification."""

import pytest

from repro.reconfig import (
    BitstreamStore,
    ICAP_V2,
    ProtocolConfigurationBuilder,
    ReconfigError,
    ReconfigurationManager,
)
from repro.sim import Simulator, Trace


def make(verify=True, upsets=(), max_retries=2):
    """Manager with a scripted upset sequence (True = corrupt that write)."""
    sim = Simulator()
    store = BitstreamStore(bandwidth_bytes_per_s=22_000_000, access_ns=0)
    store.register("D1", "m", 22_000)  # 1 ms load
    trace = Trace()
    builder = ProtocolConfigurationBuilder(sim, ICAP_V2, store, trace=trace)
    script = list(upsets)

    def injector(region, module):
        return script.pop(0) if script else False

    builder.upset_injector = injector
    mgr = ReconfigurationManager(
        sim, builder, request_latency_ns=0,
        verify_readback=verify, max_load_retries=max_retries,
    )
    return sim, mgr, builder, trace


def test_readback_doubles_latency_when_clean():
    sim, mgr, builder, trace = make(verify=True)
    one_load = builder.estimate_ns(22_000)

    def proc():
        yield mgr.ensure_loaded("D1", "m")
        return sim.now

    t = sim.run(until=sim.process(proc()))
    assert t == 2 * one_load  # write + readback
    assert mgr.stats.readback_failures == 0
    assert len(trace.spans_of(kind="readback")) == 1


def test_no_readback_when_disabled():
    sim, mgr, builder, trace = make(verify=False)

    def proc():
        yield mgr.ensure_loaded("D1", "m")
        return sim.now

    t = sim.run(until=sim.process(proc()))
    assert t == builder.estimate_ns(22_000)
    assert not trace.spans_of(kind="readback")


def test_upset_triggers_retry_and_recovers():
    sim, mgr, builder, _ = make(verify=True, upsets=[True, False])

    def proc():
        yield mgr.ensure_loaded("D1", "m")
        return sim.now

    t = sim.run(until=sim.process(proc()))
    one_load = builder.estimate_ns(22_000)
    # write(bad) + readback(fail) + write(good) + readback(ok)
    assert t == 4 * one_load
    assert mgr.stats.readback_failures == 1
    assert mgr.stats.load_retries == 1
    assert mgr.loaded_module("D1") == "m"


def test_persistent_upsets_fail_after_retries():
    sim, mgr, builder, _ = make(verify=True, upsets=[True] * 10, max_retries=2)
    errors = []

    def proc():
        try:
            yield mgr.ensure_loaded("D1", "m")
        except ReconfigError as err:
            errors.append(str(err))

    sim.run(until=sim.process(proc()))
    assert errors and "readback verification failed" in errors[0]
    assert mgr.stats.readback_failures == 3  # initial + 2 retries
    assert mgr.loaded_module("D1") is None


def test_invalid_retry_count_rejected():
    sim = Simulator()
    store = BitstreamStore()
    store.register("D1", "m", 10)
    builder = ProtocolConfigurationBuilder(sim, ICAP_V2, store)
    with pytest.raises(ReconfigError):
        ReconfigurationManager(sim, builder, max_load_retries=-1)


def test_readback_without_prior_load_reports_mismatch():
    sim = Simulator()
    store = BitstreamStore()
    store.register("D1", "m", 1_000)
    builder = ProtocolConfigurationBuilder(sim, ICAP_V2, store)

    def proc():
        ok = yield sim.process(builder.readback("D1", "m"))
        return ok

    assert sim.run(until=sim.process(proc())) is False
