"""Tests for port models, the bitstream store and the protocol builder."""

import pytest

from repro.fabric import XC2V2000, generate_partial_bitstream
from repro.fabric.floorplan import ModulePlacement
from repro.reconfig import (
    BitstreamStore,
    ICAP_V2,
    JTAG,
    PortError,
    ProtocolConfigurationBuilder,
    ProtocolError,
    SELECTMAP_66,
    StoreError,
)
from repro.reconfig.ports import ConfigPort
from repro.sim import Simulator, Trace
from repro.sim.units import to_ms


PLACEMENT = ModulePlacement("D1", 44, 4)


def test_port_bandwidths():
    assert ICAP_V2.bytes_per_second == pytest.approx(66e6)
    assert SELECTMAP_66.bytes_per_second == pytest.approx(66e6)
    assert JTAG.bytes_per_second == pytest.approx(33e6 / 8)


def test_port_write_time():
    # 66 bytes at 66 MB/s = 1 us + setup.
    assert ICAP_V2.write_ns(66) == 500 + 1_000
    assert ICAP_V2.write_ns(0) == 500


def test_port_validation():
    with pytest.raises(PortError):
        ConfigPort("bad", 7, 66.0)
    with pytest.raises(PortError):
        ConfigPort("bad", 8, 0.0)
    with pytest.raises(PortError):
        ICAP_V2.write_ns(-1)


def test_store_register_and_read_time():
    store = BitstreamStore(bandwidth_bytes_per_s=22_000_000, access_ns=1_000)
    store.register("D1", "qpsk", 88_000)
    entry = store.get("D1", "qpsk")
    assert entry.size_bytes == 88_000
    # 88 KB at 22 MB/s = 4 ms.
    assert to_ms(store.read_ns("D1", "qpsk")) == pytest.approx(4.0, rel=0.01)


def test_store_accepts_bitstream_objects():
    store = BitstreamStore()
    bs = generate_partial_bitstream(XC2V2000, PLACEMENT, "qpsk")
    entry = store.register("D1", "qpsk", bs)
    assert entry.size_bytes == bs.size_bytes
    assert entry.verify()


def test_store_duplicate_and_missing():
    store = BitstreamStore()
    store.register("D1", "a", 100)
    with pytest.raises(StoreError):
        store.register("D1", "a", 100)
    with pytest.raises(StoreError):
        store.get("D1", "b")
    with pytest.raises(StoreError):
        store.register("D1", "c", 0)
    assert store.modules_of("D1") == ["a"]
    assert store.regions() == ["D1"]


def test_builder_estimate_memory_bound():
    """With a 22 MB/s store and a 66 MB/s port, memory dominates: ≈4 ms for
    the paper's 88 KB module."""
    sim = Simulator()
    store = BitstreamStore(bandwidth_bytes_per_s=22_000_000, access_ns=1_000)
    store.register("D1", "qpsk", 88_000)
    builder = ProtocolConfigurationBuilder(sim, ICAP_V2, store)
    est = builder.estimate_for("D1", "qpsk")
    assert 3.9 < to_ms(est) < 4.2


def test_builder_estimate_port_bound():
    """With a fast memory and the serial JTAG port, the port dominates."""
    sim = Simulator()
    store = BitstreamStore(bandwidth_bytes_per_s=200_000_000, access_ns=0)
    store.register("D1", "qpsk", 88_000)
    builder = ProtocolConfigurationBuilder(sim, JTAG, store)
    est = builder.estimate_ns(88_000)
    assert est >= JTAG.write_ns(88_000)


def test_builder_load_process_takes_estimated_time():
    sim = Simulator()
    store = BitstreamStore()
    store.register("D1", "qpsk", 50_000)
    trace = Trace()
    builder = ProtocolConfigurationBuilder(sim, ICAP_V2, store, trace=trace)

    def proc():
        outcome = yield sim.process(builder.load("D1", "qpsk"))
        return outcome

    p = sim.process(proc())
    outcome = sim.run(until=p)
    assert outcome.duration_ns == builder.estimate_ns(50_000)
    assert sim.now == outcome.duration_ns
    spans = trace.spans_of(kind="reconfig")
    assert len(spans) == 1 and spans[0].detail == "D1<-qpsk"


def test_builder_serializes_port_access():
    sim = Simulator()
    store = BitstreamStore()
    store.register("D1", "a", 10_000)
    store.register("D2", "b", 10_000)
    builder = ProtocolConfigurationBuilder(sim, ICAP_V2, store)
    outcomes = []

    def proc(region, module):
        yield sim.process(builder.load(region, module))
        outcomes.append((region, sim.now))

    sim.process(proc("D1", "a"))
    sim.process(proc("D2", "b"))
    sim.run()
    t1, t2 = outcomes[0][1], outcomes[1][1]
    one = builder.estimate_ns(10_000)
    assert t1 == one
    assert t2 == 2 * one  # strictly serialized on the single port


def test_builder_rejects_corrupted_bitstream():
    sim = Simulator()
    store = BitstreamStore()
    bs = generate_partial_bitstream(XC2V2000, PLACEMENT, "qpsk").corrupted(frame_index=1)
    store.register("D1", "qpsk", bs)
    builder = ProtocolConfigurationBuilder(sim, ICAP_V2, store)
    failures = []

    def proc():
        try:
            yield sim.process(builder.load("D1", "qpsk"))
        except ProtocolError as err:
            failures.append(str(err))

    p = sim.process(proc())
    sim.run(until=p)
    assert failures and "CRC" in failures[0]
    # The port must have been released despite the failure.
    assert not builder.port_lock.busy
