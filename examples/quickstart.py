#!/usr/bin/env python
"""Quickstart: the complete top-down flow on a small conditioned pipeline.

Builds a five-stage pipeline whose middle stage has two mutually-exclusive
implementations (a condition group), runs the full design flow on the
Sundance-style board (DSP + XC2V2000 split into static part and one
reconfigurable region), and prints every artefact of the methodology:
the schedule, the macro-code executive, the floorplan, the generated VHDL
file list and the reconfiguration latency.

Run:  python examples/quickstart.py
"""

from repro.aaa import MappingConstraints
from repro.dfg.generators import conditioned_chain_graph
from repro.dfg.library import default_library
from repro.arch import sundance_board
from repro.flows import DesignFlow, SystemSimulation


def main() -> None:
    # 1. Modelisation: algorithm graph + architecture graph.
    graph = conditioned_chain_graph(length=5, alternatives=2)
    board = sundance_board()
    library = default_library()
    print(graph.summary())
    print()
    print(board.architecture.summary())
    print()

    # 2-5. Adequation, VHDL generation, Modular Design back-end.
    mapping = MappingConstraints().pin("alt0", "D1").pin("alt1", "D1")
    flow = DesignFlow(graph=graph, board=board, library=library, mapping=mapping)
    result = flow.run()
    print(result.report())
    print()

    # The synchronized executive (macro-code).
    print(result.executive.render())
    print()

    # The schedule itself.
    print(result.adequation.report())
    print()

    # 6. Dynamic verification: run 12 iterations alternating the selection.
    plan = [0, 0, 1, 1] * 3
    runtime = SystemSimulation(
        result,
        n_iterations=len(plan),
        selector_values={"alt": lambda it: plan[it]},
    ).run()
    print(runtime.summary())
    print()
    print(runtime.execution.trace.gantt(width=72, kinds={"compute", "reconfig"}))


if __name__ == "__main__":
    main()
