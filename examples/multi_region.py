#!/usr/bin/env python
"""Two reconfigurable regions on one FPGA (the paper's §7 extension).

"Furthermore, complex design and architecture can support more than one
dynamic part."  This example builds a pipeline with *two* condition groups —
an adaptive modulation stage and an adaptive post-processing stage — maps
each group onto its own reconfigurable region of the XC2V2000, and runs the
flow: the floorplanner places two disjoint full-height regions, the manager
serializes their loads on the single configuration port, and the runtime
simulation shows both regions swapping independently.

Run:  python examples/multi_region.py
"""

from repro.aaa import MappingConstraints
from repro.arch import dual_region_board
from repro.dfg import AlgorithmGraph, WORD32
from repro.dfg.library import default_library
from repro.flows import DesignFlow, SystemSimulation


def build_graph() -> AlgorithmGraph:
    g = AlgorithmGraph("dual_dynamic")
    sel_mod = g.add_operation("sel_mod", "select_source")
    sel_mod.add_output("value", WORD32, 1)
    sel_post = g.add_operation("sel_post", "select_source")
    sel_post.add_output("value", WORD32, 1)

    src = g.add_operation("src", "generic_small")
    src.add_output("o0", WORD32, 16)
    src.add_output("o1", WORD32, 16)

    # Stage 1 alternatives (region D1).
    mod_a = g.add_operation("mod_a", "generic_medium")
    mod_b = g.add_operation("mod_b", "generic_large")
    for op in (mod_a, mod_b):
        op.add_input("i", WORD32, 16)
        op.add_output("o", WORD32, 16)
    g.connect(src, "o0", mod_a, "i")
    g.connect(src, "o1", mod_b, "i")

    merge1 = g.add_operation("merge1", "cond_merge")
    merge1.add_input("a", WORD32, 16)
    merge1.add_input("b", WORD32, 16)
    merge1.add_output("o0", WORD32, 16)
    merge1.add_output("o1", WORD32, 16)
    g.connect(mod_a, "o", merge1, "a")
    g.connect(mod_b, "o", merge1, "b")

    # Stage 2 alternatives (region D2).
    post_x = g.add_operation("post_x", "generic_medium")
    post_y = g.add_operation("post_y", "generic_medium")
    for op in (post_x, post_y):
        op.add_input("i", WORD32, 16)
        op.add_output("o", WORD32, 16)
    g.connect(merge1, "o0", post_x, "i")
    g.connect(merge1, "o1", post_y, "i")

    merge2 = g.add_operation("merge2", "cond_merge")
    merge2.add_input("a", WORD32, 16)
    merge2.add_input("b", WORD32, 16)
    merge2.add_output("o", WORD32, 16)
    g.connect(post_x, "o", merge2, "a")
    g.connect(post_y, "o", merge2, "b")

    sink = g.add_operation("sink", "generic_small")
    sink.add_input("i", WORD32, 16)
    g.connect(merge2, "o", sink, "i")

    grp1 = g.condition_group("mod", sel_mod, "value")
    grp1.add_case("a", [mod_a])
    grp1.add_case("b", [mod_b])
    grp2 = g.condition_group("post", sel_post, "value")
    grp2.add_case("x", [post_x])
    grp2.add_case("y", [post_y])
    return g


def main() -> None:
    graph = build_graph()
    board = dual_region_board()
    mapping = (
        MappingConstraints()
        .pin("mod_a", "D1").pin("mod_b", "D1")
        .pin("post_x", "D2").pin("post_y", "D2")
    )
    flow = DesignFlow(graph=graph, board=board, library=default_library(), mapping=mapping)
    result = flow.run()
    print(result.report())
    print()

    # Independent switching plans for the two regions.
    mod_plan = ["a", "a", "b", "b", "a", "a", "b", "b"] * 2
    post_plan = ["x", "y", "x", "y", "x", "y", "x", "y"] * 2
    runtime = SystemSimulation(
        result,
        n_iterations=len(mod_plan),
        selector_values={
            "mod": lambda it: mod_plan[it],
            "post": lambda it: post_plan[it],
        },
    ).run()
    print(runtime.summary())
    print()
    print("region D1 area:", f"{100 * result.modular.region_area_fraction('D1'):.1f}%")
    print("region D2 area:", f"{100 * result.modular.region_area_fraction('D2'):.1f}%")
    print()
    print(runtime.execution.trace.gantt(width=72))


if __name__ == "__main__":
    main()
