#!/usr/bin/env python
"""Retrofitting dynamic reconfiguration onto an existing fixed design.

The paper's conclusion: "This methodology can easily be used to introduce
dynamic reconfiguration over already developed fixed design as well as for
IP block integration."

This example starts from a *fixed* QPSK-only transmitter (no conditioning
anywhere), then — without touching the original blocks — grafts a QAM-16 IP
block as a runtime-swappable alternative of the modulation stage, re-runs
the whole flow, and simulates the switchable system.

Run:  python examples/retrofit_ip.py
"""

from repro.arch import sundance_board
from repro.dfg import AlgorithmGraph, BIT, CPLX16, validate_graph
from repro.dfg.library import default_library
from repro.dfg.retrofit import retrofit_alternatives
from repro.flows import DesignFlow, SystemSimulation


def build_fixed_design() -> AlgorithmGraph:
    """The 'already developed' design: a straight QPSK pipeline."""
    g = AlgorithmGraph("legacy_tx")
    head = g.add_operation("head", "bit_source")
    head.add_output("bits", BIT, 16)
    coder = g.add_operation("coder", "channel_coder")
    coder.add_input("bits", BIT, 16)
    coder.add_output("coded", BIT, 36)
    mod = g.add_operation("mod", "qpsk_mod")
    mod.add_input("bits", BIT, 36)
    mod.add_output("symbols", CPLX16, 4)
    spread = g.add_operation("spread", "spreader")
    spread.add_input("symbols", CPLX16, 4)
    spread.add_output("chips", CPLX16, 64)
    dac = g.add_operation("dac", "dac_sink")
    dac.add_input("samples", CPLX16, 64)
    g.connect(head, "bits", coder, "bits")
    g.connect(coder, "coded", mod, "bits")
    g.connect(mod, "symbols", spread, "symbols")
    g.connect(spread, "chips", dac, "samples")
    return g


def main() -> None:
    library = default_library()
    g = build_fixed_design()
    validate_graph(g, library)
    print(f"fixed design: {len(g)} operations, no condition groups")

    # Graft the QAM-16 IP block as a runtime alternative of 'mod'.
    group = retrofit_alternatives(
        g, "mod", {"qam16": "qam16_mod"}, group_name="modulation"
    )
    validate_graph(g, library)
    print(
        f"after retrofit: {len(g)} operations; group {group.name!r} with "
        f"cases {sorted(map(str, group.cases))}"
    )
    print(g.summary())
    print()

    flow = DesignFlow(graph=g, board=sundance_board(), library=library)
    flow.mapping.pin("mod", "D1").pin("mod_qam16", "D1")
    result = flow.run()
    print(result.report())
    print()

    plan = ["base"] * 4 + ["qam16"] * 4
    run = SystemSimulation(
        result, n_iterations=len(plan),
        selector_values={"modulation": lambda it: plan[it]},
    ).run()
    print(run.summary())


if __name__ == "__main__":
    main()
