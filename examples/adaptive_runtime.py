#!/usr/bin/env python
"""Runtime reconfiguration under a mobile channel: policies compared.

Drives the reconfigurable MC-CDMA transmitter with a slowly varying SNR
random walk (a pedestrian fading profile).  The adaptive modulation
controller switches QPSK ↔ QAM-16 with hysteresis; every switch costs one
partial reconfiguration of region D1 (~4 ms through the ICAP).

Compares three runtime strategies:

- the reconfiguration-blind executive (reactive requests),
- the prefetched executive (requests issued the moment Select is known),
- the prefetched executive plus a Markov history predictor in the manager.

Run:  python examples/adaptive_runtime.py
"""

from repro.flows import DesignFlow, SystemSimulation, parse_constraints
from repro.mccdma import AdaptiveModulationController, SnrTrace
from repro.mccdma.casestudy import build_mccdma_design
from repro.reconfig import HistoryPrefetchPolicy, NoPrefetchPolicy

CONSTRAINTS = """
[module mod_qpsk]
region    = D1
operation = mod_qpsk

[module mod_qam16]
region    = D1
operation = mod_qam16

[region D1]
sharing   = true
exclusive = mod_qpsk, mod_qam16
"""

N_SYMBOLS = 120


def make_plan(hysteresis_db: float):
    snr = SnrTrace.random_walk(start_db=14.0, step_db=1.2, n=N_SYMBOLS, seed=3)
    controller = AdaptiveModulationController(threshold_db=14.0, hysteresis_db=hysteresis_db)
    return controller.plan(snr)


def main() -> None:
    design = build_mccdma_design()

    plan = make_plan(hysteresis_db=1.0)
    switches = AdaptiveModulationController.switch_count(plan)
    print(f"SNR random walk over {N_SYMBOLS} OFDM symbols -> {switches} modulation switches")

    flows = {
        "reactive executive": DesignFlow.from_design(
            design, dynamic_constraints=parse_constraints(CONSTRAINTS), prefetch=False
        ).run(),
        "prefetched executive": DesignFlow.from_design(
            design, dynamic_constraints=parse_constraints(CONSTRAINTS), prefetch=True
        ).run(),
    }

    runs = []
    for name, flow in flows.items():
        result = SystemSimulation(
            flow,
            n_iterations=N_SYMBOLS,
            selector_values={"modulation": lambda it: plan[it]},
            policy=NoPrefetchPolicy(),
        ).run()
        runs.append((name, result))
    history = SystemSimulation(
        flows["prefetched executive"],
        n_iterations=N_SYMBOLS,
        selector_values={"modulation": lambda it: plan[it]},
        policy=HistoryPrefetchPolicy(min_confidence=0.6),
    ).run()
    runs.append(("prefetched + history predictor", history))

    print(f"{'strategy':<32}{'total time':>14}{'stall':>12}{'per switch':>12}{'prefetch hits':>15}")
    for name, result in runs:
        print(
            f"{name:<32}{result.end_time_ns / 1e6:>11.2f} ms"
            f"{result.total_stall_ns / 1e6:>9.2f} ms"
            f"{result.stall_per_switch_ns() / 1e6:>9.2f} ms"
            f"{result.manager_stats.useful_prefetches:>15}"
        )

    # The cost of switching too eagerly: hysteresis ablation.
    print("\nhysteresis ablation (controller-level mitigation of the 4 ms cost):")
    for hyst in (0.0, 0.5, 1.0, 2.0):
        p = make_plan(hysteresis_db=hyst)
        s = AdaptiveModulationController.switch_count(p)
        wasted_ms = s * flows["prefetched executive"].region_latency_ns("D1") / 1e6
        print(f"  hysteresis {hyst:>4.1f} dB: {s:>3} switches -> {wasted_ms:7.1f} ms of reconfiguration")


if __name__ == "__main__":
    main()
