#!/usr/bin/env python
"""Design-space exploration: device size × reconfiguration architecture.

Sweeps the case study across Virtex-II parts (XC2V1000/2000/3000) and the
Fig. 2 reconfiguration architectures, reporting for every point: region
area, partial-bitstream size, reconfiguration latency, achievable clock and
whether the design fits.  A downstream user would run exactly this sweep to
pick a part for a new dynamic application.

Run:  python examples/design_space.py
"""

from repro.arch.boards import sundance_board
from repro.fabric import XC2V1000, XC2V2000, XC2V3000
from repro.fabric.floorplan import FloorplanError
from repro.flows import DesignFlow, parse_constraints
from repro.mccdma.casestudy import CaseStudyDesign, build_mccdma_graph
from repro.dfg.library import default_library
from repro.reconfig import case_a_standalone, case_b_processor

CONSTRAINTS = """
[module mod_qpsk]
region    = D1
operation = mod_qpsk

[module mod_qam16]
region    = D1
operation = mod_qam16

[region D1]
sharing   = true
exclusive = mod_qpsk, mod_qam16
"""


def explore():
    rows = []
    for device in (XC2V1000, XC2V2000, XC2V3000):
        for arch_factory in (case_a_standalone, case_b_processor):
            arch = arch_factory()
            board = sundance_board(device=device)
            design = CaseStudyDesign(
                graph=build_mccdma_graph(), board=board, library=default_library()
            )
            flow = DesignFlow.from_design(
                design,
                dynamic_constraints=parse_constraints(CONSTRAINTS),
                reconfig_architecture=arch,
            )
            flow.mapping.pin("bit_src", "DSP").pin("select", "DSP")
            try:
                result = flow.run()
            except FloorplanError as err:
                rows.append((device.name, arch.name, None, str(err)))
                continue
            rows.append(
                (
                    device.name,
                    arch.name,
                    {
                        "area": result.modular.region_area_fraction("D1"),
                        "bitstream": result.modular.floorplan.partial_bitstream_bytes("D1"),
                        "latency_ms": result.region_latency_ns("D1") / 1e6,
                        "clock": result.modular.par_report.clock_mhz,
                        "makespan_us": result.makespan_ns / 1e3,
                    },
                    None,
                )
            )
    return rows


def main() -> None:
    rows = explore()
    header = (
        f"{'device':<10}{'architecture':<20}{'area %':>8}{'bitstream':>11}"
        f"{'reconfig':>11}{'clock':>8}{'iteration':>12}"
    )
    print(header)
    print("-" * len(header))
    for device, arch, metrics, error in rows:
        if metrics is None:
            print(f"{device:<10}{arch:<20}  does not fit: {error}")
            continue
        print(
            f"{device:<10}{arch:<20}{100 * metrics['area']:>7.1f}%"
            f"{metrics['bitstream'] / 1024:>9.1f}KB"
            f"{metrics['latency_ms']:>9.2f}ms"
            f"{metrics['clock']:>7.0f}M"
            f"{metrics['makespan_us']:>10.1f}us"
        )
    print()
    print("Reading the table: a bigger part spends more bits per column")
    print("(taller frames), so the same 4-column module reconfigures slower")
    print("on the XC2V3000 than on the XC2V1000 — partial reconfiguration")
    print("favours the smallest device that fits the static part.")


if __name__ == "__main__":
    main()
