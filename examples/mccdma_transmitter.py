#!/usr/bin/env python
"""The paper's case study: the runtime-reconfigurable MC-CDMA transmitter.

Reproduces Section 6 end to end:

1. builds the Fig. 4 algorithm graph (coder → interleaver → adaptive
   modulation (QPSK | QAM-16) → Walsh spreading → IFFT → cyclic prefix) and
   the Sundance board (C6201 DSP + XC2V2000);
2. runs the complete design flow — the modulation alternatives become
   variants of the reconfigurable region D1;
3. prints the floorplan (expected: a narrow full-height region, ≈8 % of the
   device, ≈4 ms reconfiguration — the paper's figures);
4. regenerates Table 1 (fixed vs dynamic modulation implementations);
5. runs the transmitter with real data through the simulated platform and
   verifies the emitted samples against the monolithic numpy reference.

Run:  python examples/mccdma_transmitter.py
"""

import numpy as np

from repro.flows import DesignFlow, SystemSimulation, parse_constraints, table1_report
from repro.mccdma import SnrTrace
from repro.mccdma.bindings import make_case_study_bindings, reference_symbol
from repro.mccdma.casestudy import build_mccdma_design

CONSTRAINTS = """
# Dynamic-module constraints file for the MC-CDMA transmitter (paper §4).
[module mod_qpsk]
region    = D1
operation = mod_qpsk
loading   = runtime
unloading = on_switch

[module mod_qam16]
region    = D1
operation = mod_qam16

[region D1]
sharing   = true
exclusive = mod_qpsk, mod_qam16
"""


def main() -> None:
    design = build_mccdma_design()
    flow = DesignFlow.from_design(
        design, dynamic_constraints=parse_constraints(CONSTRAINTS)
    )
    flow.mapping.pin("bit_src", "DSP").pin("select", "DSP")
    result = flow.run()

    print(result.report())
    print()
    print(result.modular.ucf)

    # Table 1 — fixed vs dynamic modulation implementation comparison.
    print(table1_report(design.library, flow=result))
    print()

    # Dynamic verification with real MC-CDMA data: a fading channel whose
    # SNR steps between 8 dB (QPSK territory) and 22 dB (QAM-16 territory).
    n_symbols = 24
    snr = SnrTrace.step(low_db=8.0, high_db=22.0, period=6, n=n_symbols)
    state = make_case_study_bindings(snr, seed=1)
    runtime = SystemSimulation(
        result, n_iterations=n_symbols, bindings=state.bindings, capture={"dac"}
    ).run()
    print(runtime.summary())

    # Verify every emitted OFDM symbol against the reference chain.
    mismatches = 0
    for it in range(n_symbols):
        emitted = runtime.execution.captured["dac"][it]["samples"]
        expected = reference_symbol(state.source_bits[it], state.selected[it])
        if not np.allclose(emitted, expected):
            mismatches += 1
    modulations = [m.value for m in state.selected]
    print(f"modulation plan: {modulations}")
    print(f"verified {n_symbols} OFDM symbols against the reference: "
          f"{n_symbols - mismatches} exact, {mismatches} mismatching")
    if mismatches:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
