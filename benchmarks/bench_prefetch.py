"""X1 — configuration prefetching ablation.

The paper (§1, §5): the runtime reconfiguration manager "uses prefetching
technic to minimize reconfiguration latency of runtime reconfiguration."

Three strategies over switch-rate and pattern sweeps:

- reactive executive (request when the data reaches the module),
- prefetched executive (request the moment Select is known — the paper's
  scheme: the block sees the Select register change ahead of the data),
- prefetched executive + Markov history predictor (idle-time speculation;
  wins on predictable alternation, neutral on steady selection).
"""

from conftest import build_case_study_flow, write_result

from repro.flows import SystemSimulation
from repro.mccdma import Modulation

# Policies are selected by registry name (repro.runtime.policies), the same
# names the CLI accepts; SystemSimulation resolves them to bundles.


def _block_plan(period: int, n: int):
    mods = [Modulation.QPSK, Modulation.QAM16]
    return [mods[(i // period) % 2] for i in range(n)]


def _alternating_plan(n: int):
    return _block_plan(1, n)


def test_prefetch_vs_reactive_executive(benchmark):
    """End-to-end time: prefetched vs reactive executive across switch rates."""
    _, pre_flow = build_case_study_flow(prefetch=True)
    _, rea_flow = build_case_study_flow(prefetch=False)
    n = 32

    def run():
        rows = []
        for period in (1, 2, 4, 8):
            plan = _block_plan(period, n)
            times = {}
            for tag, flow in (("prefetch", pre_flow), ("reactive", rea_flow)):
                result = SystemSimulation(
                    flow, n_iterations=n,
                    selector_values={"modulation": lambda it: plan[it]},
                    policy="none",
                ).run()
                times[tag] = result
            rows.append((period, times["reactive"], times["prefetch"]))
        return rows

    rows = benchmark.pedantic(run, rounds=2, iterations=1)
    text = ["switch period | switches | reactive total | prefetch total | saved"]
    for period, reactive, prefetch in rows:
        assert prefetch.end_time_ns < reactive.end_time_ns
        assert prefetch.switches == reactive.switches
        saved_us = (reactive.end_time_ns - prefetch.end_time_ns) / 1e3
        text.append(
            f"{period:>13} | {reactive.switches:>8} | {reactive.end_time_ns / 1e6:>11.2f} ms "
            f"| {prefetch.end_time_ns / 1e6:>11.2f} ms | {saved_us:>7.1f} us"
        )
    # Savings grow with switch count (more requests to issue early).
    saved = [r.end_time_ns - p.end_time_ns for _, r, p in rows]
    assert saved[0] > saved[-1]
    write_result("prefetch_executive", "\n".join(text))


def test_history_predictor_on_patterns(benchmark):
    """Idle-time speculation: big win on strict alternation (every demand is
    predictable), neutral on slow block switching."""
    _, flow = build_case_study_flow(prefetch=True)
    n = 32

    def run():
        out = {}
        for name, plan in (
            ("alternating", _alternating_plan(n)),
            ("blocks_of_8", _block_plan(8, n)),
        ):
            for policy_name in ("none", "history"):
                result = SystemSimulation(
                    flow, n_iterations=n,
                    selector_values={"modulation": lambda it: plan[it]},
                    policy=policy_name,
                ).run()
                out[(name, policy_name)] = result
        return out

    out = benchmark.pedantic(run, rounds=2, iterations=1)
    alt_none = out[("alternating", "none")]
    alt_hist = out[("alternating", "history")]
    blk_none = out[("blocks_of_8", "none")]
    blk_hist = out[("blocks_of_8", "history")]
    # Alternation: history predicts every switch; stall shrinks.
    assert alt_hist.manager_stats.useful_prefetches > 0
    assert alt_hist.total_stall_ns < alt_none.total_stall_ns
    # Slow blocks: self-transitions dominate; history must not thrash.
    assert blk_hist.end_time_ns <= blk_none.end_time_ns * 1.05
    text = ["pattern       policy    total (ms)  stall (ms)  useful prefetches"]
    for (name, policy_name), result in sorted(out.items()):
        text.append(
            f"{name:<13} {policy_name:<9} {result.end_time_ns / 1e6:>9.2f}  "
            f"{result.total_stall_ns / 1e6:>9.2f}  {result.manager_stats.useful_prefetches:>11}"
        )
    write_result("prefetch_history", "\n".join(text))


def test_prefetch_gain_scales_with_request_latency(benchmark):
    """With processor-mediated reconfiguration (Fig. 2 case b), the request
    round trip is 40x larger, so issuing requests early hides more."""
    from repro.reconfig import case_b_processor

    _, pre_a = build_case_study_flow(prefetch=True)
    _, rea_a = build_case_study_flow(prefetch=False)
    _, pre_b = build_case_study_flow(prefetch=True, reconfig_architecture=case_b_processor())
    _, rea_b = build_case_study_flow(prefetch=False, reconfig_architecture=case_b_processor())
    plan = _block_plan(2, 16)

    def run():
        out = {}
        for tag, flow in (("a_pre", pre_a), ("a_rea", rea_a), ("b_pre", pre_b), ("b_rea", rea_b)):
            out[tag] = SystemSimulation(
                flow, n_iterations=len(plan),
                selector_values={"modulation": lambda it: plan[it]},
            ).run().end_time_ns
        return out

    out = benchmark.pedantic(run, rounds=2, iterations=1)
    gain_a = out["a_rea"] - out["a_pre"]
    gain_b = out["b_rea"] - out["b_pre"]
    assert gain_a > 0 and gain_b > 0
    text = [
        f"case a (ICAP): reactive {out['a_rea'] / 1e6:.2f} ms, prefetch {out['a_pre'] / 1e6:.2f} ms, "
        f"gain {gain_a / 1e3:.1f} us",
        f"case b (DSP):  reactive {out['b_rea'] / 1e6:.2f} ms, prefetch {out['b_pre'] / 1e6:.2f} ms, "
        f"gain {gain_b / 1e3:.1f} us",
    ]
    write_result("prefetch_request_latency", "\n".join(text))
