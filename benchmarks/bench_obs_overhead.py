"""X7 — the observability layer's zero-cost-when-disabled guard.

Every hot path (pipeline stages, the link engine's batch loop, the sweep
engine) now carries tracing call sites.  The contract that makes this
acceptable is that the **default** ambient tracer is the shared no-op:
``span()`` returns one inert handle, no ids are generated, no clocks are
read, and attribute bags are never built (the sites guard them behind
``tracer.enabled``).

This benchmark pins that contract down three ways:

- a no-op ``span()`` round trip costs nanoseconds (microbenchmark);
- a real workload — the batched link simulation — runs with the no-op
  tracer and with a recording tracer; the *enabled* overhead is reported
  and the disabled run must record zero spans and zero metrics;
- the disabled/enabled ratio is bounded: if the no-op path ever grows a
  hidden allocation, the ratio guard fails the build.

Wall-clock regression of the previously-tuned hot loops with tracing
disabled is guarded by re-running ``bench_scheduler_scaling`` and
``bench_linklevel_throughput`` (their acceptance floors are unchanged);
this module records the instrumentation-site costs themselves.

Writes ``BENCH_obs_overhead.json`` next to the other artefacts.
"""

import json
import os
import time

from conftest import write_bench_json

from repro.mccdma.engine import LinkEngineConfig, LinkSimulationEngine
from repro.mccdma.transmitter import MCCDMAConfig
from repro.obs import (
    MetricsRegistry,
    NOOP_TRACER,
    Tracer,
    get_metrics,
    get_tracer,
    use_metrics,
    use_tracer,
)

SMOKE = any(
    os.environ.get(var, "") not in ("", "0")
    for var in ("OBS_OVERHEAD_SMOKE", "OBS_TELEMETRY_SMOKE")
)

FRAMES = 48 if SMOKE else 192
REPEATS = 3 if SMOKE else 5
SPAN_CALLS = 200_000

#: A no-op span round trip must stay well under a microsecond.
MAX_NOOP_SPAN_NS = 2_000
#: Enabled tracing may cost something, but the link loop is batch-dominated;
#: a blow-up here means a call site landed inside the per-frame kernels.
MAX_ENABLED_OVERHEAD_PCT = 30.0

#: Fast-engine fleet scale for the telemetry guard: big enough that one run
#: is tens of milliseconds (a stable best-of target), small enough for CI.
FLEET_BOARDS = 32 if SMOKE else 100
FLEET_REQUESTS = 200 if SMOKE else 1000
FLEET_PAIRS = 3 if SMOKE else 12
#: The telemetry recorder only appends references to per-step arrays and
#: defers all aggregation to one vectorized flush per policy run, so the
#: telemetry-on fast engine must stay within a few percent of telemetry-off.
MAX_TELEMETRY_OVERHEAD_PCT = 5.0


def _time_noop_span_ns() -> float:
    tracer = NOOP_TRACER
    t0 = time.perf_counter_ns()
    for _ in range(SPAN_CALLS):
        with tracer.span("x"):
            pass
    return (time.perf_counter_ns() - t0) / SPAN_CALLS


def _time_link_point(repeats: int) -> float:
    engine = LinkSimulationEngine(
        config=MCCDMAConfig(user_codes=(0, 3, 5, 9)),
        engine=LinkEngineConfig(batched=True, batch_frames=64),
    )
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        engine.simulate_point("adaptive", 6.0, FRAMES, seed=11)
        best = min(best, time.perf_counter() - t0)
    return best


def test_observability_overhead_guard():
    assert not get_tracer().enabled, "benchmarks must start with tracing disabled"

    noop_span_ns = _time_noop_span_ns()

    # Workload with the default no-op tracer: no spans may be recorded.
    disabled_s = _time_link_point(REPEATS)
    assert not get_tracer().enabled

    tracer = Tracer()
    registry = MetricsRegistry()
    with use_tracer(tracer), use_metrics(registry):
        enabled_s = _time_link_point(REPEATS)
    assert tracer.spans, "enabled run must record spans"
    assert registry.counter("link.frames_total").value > 0

    overhead_pct = 100.0 * (enabled_s - disabled_s) / disabled_s
    payload = {
        "smoke": SMOKE,
        "frames_per_point": FRAMES,
        "noop_span_ns": round(noop_span_ns, 1),
        "max_noop_span_ns": MAX_NOOP_SPAN_NS,
        "link_point_disabled_s": round(disabled_s, 6),
        "link_point_enabled_s": round(enabled_s, 6),
        "enabled_overhead_pct": round(overhead_pct, 2),
        "max_enabled_overhead_pct": MAX_ENABLED_OVERHEAD_PCT,
        "enabled_spans_recorded": len(tracer.spans),
    }
    name = "BENCH_obs_overhead_smoke" if SMOKE else "BENCH_obs_overhead"
    write_bench_json(name, payload)
    print(f"\n[obs_overhead] {json.dumps(payload, indent=2, sort_keys=True)}")

    assert noop_span_ns < MAX_NOOP_SPAN_NS
    if not SMOKE:  # timing ratios on shared runners are noise in smoke mode
        assert overhead_pct < MAX_ENABLED_OVERHEAD_PCT


def test_fleet_telemetry_overhead_guard():
    """Telemetry-on fast-engine fleet: identical digest, bounded overhead.

    Runs the batched array-state engine with and without a sim-clock
    telemetry store in back-to-back pairs and pins down the two halves of
    the tentpole contract: the :meth:`FleetReport.digest` must not move at
    all, and the measured overhead of windowed counter/sketch recording
    must stay small.  The estimator is built for a noisy shared machine
    where preemptions only ever *add* time: off/on runs are interleaved in
    pairs, and the reported overhead is the smaller of two upward-noisy
    estimators — best-of difference (min walls per side) and the median of
    per-pair deltas (pairing cancels slow drift).  Each inflates under a
    different noise pattern, neither deflates below the true floor, so
    their minimum is the stable choice.  The cyclic GC is paused during
    timed runs and collected between pairs so store teardown never lands
    inside a measurement.  Because noise can only inflate the estimate, a
    measurement that lands over the bound is retried once and the best
    attempt is what the guard asserts on.
    """
    from repro.obs.telemetry import TimeSeriesStore
    from repro.runtime import FleetConfig, generate_fleet_schedules, run_fleet

    config = FleetConfig(
        n_boards=FLEET_BOARDS,
        requests_per_board=FLEET_REQUESTS,
        policy="lru",
        engine="fast",
    )
    schedules = generate_fleet_schedules(config)
    run_fleet(config, schedules=schedules)  # warm imports and allocators

    def run_once(with_telemetry: bool):
        # the window is sized so the whole run fits inside the retention
        # ring — an evicted window would silently shrink the demand total
        # the parity assertion below checks
        store = (
            TimeSeriesStore(window=20_000_000, clock="sim")
            if with_telemetry
            else None
        )
        t0 = time.perf_counter()
        report = run_fleet(config, schedules=schedules, telemetry=store)
        return time.perf_counter() - t0, report, store

    import gc
    import statistics

    def measure():
        off_walls, on_walls = [], []
        off_report = on_report = store = None
        gc_was_enabled = gc.isenabled()
        try:
            for _ in range(FLEET_PAIRS):  # paired: same thermal/cache state
                store = None  # free the previous store outside the timed runs
                gc.collect()
                gc.disable()
                off, off_report, _ = run_once(False)
                on, on_report, store = run_once(True)
                gc.enable()
                off_walls.append(off)
                on_walls.append(on)
        finally:
            if gc_was_enabled:
                gc.enable()

        assert on_report.digest() == off_report.digest(), (
            "telemetry recording moved the simulation digest"
        )
        total = config.n_boards * config.requests_per_board
        assert store.total("fleet.demands", policy="lru") == total
        off_wall = min(off_walls)
        on_wall = min(on_walls)
        best_of = 100.0 * (on_wall - off_wall) / off_wall
        paired_median = 100.0 * statistics.median(
            on - off for on, off in zip(on_walls, off_walls)
        ) / statistics.median(off_walls)
        return {
            "off_wall": off_wall,
            "on_wall": on_wall,
            "best_of_pct": best_of,
            "paired_median_pct": paired_median,
            "overhead_pct": min(best_of, paired_median),
            "digest": on_report.digest(),
            "windows": len(store.window_indices()),
        }

    attempts = 1
    result = measure()
    if result["overhead_pct"] >= MAX_TELEMETRY_OVERHEAD_PCT:
        attempts = 2
        retry = measure()
        if retry["overhead_pct"] < result["overhead_pct"]:
            result = retry
    telemetry_overhead_pct = result["overhead_pct"]

    payload = {
        "smoke": SMOKE,
        "boards": FLEET_BOARDS,
        "requests_per_board": FLEET_REQUESTS,
        "pairs": FLEET_PAIRS,
        "attempts": attempts,
        "fleet_wall_off_s": round(result["off_wall"], 6),
        "fleet_wall_on_s": round(result["on_wall"], 6),
        "best_of_pct": round(result["best_of_pct"], 2),
        "paired_median_pct": round(result["paired_median_pct"], 2),
        "telemetry_overhead_pct": round(telemetry_overhead_pct, 2),
        "max_telemetry_overhead_pct": MAX_TELEMETRY_OVERHEAD_PCT,
        "digest": result["digest"],
        "telemetry_windows": result["windows"],
    }
    name = (
        "BENCH_obs_telemetry_overhead_smoke" if SMOKE
        else "BENCH_obs_telemetry_overhead"
    )
    write_bench_json(name, payload)
    print(f"\n[obs_telemetry_overhead] {json.dumps(payload, indent=2, sort_keys=True)}")

    if not SMOKE:  # timing ratios on shared runners are noise in smoke mode
        assert telemetry_overhead_pct < MAX_TELEMETRY_OVERHEAD_PCT, payload
