"""X7 — the observability layer's zero-cost-when-disabled guard.

Every hot path (pipeline stages, the link engine's batch loop, the sweep
engine) now carries tracing call sites.  The contract that makes this
acceptable is that the **default** ambient tracer is the shared no-op:
``span()`` returns one inert handle, no ids are generated, no clocks are
read, and attribute bags are never built (the sites guard them behind
``tracer.enabled``).

This benchmark pins that contract down three ways:

- a no-op ``span()`` round trip costs nanoseconds (microbenchmark);
- a real workload — the batched link simulation — runs with the no-op
  tracer and with a recording tracer; the *enabled* overhead is reported
  and the disabled run must record zero spans and zero metrics;
- the disabled/enabled ratio is bounded: if the no-op path ever grows a
  hidden allocation, the ratio guard fails the build.

Wall-clock regression of the previously-tuned hot loops with tracing
disabled is guarded by re-running ``bench_scheduler_scaling`` and
``bench_linklevel_throughput`` (their acceptance floors are unchanged);
this module records the instrumentation-site costs themselves.

Writes ``BENCH_obs_overhead.json`` next to the other artefacts.
"""

import json
import os
import time

from conftest import RESULTS_DIR

from repro.mccdma.engine import LinkEngineConfig, LinkSimulationEngine
from repro.mccdma.transmitter import MCCDMAConfig
from repro.obs import (
    MetricsRegistry,
    NOOP_TRACER,
    Tracer,
    get_metrics,
    get_tracer,
    use_metrics,
    use_tracer,
)

SMOKE = os.environ.get("OBS_OVERHEAD_SMOKE", "") not in ("", "0")

FRAMES = 48 if SMOKE else 192
REPEATS = 3 if SMOKE else 5
SPAN_CALLS = 200_000

#: A no-op span round trip must stay well under a microsecond.
MAX_NOOP_SPAN_NS = 2_000
#: Enabled tracing may cost something, but the link loop is batch-dominated;
#: a blow-up here means a call site landed inside the per-frame kernels.
MAX_ENABLED_OVERHEAD_PCT = 30.0


def _time_noop_span_ns() -> float:
    tracer = NOOP_TRACER
    t0 = time.perf_counter_ns()
    for _ in range(SPAN_CALLS):
        with tracer.span("x"):
            pass
    return (time.perf_counter_ns() - t0) / SPAN_CALLS


def _time_link_point(repeats: int) -> float:
    engine = LinkSimulationEngine(
        config=MCCDMAConfig(user_codes=(0, 3, 5, 9)),
        engine=LinkEngineConfig(batched=True, batch_frames=64),
    )
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        engine.simulate_point("adaptive", 6.0, FRAMES, seed=11)
        best = min(best, time.perf_counter() - t0)
    return best


def test_observability_overhead_guard():
    assert not get_tracer().enabled, "benchmarks must start with tracing disabled"

    noop_span_ns = _time_noop_span_ns()

    # Workload with the default no-op tracer: no spans may be recorded.
    disabled_s = _time_link_point(REPEATS)
    assert not get_tracer().enabled

    tracer = Tracer()
    registry = MetricsRegistry()
    with use_tracer(tracer), use_metrics(registry):
        enabled_s = _time_link_point(REPEATS)
    assert tracer.spans, "enabled run must record spans"
    assert registry.counter("link.frames_total").value > 0

    overhead_pct = 100.0 * (enabled_s - disabled_s) / disabled_s
    payload = {
        "smoke": SMOKE,
        "frames_per_point": FRAMES,
        "noop_span_ns": round(noop_span_ns, 1),
        "max_noop_span_ns": MAX_NOOP_SPAN_NS,
        "link_point_disabled_s": round(disabled_s, 6),
        "link_point_enabled_s": round(enabled_s, 6),
        "enabled_overhead_pct": round(overhead_pct, 2),
        "max_enabled_overhead_pct": MAX_ENABLED_OVERHEAD_PCT,
        "enabled_spans_recorded": len(tracer.spans),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    name = "BENCH_obs_overhead_smoke.json" if SMOKE else "BENCH_obs_overhead.json"
    (RESULTS_DIR / name).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n[obs_overhead] {json.dumps(payload, indent=2, sort_keys=True)}")

    assert noop_span_ns < MAX_NOOP_SPAN_NS
    if not SMOKE:  # timing ratios on shared runners are noise in smoke mode
        assert overhead_pct < MAX_ENABLED_OVERHEAD_PCT
