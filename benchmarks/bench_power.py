"""X7 — energy trade-off of the dynamic scheme (§2 motivation).

"In the case of mobile communications, three main constraints have to be
combined: high performance, low power consumption and flexibility."

Regenerates the energy comparison: a fixed design leaks through every
alternative it carries, the dynamic design holds one alternative but pays
≈720 µJ per reconfiguration.  The bench sweeps the switch interval to find
the energy crossover, and the alternative count to show leakage scaling.
"""

from conftest import write_result

from repro.dfg.operations import Operation
from repro.fabric.power import PowerModel
from repro.fabric.synthesis import PortSpec, Synthesizer

PORTS = [PortSpec("din", 32, "in"), PortSpec("dout", 32, "out")]
KINDS = ["qpsk_mod", "qam16_mod", "spreader", "chip_mapper", "interleaver", "channel_coder"]


def _schemes(library, n_alternatives: int):
    """(configured, active) resources of fixed vs dynamic schemes."""
    synthesizer = Synthesizer(library)
    ops = [Operation(f"alt{i}", KINDS[i % len(KINDS)]) for i in range(n_alternatives)]
    fixed, _ = synthesizer.synthesize_module("fixed", ops, PORTS)
    variants = [
        synthesizer.synthesize_module(
            f"dyn{i}", [op], PORTS, reconfigurable=True, region="D1"
        )[0].resources
        for i, op in enumerate(ops)
    ]
    worst = max(variants, key=lambda r: r.slices)
    active = variants[0]  # one alternative actually toggling either way
    return fixed.resources, worst, active


def test_energy_crossover_vs_switch_interval(benchmark, case_study_flow):
    """Fixed wins when switching is frequent (reconfiguration energy
    dominates); dynamic wins when the terminal dwells in one mode."""
    design, flow = case_study_flow
    model = PowerModel(clock_mhz=50.0)
    load_ns = flow.region_latency_ns("D1")
    horizon_ns = 10_000_000_000  # 10 s of operation

    def run():
        fixed_conf, dyn_conf, active = _schemes(design.library, 4)
        rows = []
        for switch_interval_ms in (5, 20, 100, 500, 2000):
            n_switches = horizon_ns // (switch_interval_ms * 1_000_000)
            fixed_e = model.interval_energy(fixed_conf, active, horizon_ns)
            dyn_e = model.interval_energy(
                dyn_conf, active, horizon_ns,
                n_reconfigs=int(n_switches), reconfig_ns=load_ns,
            )
            rows.append((switch_interval_ms, fixed_e.total_uj, dyn_e.total_uj))
        return rows

    rows = benchmark(run)
    # Frequent switching: dynamic pays more; rare switching: dynamic wins.
    assert rows[0][2] > rows[0][1]
    assert rows[-1][2] < rows[-1][1]
    crossover = next(ms for ms, fixed, dyn in rows if dyn < fixed)
    text = [
        f"horizon 10 s, 4 alternatives, reconfiguration {load_ns / 1e6:.2f} ms "
        f"({PowerModel(50.0).reconfiguration_energy_uj(load_ns):.0f} uJ each)",
        "switch interval | fixed energy | dynamic energy",
    ]
    for ms, fixed, dyn in rows:
        marker = "  <- dynamic wins" if dyn < fixed else ""
        text.append(f"{ms:>12} ms | {fixed / 1e3:>9.2f} mJ | {dyn / 1e3:>9.2f} mJ{marker}")
    text.append(f"energy crossover at switch interval ~{crossover} ms")
    write_result("power_crossover", "\n".join(text))


def test_leakage_scaling_with_alternatives(benchmark, case_study_flow):
    design, _ = case_study_flow
    model = PowerModel(clock_mhz=50.0)

    def run():
        rows = []
        for n in (1, 2, 4, 6):
            fixed_conf, dyn_conf, _ = _schemes(design.library, n)
            rows.append((n, model.static_mw(fixed_conf), model.static_mw(dyn_conf)))
        return rows

    rows = benchmark(run)
    fixed_leak = [f for _, f, _ in rows]
    dyn_leak = [d for _, _, d in rows]
    assert fixed_leak == sorted(fixed_leak)
    # Dynamic leakage tracks the worst variant, not the sum.
    assert dyn_leak[-1] < fixed_leak[-1]
    text = ["alternatives | fixed leakage | dynamic leakage"]
    for n, fixed, dyn in rows:
        text.append(f"{n:>12} | {fixed:>10.2f} mW | {dyn:>12.2f} mW")
    write_result("power_leakage", "\n".join(text))
