"""F2 — Figure 2: reconfiguration-architecture comparison.

"Locations of these functionalities [configuration manager M, protocol
configuration builder P] have a direct impact on the reconfiguration
latency."  Regenerates the latency of each placement for the case-study
module and sweeps the bitstream size.

Paper shape: case a (standalone self-reconfiguration via ICAP) beats case b
(processor-driven over interrupts + SelectMAP); both beat serial JTAG.
"""

from conftest import write_result

from repro.reconfig import ReconfigurationManager, all_cases
from repro.sim import Simulator
from repro.sim.units import to_ms


def _measured_latency(arch, nbytes: int) -> int:
    """End-to-end demand latency through the simulated manager."""
    sim = Simulator()
    store = arch.make_store()
    store.register("D1", "mod", nbytes)
    builder = arch.make_builder(sim, store)
    manager = ReconfigurationManager(
        sim, builder, request_latency_ns=arch.request_latency_ns
    )

    def proc():
        yield manager.ensure_loaded("D1", "mod")
        return sim.now

    return sim.run(until=sim.process(proc()))


def test_fig2_architecture_latencies(benchmark, case_study_flow):
    _, flow = case_study_flow
    nbytes = flow.modular.floorplan.partial_bitstream_bytes("D1")

    def run():
        return {arch.name: _measured_latency(arch, nbytes) for arch in all_cases()}

    latencies = benchmark(run)
    assert latencies["case_a_standalone"] < latencies["case_hybrid_mp"]
    assert latencies["case_hybrid_mp"] < latencies["case_b_processor"]
    assert latencies["case_b_processor"] < latencies["case_c_jtag"]
    assert 3.0 <= to_ms(latencies["case_a_standalone"]) <= 5.0  # paper: ≈4 ms
    # The analytic estimate agrees with the simulated manager.
    for arch in all_cases():
        est = arch.estimate_latency_ns(nbytes)
        assert abs(est - latencies[arch.name]) <= 0.01 * latencies[arch.name] + 1000
    text = [f"partial bitstream: {nbytes} bytes (module D1, XC2V2000)"]
    for arch in all_cases():
        text.append(
            f"{arch.name:<20} M={arch.manager_location:<12} P={arch.builder_location:<12} "
            f"port={arch.port.name:<10} latency={to_ms(latencies[arch.name]):6.2f} ms"
        )
    write_result("fig2_architectures", "\n".join(text))


def test_fig2_latency_vs_bitstream_size(benchmark):
    """Latency scales with module size; the a<b<c ordering holds across the
    sweep (the crossover never flips)."""
    sizes = [16_000, 40_000, 82_000, 160_000, 320_000]

    def run():
        table = {}
        for arch in all_cases():
            table[arch.name] = [arch.estimate_latency_ns(s) for s in sizes]
        return table

    table = benchmark(run)
    for series in table.values():
        assert series == sorted(series)  # monotone in size
    for i in range(len(sizes)):
        assert (
            table["case_a_standalone"][i]
            < table["case_hybrid_mp"][i]
            < table["case_b_processor"][i]
            < table["case_c_jtag"][i]
        )
    text = ["bytes      " + "".join(f"{a.name:>22}" for a in all_cases())]
    for i, size in enumerate(sizes):
        row = f"{size:>9} B"
        for arch in all_cases():
            row += f"{to_ms(table[arch.name][i]):>19.2f} ms"
        text.append(row)
    write_result("fig2_size_sweep", "\n".join(text))
