"""X2 — adequation heuristic comparison.

The paper's §3 heuristic "takes into account durations of computations and
inter-component communications"; its §7 conclusion asks for "additional
developments to optimize time reconfiguration".  This benchmark compares:

- the SynDEx-like schedule-pressure heuristic,
- the reconfiguration-aware extension (prefetched and reactive),
- a Noguera-Badia-style myopic earliest-finish scheduler,
- seeded random mapping (sanity floor),

on synthetic DAG families and on the case-study graph.
"""

import statistics

from conftest import write_result

from repro.aaa import (
    EarliestFinishScheduler,
    InsertionScheduler,
    MappingConstraints,
    RandomMappingScheduler,
    ReconfigAwareScheduler,
    SynDExScheduler,
    adequate,
)
from repro.arch import sundance_board
from repro.dfg.generators import conditioned_chain_graph, fork_join_graph, layered_random_graph
from repro.dfg.library import default_library


def _makespan(graph, scheduler, **kw):
    board = sundance_board()
    return adequate(
        graph, board.architecture, default_library(), scheduler=scheduler, **kw
    ).makespan_ns


def test_scheduler_comparison_on_random_dags(benchmark):
    def run():
        results = {"pressure": [], "insertion": [], "earliest_finish": [], "random": []}
        for seed in range(10):
            g = layered_random_graph(5, 4, seed=seed)
            results["pressure"].append(_makespan(g, SynDExScheduler))
            results["insertion"].append(_makespan(g, InsertionScheduler))
            results["earliest_finish"].append(_makespan(g, EarliestFinishScheduler))
            results["random"].append(_makespan(g, RandomMappingScheduler, seed=seed))
        return results

    results = benchmark.pedantic(run, rounds=2, iterations=1)
    mean = {k: statistics.mean(v) for k, v in results.items()}
    # The pressure heuristic dominates random and is competitive with EF;
    # gap insertion never hurts on average.
    assert mean["pressure"] <= mean["random"]
    assert mean["pressure"] <= mean["earliest_finish"] * 1.05
    assert mean["insertion"] <= mean["pressure"] * 1.01
    wins_vs_random = sum(
        1 for p, r in zip(results["pressure"], results["random"]) if p <= r
    )
    assert wins_vs_random >= 8
    text = ["scheduler           mean makespan (us)   per-seed (us)"]
    for name in ("pressure", "insertion", "earliest_finish", "random"):
        series = ", ".join(f"{v / 1e3:.0f}" for v in results[name])
        text.append(f"{name:<18} {mean[name] / 1e3:>12.1f}        [{series}]")
    write_result("scheduler_random_dags", "\n".join(text))


def test_scheduler_comparison_on_fork_join(benchmark):
    def run():
        rows = []
        for width in (2, 4, 8):
            g = fork_join_graph(width, kind="generic_large")
            rows.append(
                (
                    width,
                    _makespan(g, SynDExScheduler),
                    _makespan(g, EarliestFinishScheduler),
                    _makespan(g, RandomMappingScheduler, seed=1),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=2, iterations=1)
    for width, pressure, ef, rand in rows:
        assert pressure <= rand
    text = ["width | pressure (us) | earliest-finish (us) | random (us)"]
    for width, pressure, ef, rand in rows:
        text.append(f"{width:>5} | {pressure / 1e3:>12.1f} | {ef / 1e3:>19.1f} | {rand / 1e3:>10.1f}")
    write_result("scheduler_fork_join", "\n".join(text))


def test_reconfig_aware_extension_value(benchmark):
    """The §7 extension: as reconfiguration latency grows, the aware
    scheduler re-maps alternatives off the dynamic region, while the blind
    heuristic's schedule degrades at run time.  We regenerate the makespan
    vs latency series for the conditioned pipeline."""

    def run():
        rows = []
        for latency_ms in (0, 1, 2, 4, 8, 16):
            g = conditioned_chain_graph(6, 2)
            aware = _makespan(
                g, ReconfigAwareScheduler, reconfig_ns={"D1": latency_ms * 1_000_000}
            )
            board = sundance_board()
            pinned = (
                MappingConstraints().pin("alt0", "D1").pin("alt1", "D1")
            )
            blind_on_region = adequate(
                g, board.architecture, default_library(),
                constraints=pinned, scheduler=ReconfigAwareScheduler,
                reconfig_ns={"D1": latency_ms * 1_000_000},
            ).makespan_ns
            rows.append((latency_ms, aware, blind_on_region))
        return rows

    rows = benchmark.pedantic(run, rounds=2, iterations=1)
    # Free mapping never loses to the pinned-dynamic mapping, and the gap
    # opens as the latency grows.
    for latency_ms, aware, pinned in rows:
        assert aware <= pinned
    gaps = [pinned - aware for _, aware, pinned in rows]
    assert gaps[-1] > gaps[0]
    text = ["reconfig latency | aware free mapping | pinned to region | gap"]
    for (latency_ms, aware, pinned), gap in zip(rows, gaps):
        text.append(
            f"{latency_ms:>13} ms | {aware / 1e6:>15.2f} ms | {pinned / 1e6:>13.2f} ms "
            f"| {gap / 1e6:.2f} ms"
        )
    write_result("scheduler_reconfig_aware", "\n".join(text))


def test_scheduler_scales_to_large_graphs(benchmark):
    """Throughput benchmark: the heuristic on a 120-operation DAG."""
    g = layered_random_graph(10, 12, seed=42)

    def run():
        return _makespan(g, SynDExScheduler)

    makespan = benchmark(run)
    assert makespan > 0
