"""X4 — multi-region extension (§7).

"Complex design and architecture can support more than one dynamic part."
Regenerates: a two-region floorplan on the XC2V2000, the serialization of
both regions' loads on the single configuration port, throughput as a
function of how many regions switch simultaneously, and — since the
``repro.search`` co-optimizer landed — the fixed-sweep region-count
frontier alongside the searched optimum in one table.
"""

from conftest import write_result

from repro.aaa import MappingConstraints
from repro.arch import dual_region_board
from repro.dfg import AlgorithmGraph, WORD32
from repro.dfg.library import default_library
from repro.flows import DesignFlow, SystemSimulation
from repro.flows.designspace import search_multiregion


def _dual_graph() -> AlgorithmGraph:
    g = AlgorithmGraph("dual_dynamic")
    sel1 = g.add_operation("sel1", "select_source")
    sel1.add_output("value", WORD32, 1)
    sel2 = g.add_operation("sel2", "select_source")
    sel2.add_output("value", WORD32, 1)
    src = g.add_operation("src", "generic_small")
    src.add_output("o0", WORD32, 16)
    src.add_output("o1", WORD32, 16)
    a0 = g.add_operation("a0", "generic_medium")
    a1 = g.add_operation("a1", "generic_medium")
    for op in (a0, a1):
        op.add_input("i", WORD32, 16)
        op.add_output("o", WORD32, 16)
    g.connect(src, "o0", a0, "i")
    g.connect(src, "o1", a1, "i")
    m1 = g.add_operation("m1", "cond_merge")
    m1.add_input("x", WORD32, 16)
    m1.add_input("y", WORD32, 16)
    m1.add_output("o0", WORD32, 16)
    m1.add_output("o1", WORD32, 16)
    g.connect(a0, "o", m1, "x")
    g.connect(a1, "o", m1, "y")
    b0 = g.add_operation("b0", "generic_medium")
    b1 = g.add_operation("b1", "generic_medium")
    for op in (b0, b1):
        op.add_input("i", WORD32, 16)
        op.add_output("o", WORD32, 16)
    g.connect(m1, "o0", b0, "i")
    g.connect(m1, "o1", b1, "i")
    m2 = g.add_operation("m2", "cond_merge")
    m2.add_input("x", WORD32, 16)
    m2.add_input("y", WORD32, 16)
    m2.add_output("o", WORD32, 16)
    g.connect(b0, "o", m2, "x")
    g.connect(b1, "o", m2, "y")
    sink = g.add_operation("sink", "generic_small")
    sink.add_input("i", WORD32, 16)
    g.connect(m2, "o", sink, "i")
    grp1 = g.condition_group("g1", sel1, "value")
    grp1.add_case(0, [a0])
    grp1.add_case(1, [a1])
    grp2 = g.condition_group("g2", sel2, "value")
    grp2.add_case(0, [b0])
    grp2.add_case(1, [b1])
    return g


def _dual_flow():
    mapping = (
        MappingConstraints()
        .pin("a0", "D1").pin("a1", "D1")
        .pin("b0", "D2").pin("b1", "D2")
    )
    flow = DesignFlow(
        graph=_dual_graph(),
        board=dual_region_board(),
        library=default_library(),
        mapping=mapping,
    )
    return flow.run()


def test_two_regions_floorplan_and_flow(benchmark):
    result = benchmark.pedantic(_dual_flow, rounds=2, iterations=1)
    fp = result.modular.floorplan
    p1, p2 = fp.placements["D1"], fp.placements["D2"]
    assert not p1.overlaps(p2)
    assert result.modular.par_report.ok
    assert set(result.modular.reconfig_latency_ns) == {"D1", "D2"}
    text = [
        fp.summary(),
        f"D1 latency: {result.region_latency_ns('D1') / 1e6:.2f} ms, "
        f"D2 latency: {result.region_latency_ns('D2') / 1e6:.2f} ms",
    ]
    write_result("multiregion_floorplan", "\n".join(text))


def test_port_serializes_simultaneous_switches(benchmark):
    """Both regions switching in the same iteration share one configuration
    port: the loads serialize, so the dual switch costs about twice the
    single switch."""
    flow = _dual_flow()
    n = 8

    def run():
        out = {}
        plans = {
            "none": ([0] * n, [0] * n),
            "one_region": ([0, 0, 1, 1] * 2, [0] * n),
            "both_regions": ([0, 0, 1, 1] * 2, [1, 1, 0, 0] * 2),
        }
        for name, (plan1, plan2) in plans.items():
            result = SystemSimulation(
                flow, n_iterations=n,
                selector_values={"g1": lambda it: plan1[it], "g2": lambda it: plan2[it]},
            ).run()
            out[name] = result
        return out

    out = benchmark.pedantic(run, rounds=2, iterations=1)
    t_none = out["none"].end_time_ns
    t_one = out["one_region"].end_time_ns
    t_both = out["both_regions"].end_time_ns
    assert t_none < t_one < t_both
    # Dual switching costs roughly twice the extra time of single switching.
    extra_one = t_one - t_none
    extra_both = t_both - t_none
    assert 1.6 * extra_one < extra_both < 2.4 * extra_one
    text = ["scenario       total (ms)  loads  stall (ms)"]
    for name, result in out.items():
        loads = result.manager_stats.demand_loads + result.manager_stats.prefetch_loads
        text.append(
            f"{name:<14} {result.end_time_ns / 1e6:>8.2f}  {loads:>5}  "
            f"{result.total_stall_ns / 1e6:>8.2f}"
        )
    write_result("multiregion_serialization", "\n".join(text))


def test_fixed_sweep_frontier_vs_searched_optimum(benchmark):
    """The §7 hand partition as one row of a frontier: every fixed region
    count priced by the co-optimizer's objective, with the annealed optimum
    in the same table — the searched point must hold the frontier."""
    report = benchmark.pedantic(
        lambda: search_multiregion(
            _dual_graph(), default_library(), budget=120, seed=0, restarts=2
        ),
        rounds=2,
        iterations=1,
    )
    assert report.searched.total_ns <= report.best_fixed_cost_ns
    assert report.gain <= 1.0
    # The paper's own configuration (two regions, one per condition group)
    # must appear on the frontier it helped define.
    assert 2 in report.fixed
    write_result("multiregion_frontier", report.render())
