"""X2 — parallel sweep engine: serial vs warm-pool multi-process sweeps.

The original methodology compared a *single cold* parallel run (process
spawn + full package import on every worker, every run) against a serial
baseline whose in-process cache was already warm — which is how the
engine's old per-run spawning looked 20x slower than serial.  This
benchmark measures matched cache states and separates the two costs the
warm pool splits apart:

- **cold pool** — first run on a fresh :class:`~repro.exec.pool.WorkerPool`
  (spawn + import included), reported honestly as the one-time price;
- **warm pool** — the steady state: the same pool serving later runs, with
  :meth:`~repro.exec.pool.WorkerPool.reset_caches` pointing its workers at
  a fresh artifact dir each round so every round does cold-cache work.

Every wall is the best of three rounds, serial rounds get a fresh cache
dir too, and two workloads bound the engine from both sides:

- the paper's 3x2 design grid (6 heavy jobs — overhead-sensitive);
- a 1000-point link-level grid (cheap compute-bound jobs — dispatch
  throughput and batching show up here).

Acceptance floors scale with the machine: on >= 4 cores the 1000-job grid
must hit >= 2.0x with 4 workers and the warm 6-job grid >= 0.8x of serial;
on smaller hosts (including 1-core CI fallbacks) the floor relaxes to
``0.7 * min(workers, cores)`` and the 6-job ratio is recorded, not
asserted.  Set ``SWEEP_SMOKE=1`` (CI) for reduced frame counts; results
land in ``results/BENCH_sweep_parallel.json`` (or ``..._smoke.json``).
"""

import os
import time

from conftest import CASE_STUDY_CONSTRAINTS, write_bench_json, write_result

from repro.dfg.library import default_library
from repro.exec import ParallelSweepEngine, WorkerPool
from repro.fabric.device import XC2V1000, XC2V2000, XC2V3000
from repro.flows import parse_constraints, sweep_jobs_for_grid
from repro.mccdma.casestudy import build_mccdma_graph
from repro.mccdma.engine import LinkEngineConfig, LinkPointJob
from repro.mccdma.transmitter import MCCDMAConfig
from repro.reconfig import case_a_standalone, case_b_processor

SMOKE = os.environ.get("SWEEP_SMOKE", "") not in ("", "0")

PINS = (("bit_src", "DSP"), ("select", "DSP"))
CPUS = os.cpu_count() or 1
WORKERS = 4
#: The floor is asserted on as many workers as the host has cores to run
#: them — oversubscribing a 1-core host with 4 workers measures the
#: scheduler's context-switch bill, not the engine.
EFFECTIVE_WORKERS = min(WORKERS, CPUS)
ROUNDS = 3
GRID_POINTS = 1000
FRAMES_PER_POINT = 4 if SMOKE else 8
#: Cheap jobs benefit from deeper worker-side queues (fewer wakeups).
GRID_PREFETCH = 8

#: Speedup floor for the 1000-job grid on EFFECTIVE_WORKERS workers: the
#: CI runners (>= 4 vCPU) must clear 2x; smaller hosts scale with cores.
MIN_GRID_SPEEDUP = 2.0 if CPUS >= 4 else 0.7 * EFFECTIVE_WORKERS
#: Warm-pool floor on the 6-job design grid, asserted on >= 4 cores only.
MIN_DESIGN_RATIO = 0.8


def design_jobs():
    return sweep_jobs_for_grid(
        build_mccdma_graph(),
        default_library(),
        devices=(XC2V1000, XC2V2000, XC2V3000),
        architectures=(case_a_standalone(), case_b_processor()),
        dynamic_constraints=parse_constraints(CASE_STUDY_CONSTRAINTS),
        pins=PINS,
    )


def link_grid_jobs(n_points):
    config = MCCDMAConfig(user_codes=(0,))
    engine = LinkEngineConfig(batch_frames=16)
    return [
        LinkPointJob(
            job_id=f"p{i:04d}",
            strategy="qpsk",
            snr_db=float(i % 16),
            n_frames=FRAMES_PER_POINT,
            seed_entropy=0,
            point_index=i,
            config=config,
            engine=engine,
        )
        for i in range(n_points)
    ]


def best_of(rounds, run_once):
    """Best wall of ``rounds`` matched-state runs (fresh cache each)."""
    best = float("inf")
    report = None
    for index in range(rounds):
        t0 = time.perf_counter()
        report = run_once(index)
        best = min(best, time.perf_counter() - t0)
        assert all(r.ok for r in report.results)
    return best, report


def test_parallel_sweep_vs_serial(tmp_path):
    rows = []

    # -- workload 1: the paper's 6-job design grid --------------------------------
    serial_design, _ = best_of(
        ROUNDS,
        lambda i: ParallelSweepEngine(
            jobs=0, cache_dir=tmp_path / f"sd{i}"
        ).run(design_jobs()),
    )

    pool = WorkerPool(WORKERS, cache_dir=tmp_path / "cold", name="bench")
    try:
        engine = ParallelSweepEngine(
            pool=pool, timeout_s=600, retries=1, cache_dir=tmp_path / "cold"
        )
        t0 = time.perf_counter()
        cold_report = engine.run(design_jobs())
        cold_design = time.perf_counter() - t0
        assert all(r.ok for r in cold_report.results)

        def warm_round(i):
            warm_engine = ParallelSweepEngine(
                pool=pool, timeout_s=600, retries=1, cache_dir=tmp_path / f"wd{i}"
            )
            return warm_engine.run(design_jobs())

        warm_design, warm_report = best_of(ROUNDS, warm_round)
        assert pool.spawned_total == WORKERS  # nothing respawned across rounds

        rows.append(
            {
                "workload": "design_grid_6_jobs",
                "serial_wall_s": round(serial_design, 3),
                "cold_pool_wall_s": round(cold_design, 3),
                "warm_pool_wall_s": round(warm_design, 3),
                "warm_ratio_vs_serial": round(serial_design / warm_design, 2),
                "cache_hits": warm_report.cache_hits(),
                "cache_lookups": warm_report.cache_lookups(),
            }
        )

    finally:
        pool.close()

    # -- workload 2: 1000 cheap compute-bound jobs --------------------------------
    serial_grid, _ = best_of(
        ROUNDS, lambda i: ParallelSweepEngine(jobs=0).run(link_grid_jobs(GRID_POINTS))
    )
    with WorkerPool(EFFECTIVE_WORKERS, name="bench-grid") as grid_pool:
        grid_engine = ParallelSweepEngine(
            pool=grid_pool, timeout_s=600, retries=1, prefetch_depth=GRID_PREFETCH
        )
        grid_engine.run(link_grid_jobs(GRID_POINTS))  # warm the pool first
        warm_grid, _ = best_of(
            ROUNDS, lambda i: grid_engine.run(link_grid_jobs(GRID_POINTS))
        )
    grid_speedup = serial_grid / warm_grid
    rows.append(
        {
            "workload": f"link_grid_{GRID_POINTS}_jobs",
            "workers": EFFECTIVE_WORKERS,
            "serial_wall_s": round(serial_grid, 3),
            "warm_pool_wall_s": round(warm_grid, 3),
            "speedup": round(grid_speedup, 2),
            "frames_per_point": FRAMES_PER_POINT,
        }
    )

    assert grid_speedup >= MIN_GRID_SPEEDUP, (
        f"{GRID_POINTS}-job grid: {grid_speedup:.2f}x on {EFFECTIVE_WORKERS} "
        f"worker(s) ({CPUS} cores) is below the {MIN_GRID_SPEEDUP:.2f}x floor"
    )
    design_ratio = serial_design / warm_design
    if CPUS >= 4:  # overhead-bound on fewer cores; recorded, not asserted
        assert design_ratio >= MIN_DESIGN_RATIO, (
            f"6-job design grid: warm pool at {design_ratio:.2f}x of serial "
            f"is below the {MIN_DESIGN_RATIO:.2f}x floor"
        )

    payload = {
        "smoke": SMOKE,
        "cpus": CPUS,
        "design_grid_workers": WORKERS,
        "link_grid_workers": EFFECTIVE_WORKERS,
        "rounds_per_point": ROUNDS,
        "methodology": "matched cold caches, best-of-rounds walls, "
        "cold pool (spawn+import) and warm pool reported separately",
        "min_grid_speedup": round(MIN_GRID_SPEEDUP, 2),
        "min_design_ratio": MIN_DESIGN_RATIO if CPUS >= 4 else None,
        "runs": rows,
    }
    name = "BENCH_sweep_parallel_smoke" if SMOKE else "BENCH_sweep_parallel"
    write_bench_json(name, payload)

    lines = ["workload                  serial_s  cold_s  warm_s  speedup"]
    for row in rows:
        lines.append(
            f"{row['workload']:<25} {row['serial_wall_s']:8.2f}  "
            f"{row.get('cold_pool_wall_s', float('nan')):6.2f}  "
            f"{row['warm_pool_wall_s']:6.2f}  "
            f"{row.get('speedup', row.get('warm_ratio_vs_serial')):7.2f}"
        )
    write_result("sweep_parallel", "\n".join(lines))
