"""X2 — parallel sweep engine: serial vs multi-process design-space sweep.

Measures what the engine buys (and costs) on the paper's case-study grid:
wall time of the identical sweep run serially and across worker processes
sharing one on-disk artifact cache, plus the aggregate stage-cache traffic.
The raw rows land in ``results/BENCH_sweep_parallel.json`` so EXPERIMENTS.md
can quote speedup and hit rates from disk.

Worker processes are spawn-context children importing the full package, so
the parallel run carries real start-up cost — the benchmark reports it
honestly instead of warming it away.
"""

import json
import time

from conftest import CASE_STUDY_CONSTRAINTS, RESULTS_DIR, write_result

from repro.dfg.library import default_library
from repro.exec import ParallelSweepEngine
from repro.fabric.device import XC2V1000, XC2V2000, XC2V3000
from repro.flows import parse_constraints, sweep_jobs_for_grid
from repro.mccdma.casestudy import build_mccdma_graph
from repro.reconfig import case_a_standalone, case_b_processor

PINS = (("bit_src", "DSP"), ("select", "DSP"))


def stock_jobs():
    return sweep_jobs_for_grid(
        build_mccdma_graph(),
        default_library(),
        devices=(XC2V1000, XC2V2000, XC2V3000),
        architectures=(case_a_standalone(), case_b_processor()),
        dynamic_constraints=parse_constraints(CASE_STUDY_CONSTRAINTS),
        pins=PINS,
    )


def run_sweep(jobs: int, cache_dir) -> dict:
    start = time.perf_counter()
    report = ParallelSweepEngine(
        jobs=jobs, timeout_s=600, retries=1, cache_dir=cache_dir
    ).run(stock_jobs())
    wall = time.perf_counter() - start
    assert all(r.ok for r in report.results)
    return {
        "jobs": jobs,
        "wall_s": round(wall, 3),
        "points": len(report.results),
        "cache_hits": report.cache_hits(),
        "cache_lookups": report.cache_lookups(),
        "cache_hit_rate": round(report.cache_hit_rate(), 3),
    }


def test_parallel_sweep_vs_serial(benchmark, tmp_path):
    """Stock 3x2 grid: serial baseline, then 2 and 4 workers over a shared cache."""
    serial = run_sweep(0, tmp_path / "serial")
    rows = [serial]
    for n in (2, 4):
        rows.append(run_sweep(n, tmp_path / f"parallel{n}"))

    # The benchmarked quantity: a 4-worker sweep over a cold shared cache.
    counter = iter(range(1_000_000))

    def cold_parallel():
        return run_sweep(4, tmp_path / f"bench{next(counter)}")

    timed = benchmark.pedantic(cold_parallel, rounds=3, iterations=1)
    payload = {
        "grid": "3 devices x 2 architectures",
        "serial_wall_s": serial["wall_s"],
        "speedup_4_workers": round(serial["wall_s"] / timed["wall_s"], 2),
        "runs": rows,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_sweep_parallel.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    lines = ["jobs  wall_s  cache_hits/lookups"]
    for row in rows:
        lines.append(
            f"{row['jobs'] or 'serial':>6}  {row['wall_s']:6.2f}  "
            f"{row['cache_hits']}/{row['cache_lookups']}"
        )
    write_result("sweep_parallel", "\n".join(lines))
