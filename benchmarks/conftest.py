"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one evaluation artefact of the paper (a table
or a figure's data series).  Besides the pytest-benchmark timing, each
writes its reproduced rows to ``benchmarks/results/<name>.txt`` so the
paper-vs-measured comparison of EXPERIMENTS.md can be refreshed from disk.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.flows import DesignFlow, RecordingObserver, parse_constraints
from repro.mccdma.casestudy import build_mccdma_design

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Every flow built through :func:`build_case_study_flow` reports its stage
#: events here; the session teardown aggregates them into BENCH_flow_stages.json.
STAGE_EVENTS = RecordingObserver()

CASE_STUDY_CONSTRAINTS = """
[module mod_qpsk]
region    = D1
operation = mod_qpsk

[module mod_qam16]
region    = D1
operation = mod_qam16

[region D1]
sharing   = true
exclusive = mod_qpsk, mod_qam16
"""


def write_result(name: str, text: str) -> None:
    """Persist a reproduced table/series and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}] -> {path}\n{text}")


def write_bench_json(name: str, payload: dict) -> pathlib.Path:
    """Persist a ``BENCH_*.json`` artefact and append its headline to history.

    Every benchmark result lands twice: the full payload overwrites its
    ``BENCH_<name>.json`` (latest-state artefact, committed), and the one
    headline number appends to ``HISTORY.jsonl`` — the append-only series
    the ``repro bench-check`` regression gate reads.  Benchmarks without a
    registered headline (see :data:`repro.obs.history.HEADLINES`) still get
    their JSON; they just don't join the gate.
    """
    from repro.obs.history import append_from_result

    RESULTS_DIR.mkdir(exist_ok=True)
    stem = name[: -len(".json")] if name.endswith(".json") else name
    path = RESULTS_DIR / f"{stem}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    bench = stem[len("BENCH_"):] if stem.startswith("BENCH_") else stem
    append_from_result(RESULTS_DIR / "HISTORY.jsonl", bench, payload)
    return path


def build_case_study_flow(prefetch: bool = True, reconfig_architecture=None):
    """The full design flow on the paper's case study."""
    design = build_mccdma_design()
    kwargs = dict(
        dynamic_constraints=parse_constraints(CASE_STUDY_CONSTRAINTS),
        prefetch=prefetch,
    )
    if reconfig_architecture is not None:
        kwargs["reconfig_architecture"] = reconfig_architecture
    flow = DesignFlow.from_design(design, observer=STAGE_EVENTS, **kwargs)
    flow.mapping.pin("bit_src", "DSP").pin("select", "DSP")
    return design, flow.run()


@pytest.fixture(scope="session")
def case_study_flow():
    """Session-cached flow result for the MC-CDMA case study."""
    return build_case_study_flow()


@pytest.fixture(scope="session", autouse=True)
def _write_stage_timings():
    """Aggregate per-stage pipeline timings into BENCH_flow_stages.json.

    One row per Fig. 3 stage: how often it ran across the whole benchmark
    session, how often the artifact cache served it, and the wall time —
    the flow-profiling counterpart of the pytest-benchmark numbers."""
    yield
    if not STAGE_EVENTS.events:
        return
    stages: dict[str, dict] = {}
    for event in STAGE_EVENTS.events:
        row = stages.setdefault(
            event.stage, {"executions": 0, "cache_hits": 0, "total_s": 0.0}
        )
        row["cache_hits" if event.cache_hit else "executions"] += 1
        row["total_s"] += event.wall_time_s
    for row in stages.values():
        runs = row["executions"] + row["cache_hits"]
        row["mean_s"] = row["total_s"] / runs if runs else 0.0
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_flow_stages.json"
    path.write_text(json.dumps(stages, indent=2, sort_keys=True) + "\n")
