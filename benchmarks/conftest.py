"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one evaluation artefact of the paper (a table
or a figure's data series).  Besides the pytest-benchmark timing, each
writes its reproduced rows to ``benchmarks/results/<name>.txt`` so the
paper-vs-measured comparison of EXPERIMENTS.md can be refreshed from disk.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.flows import DesignFlow, parse_constraints
from repro.mccdma.casestudy import build_mccdma_design

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

CASE_STUDY_CONSTRAINTS = """
[module mod_qpsk]
region    = D1
operation = mod_qpsk

[module mod_qam16]
region    = D1
operation = mod_qam16

[region D1]
sharing   = true
exclusive = mod_qpsk, mod_qam16
"""


def write_result(name: str, text: str) -> None:
    """Persist a reproduced table/series and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}] -> {path}\n{text}")


def build_case_study_flow(prefetch: bool = True, reconfig_architecture=None):
    """The full design flow on the paper's case study."""
    design = build_mccdma_design()
    kwargs = dict(
        dynamic_constraints=parse_constraints(CASE_STUDY_CONSTRAINTS),
        prefetch=prefetch,
    )
    if reconfig_architecture is not None:
        kwargs["reconfig_architecture"] = reconfig_architecture
    flow = DesignFlow.from_design(design, **kwargs)
    flow.mapping.pin("bit_src", "DSP").pin("select", "DSP")
    return design, flow.run()


@pytest.fixture(scope="session")
def case_study_flow():
    """Session-cached flow result for the MC-CDMA case study."""
    return build_case_study_flow()
