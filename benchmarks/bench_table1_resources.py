"""T1 — regenerate the paper's Table 1.

"Fix-Dynamic modulation implementation comparison": FPGA resources of the
QPSK / QAM-16 modulators as fixed blocks vs runtime-reconfigurable variants,
plus the reconfiguration time of the dynamic scheme.

Paper shape to reproduce (absolute counts are model-calibrated):
- the dynamic variants cost more resources than the fixed blocks (generated
  generic structure + reconfiguration handshake),
- QAM-16 is the larger modulator under both schemes,
- fixed blocks reconfigure in 0; the dynamic region takes ≈4 ms,
- the dynamic region occupies ≈8 % of the XC2V2000.
"""

from conftest import write_result

from repro.flows.report import build_table1


def _shape_checks(data):
    qpsk_fix = data.row("QPSK fix")
    qam_fix = data.row("QAM-16 fix")
    qpsk_dyn = data.row("QPSK dyn")
    qam_dyn = data.row("QAM-16 dyn")
    assert qpsk_dyn.resources.slices > qpsk_fix.resources.slices
    assert qam_dyn.resources.slices > qam_fix.resources.slices
    assert qam_fix.resources.slices > qpsk_fix.resources.slices
    assert qpsk_fix.reconfig_time_ms == 0
    assert 3.0 <= qpsk_dyn.reconfig_time_ms <= 5.0


def test_table1_regeneration(benchmark, case_study_flow):
    design, flow = case_study_flow

    def run():
        return build_table1(design.library, flow=flow)

    data = benchmark(run)
    _shape_checks(data)
    assert data.dynamic_area_fraction is not None
    assert 0.06 <= data.dynamic_area_fraction <= 0.10  # paper: 8 %
    write_result("table1", data.render())


def test_table1_overhead_shrinks_with_configuration_count(benchmark, case_study_flow):
    """The paper: "this gap is decreasing with the number of different
    reconfigurations needed" — with N alternatives, the fixed design must
    instantiate all N blocks while the dynamic region stays one-variant
    sized.  Regenerates the crossover series."""
    design, flow = case_study_flow
    from repro.dfg.operations import Operation
    from repro.fabric.synthesis import PortSpec, Synthesizer

    synthesizer = Synthesizer(design.library)
    ports = [PortSpec("din", 32, "in"), PortSpec("dout", 32, "out")]
    kinds = ["qpsk_mod", "qam16_mod", "spreader", "chip_mapper", "interleaver", "channel_coder"]

    def series():
        rows = []
        for n in range(1, len(kinds) + 1):
            ops = [Operation(f"alt{i}", kinds[i]) for i in range(n)]
            fixed, _ = synthesizer.synthesize_module("fixed_all", ops, ports)
            worst = max(
                synthesizer.synthesize_module(
                    f"dyn{i}", [ops[i]], ports, reconfigurable=True, region="D1"
                )[0].resources.slices
                for i in range(n)
            )
            rows.append((n, fixed.resources.slices, worst))
        return rows

    rows = benchmark(series)
    # Fixed grows with N; dynamic stays at the worst single variant.
    assert rows[-1][1] > rows[0][1]
    assert rows[-1][2] <= rows[-1][1]
    crossover = next((n for n, fix, dyn in rows if dyn < fix), None)
    assert crossover is not None and crossover <= 3
    text = ["N alternatives | fixed design slices | dynamic region slices (worst variant)"]
    for n, fix, dyn in rows:
        marker = "  <- dynamic wins" if dyn < fix else ""
        text.append(f"{n:>14} | {fix:>19} | {dyn:>21}{marker}")
    write_result("table1_crossover", "\n".join(text))
