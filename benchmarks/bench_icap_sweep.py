"""X3 — reconfiguration-latency model sweep.

Regenerates the latency model behind the paper's "about 4 ms" point:
partial-bitstream size and load latency as a function of module width (CLB
columns), configuration port, and memory bandwidth.  The paper's module
(4 columns, ≈8 %) must land at ≈4 ms through the ICAP at the calibrated
memory bandwidth.
"""

from conftest import write_result

from repro.fabric import XC2V2000
from repro.reconfig import BitstreamStore, ICAP_V2, JTAG, SELECTMAP_66
from repro.reconfig.protocol import ProtocolConfigurationBuilder
from repro.sim import Simulator
from repro.sim.units import to_ms


def _builder(port, bandwidth):
    sim = Simulator()
    store = BitstreamStore(bandwidth_bytes_per_s=bandwidth)
    return ProtocolConfigurationBuilder(sim, port, store)


def test_latency_vs_module_width(benchmark):
    widths = [2, 4, 8, 16, 24, 48]

    def run():
        rows = []
        for w in widths:
            col0 = XC2V2000.clb_cols - w
            nbytes = XC2V2000.partial_bitstream_bytes(col0, w)
            latency = _builder(ICAP_V2, BitstreamStore.DEFAULT_BANDWIDTH).estimate_ns(nbytes)
            rows.append((w, XC2V2000.area_fraction(w), nbytes, latency))
        return rows

    rows = benchmark(run)
    # Monotone in width; the paper's 4-column point is ≈8 % and ≈4 ms.
    latencies = [r[3] for r in rows]
    assert latencies == sorted(latencies)
    paper_point = next(r for r in rows if r[0] == 4)
    assert 0.06 <= paper_point[1] <= 0.10
    assert 3.0 <= to_ms(paper_point[3]) <= 5.0
    text = ["width (CLB cols) | area %  | bitstream (KB) | latency (ms)"]
    for w, area, nbytes, latency in rows:
        marker = "  <- paper's module" if w == 4 else ""
        text.append(
            f"{w:>16} | {100 * area:>5.1f}% | {nbytes / 1024:>13.1f} | {to_ms(latency):>11.2f}{marker}"
        )
    write_result("icap_width_sweep", "\n".join(text))


def test_latency_vs_port_and_memory(benchmark):
    """Where the bottleneck sits: slow memory -> memory-bound (port barely
    matters); fast memory -> port-bound (JTAG catastrophically slow)."""
    nbytes = XC2V2000.partial_bitstream_bytes(44, 4)
    ports = (ICAP_V2, SELECTMAP_66, JTAG)
    bandwidths = (5e6, 20.5e6, 66e6, 200e6)

    def run():
        table = {}
        for port in ports:
            table[port.name] = [
                _builder(port, bw).estimate_ns(nbytes) for bw in bandwidths
            ]
        return table

    table = benchmark(run)
    # At slow memory, parallel ports tie (memory-bound).
    assert table["icap"][0] == table["selectmap"][0]
    # At fast memory, the 8-bit ports beat serial JTAG by ~8x.
    assert table["jtag"][-1] > 5 * table["icap"][-1]
    # More memory bandwidth never hurts.
    for series in table.values():
        assert series == sorted(series, reverse=True)
    text = ["memory MB/s " + "".join(f"{p.name:>14}" for p in ports)]
    for i, bw in enumerate(bandwidths):
        row = f"{bw / 1e6:>10.1f}  "
        for port in ports:
            row += f"{to_ms(table[port.name][i]):>11.2f} ms"
        text.append(row)
    write_result("icap_port_memory", "\n".join(text))


def test_simulated_load_matches_estimate(benchmark):
    """The discrete-event load takes exactly the analytic estimate — the
    calibration constant behind every runtime number."""
    nbytes = XC2V2000.partial_bitstream_bytes(44, 4)

    def run():
        sim = Simulator()
        store = BitstreamStore()
        store.register("D1", "m", nbytes)
        builder = ProtocolConfigurationBuilder(sim, ICAP_V2, store)
        outcome = sim.run(until=sim.process(builder.load("D1", "m")))
        return outcome.duration_ns, builder.estimate_ns(nbytes)

    measured, estimated = benchmark(run)
    assert measured == estimated
