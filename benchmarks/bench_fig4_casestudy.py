"""F4 — Figure 4 / Section 6: the reconfigurable MC-CDMA transmitter.

Regenerates every quantitative claim of the case study:

- the dynamic operator occupies ≈8 % of the XC2V2000 (paper: "takes 8% of
  the FPGA"),
- "The reconfiguration time needed to reconfigure Op_Dyn takes about 4ms",
- the DSP selects the modulation through Interface IN_OUT; the receiving
  process locks up during partial reconfigurations via In_Reconf,
- the transmitter emits bit-exact MC-CDMA symbols across switches.
"""

import numpy as np
from conftest import write_result

from repro.flows import SystemSimulation
from repro.mccdma import Modulation, SnrTrace
from repro.mccdma.bindings import make_case_study_bindings, reference_symbol


def test_fig4_flow_metrics(benchmark, case_study_flow):
    design, flow = case_study_flow

    def metrics():
        return {
            "area": flow.modular.region_area_fraction("D1"),
            "latency_ms": flow.region_latency_ns("D1") / 1e6,
            "par_ok": flow.modular.par_report.ok,
            "clock_mhz": flow.modular.par_report.clock_mhz,
            "bitstream_bytes": flow.modular.floorplan.partial_bitstream_bytes("D1"),
        }

    m = benchmark(metrics)
    assert 0.06 <= m["area"] <= 0.10  # paper: 8 %
    assert 3.0 <= m["latency_ms"] <= 5.0  # paper: ≈4 ms
    assert m["par_ok"]
    text = [
        f"dynamic region area      : {100 * m['area']:.1f} % of XC2V2000 (paper: 8 %)",
        f"partial bitstream        : {m['bitstream_bytes']} bytes",
        f"reconfiguration latency  : {m['latency_ms']:.2f} ms (paper: about 4 ms)",
        f"PAR feasibility          : {'PASSED' if m['par_ok'] else 'FAILED'}, "
        f"est. clock {m['clock_mhz']:.1f} MHz",
    ]
    write_result("fig4_metrics", "\n".join(text))


def test_fig4_runtime_transmission(benchmark, case_study_flow):
    """Simulated end-to-end transmission with SNR-driven switching; verifies
    sample-exactness against the monolithic reference chain."""
    _, flow = case_study_flow
    n = 24
    snr = SnrTrace.step(low_db=8.0, high_db=22.0, period=6, n=n)

    def run():
        state = make_case_study_bindings(snr, seed=5)
        sim = SystemSimulation(
            flow, n_iterations=n, bindings=state.bindings, capture={"dac"}
        )
        return state, sim.run()

    state, result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(result.execution.captured["dac"]) == n
    exact = 0
    for it in range(n):
        emitted = result.execution.captured["dac"][it]["samples"]
        expected = reference_symbol(state.source_bits[it], state.selected[it])
        if np.allclose(emitted, expected):
            exact += 1
    assert exact == n
    assert {m for m in state.selected} == {Modulation.QPSK, Modulation.QAM16}
    text = [
        result.summary(),
        f"verified symbols          : {exact}/{n} bit-exact vs reference",
        f"modulation switches       : {result.switches} "
        f"(stall {result.stall_per_switch_ns() / 1e6:.2f} ms per switch)",
    ]
    write_result("fig4_runtime", "\n".join(text))


def test_fig4_in_reconf_lockup(benchmark, case_study_flow):
    """"Receiving process can be locked-up during partial reconfigurations
    thanks to signal In_Reconf" — the signal must be asserted exactly during
    every configuration load."""
    _, flow = case_study_flow
    plan = [Modulation.QPSK, Modulation.QAM16] * 4

    def run():
        from repro.executive.interpreter import ExecutiveRunner
        from repro.reconfig import ReconfigurationManager
        from repro.sim import Simulator, Trace

        sim = Simulator()
        trace = Trace()
        arch = flow.modular.reconfig_architecture
        store = arch.make_store()
        for (region, module_name), bs in flow.modular.bitstreams.items():
            variant = flow.modular.netlist.module(module_name)
            store.register(region, variant.implements[0], bs)
        builder = arch.make_builder(sim, store, trace=trace)
        manager = ReconfigurationManager(
            sim, builder, request_latency_ns=arch.request_latency_ns, trace=trace
        )
        runner = ExecutiveRunner(
            flow.executive, n_iterations=len(plan), sim=sim,
            selector_values={"modulation": lambda it: plan[it]},
            config_service=manager,
        )
        runner.run()
        return manager, trace

    manager, trace = benchmark.pedantic(run, rounds=2, iterations=1)
    history = manager.in_reconf["D1"].history
    # Signal toggled (t, True)/(t, False) once per load.
    ups = [t for t, v in history if v is True]
    downs = [t for t, v in history if v is False and t > 0]
    loads = manager.stats.demand_loads + manager.stats.prefetch_loads
    assert len(ups) == len(downs) == loads == 8
    port_spans = trace.spans_of(kind="reconfig")
    assert len(port_spans) == loads
    text = [
        f"loads: {loads}; In_Reconf asserted {len(ups)} times",
        "lock-up windows (ms): "
        + ", ".join(f"[{u / 1e6:.2f}..{d / 1e6:.2f}]" for u, d in zip(ups, downs)),
    ]
    write_result("fig4_in_reconf", "\n".join(text))
