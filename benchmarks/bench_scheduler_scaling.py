"""X5 — incremental vs naive adequation scaling.

The adequation hot path used to re-filter and re-sort the whole committed
schedule for every candidate placement — O(n^3 log n) over a run.  The
incrementally-indexed machinery (sorted per-resource timelines, ready-time
frontiers, cross-step placement memoization) replaces those rescans; the
retained naive reference path (``incremental=False``) *is* the seed
implementation, so this benchmark measures the fix directly and proves the
two paths byte-identical on every (size, scheduler, seed) point.

Scales: ~50 / ~100 / ~200-operation layered graphs.  Acceptance: at 200
operations the incremental path is >= 5x faster, with identical schedule
digests everywhere.  Set ``SCHED_SCALING_SMOKE=1`` (CI) to run reduced
sizes and skip the wall-clock ratio (timing on shared runners is noise) —
the digest and placement-evaluation-count guards still fail the build on a
regression.

Writes ``BENCH_scheduler_scaling.json`` (full) or
``BENCH_scheduler_scaling_smoke.json`` (smoke) next to the other artefacts.
"""

import os
import time

from conftest import write_bench_json

from repro.aaa import InsertionScheduler, SynDExScheduler
from repro.aaa.costs import CostModel
from repro.arch import sundance_board
from repro.dfg.generators import layered_random_graph
from repro.dfg.library import default_library

SMOKE = os.environ.get("SCHED_SCALING_SMOKE", "") not in ("", "0")

#: (layers, width, seeds) -> ~layers*width operations.
FULL_SIZES = [(10, 5, (42, 43, 44)), (10, 10, (42, 43)), (20, 10, (42, 43))]
SMOKE_SIZES = [(5, 4, (42, 43)), (10, 5, (42,))]

SCHEDULERS = [SynDExScheduler, InsertionScheduler]

#: The memo must keep serving at least this share of requests (eval-count
#: regression guard — wall-clock-free, so CI can enforce it).
MAX_EVAL_FRACTION = 0.9
#: Acceptance floor for the wall-clock ratio on the largest graphs.
MIN_SPEEDUP_AT_200 = 5.0


def _time_run(graph, architecture, library, scheduler_cls, incremental, repeats):
    """Best-of-N wall time of one full scheduling run (construction + run:
    the seed paid for ranks and successor maps too).  Returns the last run's
    schedule and stats so callers can check digests and counters."""
    best = float("inf")
    schedule = stats = None
    for _ in range(repeats):
        costs = CostModel(graph, architecture, library)
        t0 = time.perf_counter()
        scheduler = scheduler_cls(costs, incremental=incremental)
        schedule = scheduler.run()
        best = min(best, time.perf_counter() - t0)
        stats = scheduler.stats
    return schedule, stats, best


def test_incremental_scheduler_scaling():
    board = sundance_board()
    architecture = board.architecture
    library = default_library()
    sizes = SMOKE_SIZES if SMOKE else FULL_SIZES

    rows = []
    for layers, width, seeds in sizes:
        for seed in seeds:
            graph = layered_random_graph(layers, width, seed=seed)
            n_ops = sum(1 for _ in graph.operations)
            for scheduler_cls in SCHEDULERS:
                fast_schedule, fast_stats, fast_s = _time_run(
                    graph, architecture, library, scheduler_cls, True, repeats=3
                )
                naive_schedule, naive_stats, naive_s = _time_run(
                    graph, architecture, library, scheduler_cls, False, repeats=1
                )
                rows.append(
                    {
                        "scheduler": scheduler_cls.__name__,
                        "layers": layers,
                        "width": width,
                        "seed": seed,
                        "operations": n_ops,
                        "incremental_s": round(fast_s, 6),
                        "naive_s": round(naive_s, 6),
                        "speedup": round(naive_s / fast_s, 2),
                        "digest": fast_schedule.digest(),
                        "digests_identical": fast_schedule.digest() == naive_schedule.digest(),
                        "placements_requested": fast_stats.placements_requested,
                        "placements_evaluated": fast_stats.placements_evaluated,
                        "placement_cache_hits": fast_stats.placement_cache_hits,
                        "naive_placements_evaluated": naive_stats.placements_evaluated,
                    }
                )

    # Byte identity on every benchmarked point.
    assert all(row["digests_identical"] for row in rows)
    for row in rows:
        # The requested counter is the naive workload, observable from the
        # incremental run alone; the memo must absorb a real share of it.
        assert row["placements_requested"] == row["naive_placements_evaluated"], row
        assert (
            row["placements_evaluated"]
            <= MAX_EVAL_FRACTION * row["placements_requested"]
        ), row
    if not SMOKE:
        largest = max(row["operations"] for row in rows)
        for row in rows:
            if row["operations"] == largest:
                assert row["speedup"] >= MIN_SPEEDUP_AT_200, row

    name = "BENCH_scheduler_scaling_smoke" if SMOKE else "BENCH_scheduler_scaling"
    payload = {
        "smoke": SMOKE,
        "min_speedup_at_largest": None if SMOKE else MIN_SPEEDUP_AT_200,
        "max_eval_fraction": MAX_EVAL_FRACTION,
        "rows": rows,
    }
    write_bench_json(name, payload)

    width_col = max(len(r["scheduler"]) for r in rows)
    lines = [f"{'scheduler':<{width_col}}  ops  seed  incremental  naive      speedup  evals/requests"]
    for r in rows:
        lines.append(
            f"{r['scheduler']:<{width_col}}  {r['operations']:>3}  {r['seed']:>4}  "
            f"{r['incremental_s']*1e3:>8.1f} ms  {r['naive_s']*1e3:>8.1f} ms  "
            f"{r['speedup']:>5.1f}x  {r['placements_evaluated']}/{r['placements_requested']}"
        )
    print("\n" + "\n".join(lines))
