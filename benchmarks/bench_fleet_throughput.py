"""X7 — fleet throughput: the batched fast engine vs the event kernel.

The fleet multiplexer now ships two engines over identical semantics:

- ``kernel`` — every board live on the shared discrete-event calendar
  (the reference path; traces, cross-board coupling),
- ``fast`` — schedules pre-packed into structure-of-arrays form and the
  manager state advanced with vectorized per-step updates (scalar
  micro-sim fallback for policies that resist vectorization).

The benchmark runs the 1,000-board x 1,000-request headline through BOTH
engines with matched warm-up, best-of-3 walls, and asserts

- digest parity: every per-board counter and the fleet end time identical
  between engines (the exactness contract, not a tolerance),
- determinism: two fast runs produce the same digest,
- a speedup floor: fast must beat kernel by >= 10x at full scale
  (>= 3x under ``FLEET_SMOKE=1``, where fixed costs dominate the tiny
  fleet), plus the absolute req/s floors,
- the per-policy frontier invariants (belady bounds its online
  competitors), with both engines' digests compared per policy.

Writes ``BENCH_fleet_throughput.json`` (full) or
``BENCH_fleet_throughput_smoke.json`` (smoke) with kernel and fast walls
side by side.
"""

import os
import time

from conftest import write_bench_json

from repro.runtime import FleetConfig, generate_fleet_schedules, run_fleet, run_frontier

SMOKE = os.environ.get("FLEET_SMOKE", "") not in ("", "0")

HEADLINE_BOARDS = 32 if SMOKE else 1000
HEADLINE_REQUESTS = 50 if SMOKE else 1000
HEADLINE_POLICY = "fixed"

FRONTIER_BOARDS = 16 if SMOKE else 200
FRONTIER_REQUESTS = 40 if SMOKE else 100
FRONTIER_POLICIES = (
    ("fixed", "lru")
    if SMOKE
    else ("none", "fixed", "history", "confidence", "markov", "lru", "lfu", "belady")
)

#: Absolute wall-clock floors, far below measured rates so shared CI
#: runners only fail on a real regression (kernel ~15-20k req/s, fast
#: ~500k+ req/s on a dev box at full scale).
MIN_KERNEL_REQUESTS_PER_SEC = 1_000 if SMOKE else 5_000
MIN_FAST_REQUESTS_PER_SEC = 3_000 if SMOKE else 50_000

#: Relative floor for the headline: the reason the fast engine exists.
#: The smoke fleet is small enough that per-run fixed costs eat into the
#: ratio, so CI enforces a scaled-down floor over the same assertion.
MIN_SPEEDUP = 3.0 if SMOKE else 10.0

BEST_OF = 3


def _best_of(config: FleetConfig, engine: str, schedules) -> tuple[object, float]:
    """Best-of-N wall for one engine with one matched warm-up run.

    The warm-up run (not timed) pays import/JIT/allocator costs for both
    engines identically; the reported wall is the minimum over ``BEST_OF``
    timed runs on the SAME pre-generated schedules, so schedule generation
    is excluded from the comparison for both sides.
    """
    warm = run_fleet(config, engine=engine, schedules=schedules)
    best = None
    best_wall = float("inf")
    for _ in range(BEST_OF):
        t0 = time.perf_counter()
        report = run_fleet(config, engine=engine, schedules=schedules)
        wall = time.perf_counter() - t0
        assert report.digest() == warm.digest(), "nondeterministic engine run"
        if wall < best_wall:
            best, best_wall = report, wall
    best.wall_s = best_wall
    return best, best_wall


def test_fleet_throughput():
    headline = FleetConfig(
        n_boards=HEADLINE_BOARDS,
        requests_per_board=HEADLINE_REQUESTS,
        policy=HEADLINE_POLICY,
    )
    schedules = generate_fleet_schedules(headline)
    kernel, kernel_wall = _best_of(headline, "kernel", schedules)
    fast, fast_wall = _best_of(headline, "fast", schedules)

    # Exactness is the acceptance bar: per-board counters and end time
    # must be identical between the two engines, not merely close.
    assert fast.digest() == kernel.digest(), (fast.digest(), kernel.digest())
    assert fast.boards == kernel.boards
    assert fast.end_time_ns == kernel.end_time_ns

    total = headline.n_boards * headline.requests_per_board
    if not SMOKE:
        assert total >= 1_000_000
        assert headline.n_boards >= 1_000
    kernel_rps = total / kernel_wall
    fast_rps = total / fast_wall
    speedup = kernel_wall / fast_wall
    assert kernel_rps >= MIN_KERNEL_REQUESTS_PER_SEC, kernel.summary()
    assert fast_rps >= MIN_FAST_REQUESTS_PER_SEC, fast.summary()
    assert speedup >= MIN_SPEEDUP, (
        f"fast engine speedup {speedup:.1f}x below the {MIN_SPEEDUP:.0f}x floor "
        f"(kernel {kernel_wall:.2f}s, fast {fast_wall:.2f}s)"
    )
    # Every board finished its whole schedule, on both engines.
    assert kernel.totals["demand_requests"] == total
    assert fast.totals["demand_requests"] == total

    frontier_base = FleetConfig(
        n_boards=FRONTIER_BOARDS, requests_per_board=FRONTIER_REQUESTS
    )
    frontier = run_frontier(frontier_base, list(FRONTIER_POLICIES))
    frontier_kernel = run_frontier(
        frontier_base, list(FRONTIER_POLICIES), engine="kernel"
    )
    for policy in FRONTIER_POLICIES:
        assert frontier[policy].digest() == frontier_kernel[policy].digest(), policy
    if not SMOKE:
        # Clairvoyant eviction bounds its online competitors from above.
        assert frontier["belady"].hit_rate >= frontier["lru"].hit_rate
        assert frontier["belady"].hit_rate >= frontier["lfu"].hit_rate
        # Any form of management beats the reactive single-slot baseline.
        assert frontier["belady"].mean_stall_ns < frontier["none"].mean_stall_ns
        assert frontier["fixed"].mean_stall_ns < frontier["none"].mean_stall_ns

    name = "BENCH_fleet_throughput_smoke" if SMOKE else "BENCH_fleet_throughput"
    payload = {
        "smoke": SMOKE,
        "best_of": BEST_OF,
        "min_kernel_requests_per_sec": MIN_KERNEL_REQUESTS_PER_SEC,
        "min_fast_requests_per_sec": MIN_FAST_REQUESTS_PER_SEC,
        "min_speedup": MIN_SPEEDUP,
        "headline": {
            "n_boards": headline.n_boards,
            "requests_per_board": headline.requests_per_board,
            "policy": headline.policy,
            "total_requests": total,
            "digest": fast.digest(),
            "digest_parity": fast.digest() == kernel.digest(),
            "kernel": {
                "wall_s": kernel_wall,
                "requests_per_sec": kernel_rps,
            },
            "fast": {
                "wall_s": fast_wall,
                "requests_per_sec": fast_rps,
                "engine_stats": fast.engine_stats.to_dict(),
            },
            "speedup": speedup,
        },
        "frontier": {
            policy: {
                **report.to_dict(),
                "kernel_digest": frontier_kernel[policy].digest(),
                "fast_engine_stats": (
                    report.engine_stats.to_dict() if report.engine_stats else None
                ),
            }
            for policy, report in frontier.items()
        },
    }
    write_bench_json(name, payload)

    lines = [
        f"headline: {headline.n_boards} boards x {headline.requests_per_board} req "
        f"({HEADLINE_POLICY})",
        f"  kernel  {kernel_wall:>7.2f}s  {kernel_rps:>10,.0f} req/s",
        f"  fast    {fast_wall:>7.2f}s  {fast_rps:>10,.0f} req/s"
        f"  [{fast.engine_stats.mode}]",
        f"  speedup {speedup:.1f}x  digest parity: ok ({fast.digest()[:16]})",
        "",
        f"{'policy':<12} {'hit rate':>9} {'mean stall':>12} {'req/s':>10} {'mode':>18}",
    ]
    for policy, report in frontier.items():
        mode = report.engine_stats.mode if report.engine_stats else "kernel"
        lines.append(
            f"{policy:<12} {report.hit_rate:>8.1%} {report.mean_stall_ns / 1e3:>10.1f}us"
            f" {report.requests_per_sec:>10,.0f} {mode:>18}"
        )
    print("\n" + "\n".join(lines))
