"""X7 — fleet-scale runtime multiplexing throughput and the policy frontier.

One event kernel carries the whole fleet: 1,000 boards, each with its own
bitstream store, protocol builder and configuration manager, driven by
seeded request schedules for >= 1,000,000 total requests in a single
process.  The benchmark reports

- sustained requests/second through the kernel calendar (wall clock),
- the per-policy hit-rate / mean-stall frontier over identical traffic,
- a sha256 digest over every per-board counter — asserted identical
  across two runs, so any nondeterminism in the multiplexer fails the
  build, not just a throughput floor.

Set ``FLEET_SMOKE=1`` (CI) for a reduced fleet with a relaxed floor; the
determinism assertion is identical in both modes.

Writes ``BENCH_fleet_throughput.json`` (full) or
``BENCH_fleet_throughput_smoke.json`` (smoke).
"""

import json
import os

from conftest import RESULTS_DIR

from repro.runtime import FleetConfig, run_fleet, run_frontier

SMOKE = os.environ.get("FLEET_SMOKE", "") not in ("", "0")

HEADLINE_BOARDS = 32 if SMOKE else 1000
HEADLINE_REQUESTS = 50 if SMOKE else 1000
HEADLINE_POLICY = "fixed"

FRONTIER_BOARDS = 16 if SMOKE else 200
FRONTIER_REQUESTS = 40 if SMOKE else 100
FRONTIER_POLICIES = (
    ("fixed", "lru")
    if SMOKE
    else ("none", "fixed", "history", "confidence", "markov", "lru", "lfu", "belady")
)

#: Wall-clock floor.  Measured ~15k req/s on a dev box; the floor is set
#: far below that so shared CI runners only fail on a real regression.
MIN_REQUESTS_PER_SEC = 1_000 if SMOKE else 5_000


def test_fleet_throughput():
    headline = FleetConfig(
        n_boards=HEADLINE_BOARDS,
        requests_per_board=HEADLINE_REQUESTS,
        policy=HEADLINE_POLICY,
    )
    first = run_fleet(headline)
    second = run_fleet(headline)

    # Determinism is the acceptance bar: same seed, same fleet, same digest.
    assert first.digest() == second.digest(), (first.digest(), second.digest())
    if not SMOKE:
        assert first.total_requests >= 1_000_000
        assert first.n_boards >= 1_000
    assert first.requests_per_sec >= MIN_REQUESTS_PER_SEC, first.summary()
    # Every board finished its whole schedule.
    assert first.totals["demand_requests"] == first.total_requests

    frontier_base = FleetConfig(
        n_boards=FRONTIER_BOARDS, requests_per_board=FRONTIER_REQUESTS
    )
    frontier = run_frontier(frontier_base, list(FRONTIER_POLICIES))
    if not SMOKE:
        # Clairvoyant eviction bounds its online competitors from above.
        assert frontier["belady"].hit_rate >= frontier["lru"].hit_rate
        assert frontier["belady"].hit_rate >= frontier["lfu"].hit_rate
        # Any form of management beats the reactive single-slot baseline.
        assert frontier["belady"].mean_stall_ns < frontier["none"].mean_stall_ns
        assert frontier["fixed"].mean_stall_ns < frontier["none"].mean_stall_ns

    RESULTS_DIR.mkdir(exist_ok=True)
    name = "BENCH_fleet_throughput_smoke" if SMOKE else "BENCH_fleet_throughput"
    payload = {
        "smoke": SMOKE,
        "min_requests_per_sec": MIN_REQUESTS_PER_SEC,
        "headline": first.to_dict(),
        "headline_digest_runs": [first.digest(), second.digest()],
        "frontier": {policy: report.to_dict() for policy, report in frontier.items()},
    }
    (RESULTS_DIR / f"{name}.json").write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        first.summary(),
        f"digest (both runs): {first.digest()[:16]}",
        "",
        f"{'policy':<12} {'hit rate':>9} {'mean stall':>12} {'req/s':>10}",
    ]
    for policy, report in frontier.items():
        lines.append(
            f"{policy:<12} {report.hit_rate:>8.1%} {report.mean_stall_ns / 1e3:>10.1f}us"
            f" {report.requests_per_sec:>10,.0f}"
        )
    print("\n" + "\n".join(lines))
