"""X8 — configuration availability under SEUs vs scrub rate.

Extension experiment on the runtime manager: a Poisson single-event-upset
process corrupts the configured region; a scrubber periodically reads back
and repairs through the shared configuration port.  Regenerates the
availability-vs-scrub-interval curve and the port-time cost of scrubbing.
"""

from conftest import write_result

from repro.reconfig import (
    BitstreamStore,
    ConfigurationScrubber,
    ICAP_V2,
    ProtocolConfigurationBuilder,
    ReconfigurationManager,
    SEUInjector,
)
from repro.sim import Simulator, Trace
from repro.sim.units import ms


def _run_once(scrub_interval_ns: int, horizon_ns: int, seed: int):
    sim = Simulator()
    store = BitstreamStore(bandwidth_bytes_per_s=80_000_000, access_ns=0)
    store.register("D1", "m", 80_000)  # 1 ms load/readback
    trace = Trace()
    builder = ProtocolConfigurationBuilder(sim, ICAP_V2, store, trace=trace)
    manager = ReconfigurationManager(sim, builder, request_latency_ns=0)
    injector = SEUInjector(sim, builder, ["D1"], mean_interval_ns=ms(25), seed=seed)
    builder.upset_injector = lambda region, module: False
    scrubber = ConfigurationScrubber(
        sim, manager, scrub_interval_ns, injector=injector, trace=trace
    )

    def boot():
        yield manager.ensure_loaded("D1", "m")

    sim.process(boot())
    sim.run(until=horizon_ns)
    port_busy = sum(s.duration for s in trace.spans_of(kind="reconfig"))
    port_busy += sum(s.duration for s in trace.spans_of(kind="readback"))
    return {
        "availability": scrubber.availability(horizon_ns),
        "upsets": injector.upsets,
        "repairs": scrubber.stats.repairs,
        "port_busy_fraction": port_busy / horizon_ns,
    }


def test_availability_vs_scrub_interval(benchmark):
    horizon = ms(600)

    def run():
        rows = []
        for interval_ms in (2, 8, 32, 128):
            merged = {"availability": 0.0, "upsets": 0, "repairs": 0, "port_busy_fraction": 0.0}
            n_seeds = 3
            for seed in range(n_seeds):
                out = _run_once(ms(interval_ms), horizon, seed=seed)
                for key in merged:
                    merged[key] += out[key]
            rows.append((interval_ms, {k: v / n_seeds for k, v in merged.items()}))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    avail = [m["availability"] for _, m in rows]
    # Faster scrubbing -> higher availability, monotonically over this sweep.
    assert avail == sorted(avail, reverse=True)
    # 2 ms scrubbing keeps the region intact most of the time (repair itself
    # costs ≈2 ms of readback+rewrite per upset at a 25 ms mean upset rate).
    assert avail[0] > 0.85
    assert avail[-1] < avail[0] - 0.3
    text = ["scrub interval | availability | upsets | repairs | port busy"]
    for interval_ms, m in rows:
        text.append(
            f"{interval_ms:>11} ms | {100 * m['availability']:>10.1f}% | {m['upsets']:>6.1f} "
            f"| {m['repairs']:>7.1f} | {100 * m['port_busy_fraction']:>7.1f}%"
        )
    write_result("scrubbing_availability", "\n".join(text))
