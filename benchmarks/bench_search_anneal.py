"""X9 — annealed partition/schedule/floorplan co-optimization.

The paper fixes partitioning, region count and floorplan by hand before its
flow runs; the ``repro.search`` package searches the joint space instead.
This benchmark regenerates the acceptance evidence:

- the **fixed-sweep frontier** (every region count, paper-idiom packing)
  priced by the same :class:`~repro.search.objective.CostEvaluator`,
- the annealer's best against that frontier — the bound is
  ``anneal <= best fixed point`` within the evaluation budget,
- the annealer against the greedy and random baselines under one budget,
- a determinism digest asserted identical across two runs with the same
  seed, so any nondeterminism in the move generator, the objective or the
  SeedSequence plumbing fails the build.

Set ``SEARCH_SMOKE=1`` (CI) for a tiny-budget run (<30 s); assertions are
identical in both modes.  Writes ``BENCH_search_anneal.json`` (full) or
``BENCH_search_anneal_smoke.json`` (smoke) plus ``search_frontier.txt``.
"""

import os
import time

from conftest import write_bench_json, write_result

from repro.dfg.generators import multiregion_graph
from repro.dfg.library import default_library
from repro.flows.designspace import search_multiregion
from repro.search import CostEvaluator, SearchConfig, SearchSpace, run_search

SMOKE = os.environ.get("SEARCH_SMOKE", "") not in ("", "0")

N_GROUPS = 2 if SMOKE else 3
BUDGET = 40 if SMOKE else 400
RESTARTS = 2 if SMOKE else 4
SEED = 0


def _space():
    return SearchSpace(
        multiregion_graph(N_GROUPS, 2), default_library(), max_regions=N_GROUPS + 1
    )


def test_anneal_beats_or_matches_the_fixed_sweep():
    """Tentpole acceptance: searched optimum <= best fixed-sweep point."""
    t0 = time.perf_counter()
    report = search_multiregion(
        multiregion_graph(N_GROUPS, 2),
        default_library(),
        max_regions=N_GROUPS + 1,
        budget=BUDGET,
        seed=SEED,
        restarts=RESTARTS,
    )
    wall_s = time.perf_counter() - t0

    assert report.searched.total_ns <= report.best_fixed_cost_ns
    assert report.gain <= 1.0
    write_result("search_frontier", report.render())

    payload = {
        "smoke": SMOKE,
        "graph": report.graph,
        "budget": BUDGET,
        "seed": SEED,
        "restarts": RESTARTS,
        "wall_s": wall_s,
        "fixed_frontier_ns": {
            str(k): c.total_ns for k, c in sorted(report.fixed.items())
        },
        "best_fixed_k": report.best_fixed_k,
        "best_fixed_cost_ns": report.best_fixed_cost_ns,
        "anneal_cost_ns": report.searched.total_ns,
        "gain": report.gain,
        "evaluations": report.result.evaluations,
        "digest": report.result.digest(),
    }
    name = "BENCH_search_anneal_smoke" if SMOKE else "BENCH_search_anneal"
    write_bench_json(name, payload)


def test_anneal_is_no_worse_than_greedy_and_random():
    """One budget, three drivers: the annealer must hold the frontier."""
    space = _space()
    config = SearchConfig(budget=BUDGET, seed=SEED, restarts=RESTARTS)
    results = {
        method: run_search(space, CostEvaluator(space), config, method=method)
        for method in ("anneal", "greedy", "random")
    }
    assert (
        results["anneal"].best_cost.total_ns
        <= results["greedy"].best_cost.total_ns
    )
    assert (
        results["anneal"].best_cost.total_ns
        <= results["random"].best_cost.total_ns
    )
    lines = [f"{'method':<8} {'best (us)':>10} {'evals':>6} {'feasible':>9}"]
    for method, result in results.items():
        lines.append(
            f"{method:<8} {result.best_cost.total_ns / 1e3:>10.1f} "
            f"{result.evaluations:>6} {str(result.best_cost.feasible):>9}"
        )
    write_result("search_baselines", "\n".join(lines))


def test_search_is_deterministic_across_runs():
    """Same seed, same budget -> identical digest, trajectory and state."""
    space = _space()
    config = SearchConfig(budget=min(BUDGET, 60), seed=SEED, restarts=RESTARTS)
    first = run_search(space, CostEvaluator(space), config)
    second = run_search(space, CostEvaluator(space), config)
    assert first.digest() == second.digest(), (first.digest(), second.digest())
    assert first.trajectory == second.trajectory
    assert first.best_state == second.best_state


def test_memoization_pays_inside_one_search():
    """The canonical-state memo must absorb revisits: a search with budget B
    computes strictly fewer than B schedules once the walk starts cycling."""
    space = _space()
    evaluator = CostEvaluator(space)
    run_search(space, evaluator, SearchConfig(budget=min(BUDGET, 80), seed=1, restarts=1))
    assert evaluator.stats.requested > evaluator.stats.computed
    assert evaluator.stats.memo_hits > 0
