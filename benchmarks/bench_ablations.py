"""X6 — ablations of the reproduction's own design choices (DESIGN.md §6).

Three knobs our models introduce, each swept to show its effect:

1. **floorplan margin** — how much headroom a reconfigurable region gets
   over its worst variant (drives area and reconfiguration latency),
2. **executive buffer depth** — capacity of the inter-operator channels
   (the generated design's alternating buffers),
3. **history-predictor confidence** — speculation aggressiveness vs waste
   on a noisy switching pattern.
"""

import random

from conftest import write_result

from repro.aaa import MappingConstraints, adequate
from repro.arch import sundance_board
from repro.codegen.generator import generate_design
from repro.dfg.generators import chain_graph
from repro.dfg.library import default_library
from repro.executive import ExecutiveRunner, generate_executive
from repro.flows import SystemSimulation
from repro.flows.modular import run_modular_backend
from repro.mccdma import Modulation
from repro.mccdma.casestudy import build_mccdma_design
from repro.reconfig import HistoryPrefetchPolicy


def test_floorplan_margin_ablation(benchmark):
    """Margin 1.0 packs tightest; 2.0 (our default) reproduces the paper's
    8 % / 4 ms point; larger margins buy PAR headroom with latency."""
    design = build_mccdma_design()
    mc = (
        MappingConstraints()
        .pin("mod_qpsk", "D1").pin("mod_qam16", "D1")
        .pin("bit_src", "DSP").pin("select", "DSP")
    )
    result = adequate(
        design.graph, design.board.architecture, design.library, constraints=mc
    )
    generated = generate_design(design.graph, result.schedule, design.board.architecture)
    device = design.board.fpga_device_of("F1")

    def run():
        rows = []
        for margin in (1.0, 1.5, 2.0, 3.0):
            modular = run_modular_backend(
                design.graph, generated, design.library, device, margin=margin
            )
            rows.append(
                (
                    margin,
                    modular.region_area_fraction("D1"),
                    modular.reconfig_latency_ns["D1"],
                    modular.par_report.ok,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=2, iterations=1)
    areas = [r[1] for r in rows]
    latencies = [r[2] for r in rows]
    assert areas == sorted(areas)  # more margin, never less area
    assert latencies == sorted(latencies)
    assert all(ok for _, _, _, ok in rows)
    default = next(r for r in rows if r[0] == 2.0)
    assert 0.06 <= default[1] <= 0.10
    text = ["margin | region area | reconfig latency | PAR"]
    for margin, area, latency, ok in rows:
        text.append(
            f"{margin:>6.1f} | {100 * area:>9.1f}% | {latency / 1e6:>13.2f} ms | "
            f"{'ok' if ok else 'FAIL'}"
        )
    write_result("ablation_margin", "\n".join(text))


def test_buffer_depth_ablation(benchmark):
    """Buffer-depth finding: with the deterministic stage times of a
    synchronized executive, capacity-1 double buffering already achieves
    bottleneck throughput — deeper channels never help (and never hurt).
    This is precisely why the paper's generated design gets away with simple
    alternating buffers between operators."""
    graph = chain_graph(4)
    board = sundance_board()
    mc = MappingConstraints().pin("n0", "DSP").pin("n1", "DSP").pin("n2", "F1").pin("n3", "F1")
    result = adequate(graph, board.architecture, default_library(), constraints=mc)
    program = generate_executive(graph, result.schedule)
    n = 24

    def run():
        rows = []
        for capacity in (1, 2, 4, 8):
            report = ExecutiveRunner(
                program, n_iterations=n, channel_capacity=capacity
            ).run()
            rows.append((capacity, report.end_time_ns))
        return rows

    rows = benchmark.pedantic(run, rounds=2, iterations=1)
    times = [t for _, t in rows]
    assert all(b <= a for a, b in zip(times, times[1:]))  # never slower
    text = ["channel capacity | 24-iteration time | iterations/s"]
    for capacity, t in rows:
        text.append(f"{capacity:>16} | {t / 1e6:>14.3f} ms | {n * 1e9 / t:>10.0f}")
    write_result("ablation_buffers", "\n".join(text))


def test_history_confidence_ablation(benchmark):
    """On a noisy 80/20 switching pattern, low confidence speculates often
    (some wasted loads); high confidence abstains."""
    from conftest import build_case_study_flow

    _, flow = build_case_study_flow()
    rng = random.Random(5)
    plan = []
    current = Modulation.QPSK
    for _ in range(48):
        if rng.random() < 0.5:
            current = Modulation.QAM16 if current is Modulation.QPSK else Modulation.QPSK
        plan.append(current)

    def run():
        rows = []
        for confidence in (0.3, 0.6, 0.9):
            result = SystemSimulation(
                flow, n_iterations=len(plan),
                selector_values={"modulation": lambda it: plan[it]},
                policy=HistoryPrefetchPolicy(min_confidence=confidence),
            ).run()
            stats = result.manager_stats
            rows.append(
                (confidence, stats.prefetch_loads, stats.useful_prefetches,
                 stats.wasted_prefetches, result.end_time_ns)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=2, iterations=1)
    # Speculation count decreases (weakly) as confidence rises.
    loads = [r[1] for r in rows]
    assert all(b <= a for a, b in zip(loads, loads[1:]))
    text = ["confidence | prefetch loads | useful | wasted | total time"]
    for confidence, nloads, useful, wasted, t in rows:
        text.append(
            f"{confidence:>10.1f} | {nloads:>14} | {useful:>6} | {wasted:>6} | {t / 1e6:>8.2f} ms"
        )
    write_result("ablation_history_confidence", "\n".join(text))
