"""X5 — link-level value of adaptive modulation vs its reconfiguration cost.

The paper's motivation (§1): SDR terminals must adapt the physical layer to
the channel; runtime reconfiguration provides the mechanism, at ≈4 ms per
modulation switch.  This bench closes the loop:

1. **Link benefit**: over a two-state channel, SNR-adaptive modulation
   delivers more error-free bits than either fixed scheme.
2. **Cost crossover**: charging every switch 4 ms of air-time dead time
   (the measured reconfiguration latency), adaptive transmission only wins
   when the channel coherence time is long enough — the quantitative
   argument behind the controller's hysteresis.
"""

from conftest import write_result

from repro.mccdma import SnrTrace
from repro.mccdma.linklevel import adaptive_vs_fixed

#: Air-time of one frame: 10 OFDM symbols x 80 samples at 20 Msps.
FRAME_AIRTIME_S = 10 * 80 / 20e6
#: Residual-error weight (uncorrected frames are retransmitted).
ERROR_WEIGHT = 50.0


def _net_goodput(result, reconfig_s: float) -> float:
    """Error-free bits per second including reconfiguration dead time."""
    airtime = result.n_frames * FRAME_AIRTIME_S + result.switches * reconfig_s
    return result.goodput_bits_per_frame(ERROR_WEIGHT) * result.n_frames / airtime


def test_adaptive_beats_fixed_without_switch_cost(benchmark):
    trace = SnrTrace.step(low_db=-1.0, high_db=9.0, period=4, n=32)

    def run():
        return adaptive_vs_fixed(trace, seed=11)

    results = benchmark.pedantic(run, rounds=2, iterations=1)
    goodput = {
        name: r.goodput_bits_per_frame(ERROR_WEIGHT) for name, r in results.items()
    }
    assert goodput["adaptive"] > goodput["qpsk"]
    assert goodput["adaptive"] > goodput["qam16"]
    text = ["strategy   BER        bits/frame  goodput bits/frame  switches"]
    for name, r in results.items():
        text.append(
            f"{name:<10} {r.ber:<9.2e}  {r.bits_per_frame():>9.1f}  "
            f"{goodput[name]:>17.1f}  {r.switches:>8}"
        )
    write_result("link_adaptation_benefit", "\n".join(text))


def test_reconfiguration_cost_crossover(benchmark, case_study_flow):
    """Net throughput vs channel coherence: a 4 ms switch costs ≈100 frame
    airtimes, so adaptive transmission only wins once the channel stays in
    one state for hundreds of frames."""
    _, flow = case_study_flow
    reconfig_s = flow.region_latency_ns("D1") / 1e9
    n = 1024

    def run():
        rows = []
        for period in (8, 32, 128, 512):
            trace = SnrTrace.step(low_db=-1.0, high_db=9.0, period=period, n=n)
            results = adaptive_vs_fixed(trace, seed=7)
            net = {name: _net_goodput(r, reconfig_s if name == "adaptive" else 0.0)
                   for name, r in results.items()}
            best_fixed = max(net["qpsk"], net["qam16"])
            rows.append((period, net["adaptive"], best_fixed, results["adaptive"].switches))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    # Fast channel: reconfiguration dead time kills adaptive.
    assert rows[0][1] < rows[0][2]
    # Slow channel: adaptive wins despite the 4 ms switches.
    assert rows[-1][1] > rows[-1][2]
    crossover = next(p for p, a, f, _ in rows if a > f)
    text = [
        f"reconfiguration cost: {reconfig_s * 1e3:.2f} ms per switch; "
        f"frame airtime {FRAME_AIRTIME_S * 1e6:.0f} us",
        "coherence (frames) | adaptive net bps | best fixed net bps | switches",
    ]
    for period, adaptive, fixed, switches in rows:
        marker = "  <- adaptive wins" if adaptive > fixed else ""
        text.append(
            f"{period:>18} | {adaptive / 1e6:>13.2f} M | {fixed / 1e6:>15.2f} M "
            f"| {switches:>8}{marker}"
        )
    text.append(f"crossover at coherence ~{crossover} frames")
    write_result("link_adaptation_crossover", "\n".join(text))
