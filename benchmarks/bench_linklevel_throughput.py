"""X6 — batched vs per-frame link-simulation throughput.

The Monte-Carlo link loop used to push every frame through the scalar
transmit/receive kernels one at a time — one Python-level pass over
modulation, spreading, IFFT and despreading per frame per OFDM symbol.
The batched engine (:class:`repro.mccdma.engine.LinkSimulationEngine`)
runs whole frame batches through the vectorized kernels instead; the
retained ``batched=False`` reference path *is* the per-frame loop, so
this benchmark measures the speedup directly and proves the two paths
field-identical on every (strategy, SNR) point.

Acceptance (full run): >= 5x single-process speedup at 64-frame batches
with 200 frames per SNR point (the issue's target is 10x).  Set
``LINKLEVEL_SMOKE=1`` (CI) to run reduced frame counts with a relaxed
>= 2x floor — wall-clock on shared runners is noisy, but the result
digests must still match exactly, and that identity guard fails the
build on any numerical regression.

Writes ``BENCH_linklevel_throughput.json`` (full) or
``BENCH_linklevel_throughput_smoke.json`` (smoke) next to the other
artefacts.
"""

import json
import os
import time

from conftest import write_bench_json

from repro.mccdma.engine import LinkEngineConfig, LinkSimulationEngine
from repro.mccdma.transmitter import MCCDMAConfig

SMOKE = os.environ.get("LINKLEVEL_SMOKE", "") not in ("", "0")

BATCH_FRAMES = 64
FULL_FRAMES = 200
SMOKE_FRAMES = 48

SNR_POINTS_DB = (0.0, 4.0, 8.0)
STRATEGIES = ("qpsk", "qam16", "adaptive")
USER_CODES = (0, 3, 5, 9)

MIN_SPEEDUP = 2.0 if SMOKE else 5.0
TARGET_SPEEDUP = 10.0


def _engine(batched: bool) -> LinkSimulationEngine:
    return LinkSimulationEngine(
        config=MCCDMAConfig(user_codes=USER_CODES),
        engine=LinkEngineConfig(batched=batched, batch_frames=BATCH_FRAMES),
    )


def _time_point(engine, strategy, snr_db, n_frames, seed, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = engine.simulate_point(strategy, snr_db, n_frames, seed=seed)
        best = min(best, time.perf_counter() - t0)
    return result, best


def test_linklevel_throughput():
    n_frames = SMOKE_FRAMES if SMOKE else FULL_FRAMES
    batched_engine = _engine(batched=True)
    reference_engine = _engine(batched=False)

    rows = []
    for strategy in STRATEGIES:
        for snr_db in SNR_POINTS_DB:
            fast_result, fast_s = _time_point(
                batched_engine, strategy, snr_db, n_frames, seed=42, repeats=3
            )
            ref_result, ref_s = _time_point(
                reference_engine, strategy, snr_db, n_frames, seed=42, repeats=1
            )
            rows.append(
                {
                    "strategy": strategy,
                    "snr_db": snr_db,
                    "frames": n_frames,
                    "batch_frames": BATCH_FRAMES,
                    "batched_s": round(fast_s, 6),
                    "reference_s": round(ref_s, 6),
                    "speedup": round(ref_s / fast_s, 2),
                    "ber": fast_result.ber,
                    "digest": json.dumps(fast_result.to_dict(), sort_keys=True),
                    "digests_identical": fast_result == ref_result,
                }
            )

    # Field identity on every benchmarked point — the real acceptance bar.
    assert all(row["digests_identical"] for row in rows), rows
    overall = sum(r["reference_s"] for r in rows) / sum(r["batched_s"] for r in rows)
    assert overall >= MIN_SPEEDUP, (overall, rows)

    name = "BENCH_linklevel_throughput_smoke" if SMOKE else "BENCH_linklevel_throughput"
    payload = {
        "smoke": SMOKE,
        "min_speedup": MIN_SPEEDUP,
        "target_speedup": TARGET_SPEEDUP,
        "overall_speedup": round(overall, 2),
        "n_users": len(USER_CODES),
        "rows": rows,
    }
    write_bench_json(name, payload)

    lines = [f"{'strategy':<9}  snr     batched     reference  speedup  ber"]
    for r in rows:
        lines.append(
            f"{r['strategy']:<9}  {r['snr_db']:+4.1f}  {r['batched_s']*1e3:>8.1f} ms"
            f"  {r['reference_s']*1e3:>8.1f} ms  {r['speedup']:>5.1f}x  {r['ber']:.3e}"
        )
    lines.append(f"overall: {overall:.1f}x (floor {MIN_SPEEDUP}x, target {TARGET_SPEEDUP}x)")
    print("\n" + "\n".join(lines))
