"""Virtex-II power and energy model.

The paper motivates reconfigurable hardware with the mobile-terminal
constraint triangle: "high performance, low power consumption and
flexibility" (§2).  This model quantifies the power side of the fix-vs-
dynamic trade-off:

- **static (leakage) power** scales with the logic actually configured —
  a dynamic design instantiates one alternative at a time, a fixed design
  leaks through every alternative it carries;
- **dynamic (switching) power** scales with active resources, clock
  frequency and toggle activity;
- **reconfiguration energy** is the configuration-port power integrated
  over the ≈4 ms load — the price of each switch.

Coefficients are order-of-magnitude figures for 150 nm Virtex-II class
parts (XPE-era rules of thumb), documented per constant; every benchmark
that uses them compares *schemes under the same coefficients*, so only the
ratios matter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fabric.resources import ResourceVector

__all__ = ["PowerModel", "EnergyBreakdown"]

#: Leakage per configured slice (mW) — Virtex-II class, 1.5 V core.
LEAKAGE_MW_PER_SLICE = 0.012
#: Device-level fixed leakage (clock tree, config logic, I/O banks), mW.
LEAKAGE_MW_BASE = 45.0
#: Dynamic power per active slice per MHz at the reference toggle rate, mW.
DYNAMIC_MW_PER_SLICE_MHZ = 0.0065
#: Dynamic power per BRAM per MHz, mW.
DYNAMIC_MW_PER_BRAM_MHZ = 0.12
#: Dynamic power per multiplier per MHz, mW.
DYNAMIC_MW_PER_MULT_MHZ = 0.09
#: Configuration-port power while loading (ICAP + memory traffic), mW.
RECONFIG_MW = 180.0


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one operating interval, in microjoules."""

    static_uj: float
    dynamic_uj: float
    reconfig_uj: float

    @property
    def total_uj(self) -> float:
        return self.static_uj + self.dynamic_uj + self.reconfig_uj

    def render(self) -> str:
        return (
            f"static {self.static_uj:.1f} uJ + dynamic {self.dynamic_uj:.1f} uJ "
            f"+ reconfig {self.reconfig_uj:.1f} uJ = {self.total_uj:.1f} uJ"
        )


class PowerModel:
    """Power/energy estimates for configured and active resource sets."""

    def __init__(self, clock_mhz: float, activity: float = 0.25):
        if clock_mhz <= 0:
            raise ValueError("clock must be positive")
        if not 0.0 < activity <= 1.0:
            raise ValueError("activity must be in (0, 1]")
        self.clock_mhz = clock_mhz
        self.activity = activity

    # -- power -------------------------------------------------------------------

    def static_mw(self, configured: ResourceVector) -> float:
        """Leakage of the logic currently configured on the fabric."""
        return LEAKAGE_MW_BASE + LEAKAGE_MW_PER_SLICE * configured.slices

    def dynamic_mw(self, active: ResourceVector) -> float:
        """Switching power of the logic actually toggling."""
        per_mhz = (
            DYNAMIC_MW_PER_SLICE_MHZ * active.slices
            + DYNAMIC_MW_PER_BRAM_MHZ * active.brams
            + DYNAMIC_MW_PER_MULT_MHZ * active.mults
        )
        return per_mhz * self.clock_mhz * self.activity

    def operating_mw(self, configured: ResourceVector, active: ResourceVector) -> float:
        return self.static_mw(configured) + self.dynamic_mw(active)

    # -- energy ------------------------------------------------------------------

    def reconfiguration_energy_uj(self, load_ns: int) -> float:
        """Energy of one partial reconfiguration of duration ``load_ns``."""
        if load_ns < 0:
            raise ValueError("load duration must be >= 0")
        return RECONFIG_MW * load_ns / 1e6  # mW * ms = uJ

    def interval_energy(
        self,
        configured: ResourceVector,
        active: ResourceVector,
        duration_ns: int,
        n_reconfigs: int = 0,
        reconfig_ns: int = 0,
    ) -> EnergyBreakdown:
        """Energy over an interval with ``n_reconfigs`` module swaps."""
        if duration_ns < 0 or n_reconfigs < 0:
            raise ValueError("duration and reconfiguration count must be >= 0")
        ms = duration_ns / 1e6
        return EnergyBreakdown(
            static_uj=self.static_mw(configured) * ms,
            dynamic_uj=self.dynamic_mw(active) * ms,
            reconfig_uj=n_reconfigs * self.reconfiguration_energy_uj(reconfig_ns),
        )
