"""Post-synthesis netlist abstraction.

The paper synthesizes "the VHDL code of the static part and of each dynamic
part separately in order to obtain separate netlists".  We model exactly that
granularity: a :class:`Netlist` is a set of :class:`NetlistModule` instances
(one static, zero or more reconfigurable) plus the inter-module signals that
must cross a reconfigurable boundary through bus macros.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.fabric.resources import ResourceVector

__all__ = ["NetlistPort", "NetlistModule", "InterModuleNet", "Netlist"]


@dataclass(frozen=True, slots=True)
class NetlistPort:
    """A module-level port: name and bit width."""

    name: str
    width: int
    direction: str  # "in" | "out"

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"port {self.name!r} must have positive width")
        if self.direction not in ("in", "out"):
            raise ValueError(f"port {self.name!r}: direction must be 'in' or 'out'")


@dataclass
class NetlistModule:
    """One separately-synthesized module."""

    name: str
    resources: ResourceVector
    ports: list[NetlistPort] = field(default_factory=list)
    reconfigurable: bool = False
    #: For reconfigurable modules: the region they are a variant of.
    region: Optional[str] = None
    #: Source operations implemented by the module (traceability).
    implements: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.reconfigurable and not self.region:
            raise ValueError(f"reconfigurable module {self.name!r} must name its region")
        names = [p.name for p in self.ports]
        if len(names) != len(set(names)):
            raise ValueError(f"module {self.name!r} has duplicate port names")

    def port(self, name: str) -> NetlistPort:
        for p in self.ports:
            if p.name == name:
                return p
        raise KeyError(f"module {self.name!r} has no port {name!r}")

    @property
    def boundary_bits(self) -> int:
        """Total signal bits crossing the module boundary."""
        return sum(p.width for p in self.ports)


@dataclass(frozen=True, slots=True)
class InterModuleNet:
    """A signal between two modules (by module and port name)."""

    src_module: str
    src_port: str
    dst_module: str
    dst_port: str
    width: int

    def crosses(self, a: str, b: str) -> bool:
        return {self.src_module, self.dst_module} == {a, b}


class Netlist:
    """The whole design: modules plus inter-module nets."""

    def __init__(self, top: str):
        self.top = top
        self._modules: dict[str, NetlistModule] = {}
        self._nets: list[InterModuleNet] = []

    def add_module(self, module: NetlistModule) -> NetlistModule:
        if module.name in self._modules:
            raise ValueError(f"duplicate module {module.name!r}")
        self._modules[module.name] = module
        return module

    def connect(self, src_module: str, src_port: str, dst_module: str, dst_port: str) -> InterModuleNet:
        src = self.module(src_module).port(src_port)
        dst = self.module(dst_module).port(dst_port)
        if src.direction != "out":
            raise ValueError(f"{src_module}.{src_port} is not an output")
        if dst.direction != "in":
            raise ValueError(f"{dst_module}.{dst_port} is not an input")
        if src.width != dst.width:
            raise ValueError(
                f"width mismatch {src_module}.{src_port}({src.width}) -> {dst_module}.{dst_port}({dst.width})"
            )
        net = InterModuleNet(src_module, src_port, dst_module, dst_port, src.width)
        self._nets.append(net)
        return net

    def module(self, name: str) -> NetlistModule:
        try:
            return self._modules[name]
        except KeyError:
            raise KeyError(f"netlist {self.top!r} has no module {name!r}") from None

    @property
    def modules(self) -> list[NetlistModule]:
        return list(self._modules.values())

    @property
    def nets(self) -> list[InterModuleNet]:
        return list(self._nets)

    def static_modules(self) -> list[NetlistModule]:
        return [m for m in self._modules.values() if not m.reconfigurable]

    def reconfigurable_modules(self, region: Optional[str] = None) -> list[NetlistModule]:
        mods = [m for m in self._modules.values() if m.reconfigurable]
        if region is not None:
            mods = [m for m in mods if m.region == region]
        return mods

    def regions(self) -> list[str]:
        seen: dict[str, None] = {}
        for m in self._modules.values():
            if m.reconfigurable and m.region:
                seen.setdefault(m.region)
        return list(seen)

    def boundary_bits_between(self, a: str, b: str) -> int:
        """Signal bits that cross between modules ``a`` and ``b``."""
        return sum(n.width for n in self._nets if n.crosses(a, b))

    def boundary_bits_of_region(self, region: str) -> int:
        """Worst-case signal bits crossing into/out of a region over all its
        variants (bus macros are sized for the worst variant)."""
        worst = 0
        for variant in self.reconfigurable_modules(region):
            bits = 0
            for net in self._nets:
                if variant.name in (net.src_module, net.dst_module):
                    other = net.dst_module if net.src_module == variant.name else net.src_module
                    if self.module(other).region != region:
                        bits += net.width
            worst = max(worst, bits)
        return worst

    def total_resources(self) -> ResourceVector:
        return ResourceVector.sum(m.resources for m in self._modules.values())
