"""Bus macros — fixed routing bridges between static and dynamic parts.

From the paper: "The communications between static and dynamic parts use a
special bus macro.  This bus is a fixed routing bridge between two sides and
is pre-routed.  The current implementation of the bus macro uses eight
3-state buffers, their position exactly straddles the dividing line between
designs."

One :class:`BusMacro` therefore carries **4 data bits** (8 TBUFs: each bit
needs a driver on either side of the boundary) in one direction.  Planning
bus macros for a region means counting the signal bits that cross its
boundary and stacking enough macros along the dividing column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro.fabric.device import VirtexIIDevice
from repro.fabric.resources import ResourceVector

__all__ = [
    "BusMacro",
    "BusMacroError",
    "BoundaryCost",
    "boundary_cost",
    "plan_bus_macros",
    "BITS_PER_MACRO",
    "TBUFS_PER_MACRO",
    "MACRO_DELAY_NS",
    "HETEROGENEOUS_PREMIUM_NS",
]

#: Eight 3-state buffers per macro, two per signal bit.
TBUFS_PER_MACRO = 8
#: Data bits carried by one macro.
BITS_PER_MACRO = 4
#: Routing/latency price of one macro on the dividing column: the pre-routed
#: TBUF bridge adds one fixed hop to every signal through it.
MACRO_DELAY_NS = 25
#: Extra price per macro when the dividing column coincides with a BRAM /
#: multiplier column pair: the fixed bridge must route *around* the hard
#: block, lengthening the pre-routed nets.
HETEROGENEOUS_PREMIUM_NS = 15


class BusMacroError(ValueError):
    """Raised when the boundary cannot host the required macros."""


@dataclass(frozen=True, slots=True)
class BusMacro:
    """One placed bus macro.

    ``column`` is the dividing CLB column the macro straddles (its TBUFs sit
    in columns ``column-1`` and ``column``); ``row`` is the CLB row of the
    macro; ``direction`` tells whether data flows into or out of the region.
    """

    name: str
    column: int
    row: int
    direction: Literal["into_region", "out_of_region"]

    @property
    def tbufs(self) -> int:
        return TBUFS_PER_MACRO

    @property
    def data_bits(self) -> int:
        return BITS_PER_MACRO

    def resources(self) -> ResourceVector:
        return ResourceVector(tbufs=TBUFS_PER_MACRO)


@dataclass(frozen=True, slots=True)
class BoundaryCost:
    """Priced account of one region boundary.

    ``macros`` counts both directions; ``heterogeneous`` is True when the
    dividing column straddles a BRAM/multiplier column, which prices every
    macro at the heterogeneous premium on top of the base delay.
    """

    column: int
    macros: int
    heterogeneous: bool
    cost_ns: int

    @property
    def tbufs(self) -> int:
        return self.macros * TBUFS_PER_MACRO


def boundary_cost(
    device: VirtexIIDevice,
    boundary_column: int,
    bits_in: int,
    bits_out: int,
) -> BoundaryCost:
    """Price the bus-macro bridge a region boundary needs.

    The cost is monotone in the crossing bit count (each
    :data:`BITS_PER_MACRO` bits add one macro at :data:`MACRO_DELAY_NS`),
    and a boundary sitting on one of the device's heterogeneous BRAM columns
    pays :data:`HETEROGENEOUS_PREMIUM_NS` extra per macro.  Raises
    :class:`BusMacroError` for a non-internal column, mirroring
    :func:`plan_bus_macros`.
    """
    if not 0 < boundary_column < device.clb_cols:
        raise BusMacroError(
            f"boundary column {boundary_column} is not internal to {device.name} "
            f"(must be 1..{device.clb_cols - 1})"
        )
    macros = macros_needed(bits_in) + macros_needed(bits_out)
    heterogeneous = boundary_column in device.bram_cols
    per_macro = MACRO_DELAY_NS + (HETEROGENEOUS_PREMIUM_NS if heterogeneous else 0)
    return BoundaryCost(
        column=boundary_column,
        macros=macros,
        heterogeneous=heterogeneous,
        cost_ns=macros * per_macro,
    )


def macros_needed(bits: int) -> int:
    """Macros required to carry ``bits`` signal bits one way."""
    if bits < 0:
        raise ValueError(f"bit count must be >= 0, got {bits}")
    return -(-bits // BITS_PER_MACRO)


def plan_bus_macros(
    device: VirtexIIDevice,
    region_name: str,
    boundary_column: int,
    bits_in: int,
    bits_out: int,
) -> list[BusMacro]:
    """Stack bus macros along ``boundary_column`` for a region's boundary.

    Macros occupy successive CLB rows from the bottom.  Raises
    :class:`BusMacroError` when the device height cannot host them (each
    macro takes one CLB row on the dividing line) or the column is not a
    legal internal boundary.
    """
    if not 0 < boundary_column < device.clb_cols:
        raise BusMacroError(
            f"boundary column {boundary_column} is not internal to {device.name} "
            f"(must be 1..{device.clb_cols - 1})"
        )
    n_in = macros_needed(bits_in)
    n_out = macros_needed(bits_out)
    total = n_in + n_out
    if total > device.clb_rows:
        raise BusMacroError(
            f"region {region_name!r} needs {total} bus macros on column {boundary_column}, "
            f"device height is {device.clb_rows} rows"
        )
    macros: list[BusMacro] = []
    row = 0
    for i in range(n_in):
        macros.append(BusMacro(f"{region_name}_bm_in{i}", boundary_column, row, "into_region"))
        row += 1
    for i in range(n_out):
        macros.append(BusMacro(f"{region_name}_bm_out{i}", boundary_column, row, "out_of_region"))
        row += 1
    return macros
