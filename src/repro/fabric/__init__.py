"""Virtex-II fabric model and the Xilinx Modular Design back-end substitute.

The paper implements its flow with the Xilinx Modular Design tools on a
Virtex-II XC2V2000.  This package replaces that proprietary back-end with an
executable model:

- :mod:`repro.fabric.resources` — resource vectors (slices/LUTs/FFs/TBUFs/BRAMs/MULTs),
- :mod:`repro.fabric.device` — device geometry and configuration-frame model,
- :mod:`repro.fabric.netlist` — post-synthesis netlist abstraction,
- :mod:`repro.fabric.synthesis` — macro-code → netlist resource estimation
  (including the generated control-structure overhead behind Table 1),
- :mod:`repro.fabric.busmacro` — the 8-TBUF bus macros bridging static and
  dynamic parts,
- :mod:`repro.fabric.floorplan` — modular floorplanner enforcing the paper's
  placement rules (full device height, width multiple of 4 slices),
- :mod:`repro.fabric.par` — placement feasibility and routing checks,
- :mod:`repro.fabric.bitstream` — frame-addressed full and partial
  bitstreams with CRC.
"""

from repro.fabric.resources import ResourceVector
from repro.fabric.device import (
    VirtexIIDevice,
    XC2V1000,
    XC2V2000,
    XC2V3000,
    device_by_name,
)
from repro.fabric.netlist import Netlist, NetlistModule
from repro.fabric.busmacro import BoundaryCost, BusMacro, boundary_cost, plan_bus_macros
from repro.fabric.floorplan import Floorplan, FloorplanError, ModulePlacement, Floorplanner
from repro.fabric.bitstream import (
    Bitstream,
    BitstreamError,
    Frame,
    generate_full_bitstream,
    generate_partial_bitstream,
)
from repro.fabric.synthesis import PortSpec, SynthesisError, SynthesisReport, Synthesizer
from repro.fabric.par import PARReport, PlaceAndRoute
from repro.fabric.power import EnergyBreakdown, PowerModel

__all__ = [
    "ResourceVector",
    "VirtexIIDevice",
    "XC2V1000",
    "XC2V2000",
    "XC2V3000",
    "device_by_name",
    "Netlist",
    "NetlistModule",
    "BusMacro",
    "BoundaryCost",
    "boundary_cost",
    "plan_bus_macros",
    "Floorplan",
    "FloorplanError",
    "ModulePlacement",
    "Floorplanner",
    "Bitstream",
    "BitstreamError",
    "Frame",
    "generate_full_bitstream",
    "generate_partial_bitstream",
    "PortSpec",
    "SynthesisError",
    "SynthesisReport",
    "Synthesizer",
    "PARReport",
    "PlaceAndRoute",
    "EnergyBreakdown",
    "PowerModel",
]
