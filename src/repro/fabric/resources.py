"""FPGA resource vectors.

A :class:`ResourceVector` counts the Virtex-II primitives a design consumes:
slices, 4-input LUTs, flip-flops, 3-state buffers (TBUFs), block RAMs and
18×18 multipliers — exactly the rows of the paper's Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterable, Mapping

__all__ = ["ResourceVector"]


@dataclass(frozen=True, slots=True)
class ResourceVector:
    """An immutable count of fabric primitives; supports vector arithmetic."""

    slices: int = 0
    luts: int = 0
    ffs: int = 0
    tbufs: int = 0
    brams: int = 0
    mults: int = 0

    def __post_init__(self) -> None:
        for f in fields(self):
            v = getattr(self, f.name)
            if not isinstance(v, int):
                raise TypeError(f"{f.name} must be an int, got {type(v).__name__}")
            if v < 0:
                raise ValueError(f"{f.name} must be >= 0, got {v}")

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_mapping(cls, counts: Mapping[str, int]) -> "ResourceVector":
        """Build from a dict; unknown keys are rejected loudly."""
        known = {f.name for f in fields(cls)}
        unknown = set(counts) - known
        if unknown:
            raise KeyError(f"unknown resource keys: {sorted(unknown)}")
        return cls(**{k: int(v) for k, v in counts.items()})

    @classmethod
    def sum(cls, vectors: Iterable["ResourceVector"]) -> "ResourceVector":
        total = cls()
        for v in vectors:
            total = total + v
        return total

    # -- arithmetic ------------------------------------------------------------

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(**{f.name: getattr(self, f.name) + getattr(other, f.name) for f in fields(self)})

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(**{f.name: getattr(self, f.name) - getattr(other, f.name) for f in fields(self)})

    def scaled(self, factor: float) -> "ResourceVector":
        """Ceil-scaled copy (used for safety margins)."""
        return ResourceVector(**{f.name: int(-(-getattr(self, f.name) * factor // 1)) for f in fields(self)})

    # -- queries ---------------------------------------------------------------

    def fits_in(self, capacity: "ResourceVector") -> bool:
        return all(getattr(self, f.name) <= getattr(capacity, f.name) for f in fields(self))

    def headroom(self, capacity: "ResourceVector") -> dict[str, int]:
        """Remaining capacity per resource (may be negative if over budget)."""
        return {f.name: getattr(capacity, f.name) - getattr(self, f.name) for f in fields(self)}

    def utilization(self, capacity: "ResourceVector") -> dict[str, float]:
        out = {}
        for f in fields(self):
            cap = getattr(capacity, f.name)
            used = getattr(self, f.name)
            out[f.name] = used / cap if cap else 0.0
        return out

    def dominant_utilization(self, capacity: "ResourceVector") -> float:
        """The binding constraint: max utilization across resource types."""
        return max(self.utilization(capacity).values(), default=0.0)

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def is_zero(self) -> bool:
        return all(getattr(self, f.name) == 0 for f in fields(self))

    def __str__(self) -> str:
        parts = [f"{name}={v}" for name, v in self.as_dict().items() if v]
        return "ResourceVector(" + (", ".join(parts) or "0") + ")"
