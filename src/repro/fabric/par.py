"""Place-and-route feasibility checks.

The real flow runs Xilinx PAR per module under the constraints file; our
substitute verifies the same contract a PAR run enforces and produces a
report with an achievable-clock estimate:

- every region's worst variant fits its placed span (with bus-macro TBUFs
  deducted),
- the static part fits the remaining columns,
- every region has a legal internal boundary column and enough rows for its
  bus macros,
- congestion heuristic: achievable clock degrades as slice utilization of
  the binding module approaches 100 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fabric.floorplan import Floorplan
from repro.fabric.netlist import Netlist
from repro.fabric.resources import ResourceVector

__all__ = ["PARReport", "PlaceAndRoute"]

#: Clock the generated design closes timing at when utilization is low.
BASE_CLOCK_MHZ = 66.0
#: Clock floor under heavy congestion.
MIN_CLOCK_MHZ = 25.0
#: Utilization above which timing starts degrading.
CONGESTION_KNEE = 0.60


@dataclass
class PARReport:
    """Outcome of the feasibility analysis."""

    ok: bool
    problems: list[str]
    clock_mhz: float
    module_utilization: dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        status = "PASSED" if self.ok else "FAILED"
        lines = [f"PAR check {status} — est. clock {self.clock_mhz:.1f} MHz"]
        for name, util in sorted(self.module_utilization.items()):
            lines.append(f"  {name}: {100 * util:.1f}% of its span")
        for p in self.problems:
            lines.append(f"  ERROR: {p}")
        return "\n".join(lines)


def _derate_clock(worst_utilization: float) -> float:
    """Congestion model: linear derating past the knee."""
    if worst_utilization <= CONGESTION_KNEE:
        return BASE_CLOCK_MHZ
    over = min(1.0, worst_utilization) - CONGESTION_KNEE
    span = 1.0 - CONGESTION_KNEE
    derated = BASE_CLOCK_MHZ - (BASE_CLOCK_MHZ - MIN_CLOCK_MHZ) * (over / span)
    return max(MIN_CLOCK_MHZ, derated)


class PlaceAndRoute:
    """Feasibility checker for a floorplan + netlist pair."""

    def __init__(self, floorplan: Floorplan, netlist: Netlist):
        self.floorplan = floorplan
        self.netlist = netlist

    def check(self) -> PARReport:
        problems: list[str] = []
        utilizations: dict[str, float] = {}

        # Regions referenced by modules must be placed, and vice versa.
        netlist_regions = set(self.netlist.regions())
        placed_regions = set(self.floorplan.placements)
        for missing in sorted(netlist_regions - placed_regions):
            problems.append(f"region {missing!r} has variants but no placement")
        for orphan in sorted(placed_regions - netlist_regions):
            problems.append(f"placement {orphan!r} has no module variants")

        # Each variant fits its region capacity.
        for region in sorted(netlist_regions & placed_regions):
            capacity = self.floorplan.region_capacity(region)
            for variant in self.netlist.reconfigurable_modules(region):
                util = variant.resources.dominant_utilization(capacity)
                utilizations[variant.name] = util
                if not variant.resources.fits_in(capacity):
                    over = {
                        k: -v for k, v in variant.resources.headroom(capacity).items() if v < 0
                    }
                    problems.append(
                        f"variant {variant.name!r} exceeds region {region!r} capacity by {over}"
                    )
            # Bus macros must exist when signals cross the boundary.
            bits = self.netlist.boundary_bits_of_region(region)
            macros = self.floorplan.bus_macros.get(region, [])
            carried = sum(m.data_bits for m in macros)
            if bits > carried:
                problems.append(
                    f"region {region!r}: boundary needs {bits} bits but bus macros carry {carried}"
                )
            boundary = self.floorplan.boundary_column(region)
            for m in macros:
                if m.column != boundary:
                    problems.append(
                        f"bus macro {m.name!r} placed on column {m.column}, boundary is {boundary}"
                    )
                if not 0 <= m.row < self.floorplan.device.clb_rows:
                    problems.append(f"bus macro {m.name!r} row {m.row} outside device")

        # Static part fits what is left.
        static_need = ResourceVector.sum(m.resources for m in self.netlist.static_modules())
        static_cap = self.floorplan.static_capacity()
        util = static_need.dominant_utilization(static_cap)
        utilizations["<static>"] = util
        if not static_need.fits_in(static_cap):
            over = {k: -v for k, v in static_need.headroom(static_cap).items() if v < 0}
            problems.append(f"static part exceeds remaining capacity by {over}")

        worst = max(utilizations.values(), default=0.0)
        return PARReport(
            ok=not problems,
            problems=problems,
            clock_mhz=_derate_clock(worst),
            module_utilization=utilizations,
        )
