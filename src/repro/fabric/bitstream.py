"""Frame-addressed configuration bitstreams.

Models the artefact the Modular Design back-end produces per module: a
(partial) bitstream made of configuration frames plus a command header.  The
content is synthetic but structurally faithful: frames carry a frame address
(block type / major / minor), a fixed-size payload derived deterministically
from the module identity, and the stream ends with a CRC word — enough to
exercise the protocol configuration builder, the ICAP/SelectMAP port models
and CRC-failure injection.
"""

from __future__ import annotations

import hashlib
import zlib
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.fabric.device import FRAMES_PER_CLB_COLUMN, PARTIAL_HEADER_BITS, VirtexIIDevice
from repro.fabric.floorplan import ModulePlacement

__all__ = ["BitstreamError", "Frame", "Bitstream", "generate_partial_bitstream", "generate_full_bitstream"]

#: Virtex-II block types (UG002 frame address register).
BLOCK_CLB = 0
BLOCK_BRAM = 1
BLOCK_BRAM_INT = 2

#: Synchronization word opening every configuration stream.
SYNC_WORD = 0xAA995566


class BitstreamError(ValueError):
    """Malformed or corrupted bitstream."""


@dataclass(frozen=True, slots=True)
class Frame:
    """One configuration frame."""

    block: int
    major: int  # column address
    minor: int  # frame within the column
    payload: bytes

    def address(self) -> int:
        """Packed frame address (block|major|minor), UG002-style."""
        return (self.block << 25) | (self.major << 17) | (self.minor << 9)


@dataclass
class Bitstream:
    """A full or partial configuration bitstream."""

    device_name: str
    module_name: str
    frames: list[Frame]
    header_bits: int
    crc: int = 0
    partial: bool = True
    #: The column span this stream reconfigures (None for full streams).
    placement: Optional[ModulePlacement] = None

    def __post_init__(self) -> None:
        if not self.frames:
            raise BitstreamError(f"bitstream {self.module_name!r} has no frames")
        if self.crc == 0:
            self.crc = self.compute_crc()

    def compute_crc(self) -> int:
        crc = 0
        for frame in self.frames:
            crc = zlib.crc32(frame.payload, crc)
            crc = zlib.crc32(frame.address().to_bytes(4, "big"), crc)
        return crc or 1  # never 0, so "unset" is distinguishable

    def verify_crc(self) -> bool:
        return self.crc == self.compute_crc()

    @property
    def size_bits(self) -> int:
        return self.header_bits + sum(len(f.payload) * 8 for f in self.frames)

    @property
    def size_bytes(self) -> int:
        return -(-self.size_bits // 8)

    def corrupted(self, frame_index: int = 0, seed: int = 0) -> "Bitstream":
        """A copy with one frame's payload flipped — CRC check must fail."""
        if not 0 <= frame_index < len(self.frames):
            raise IndexError(f"frame index {frame_index} out of range")
        frames = list(self.frames)
        victim = frames[frame_index]
        flipped = bytes(b ^ 0xFF for b in victim.payload[:1]) + victim.payload[1:]
        frames[frame_index] = Frame(victim.block, victim.major, victim.minor, flipped)
        return Bitstream(
            device_name=self.device_name,
            module_name=self.module_name,
            frames=frames,
            header_bits=self.header_bits,
            crc=self.crc,  # keep the original CRC -> mismatch
            partial=self.partial,
            placement=self.placement,
        )

    def words(self) -> Iterable[int]:
        """The stream as 32-bit configuration words (header + frames + CRC)."""
        yield SYNC_WORD
        header_words = self.header_bits // 32 - 2  # sync + crc accounted for
        for i in range(max(0, header_words)):
            yield 0x3000_0000 | i  # modelled command words
        for frame in self.frames:
            yield frame.address()
            payload = frame.payload
            for off in range(0, len(payload), 4):
                yield int.from_bytes(payload[off : off + 4].ljust(4, b"\0"), "big")
        yield self.crc & 0xFFFFFFFF


def parse_word_stream(words: list[int], frame_payload_words: int) -> dict:
    """Parse a configuration word stream back into its structure.

    The inverse of :meth:`Bitstream.words`: checks the sync word opens the
    stream, extracts the frame addresses (each followed by exactly
    ``frame_payload_words`` payload words), and returns the trailing CRC.
    Raises :class:`BitstreamError` on any structural violation — this is
    what the real device's configuration logic enforces before committing
    frames.
    """
    if not words:
        raise BitstreamError("empty configuration stream")
    if words[0] != SYNC_WORD:
        raise BitstreamError(f"stream does not open with the sync word (got {words[0]:#010x})")
    addresses: list[int] = []
    i = 1
    # Skip modelled command words (0x3xxxxxxx) up to the first frame address.
    while i < len(words) - 1 and (words[i] >> 28) == 0x3:
        i += 1
    header_words = i - 1
    while i < len(words) - 1:
        address = words[i]
        if address & 0x1FF:
            raise BitstreamError(f"malformed frame address {address:#010x} at word {i}")
        addresses.append(address)
        i += 1 + frame_payload_words
        if i > len(words) - 1:
            raise BitstreamError("truncated frame payload at end of stream")
    crc = words[-1]
    return {"header_words": header_words, "addresses": addresses, "crc": crc}


def _frame_payload(module_name: str, block: int, major: int, minor: int, nbytes: int) -> bytes:
    """Deterministic synthetic frame content derived from module identity."""
    seed = f"{module_name}:{block}:{major}:{minor}".encode()
    out = bytearray()
    counter = 0
    while len(out) < nbytes:
        out.extend(hashlib.sha256(seed + counter.to_bytes(4, "big")).digest())
        counter += 1
    return bytes(out[:nbytes])


def generate_partial_bitstream(
    device: VirtexIIDevice, placement: ModulePlacement, module_name: str
) -> Bitstream:
    """The partial bitstream reconfiguring ``placement`` with ``module_name``.

    Frame count and total size agree with
    :meth:`VirtexIIDevice.partial_bitstream_bits`, so latency results derived
    from either representation are consistent.
    """
    frame_bytes = -(-device.frame_bits // 8)
    frames: list[Frame] = []
    for col in range(placement.col0, placement.col_end):
        for minor in range(FRAMES_PER_CLB_COLUMN):
            frames.append(
                Frame(BLOCK_CLB, col, minor, _frame_payload(module_name, BLOCK_CLB, col, minor, frame_bytes))
            )
        for bram_col in device.bram_cols:
            if col < bram_col <= col + 1:
                for minor in range(4):
                    frames.append(
                        Frame(
                            BLOCK_BRAM,
                            bram_col,
                            minor,
                            _frame_payload(module_name, BLOCK_BRAM, bram_col, minor, frame_bytes),
                        )
                    )
    return Bitstream(
        device_name=device.name,
        module_name=module_name,
        frames=frames,
        header_bits=PARTIAL_HEADER_BITS,
        partial=True,
        placement=placement,
    )


def generate_full_bitstream(device: VirtexIIDevice, design_name: str) -> Bitstream:
    """The initial full-device bitstream (static part + default modules)."""
    frame_bytes = -(-device.frame_bits // 8)
    frames = []
    for col in range(device.clb_cols):
        for minor in range(FRAMES_PER_CLB_COLUMN):
            frames.append(
                Frame(BLOCK_CLB, col, minor, _frame_payload(design_name, BLOCK_CLB, col, minor, frame_bytes))
            )
    for bram_col in device.bram_cols:
        for minor in range(4):
            frames.append(
                Frame(BLOCK_BRAM, bram_col, minor, _frame_payload(design_name, BLOCK_BRAM, bram_col, minor, frame_bytes))
            )
    # Non-CLB overhead (IOB/clock columns) modelled as extra header bits.
    overhead_frames = device.total_frames - len(frames)
    header_bits = PARTIAL_HEADER_BITS + max(0, overhead_frames) * device.frame_bits
    return Bitstream(
        device_name=device.name,
        module_name=design_name,
        frames=frames,
        header_bits=header_bits,
        partial=False,
    )
