"""Synthesis-level resource estimation.

Stands in for the VHDL synthesis step of the paper's flow.  For each module
(static part or one variant of a dynamic region) it combines:

1. the **datapath** cost of the operations it implements (from the operation
   library's characterization),
2. the **generated control structure**: the computation sequencer, the
   communication sequencer and the buffer read/write phase control that the
   SynDEx-driven VHDL generator emits around the datapath, and
3. **buffers** (BRAM above a threshold, LUT-RAM below).

Item 2 is the origin of Table 1's observation that "FPGA resources…are more
important with a dynamic reconfiguration scheme.  This overhead is due to
the generic VHDL structure generation, based on the macro code description":
a reconfigurable variant always carries the full generated harness (plus the
reconfiguration handshake), while a hand-fused fixed design shares one
harness across all its operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.dfg.library import FPGA_CLASS, OperationLibrary
from repro.dfg.operations import Operation
from repro.fabric.netlist import NetlistModule, NetlistPort
from repro.fabric.resources import ResourceVector

__all__ = ["SynthesisError", "PortSpec", "SynthesisReport", "Synthesizer"]

# -- generated-structure cost model (LUTs/FFs per element) --------------------

#: Computation sequencer: FSM states + firing logic per operation.
CTRL_PER_OP = ResourceVector(luts=25, ffs=22)
#: Communication sequencer: handshake + word counters per external data port.
COMM_PER_PORT = ResourceVector(luts=32, ffs=28)
#: Fixed harness of any generated module (clock/reset, status registers).
MODULE_BASE = ResourceVector(luts=45, ffs=60)
#: Extra harness of a reconfigurable variant: In_Reconf lock-up logic,
#: reconfiguration request generation, bus-macro interfacing registers.
DYNAMIC_EXTRA = ResourceVector(luts=70, ffs=85)

#: Buffers larger than this go to block RAM; smaller ones to LUT-RAM.
BRAM_THRESHOLD_BYTES = 256
#: Usable bytes per Virtex-II 18 Kb block RAM (data bits only).
BRAM_BYTES = 2048
#: A LUT configured as 16x1 distributed RAM stores 2 bytes.
LUT_RAM_BYTES = 2

#: Slice packing: LUTs and FFs pair into slices with imperfect packing.
SLICE_PACKING = 1.12


class SynthesisError(ValueError):
    """Raised for inconsistent synthesis requests."""


@dataclass(frozen=True, slots=True)
class PortSpec:
    """An external data port of a module: name, bit width, direction."""

    name: str
    width: int
    direction: str  # "in" | "out"


@dataclass
class SynthesisReport:
    """Per-module breakdown, in the spirit of an ISE map report."""

    module: str
    datapath: ResourceVector
    control: ResourceVector
    buffers: ResourceVector
    total: ResourceVector
    reconfigurable: bool

    def render(self, capacity: Optional[ResourceVector] = None) -> str:
        lines = [
            f"Synthesis report: {self.module}" + (" (reconfigurable)" if self.reconfigurable else ""),
            f"  datapath : {self.datapath}",
            f"  control  : {self.control}",
            f"  buffers  : {self.buffers}",
            f"  total    : {self.total}",
        ]
        if capacity is not None:
            util = self.total.utilization(capacity)
            pretty = ", ".join(f"{k} {100 * v:.1f}%" for k, v in util.items() if v)
            lines.append(f"  utilization: {pretty or '0%'}")
        return "\n".join(lines)


def _slices_for(luts: int, ffs: int) -> int:
    from repro.fabric.device import LUTS_PER_SLICE

    raw = max(-(-luts // LUTS_PER_SLICE), -(-ffs // LUTS_PER_SLICE))
    return int(-(-raw * SLICE_PACKING // 1))


def _with_slices(vec: ResourceVector) -> ResourceVector:
    return ResourceVector(
        slices=_slices_for(vec.luts, vec.ffs),
        luts=vec.luts,
        ffs=vec.ffs,
        tbufs=vec.tbufs,
        brams=vec.brams,
        mults=vec.mults,
    )


class Synthesizer:
    """Estimates post-synthesis resources of generated modules."""

    def __init__(self, library: OperationLibrary):
        self.library = library

    # -- pieces -----------------------------------------------------------------

    def datapath_of(self, ops: Sequence[Operation]) -> ResourceVector:
        """Sum of the library's datapath estimates for ``ops``."""
        total = ResourceVector()
        for op in ops:
            spec = self.library.get(op.kind)
            if not spec.supports(FPGA_CLASS):
                raise SynthesisError(f"operation {op.name!r} ({op.kind}) has no FPGA implementation")
            total = total + ResourceVector.from_mapping(dict(spec.fpga_resources))
        return total

    def control_of(self, n_ops: int, n_ports: int, reconfigurable: bool) -> ResourceVector:
        """Generated sequencers and harness."""
        if n_ops < 0 or n_ports < 0:
            raise SynthesisError("operation/port counts must be >= 0")
        total = MODULE_BASE
        for _ in range(n_ops):
            total = total + CTRL_PER_OP
        for _ in range(n_ports):
            total = total + COMM_PER_PORT
        if reconfigurable:
            total = total + DYNAMIC_EXTRA
        return total

    def buffers_of(self, buffer_bytes: int) -> ResourceVector:
        """Inter-operation buffers: BRAM when large, LUT-RAM when small."""
        if buffer_bytes < 0:
            raise SynthesisError("buffer bytes must be >= 0")
        if buffer_bytes == 0:
            return ResourceVector()
        if buffer_bytes > BRAM_THRESHOLD_BYTES:
            return ResourceVector(brams=-(-buffer_bytes // BRAM_BYTES))
        return ResourceVector(luts=-(-buffer_bytes // LUT_RAM_BYTES))

    # -- whole module --------------------------------------------------------------

    def synthesize_module(
        self,
        name: str,
        ops: Sequence[Operation],
        ports: Sequence[PortSpec],
        buffer_bytes: int = 0,
        reconfigurable: bool = False,
        region: Optional[str] = None,
        implements: Iterable[str] = (),
    ) -> tuple[NetlistModule, SynthesisReport]:
        """Synthesize one module; returns the netlist module and the report."""
        datapath = self.datapath_of(ops)
        control = self.control_of(len(ops), len(ports), reconfigurable)
        buffers = self.buffers_of(buffer_bytes)
        total = _with_slices(datapath + control + buffers)
        module = NetlistModule(
            name=name,
            resources=total,
            ports=[NetlistPort(p.name, p.width, p.direction) for p in ports],
            reconfigurable=reconfigurable,
            region=region,
            implements=tuple(implements) or tuple(op.name for op in ops),
        )
        report = SynthesisReport(
            module=name,
            datapath=_with_slices(datapath),
            control=_with_slices(control),
            buffers=buffers,
            total=total,
            reconfigurable=reconfigurable,
        )
        return module, report
