"""Virtex-II device geometry and configuration-frame model.

Geometry (CLB array, slices, BRAM/multiplier columns) follows the Xilinx
DS031 data sheet.  The configuration model captures what matters for partial
reconfiguration latency:

- configuration data is organized in **vertical frames** spanning the full
  device height (hence the paper's rule that reconfigurable modules occupy
  the full height of the device);
- a module covering ``w`` CLB columns needs the frames of those columns, so
  its partial bitstream is ≈ ``w / clb_cols`` of the full bitstream plus a
  fixed command header.

The per-column frame count (22 frames per CLB column) is the documented
Virtex-II value; frame size is derived from the full-bitstream size so the
model stays self-consistent per device.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fabric.resources import ResourceVector

__all__ = [
    "VirtexIIDevice",
    "XC2V1000",
    "XC2V2000",
    "XC2V3000",
    "device_by_name",
    "SLICES_PER_CLB",
    "LUTS_PER_SLICE",
    "FRAMES_PER_CLB_COLUMN",
]

#: Virtex-II architecture constants (DS031).
SLICES_PER_CLB = 4
LUTS_PER_SLICE = 2
FFS_PER_SLICE = 2
TBUFS_PER_CLB = 4
#: Configuration frames addressing one CLB column (UG002 minor addresses).
FRAMES_PER_CLB_COLUMN = 22
#: Command header/footer of a partial bitstream (sync word, FAR writes,
#: CRC, desync), modelled as a flat overhead.
PARTIAL_HEADER_BITS = 1_024


@dataclass(frozen=True)
class VirtexIIDevice:
    """One Virtex-II part.

    ``bram_cols`` holds the x-positions (in CLB-column coordinates, 0-based,
    position means "immediately left of CLB column i") of the block-RAM /
    multiplier column pairs.
    """

    name: str
    clb_rows: int
    clb_cols: int
    full_bitstream_bits: int
    bram_cols: tuple[int, ...]
    brams_per_col: int

    def __post_init__(self) -> None:
        if self.clb_rows <= 0 or self.clb_cols <= 0:
            raise ValueError(f"{self.name}: CLB array must be positive")
        if self.full_bitstream_bits <= 0:
            raise ValueError(f"{self.name}: bitstream size must be positive")
        for c in self.bram_cols:
            if not 0 <= c <= self.clb_cols:
                raise ValueError(f"{self.name}: BRAM column {c} outside device")

    # -- capacity ---------------------------------------------------------------

    @property
    def slices(self) -> int:
        return self.clb_rows * self.clb_cols * SLICES_PER_CLB

    @property
    def luts(self) -> int:
        return self.slices * LUTS_PER_SLICE

    @property
    def ffs(self) -> int:
        return self.slices * FFS_PER_SLICE

    @property
    def tbufs(self) -> int:
        return self.clb_rows * self.clb_cols * TBUFS_PER_CLB

    @property
    def brams(self) -> int:
        return len(self.bram_cols) * self.brams_per_col

    @property
    def mults(self) -> int:
        # Virtex-II pairs one MULT18X18 with every BRAM.
        return self.brams

    def capacity(self) -> ResourceVector:
        """The whole device as a resource vector."""
        return ResourceVector(
            slices=self.slices,
            luts=self.luts,
            ffs=self.ffs,
            tbufs=self.tbufs,
            brams=self.brams,
            mults=self.mults,
        )

    def column_span_capacity(self, col0: int, width: int) -> ResourceVector:
        """Resources available in CLB columns ``[col0, col0+width)``, full height."""
        self._check_span(col0, width)
        clbs = self.clb_rows * width
        brams = sum(self.brams_per_col for c in self.bram_cols if col0 < c <= col0 + width)
        return ResourceVector(
            slices=clbs * SLICES_PER_CLB,
            luts=clbs * SLICES_PER_CLB * LUTS_PER_SLICE,
            ffs=clbs * SLICES_PER_CLB * FFS_PER_SLICE,
            tbufs=clbs * TBUFS_PER_CLB,
            brams=brams,
            mults=brams,
        )

    def _check_span(self, col0: int, width: int) -> None:
        if width <= 0:
            raise ValueError(f"column span width must be positive, got {width}")
        if col0 < 0 or col0 + width > self.clb_cols:
            raise ValueError(
                f"{self.name}: span [{col0}, {col0 + width}) outside 0..{self.clb_cols}"
            )

    # -- configuration frames -----------------------------------------------------

    @property
    def total_frames(self) -> int:
        """Modelled frame count: CLB column frames plus IOB/clock/BRAM frames."""
        non_clb = 64 + 4 * len(self.bram_cols)
        return FRAMES_PER_CLB_COLUMN * self.clb_cols + non_clb

    @property
    def frame_bits(self) -> int:
        """Bits per configuration frame (full bitstream / frame count, ceil)."""
        return -(-self.full_bitstream_bits // self.total_frames)

    def frames_for_span(self, col0: int, width: int) -> int:
        """Frames to reconfigure CLB columns ``[col0, col0+width)`` including
        the BRAM columns inside the span."""
        self._check_span(col0, width)
        brams_inside = sum(1 for c in self.bram_cols if col0 < c <= col0 + width)
        return FRAMES_PER_CLB_COLUMN * width + 4 * brams_inside

    def partial_bitstream_bits(self, col0: int, width: int) -> int:
        """Size of a partial bitstream covering the span, header included."""
        return self.frames_for_span(col0, width) * self.frame_bits + PARTIAL_HEADER_BITS

    def partial_bitstream_bytes(self, col0: int, width: int) -> int:
        return -(-self.partial_bitstream_bits(col0, width) // 8)

    def area_fraction(self, width: int) -> float:
        """Fraction of the CLB array covered by a full-height, ``width``-column module."""
        if not 0 < width <= self.clb_cols:
            raise ValueError(f"width {width} outside device")
        return width / self.clb_cols

    def __str__(self) -> str:
        return f"{self.name} ({self.clb_rows}x{self.clb_cols} CLBs, {self.slices} slices)"


def _evenly_spaced_bram_cols(clb_cols: int, n: int) -> tuple[int, ...]:
    """BRAM column x-positions, evenly distributed like the real parts."""
    return tuple(round((i + 1) * clb_cols / (n + 1)) for i in range(n))


#: XC2V1000: 40x32 CLBs, 5120 slices, 40 BRAMs, 4.1 Mb bitstream (DS031).
XC2V1000 = VirtexIIDevice(
    name="xc2v1000",
    clb_rows=40,
    clb_cols=32,
    full_bitstream_bits=4_082_592,
    bram_cols=_evenly_spaced_bram_cols(32, 4),
    brams_per_col=10,
)

#: XC2V2000: 56x48 CLBs, 10752 slices, 56 BRAMs, 8.4 Mb bitstream (DS031).
#: This is the paper's device (Sundance board).
XC2V2000 = VirtexIIDevice(
    name="xc2v2000",
    clb_rows=56,
    clb_cols=48,
    full_bitstream_bits=8_391_936,
    bram_cols=_evenly_spaced_bram_cols(48, 4),
    brams_per_col=14,
)

#: XC2V3000: 64x56 CLBs, 14336 slices, 96 BRAMs, 10.5 Mb bitstream (DS031).
XC2V3000 = VirtexIIDevice(
    name="xc2v3000",
    clb_rows=64,
    clb_cols=56,
    full_bitstream_bits=10_494_368,
    bram_cols=_evenly_spaced_bram_cols(56, 6),
    brams_per_col=16,
)

_CATALOG = {d.name: d for d in (XC2V1000, XC2V2000, XC2V3000)}


def device_by_name(name: str) -> VirtexIIDevice:
    """Look up a catalogued device (case-insensitive)."""
    try:
        return _CATALOG[name.lower()]
    except KeyError:
        raise KeyError(f"unknown device {name!r}; known: {sorted(_CATALOG)}") from None
