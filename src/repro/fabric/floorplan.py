"""Modular floorplanning.

Implements the placement rules the paper inherits from the Xilinx Modular
Design flow: "the height of the module is always the full height of the
device and its width ranges a minimal of four slices", bus macros straddle
the dividing column, and every module is placed-and-routed separately inside
its column range.

In Virtex-II a CLB column is two slice-columns wide, so the *four slices
minimum, multiple of four slices* rule translates to **at least 2 CLB
columns, in steps of 2 CLB columns**.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fabric.busmacro import BusMacro, BusMacroError, plan_bus_macros
from repro.fabric.device import VirtexIIDevice
from repro.fabric.netlist import Netlist
from repro.fabric.resources import ResourceVector

__all__ = ["FloorplanError", "ModulePlacement", "Floorplan", "Floorplanner", "MIN_WIDTH_CLB", "WIDTH_STEP_CLB"]

#: Four slices minimum width == 2 CLB columns; grown in 2-column steps.
MIN_WIDTH_CLB = 2
WIDTH_STEP_CLB = 2


class FloorplanError(ValueError):
    """Raised when a floorplan violates the modular-design rules."""


@dataclass(frozen=True, slots=True)
class ModulePlacement:
    """A full-height placement of a reconfigurable region."""

    region: str
    col0: int
    width: int

    @property
    def col_end(self) -> int:
        return self.col0 + self.width

    def overlaps(self, other: "ModulePlacement") -> bool:
        return self.col0 < other.col_end and other.col0 < self.col_end

    def contains_column(self, col: int) -> bool:
        return self.col0 <= col < self.col_end


@dataclass
class Floorplan:
    """Placements of every reconfigurable region plus derived geometry."""

    device: VirtexIIDevice
    placements: dict[str, ModulePlacement] = field(default_factory=dict)
    bus_macros: dict[str, list[BusMacro]] = field(default_factory=dict)

    def place(self, region: str, col0: int, width: int) -> ModulePlacement:
        """Place a region; enforces the modular-design rules immediately."""
        if region in self.placements:
            raise FloorplanError(f"region {region!r} already placed")
        if width <= 0:
            # Distinct from the minimum-width rule: a zero- or negative-width
            # span is degenerate geometry (it would "overlap" nothing and
            # occupy no frames), so reject it by name everywhere.
            raise FloorplanError(f"region {region!r}: zero-width span [{col0}, {col0 + width})")
        if width < MIN_WIDTH_CLB:
            raise FloorplanError(
                f"region {region!r}: width {width} CLB columns is below the 4-slice minimum "
                f"({MIN_WIDTH_CLB} columns)"
            )
        if width % WIDTH_STEP_CLB:
            raise FloorplanError(
                f"region {region!r}: width must be a multiple of 4 slices "
                f"({WIDTH_STEP_CLB} CLB columns), got {width}"
            )
        if col0 < 0 or col0 + width > self.device.clb_cols:
            raise FloorplanError(
                f"region {region!r}: span [{col0}, {col0 + width}) outside {self.device.name}"
            )
        candidate = ModulePlacement(region, col0, width)
        for other in self.placements.values():
            if candidate.overlaps(other):
                raise FloorplanError(f"region {region!r} overlaps region {other.region!r}")
        self.placements[region] = candidate
        return candidate

    # -- validation ---------------------------------------------------------

    def violations(self) -> list[str]:
        """Every modular-design rule the current placements break.

        ``place()`` enforces these incrementally; this re-checks a whole
        floorplan (including placements injected directly into the dict, as
        the co-optimizer's move generator does) with the same verdicts:
        zero-width spans are rejected, column ranges that merely *touch* at
        a shared boundary are legal, overlapping ranges are not.  Also
        catches bus-macro row collisions when two regions stack macros on
        the same dividing column.
        """
        problems: list[str] = []
        for p in self.placements.values():
            if p.width <= 0:
                problems.append(f"region {p.region!r}: zero-width span [{p.col0}, {p.col_end})")
                continue
            if p.width < MIN_WIDTH_CLB:
                problems.append(
                    f"region {p.region!r}: width {p.width} CLB columns is below the "
                    f"4-slice minimum ({MIN_WIDTH_CLB} columns)"
                )
            if p.width % WIDTH_STEP_CLB:
                problems.append(
                    f"region {p.region!r}: width must be a multiple of 4 slices "
                    f"({WIDTH_STEP_CLB} CLB columns), got {p.width}"
                )
            if p.col0 < 0 or p.col_end > self.device.clb_cols:
                problems.append(
                    f"region {p.region!r}: span [{p.col0}, {p.col_end}) outside {self.device.name}"
                )
        ordered = sorted(self.placements.values(), key=lambda x: (x.col0, x.region))
        for i, a in enumerate(ordered):
            for b in ordered[i + 1:]:
                if a.width > 0 and b.width > 0 and a.overlaps(b):
                    problems.append(f"region {a.region!r} overlaps region {b.region!r}")
        occupied: dict[tuple[int, int], str] = {}
        for region in sorted(self.bus_macros):
            for macro in self.bus_macros[region]:
                slot = (macro.column, macro.row)
                owner = occupied.get(slot)
                if owner is not None and owner != region:
                    problems.append(
                        f"bus-macro row collision on column {macro.column} row {macro.row}: "
                        f"regions {owner!r} and {region!r}"
                    )
                else:
                    occupied[slot] = region
        return problems

    def validate(self) -> None:
        """Raise :class:`FloorplanError` listing every violation, if any."""
        problems = self.violations()
        if problems:
            raise FloorplanError("; ".join(problems))

    # -- geometry -----------------------------------------------------------

    def static_columns(self) -> list[int]:
        """CLB columns belonging to the static part."""
        dynamic = set()
        for p in self.placements.values():
            dynamic.update(range(p.col0, p.col_end))
        return [c for c in range(self.device.clb_cols) if c not in dynamic]

    def static_capacity(self) -> ResourceVector:
        """Resources available to the static part (excludes bus-macro TBUFs)."""
        total = ResourceVector()
        for col in self.static_columns():
            total = total + self.device.column_span_capacity(col, 1)
        macro_tbufs = sum(m.tbufs // 2 for macros in self.bus_macros.values() for m in macros)
        return total - ResourceVector(tbufs=min(macro_tbufs, total.tbufs))

    def region_capacity(self, region: str) -> ResourceVector:
        p = self.placement(region)
        cap = self.device.column_span_capacity(p.col0, p.width)
        macro_tbufs = sum(m.tbufs // 2 for m in self.bus_macros.get(region, ()))
        return cap - ResourceVector(tbufs=min(macro_tbufs, cap.tbufs))

    def placement(self, region: str) -> ModulePlacement:
        try:
            return self.placements[region]
        except KeyError:
            raise KeyError(f"region {region!r} not placed") from None

    def boundary_column(self, region: str) -> int:
        """The dividing column where the region meets the static part.

        The macros straddle the left edge when the region touches the right
        device edge, and the right edge otherwise.
        """
        p = self.placement(region)
        if p.col0 > 0:
            return p.col0
        if p.col_end < self.device.clb_cols:
            return p.col_end
        raise FloorplanError(f"region {region!r} covers the whole device; no static boundary")

    def area_fraction(self, region: str) -> float:
        return self.device.area_fraction(self.placement(region).width)

    def partial_bitstream_bytes(self, region: str) -> int:
        p = self.placement(region)
        return self.device.partial_bitstream_bytes(p.col0, p.width)

    def summary(self) -> str:
        lines = [f"Floorplan on {self.device}"]
        for p in sorted(self.placements.values(), key=lambda x: x.col0):
            pct = 100.0 * self.area_fraction(p.region)
            nmac = len(self.bus_macros.get(p.region, ()))
            lines.append(
                f"  {p.region}: columns [{p.col0}, {p.col_end}) full height — "
                f"{pct:.1f}% of device, {nmac} bus macros, "
                f"{self.partial_bitstream_bytes(p.region)} B partial bitstream"
            )
        lines.append(f"  static part: {len(self.static_columns())} columns")
        return "\n".join(lines)


class Floorplanner:
    """Automatic floorplanning of reconfigurable regions.

    Chooses, per region, the narrowest legal column span whose capacity fits
    the worst-case variant (plus a safety margin for routing), packing
    regions against the right edge of the device — the paper's Fig. 4 layout
    (static part left, dynamic operator right).
    """

    def __init__(self, device: VirtexIIDevice, margin: float = 1.10):
        if margin < 1.0:
            raise ValueError("margin must be >= 1.0")
        self.device = device
        self.margin = margin

    def plan(self, netlist: Netlist) -> Floorplan:
        plan = Floorplan(self.device)
        regions = netlist.regions()
        next_end = self.device.clb_cols  # pack from the right edge
        for region in regions:
            variants = netlist.reconfigurable_modules(region)
            worst = ResourceVector()
            for v in variants:
                need = v.resources.scaled(self.margin)
                worst = ResourceVector(
                    **{k: max(getattr(worst, k), getattr(need, k)) for k in need.as_dict()}
                )
            width, col0 = self._fit(worst, next_end)
            plan.place(region, col0, width)
            next_end = col0
            boundary = plan.boundary_column(region)
            bits = netlist.boundary_bits_of_region(region)
            # Split conservatively: assume half in, half out when unknown.
            bits_in = -(-bits // 2)
            bits_out = bits - bits_in
            try:
                plan.bus_macros[region] = plan_bus_macros(
                    self.device, region, boundary, bits_in, bits_out
                )
            except BusMacroError as err:
                raise FloorplanError(str(err)) from err
            # Re-check the fit with macro TBUFs deducted.
            if not worst.fits_in(plan.region_capacity(region)):
                raise FloorplanError(
                    f"region {region!r}: variants do not fit after bus-macro allocation"
                )
        self._check_static(netlist, plan)
        return plan

    def _fit(self, need: ResourceVector, right_edge: int) -> tuple[int, int]:
        """Find (width, col0) of the narrowest span ending at ``right_edge``
        (sliding left if BRAM columns are required but absent)."""
        width = MIN_WIDTH_CLB
        while width <= right_edge:
            # Slide the span leftward to capture BRAM columns if needed.
            for col0 in range(right_edge - width, -1, -1):
                cap = self.device.column_span_capacity(col0, width)
                if need.fits_in(cap):
                    return width, col0
            width += WIDTH_STEP_CLB
        raise FloorplanError(
            f"no span of {self.device.name} fits requirement {need} "
            f"(right edge {right_edge})"
        )

    def _check_static(self, netlist: Netlist, plan: Floorplan) -> None:
        static_need = ResourceVector.sum(m.resources for m in netlist.static_modules())
        if not static_need.scaled(self.margin).fits_in(plan.static_capacity()):
            raise FloorplanError(
                f"static part needs {static_need} (+margin), only "
                f"{plan.static_capacity()} left after placing regions"
            )
