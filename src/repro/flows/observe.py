"""Flow observability: structured per-stage events and pluggable sinks.

Every stage of the :class:`~repro.flows.pipeline.FlowPipeline` emits one
:class:`FlowEvent` describing what happened — stage name, wall time, whether
the content-addressed cache served the artefact, and a few stage-specific
result metrics.  Consumers subscribe through the :class:`FlowObserver`
protocol; library code never writes to stdout on its own:

- :class:`LoggingObserver` (the default) routes events to the standard
  ``logging`` channel ``repro.flows`` — silent unless the application
  configures a handler;
- :class:`JsonLinesObserver` appends one JSON object per event to a file or
  stream, for external tooling and benchmark harnesses;
- :class:`RecordingObserver` keeps events in memory (tests, profiling);
- :class:`CompositeObserver` fans one event out to several sinks.

:func:`render_profile` turns a list of events into the per-stage table the
CLI prints under ``--profile``.
"""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterable, Mapping, Optional, Protocol, runtime_checkable

__all__ = [
    "FlowEvent",
    "FlowObserver",
    "LoggingObserver",
    "JsonLinesObserver",
    "RecordingObserver",
    "CompositeObserver",
    "render_profile",
]

logger = logging.getLogger("repro.flows")


@dataclass(frozen=True)
class FlowEvent:
    """One completed pipeline stage."""

    flow: str  #: flow identity, e.g. ``"mccdma_tx@sundance"``
    stage: str  #: stage name (``modelisation`` … ``executive``)
    cache_hit: bool  #: True when the artefact came from the ArtifactCache
    wall_time_s: float  #: wall-clock time spent in the stage (lookup + execute)
    fingerprint: str  #: content-addressed key of the stage's inputs
    metrics: Mapping[str, object] = field(default_factory=dict)

    @property
    def status(self) -> str:
        return "hit" if self.cache_hit else "miss"

    def to_dict(self) -> dict:
        return {
            "flow": self.flow,
            "stage": self.stage,
            "status": self.status,
            "cache_hit": self.cache_hit,
            "wall_time_s": self.wall_time_s,
            "fingerprint": self.fingerprint,
            "metrics": dict(self.metrics),
        }


@runtime_checkable
class FlowObserver(Protocol):
    """Anything that wants to see pipeline stage events."""

    def on_event(self, event: FlowEvent) -> None:  # pragma: no cover - protocol
        ...


class LoggingObserver:
    """Default sink: the standard ``logging`` channel ``repro.flows``."""

    def __init__(self, level: int = logging.INFO):
        self.level = level

    def on_event(self, event: FlowEvent) -> None:
        logger.log(
            self.level,
            "[%s] %-18s %-4s %8.2f ms  %s  %s",
            event.flow,
            event.stage,
            event.status,
            event.wall_time_s * 1e3,
            event.fingerprint[:12],
            " ".join(f"{k}={v}" for k, v in sorted(event.metrics.items())),
        )


class JsonLinesObserver:
    """Append one JSON object per event to ``target`` (path or text stream).

    A path target is opened **once** in append mode and kept for the
    observer's life (the previous open-per-event behaviour turned a 1000-job
    sweep into 1000 open/close cycles); every line is flushed so external
    tail readers see events live.  Close explicitly via :meth:`close` or use
    the observer as a context manager; a stream target is never closed (the
    caller owns it).

    A write or flush against a handle that was closed under us — typically
    interpreter shutdown tearing streams down while a late stage event is
    still in flight — degrades to one logged warning and marks the sink
    dead; subsequent events are dropped silently.  Observability must never
    abort (or noisily crash out of) the run it is observing.
    """

    def __init__(self, target: str | Path | IO[str]):
        self._stream: IO[str]
        if isinstance(target, (str, Path)):
            self._path: Optional[Path] = Path(target)
            self._stream = self._path.open("a", encoding="utf-8")
        else:
            self._path = None
            self._stream = target
        self._dead = False

    def on_event(self, event: FlowEvent) -> None:
        if self._dead:
            return
        try:
            self._stream.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
            self._stream.flush()
        except (ValueError, OSError) as err:
            # ValueError is "I/O operation on closed file"; OSError covers
            # broken pipes and full disks.  Either way the sink is gone.
            self._dead = True
            try:
                logger.warning(
                    "JsonLinesObserver sink %s is gone (%s); dropping further events",
                    self._path if self._path is not None else "<stream>", err,
                )
            except Exception:  # pragma: no cover - logging torn down too
                pass

    def close(self) -> None:
        """Close the underlying file (only when this observer opened it)."""
        if self._path is not None and not self._stream.closed:
            try:
                self._stream.close()
            except (ValueError, OSError):  # pragma: no cover - racing shutdown
                self._dead = True

    def __enter__(self) -> "JsonLinesObserver":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class RecordingObserver:
    """Keep every event in memory; the workhorse of tests and profiling."""

    def __init__(self) -> None:
        self.events: list[FlowEvent] = []

    def on_event(self, event: FlowEvent) -> None:
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()

    def count(self, stage: Optional[str] = None, cache_hit: Optional[bool] = None) -> int:
        return sum(
            1
            for e in self.events
            if (stage is None or e.stage == stage)
            and (cache_hit is None or e.cache_hit == cache_hit)
        )

    def executions(self, stage: Optional[str] = None) -> int:
        """Stages that actually ran (cache misses)."""
        return self.count(stage=stage, cache_hit=False)

    def hits(self, stage: Optional[str] = None) -> int:
        return self.count(stage=stage, cache_hit=True)


class CompositeObserver:
    """Fan one event out to several observers.

    Sinks are isolated from each other: an observer that raises is logged
    (with traceback, once per observer — a broken sink would otherwise spam
    one log record per stage) and the event still reaches the remaining
    sinks.  Observability must never abort the run it is observing.
    """

    def __init__(self, *observers: FlowObserver):
        self.observers = list(observers)
        self._failed: set[int] = set()

    def on_event(self, event: FlowEvent) -> None:
        for obs in self.observers:
            try:
                obs.on_event(event)
            except Exception:
                if id(obs) not in self._failed:
                    self._failed.add(id(obs))
                    logger.exception(
                        "observer %s raised on %s/%s; suppressing its further errors",
                        type(obs).__name__, event.flow, event.stage,
                    )


def render_profile(events: Iterable[FlowEvent], aggregate: bool = False) -> str:
    """Per-stage profile table (the CLI's ``--profile`` output).

    The default layout prints one row per event — right for a single flow,
    unreadable for a sweep that replays the same stages hundreds of times.
    ``aggregate=True`` groups events by stage and reports execution count,
    cache hit rate and total/mean wall time per stage instead.
    """
    rows = list(events)
    if not rows:
        return "flow profile: no stage events recorded"
    if aggregate:
        return _render_profile_aggregate(rows)
    width = max(len(e.stage) for e in rows)
    lines = [f"{'stage':<{width}}  {'cache':<5}  {'time':>10}  fingerprint   metrics"]
    for e in rows:
        metrics = " ".join(f"{k}={v}" for k, v in sorted(e.metrics.items()))
        lines.append(
            f"{e.stage:<{width}}  {e.status:<5}  {e.wall_time_s * 1e3:>7.2f} ms  "
            f"{e.fingerprint[:12]}  {metrics}".rstrip()
        )
    total = sum(e.wall_time_s for e in rows)
    hits = sum(1 for e in rows if e.cache_hit)
    lines.append(
        f"{'total':<{width}}  {hits}/{len(rows)} hit  {total * 1e3:>7.2f} ms"
    )
    return "\n".join(lines)


def _render_profile_aggregate(rows: list[FlowEvent]) -> str:
    """Per-stage rollup: count / hit rate / total + mean time, busiest first."""
    groups: dict[str, list[FlowEvent]] = {}
    for event in rows:
        groups.setdefault(event.stage, []).append(event)
    width = max(max(len(stage) for stage in groups), len("stage"))
    lines = [
        f"{'stage':<{width}}  {'count':>5}  {'hits':>4}  {'rate':>5}  "
        f"{'total':>11}  {'mean':>11}"
    ]
    ordered = sorted(
        groups.items(), key=lambda kv: (-sum(e.wall_time_s for e in kv[1]), kv[0])
    )
    for stage, events in ordered:
        total = sum(e.wall_time_s for e in events)
        hits = sum(1 for e in events if e.cache_hit)
        lines.append(
            f"{stage:<{width}}  {len(events):>5}  {hits:>4}  "
            f"{100 * hits / len(events):>4.0f}%  {total * 1e3:>8.2f} ms  "
            f"{total / len(events) * 1e3:>8.2f} ms"
        )
    grand = sum(e.wall_time_s for e in rows)
    grand_hits = sum(1 for e in rows if e.cache_hit)
    lines.append(
        f"{'total':<{width}}  {len(rows):>5}  {grand_hits:>4}  "
        f"{100 * grand_hits / len(rows):>4.0f}%  {grand * 1e3:>8.2f} ms"
    )
    return "\n".join(lines)
