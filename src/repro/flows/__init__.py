"""Top-down flow orchestration (the paper's Fig. 3).

Modelisation (graphs + constraints) → adequation (SynDEx) → VHDL +
constraints-file generation → Modular Design back-end (floorplan, PAR,
bitstreams) → dynamic verification (executive simulation with the runtime
reconfiguration manager).

- :mod:`repro.flows.constraints` — the dynamic-module constraints file
  (loading, unloading, area sharing, exclusion),
- :mod:`repro.flows.modular` — the Modular-Design back-end driver,
- :mod:`repro.flows.pipeline` — staged pipeline with content-addressed
  artefact caching (fingerprints, :class:`ArtifactCache`, :class:`Stage`,
  :class:`FlowPipeline`),
- :mod:`repro.flows.observe` — per-stage flow events and observer sinks,
- :mod:`repro.flows.flow` — the complete design flow (a façade over the
  pipeline),
- :mod:`repro.flows.runtime` — runtime system simulation,
- :mod:`repro.flows.report` — textual reports (Table 1 regeneration).
"""

from repro.flows.constraints import (
    ConstraintsError,
    DynamicConstraints,
    ModuleConstraint,
    parse_constraints,
)
from repro.flows.modular import ModularDesignResult, run_modular_backend
from repro.flows.observe import (
    CompositeObserver,
    FlowEvent,
    FlowObserver,
    JsonLinesObserver,
    LoggingObserver,
    RecordingObserver,
    render_profile,
)
from repro.flows.pipeline import ArtifactCache, CacheStats, FlowPipeline, Stage, fingerprint
from repro.flows.flow import STAGE_NAMES, DesignFlow, FlowResult, TimingConstraintError
from repro.flows.runtime import RuntimeResult, SystemSimulation
from repro.flows.report import table1_report
from repro.flows.designspace import (
    DesignPoint,
    SearchReport,
    design_point_from_payload,
    explore_design_space,
    search_multiregion,
    sweep_jobs_for_grid,
)

__all__ = [
    "ConstraintsError",
    "DynamicConstraints",
    "ModuleConstraint",
    "parse_constraints",
    "ModularDesignResult",
    "run_modular_backend",
    "FlowEvent",
    "FlowObserver",
    "LoggingObserver",
    "JsonLinesObserver",
    "RecordingObserver",
    "CompositeObserver",
    "render_profile",
    "ArtifactCache",
    "CacheStats",
    "FlowPipeline",
    "Stage",
    "fingerprint",
    "STAGE_NAMES",
    "DesignFlow",
    "FlowResult",
    "TimingConstraintError",
    "RuntimeResult",
    "SystemSimulation",
    "table1_report",
    "DesignPoint",
    "SearchReport",
    "search_multiregion",
    "design_point_from_payload",
    "explore_design_space",
    "sweep_jobs_for_grid",
]
