"""Textual reports — in particular the regeneration of the paper's Table 1.

Table 1 ("Fix-Dynamic modulation implementation comparison") compares the
FPGA resources of the QPSK and QAM-16 modulators implemented (i) as fixed
blocks and (ii) as runtime-reconfigurable variants of the dynamic region,
plus the reconfiguration time of each scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dfg.library import OperationLibrary
from repro.dfg.operations import Operation
from repro.fabric.device import VirtexIIDevice, XC2V2000
from repro.fabric.resources import ResourceVector
from repro.fabric.synthesis import PortSpec, Synthesizer
from repro.flows.flow import FlowResult

__all__ = ["Table1Row", "Table1Data", "build_table1", "table1_report"]

_STANDARD_PORTS = [PortSpec("din", 32, "in"), PortSpec("dout", 32, "out")]


@dataclass
class Table1Row:
    """One implementation column of Table 1 (we store rows per scheme)."""

    scheme: str
    resources: ResourceVector
    reconfig_time_ms: float


@dataclass
class Table1Data:
    """All schemes plus device context."""

    rows: list[Table1Row]
    device: VirtexIIDevice
    dynamic_area_fraction: Optional[float] = None

    def row(self, scheme: str) -> Table1Row:
        for r in self.rows:
            if r.scheme == scheme:
                return r
        raise KeyError(f"no scheme {scheme!r}")

    def render(self) -> str:
        resources = ("slices", "luts", "ffs", "tbufs", "brams")
        labels = {
            "slices": "Slices",
            "luts": "4-input LUTs",
            "ffs": "Flip-flops",
            "tbufs": "TBUFs (bus macros)",
            "brams": "Block RAMs",
        }
        header = f"{'Resource':<22}" + "".join(f"{r.scheme:>16}" for r in self.rows)
        sep = "-" * len(header)
        lines = [
            "Table 1 — Fix-Dynamic modulation implementation comparison "
            f"({self.device.name})",
            sep,
            header,
            sep,
        ]
        for key in resources:
            row = f"{labels[key]:<22}"
            for r in self.rows:
                row += f"{getattr(r.resources, key):>16}"
            lines.append(row)
        row = f"{'Reconfiguration time':<22}"
        for r in self.rows:
            cell = "0" if r.reconfig_time_ms == 0 else f"{r.reconfig_time_ms:.1f} ms"
            row += f"{cell:>16}"
        lines.append(row)
        lines.append(sep)
        if self.dynamic_area_fraction is not None:
            lines.append(
                f"dynamic region: {100 * self.dynamic_area_fraction:.1f}% of the device "
                "(paper: 8%)"
            )
        return "\n".join(lines)


def build_table1(
    library: OperationLibrary,
    device: VirtexIIDevice = XC2V2000,
    flow: Optional[FlowResult] = None,
) -> Table1Data:
    """Compute the Table 1 schemes.

    - ``QPSK fix`` / ``QAM-16 fix`` — each modulator synthesized inside a
      fixed design (shares the design's harness: no reconfiguration logic);
    - ``QPSK dyn`` / ``QAM-16 dyn`` — the generated reconfigurable variants
      (full generated harness + reconfiguration handshake), taken from the
      flow result when available so they match the real generated design.
    """
    synthesizer = Synthesizer(library)
    rows: list[Table1Row] = []

    for scheme, kind in (("QPSK fix", "qpsk_mod"), ("QAM-16 fix", "qam16_mod")):
        module, _ = synthesizer.synthesize_module(
            scheme, [Operation(kind, kind)], _STANDARD_PORTS, reconfigurable=False
        )
        rows.append(Table1Row(scheme=scheme, resources=module.resources, reconfig_time_ms=0.0))

    area = None
    if flow is not None:
        latency_ms = {
            region: ns / 1e6 for region, ns in flow.modular.reconfig_latency_ns.items()
        }
        for scheme, op_name in (("QPSK dyn", "mod_qpsk"), ("QAM-16 dyn", "mod_qam16")):
            variant = next(
                m for m in flow.modular.netlist.reconfigurable_modules()
                if op_name in m.implements
            )
            assert variant.region is not None
            # The dynamic scheme also pays the region's bus macros (eight
            # 3-state buffers each) — a row of the paper's table.
            macros = flow.modular.floorplan.bus_macros.get(variant.region, [])
            macro_tbufs = ResourceVector(tbufs=sum(m.tbufs for m in macros))
            rows.append(
                Table1Row(
                    scheme=scheme,
                    resources=variant.resources + macro_tbufs,
                    reconfig_time_ms=latency_ms[variant.region],
                )
            )
            area = flow.modular.region_area_fraction(variant.region)
    else:
        for scheme, kind in (("QPSK dyn", "qpsk_mod"), ("QAM-16 dyn", "qam16_mod")):
            module, _ = synthesizer.synthesize_module(
                scheme, [Operation(kind, kind)], _STANDARD_PORTS,
                reconfigurable=True, region="D1",
            )
            rows.append(Table1Row(scheme=scheme, resources=module.resources, reconfig_time_ms=4.0))

    return Table1Data(rows=rows, device=device, dynamic_area_fraction=area)


def table1_report(
    library: OperationLibrary,
    device: VirtexIIDevice = XC2V2000,
    flow: Optional[FlowResult] = None,
) -> str:
    """Rendered Table 1 text."""
    return build_table1(library, device, flow).render()
