"""Design-space exploration over devices and reconfiguration architectures.

Automates the question a platform architect asks before committing to a
part: for a given application, how do region area, partial-bitstream size,
reconfiguration latency and iteration period move across candidate FPGAs
and Fig. 2 manager/builder placements?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.arch.boards import Board, sundance_board
from repro.dfg.graph import AlgorithmGraph
from repro.dfg.library import OperationLibrary
from repro.fabric.device import VirtexIIDevice, XC2V1000, XC2V2000, XC2V3000
from repro.fabric.floorplan import FloorplanError
from repro.flows.constraints import DynamicConstraints
from repro.flows.flow import DesignFlow, FlowResult
from repro.flows.observe import FlowObserver
from repro.flows.pipeline import ArtifactCache
from repro.reconfig.architectures import ReconfigArchitecture, case_a_standalone, case_b_processor

__all__ = ["DesignPoint", "explore_design_space"]


@dataclass
class DesignPoint:
    """One (device, reconfiguration architecture) evaluation."""

    device: str
    architecture: str
    fits: bool
    error: Optional[str] = None
    region_area: dict[str, float] = field(default_factory=dict)
    bitstream_bytes: dict[str, int] = field(default_factory=dict)
    reconfig_latency_ns: dict[str, int] = field(default_factory=dict)
    clock_mhz: float = 0.0
    makespan_ns: int = 0
    flow_result: Optional[FlowResult] = None

    def render(self) -> str:
        if not self.fits:
            return f"{self.device:<10} {self.architecture:<20} DOES NOT FIT: {self.error}"
        regions = ", ".join(
            f"{r}={100 * a:.1f}%/{self.reconfig_latency_ns[r] / 1e6:.2f}ms"
            for r, a in sorted(self.region_area.items())
        )
        return (
            f"{self.device:<10} {self.architecture:<20} {regions} "
            f"clock={self.clock_mhz:.0f}MHz iter={self.makespan_ns / 1e3:.1f}us"
        )


def explore_design_space(
    graph: AlgorithmGraph,
    library: OperationLibrary,
    devices: Sequence[VirtexIIDevice] = (XC2V1000, XC2V2000, XC2V3000),
    architectures: Sequence[ReconfigArchitecture] = (),
    board_factory: Callable[[VirtexIIDevice], Board] = lambda dev: sundance_board(device=dev),
    dynamic_constraints: Optional[DynamicConstraints] = None,
    configure_flow: Optional[Callable[[DesignFlow], None]] = None,
    keep_flow_results: bool = False,
    cache: Optional[ArtifactCache] = None,
    share_cache: bool = True,
    observer: Optional[FlowObserver] = None,
) -> list[DesignPoint]:
    """Run the full flow at every (device, architecture) point.

    Points that do not fit (floorplanning fails) are reported, not raised.
    ``configure_flow`` may pin mappings or set deadlines per flow;
    ``keep_flow_results`` attaches the complete :class:`FlowResult` to each
    fitting point (memory-heavy for large sweeps).

    All points run through one shared content-addressed
    :class:`ArtifactCache` (pass ``cache=`` to reuse yours across sweeps, or
    ``share_cache=False`` to disable caching): stages whose fingerprinted
    inputs do not involve the swept dimensions — modelisation, first-pass
    adequation, VHDL generation when only the device changes — execute once
    for the whole sweep instead of once per point.  ``observer`` sees every
    stage event of every point.
    """
    archs = list(architectures) or [case_a_standalone(), case_b_processor()]
    shared_cache = cache if cache is not None else (ArtifactCache() if share_cache else None)
    points: list[DesignPoint] = []
    for device in devices:
        for arch in archs:
            board = board_factory(device)
            flow = DesignFlow(
                graph=graph,
                board=board,
                library=library,
                dynamic_constraints=dynamic_constraints,
                reconfig_architecture=arch,
                cache=shared_cache,
                observer=observer,
            )
            if configure_flow is not None:
                configure_flow(flow)
            try:
                result = flow.run()
            except FloorplanError as err:
                points.append(
                    DesignPoint(device=device.name, architecture=arch.name, fits=False, error=str(err))
                )
                continue
            regions = result.modular.floorplan.placements
            points.append(
                DesignPoint(
                    device=device.name,
                    architecture=arch.name,
                    fits=True,
                    region_area={
                        r: result.modular.region_area_fraction(r) for r in regions
                    },
                    bitstream_bytes={
                        r: result.modular.floorplan.partial_bitstream_bytes(r) for r in regions
                    },
                    reconfig_latency_ns=dict(result.modular.reconfig_latency_ns),
                    clock_mhz=result.modular.par_report.clock_mhz,
                    makespan_ns=result.makespan_ns,
                    flow_result=result if keep_flow_results else None,
                )
            )
    return points
