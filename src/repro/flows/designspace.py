"""Design-space exploration over devices and reconfiguration architectures.

Automates the question a platform architect asks before committing to a
part: for a given application, how do region area, partial-bitstream size,
reconfiguration latency and iteration period move across candidate FPGAs
and Fig. 2 manager/builder placements?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional, Sequence

from repro.arch.boards import Board, sundance_board
from repro.dfg.graph import AlgorithmGraph
from repro.dfg.library import OperationLibrary
from repro.fabric.device import VirtexIIDevice, XC2V1000, XC2V2000, XC2V3000
from repro.fabric.floorplan import FloorplanError
from repro.flows.constraints import DynamicConstraints
from repro.flows.flow import DesignFlow, FlowResult
from repro.flows.observe import FlowObserver
from repro.flows.pipeline import ArtifactCache
from repro.reconfig.architectures import ReconfigArchitecture, case_a_standalone, case_b_processor

__all__ = [
    "DesignPoint",
    "explore_design_space",
    "sweep_jobs_for_grid",
    "design_point_from_payload",
    "SearchReport",
    "search_multiregion",
]


@dataclass
class DesignPoint:
    """One (device, reconfiguration architecture) evaluation."""

    device: str
    architecture: str
    fits: bool
    error: Optional[str] = None
    region_area: dict[str, float] = field(default_factory=dict)
    bitstream_bytes: dict[str, int] = field(default_factory=dict)
    reconfig_latency_ns: dict[str, int] = field(default_factory=dict)
    clock_mhz: float = 0.0
    makespan_ns: int = 0
    flow_result: Optional[FlowResult] = None

    def render(self) -> str:
        if not self.fits:
            return f"{self.device:<10} {self.architecture:<20} DOES NOT FIT: {self.error}"
        regions = ", ".join(
            f"{r}={100 * a:.1f}%/{self.reconfig_latency_ns[r] / 1e6:.2f}ms"
            for r, a in sorted(self.region_area.items())
        )
        return (
            f"{self.device:<10} {self.architecture:<20} {regions} "
            f"clock={self.clock_mhz:.0f}MHz iter={self.makespan_ns / 1e3:.1f}us"
        )


@dataclass
class SearchReport:
    """Fixed-sweep frontier and searched optimum, side by side.

    ``fixed`` maps region count to the :class:`~repro.search.objective.CostBreakdown`
    of the deterministic fixed-sweep point (the paper's idiom: condition
    groups round-robin over ``k`` regions, spans packed against the right
    edge), ``searched`` is the driver's best.  ``gain`` < 1.0 means the
    search beat every fixed point; 1.0 means it matched the frontier.
    """

    graph: str
    device: str
    architecture: str
    method: str
    fixed: dict[int, Any] = field(default_factory=dict)
    searched: Any = None
    result: Any = None

    @property
    def best_fixed_cost_ns(self) -> float:
        return min(c.total_ns for c in self.fixed.values())

    @property
    def best_fixed_k(self) -> int:
        return min(self.fixed, key=lambda k: self.fixed[k].total_ns)

    @property
    def gain(self) -> float:
        return self.searched.total_ns / self.best_fixed_cost_ns

    def to_dict(self) -> dict:
        return {
            "graph": self.graph,
            "device": self.device,
            "architecture": self.architecture,
            "method": self.method,
            "fixed": {str(k): c.to_dict() for k, c in sorted(self.fixed.items())},
            "best_fixed_k": self.best_fixed_k,
            "best_fixed_cost_ns": self.best_fixed_cost_ns,
            "searched": self.searched.to_dict(),
            "gain": self.gain,
            "result": self.result.to_dict(),
        }

    def render(self) -> str:
        lines = [
            f"search report: {self.graph} on {self.device} / {self.architecture}",
            f"{'point':<14} {'total':>12} {'makespan':>12} {'reconfig':>12} {'feasible':>9}",
        ]
        for k in sorted(self.fixed):
            c = self.fixed[k]
            lines.append(
                f"fixed k={k:<6} {c.total_ns / 1e3:>10.1f}us {c.makespan_ns / 1e3:>10.1f}us "
                f"{c.reconfig_busy_ns / 1e3:>10.1f}us {str(c.feasible):>9}"
            )
        c = self.searched
        lines.append(
            f"{self.method:<14} {c.total_ns / 1e3:>10.1f}us {c.makespan_ns / 1e3:>10.1f}us "
            f"{c.reconfig_busy_ns / 1e3:>10.1f}us {str(c.feasible):>9}"
        )
        lines.append(
            f"gain vs best fixed (k={self.best_fixed_k}): {self.gain:.3f}x "
            f"over {self.result.evaluations} evaluation(s), digest {self.result.digest()}"
        )
        return "\n".join(lines)


def search_multiregion(
    graph: AlgorithmGraph,
    library: OperationLibrary,
    device: VirtexIIDevice = XC2V2000,
    architecture: Optional[ReconfigArchitecture] = None,
    method: str = "anneal",
    budget: int = 400,
    seed: int = 0,
    restarts: int = 2,
    max_regions: Optional[int] = None,
    cache: Optional[ArtifactCache] = None,
    jobs: int = 0,
    pool=None,
) -> SearchReport:
    """Co-optimize partitioning, region count and floorplan for ``graph``.

    Evaluates the deterministic fixed-sweep frontier (every region count
    ``1..max_regions``) first — those evaluations land in the same memo the
    search uses, so the frontier is free context, not extra budget — then
    runs the requested driver.  Because restart 0 starts *from* a frontier
    point, the searched optimum is never worse than the best fixed point
    given any budget >= 1.

    ``jobs>0`` (or a warm ``pool=``) shards the restarts over the parallel
    sweep engine via :func:`repro.search.run_search_sharded`; shard
    trajectories are bit-identical to the sequential restarts, though
    unspent per-restart budget no longer rolls over (see
    :mod:`repro.search.parallel`).
    """
    # Deferred so `repro.search` can import the pipeline (cache/fingerprints)
    # at module level without a cycle through this module.
    from repro.search import (
        CostEvaluator,
        SearchConfig,
        SearchSpace,
        run_search,
        run_search_sharded,
    )

    space = SearchSpace(graph, library, device=device, max_regions=max_regions)
    evaluator = CostEvaluator(
        space,
        architecture=architecture or case_a_standalone(),
        cache=cache,
    )
    fixed = {
        k: evaluator.evaluate(space.initial_state(k))
        for k in range(1, space.max_regions + 1)
    }
    config = SearchConfig(budget=budget, seed=seed, restarts=restarts)
    if jobs > 0 or pool is not None:
        result = run_search_sharded(
            graph,
            library,
            device=device,
            architecture=evaluator.architecture,
            method=method,
            config=config,
            max_regions=max_regions,
            jobs=jobs,
            pool=pool,
        )
    else:
        result = run_search(space, evaluator, config, method=method)
    # The search starts at initial_state() = the default-k frontier point,
    # so its best can only tie or beat that point; re-check against the
    # whole frontier and keep the better of the two.
    searched = result.best_cost
    if searched.total_ns > min(c.total_ns for c in fixed.values()):
        # Budget too small to re-reach the frontier: report the frontier
        # point as the searched best rather than pretending regression.
        best_k = min(fixed, key=lambda k: fixed[k].total_ns)
        searched = fixed[best_k]
        result.best_state = space.initial_state(best_k)
        result.best_cost = searched
    return SearchReport(
        graph=graph.name,
        device=device.name,
        architecture=evaluator.architecture.name,
        method=method,
        fixed=fixed,
        searched=searched,
        result=result,
    )


def sweep_jobs_for_grid(
    graph: AlgorithmGraph,
    library: OperationLibrary,
    devices: Sequence[VirtexIIDevice] = (XC2V1000, XC2V2000, XC2V3000),
    architectures: Sequence[ReconfigArchitecture] = (),
    dynamic_constraints: Optional[DynamicConstraints] = None,
    pins: Sequence[tuple[str, str]] = (),
    board_builder: str = "repro.arch.boards:sundance_board",
    prefetch: bool = True,
) -> list:
    """Picklable :class:`~repro.exec.worker.SweepJob` list for the grid.

    Job ids are ``<device>@<architecture>``, enumerated devices-major —
    the same order :func:`explore_design_space` evaluates serially, so the
    engine's submission-ordered results line up with the serial points.
    """
    from repro.exec.worker import SweepJob

    archs = list(architectures) or [case_a_standalone(), case_b_processor()]
    return [
        SweepJob(
            job_id=f"{device.name}@{arch.name}",
            graph=graph,
            library=library,
            device=device,
            architecture=arch,
            board_builder=board_builder,
            dynamic_constraints=dynamic_constraints,
            pins=tuple(pins),
            prefetch=prefetch,
        )
        for device in devices
        for arch in archs
    ]


def design_point_from_payload(result) -> DesignPoint:
    """Rebuild a :class:`DesignPoint` from one engine job result."""
    if not result.ok:
        device, _, architecture = result.job_id.partition("@")
        return DesignPoint(
            device=device,
            architecture=architecture,
            fits=False,
            error=f"job failed after {result.attempts} attempt(s): {result.error}",
        )
    payload: dict[str, Any] = result.payload
    if not payload["fits"]:
        return DesignPoint(
            device=payload["device"],
            architecture=payload["architecture"],
            fits=False,
            error=payload["error"],
        )
    return DesignPoint(
        device=payload["device"],
        architecture=payload["architecture"],
        fits=True,
        region_area=dict(payload["region_area"]),
        bitstream_bytes=dict(payload["bitstream_bytes"]),
        reconfig_latency_ns=dict(payload["reconfig_latency_ns"]),
        clock_mhz=payload["clock_mhz"],
        makespan_ns=payload["makespan_ns"],
    )


def _explore_parallel(
    graph, library, devices, architectures, dynamic_constraints, pins,
    jobs, timeout_s, retries, cache_dir, observer, pool,
) -> list[DesignPoint]:
    from repro.exec.engine import ParallelSweepEngine

    sweep_jobs = sweep_jobs_for_grid(
        graph, library,
        devices=devices,
        architectures=architectures,
        dynamic_constraints=dynamic_constraints,
        pins=pins,
    )
    engine = ParallelSweepEngine(
        jobs=jobs,
        timeout_s=timeout_s,
        retries=retries,
        cache_dir=cache_dir,
        observer=observer,
        sweep_name=f"designspace:{graph.name}",
        pool=pool,
    )
    try:
        report = engine.run(sweep_jobs)
    finally:
        if pool is None:  # engine-owned workers have no further caller
            engine.close()
    return [design_point_from_payload(r) for r in report.results]


def explore_design_space(
    graph: AlgorithmGraph,
    library: OperationLibrary,
    devices: Sequence[VirtexIIDevice] = (XC2V1000, XC2V2000, XC2V3000),
    architectures: Sequence[ReconfigArchitecture] = (),
    board_factory: Callable[[VirtexIIDevice], Board] = lambda dev: sundance_board(device=dev),
    dynamic_constraints: Optional[DynamicConstraints] = None,
    configure_flow: Optional[Callable[[DesignFlow], None]] = None,
    pins: Sequence[tuple[str, str]] = (),
    keep_flow_results: bool = False,
    cache: Optional[ArtifactCache] = None,
    share_cache: bool = True,
    observer: Optional[FlowObserver] = None,
    jobs: int = 1,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    cache_dir: Optional[str | Path] = None,
    pool=None,
) -> list[DesignPoint]:
    """Run the full flow at every (device, architecture) point.

    Points that do not fit (floorplanning fails) are reported, not raised.
    ``configure_flow`` may pin mappings or set deadlines per flow (serial
    only — it cannot cross a process boundary); ``pins`` is its picklable
    subset, ``(operation, operator)`` pairs applied to every flow in both
    modes.  ``keep_flow_results`` attaches the complete :class:`FlowResult`
    to each fitting point (memory-heavy for large sweeps).

    All points run through one shared content-addressed
    :class:`ArtifactCache` (pass ``cache=`` to reuse yours across sweeps, or
    ``share_cache=False`` to disable caching): stages whose fingerprinted
    inputs do not involve the swept dimensions — modelisation, first-pass
    adequation, VHDL generation when only the device changes — execute once
    for the whole sweep instead of once per point.  ``observer`` sees every
    stage event of every point.

    ``jobs > 1`` delegates to the
    :class:`~repro.exec.engine.ParallelSweepEngine`: jobs are pulled by
    that many worker processes sharing one crash-safe disk cache
    (``cache_dir``, or a private in-process cache per worker when omitted),
    with per-job ``timeout_s`` and up to ``retries`` retries.  Pass
    ``pool=`` (a warm :class:`~repro.exec.pool.WorkerPool`) to skip the
    worker spawn + import cost entirely — the pool is borrowed for the
    sweep and left warm for the next caller; without it, this function
    spins up workers for this call only.  The parallel path needs
    picklable inputs, so ``configure_flow``, a custom ``board_factory``
    and ``keep_flow_results`` are rejected — use ``pins`` (and, for a
    custom board, an importable builder via :func:`sweep_jobs_for_grid` +
    the engine directly).
    """
    if jobs > 1 or pool is not None:
        if configure_flow is not None:
            raise ValueError(
                "configure_flow cannot cross a process boundary; use pins=[...] "
                "or drive sweep_jobs_for_grid()/ParallelSweepEngine directly"
            )
        if keep_flow_results:
            raise ValueError("keep_flow_results is not supported with jobs > 1")
        return _explore_parallel(
            graph, library, devices, architectures, dynamic_constraints, pins,
            jobs, timeout_s, retries, cache_dir, observer, pool,
        )
    archs = list(architectures) or [case_a_standalone(), case_b_processor()]
    if cache is None and cache_dir is not None:
        cache = ArtifactCache(disk_dir=cache_dir)
    shared_cache = cache if cache is not None else (ArtifactCache() if share_cache else None)
    points: list[DesignPoint] = []
    for device in devices:
        for arch in archs:
            board = board_factory(device)
            flow = DesignFlow(
                graph=graph,
                board=board,
                library=library,
                dynamic_constraints=dynamic_constraints,
                reconfig_architecture=arch,
                cache=shared_cache,
                observer=observer,
            )
            for operation, operator in pins:
                flow.mapping.pin(operation, operator)
            if configure_flow is not None:
                configure_flow(flow)
            try:
                result = flow.run()
            except FloorplanError as err:
                points.append(
                    DesignPoint(device=device.name, architecture=arch.name, fits=False, error=str(err))
                )
                continue
            regions = result.modular.floorplan.placements
            points.append(
                DesignPoint(
                    device=device.name,
                    architecture=arch.name,
                    fits=True,
                    region_area={
                        r: result.modular.region_area_fraction(r) for r in regions
                    },
                    bitstream_bytes={
                        r: result.modular.floorplan.partial_bitstream_bytes(r) for r in regions
                    },
                    reconfig_latency_ns=dict(result.modular.reconfig_latency_ns),
                    clock_mhz=result.modular.par_report.clock_mhz,
                    makespan_ns=result.makespan_ns,
                    flow_result=result if keep_flow_results else None,
                )
            )
    return points
