"""Flow artefact export: write a complete build directory.

What a downstream team receives from the flow: the generated VHDL and
testbenches, the UCF constraints, the partial bitstreams (binary), the
macro-code executive (human-readable listing + machine-readable JSON), the
serialized graph/board models, and the textual reports.
"""

from __future__ import annotations

import pathlib

from repro.codegen.testbench import generate_all_testbenches
from repro.flows.flow import FlowResult

__all__ = ["export_build_directory"]


def export_build_directory(
    result: FlowResult,
    target: pathlib.Path | str,
    include_bitstreams: bool = True,
    include_testbenches: bool = True,
) -> list[pathlib.Path]:
    """Write every flow artefact under ``target``; returns the paths written."""
    base = pathlib.Path(target)
    written: list[pathlib.Path] = []

    def write_text(relative: str, text: str) -> None:
        path = base / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        written.append(path)

    def write_bytes(relative: str, payload: bytes) -> None:
        path = base / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(payload)
        written.append(path)

    # HDL + constraints.
    for name, text in sorted(result.generated.files.items()):
        write_text(f"hdl/{name}", text)
    if include_testbenches:
        for name, text in sorted(generate_all_testbenches(result.generated.files).items()):
            write_text(f"hdl/{name}", text)
    write_text("constraints/top.ucf", result.modular.ucf)

    # Executive: listing + JSON.
    from repro.executive import io as executive_io

    write_text("executive/macrocode.txt", result.executive.render())
    write_text("executive/executive.json", executive_io.dumps(result.executive))

    # Models.
    from repro.arch import io as arch_io
    from repro.dfg import io as dfg_io

    write_text("models/algorithm.json", dfg_io.dumps(result.graph))
    write_text("models/board.json", arch_io.dumps(result.board))
    if result.dynamic_constraints is not None:
        write_text("models/dynamic.constraints", result.dynamic_constraints.render())

    # Partial bitstreams: raw frame payloads, one file per (region, module).
    if include_bitstreams:
        for (region, module), bitstream in sorted(result.modular.bitstreams.items()):
            payload = b"".join(
                frame.address().to_bytes(4, "big") + frame.payload
                for frame in bitstream.frames
            )
            write_bytes(f"bitstreams/{region}_{module}.bit", payload)

    # Reports.
    write_text("reports/flow.txt", result.report())
    write_text("reports/schedule.txt", result.adequation.report())
    write_text("reports/floorplan.txt", result.modular.floorplan.summary())
    synth_lines = [
        report.render() for _name, report in sorted(result.modular.synthesis_reports.items())
    ]
    write_text("reports/synthesis.txt", "\n\n".join(synth_lines))
    write_text("reports/par.txt", result.modular.par_report.render())
    return written
