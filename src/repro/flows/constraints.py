"""The dynamic-module constraints file.

"A constraints file will contain the definition of each dynamic module and
the associated constraints (loading, unloading, sharing area, dynamic
relations, exclusion)."

Format (INI-like, order-insensitive)::

    [module mod_qpsk]
    region    = D1
    operation = mod_qpsk
    loading   = runtime          # runtime | startup
    unloading = on_switch        # on_switch | explicit

    [module mod_qam16]
    region    = D1
    operation = mod_qam16

    [region D1]
    sharing   = true
    exclusive = mod_qpsk, mod_qam16

The parser validates the declarations against an algorithm graph: modules
sharing one region must be mutually exclusive (different cases of one
condition group), every referenced operation must exist, and every region's
module set must be closed under its exclusivity list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.dfg.graph import AlgorithmGraph

__all__ = ["ConstraintsError", "ModuleConstraint", "RegionConstraint", "DynamicConstraints", "parse_constraints"]

VALID_LOADING = ("runtime", "startup")
VALID_UNLOADING = ("on_switch", "explicit")


class ConstraintsError(ValueError):
    """Malformed or inconsistent constraints file."""


@dataclass
class ModuleConstraint:
    """One dynamic module declaration."""

    name: str
    region: str
    operation: str
    loading: str = "runtime"
    unloading: str = "on_switch"

    def __post_init__(self) -> None:
        if self.loading not in VALID_LOADING:
            raise ConstraintsError(f"module {self.name!r}: bad loading {self.loading!r}")
        if self.unloading not in VALID_UNLOADING:
            raise ConstraintsError(f"module {self.name!r}: bad unloading {self.unloading!r}")


@dataclass
class RegionConstraint:
    """One reconfigurable-region declaration."""

    name: str
    sharing: bool = True
    exclusive: list[str] = field(default_factory=list)


@dataclass
class DynamicConstraints:
    """The whole parsed file."""

    modules: dict[str, ModuleConstraint] = field(default_factory=dict)
    regions: dict[str, RegionConstraint] = field(default_factory=dict)

    def modules_of_region(self, region: str) -> list[ModuleConstraint]:
        return [m for m in self.modules.values() if m.region == region]

    def validate_against(self, graph: AlgorithmGraph) -> None:
        """Check declarations against the algorithm graph."""
        problems: list[str] = []
        for module in self.modules.values():
            if module.operation not in graph:
                problems.append(f"module {module.name!r}: unknown operation {module.operation!r}")
                continue
            op = graph.operation(module.operation)
            if op.condition is None:
                problems.append(
                    f"module {module.name!r}: operation {module.operation!r} is not conditioned; "
                    "it can never be swapped out"
                )
        # Modules sharing a region must be pairwise exclusive.
        for region_name in {m.region for m in self.modules.values()}:
            sharing = self.regions.get(region_name, RegionConstraint(region_name)).sharing
            members = self.modules_of_region(region_name)
            if len(members) > 1 and not sharing:
                problems.append(f"region {region_name!r}: multiple modules but sharing disabled")
            for i, a in enumerate(members):
                for b in members[i + 1 :]:
                    if a.operation not in graph or b.operation not in graph:
                        continue
                    op_a = graph.operation(a.operation)
                    op_b = graph.operation(b.operation)
                    if not graph.exclusive(op_a, op_b):
                        problems.append(
                            f"region {region_name!r}: modules {a.name!r} and {b.name!r} share the "
                            "area but are not mutually exclusive"
                        )
        # Exclusivity lists must reference declared modules.
        for region in self.regions.values():
            for name in region.exclusive:
                if name not in self.modules:
                    problems.append(f"region {region.name!r}: exclusive list names unknown module {name!r}")
                elif self.modules[name].region != region.name:
                    problems.append(
                        f"region {region.name!r}: module {name!r} is declared in region "
                        f"{self.modules[name].region!r}"
                    )
        if problems:
            raise ConstraintsError("; ".join(problems))

    def render(self) -> str:
        """Re-serialize to the file format."""
        lines: list[str] = []
        for m in self.modules.values():
            lines += [
                f"[module {m.name}]",
                f"region    = {m.region}",
                f"operation = {m.operation}",
                f"loading   = {m.loading}",
                f"unloading = {m.unloading}",
                "",
            ]
        for r in self.regions.values():
            lines += [
                f"[region {r.name}]",
                f"sharing   = {'true' if r.sharing else 'false'}",
            ]
            if r.exclusive:
                lines.append(f"exclusive = {', '.join(r.exclusive)}")
            lines.append("")
        return "\n".join(lines)


def parse_constraints(text: str) -> DynamicConstraints:
    """Parse the constraints-file format; raises on malformed input."""
    result = DynamicConstraints()
    section: Optional[tuple[str, str]] = None
    pending: dict[str, str] = {}

    def flush() -> None:
        nonlocal pending, section
        if section is None:
            return
        kind, name = section
        if kind == "module":
            for required in ("region", "operation"):
                if required not in pending:
                    raise ConstraintsError(f"module {name!r}: missing key {required!r}")
            if name in result.modules:
                raise ConstraintsError(f"duplicate module {name!r}")
            result.modules[name] = ModuleConstraint(
                name=name,
                region=pending["region"],
                operation=pending["operation"],
                loading=pending.get("loading", "runtime"),
                unloading=pending.get("unloading", "on_switch"),
            )
        else:
            if name in result.regions:
                raise ConstraintsError(f"duplicate region {name!r}")
            sharing_text = pending.get("sharing", "true").lower()
            if sharing_text not in ("true", "false"):
                raise ConstraintsError(f"region {name!r}: sharing must be true/false")
            exclusive = [
                item.strip() for item in pending.get("exclusive", "").split(",") if item.strip()
            ]
            result.regions[name] = RegionConstraint(
                name=name, sharing=sharing_text == "true", exclusive=exclusive
            )
        pending = {}

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("["):
            if not line.endswith("]"):
                raise ConstraintsError(f"line {lineno}: unterminated section header")
            header = line[1:-1].split()
            if len(header) != 2 or header[0] not in ("module", "region"):
                raise ConstraintsError(f"line {lineno}: expected '[module NAME]' or '[region NAME]'")
            flush()
            section = (header[0], header[1])
        else:
            if section is None:
                raise ConstraintsError(f"line {lineno}: key outside any section")
            if "=" not in line:
                raise ConstraintsError(f"line {lineno}: expected 'key = value'")
            key, value = (part.strip() for part in line.split("=", 1))
            if not key or not value:
                raise ConstraintsError(f"line {lineno}: empty key or value")
            if key in pending:
                raise ConstraintsError(f"line {lineno}: duplicate key {key!r}")
            pending[key] = value
    flush()
    return result
