"""The staged flow pipeline: content-addressed artefact caching.

The paper's Fig. 3 methodology is an explicit multi-stage flow.  This module
gives it a first-class representation:

- :func:`fingerprint` and the ``fingerprint_*`` helpers reduce the flow's
  inputs (algorithm graph, architecture graph, operation library, mapping
  and dynamic-module constraints, reconfiguration architecture, device,
  scheduler) to stable SHA-256 digests.  Digests are computed over canonical
  JSON, never over ``hash()``/``repr`` of live objects, so they are
  identical across processes and Python invocations.
- :class:`ArtifactCache` is a content-addressed store (in-memory LRU with an
  optional on-disk pickle tier) keyed by those digests.
- :class:`Stage` + :class:`FlowPipeline` run a sequence of stages through
  the cache, emitting one :class:`~repro.flows.observe.FlowEvent` per stage.

Stage keys are *derivation keys*: each stage's key digests its own direct
inputs plus the keys of the upstream stages it consumes, so any upstream
change invalidates everything downstream — and nothing else.  Notably the
adequation key digests the architecture graph's scheduling-relevant features
(operator classes, clocks, regions, media) but **not** the FPGA device
identity, so a design-space sweep that only swaps the device reuses the
modelisation and first-pass adequation artefacts.
"""

from __future__ import annotations

import hashlib
import json
import logging
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Any, Callable, Mapping, Optional, Sequence, Type

from repro.arch.graph import ArchitectureGraph
from repro.dfg.graph import AlgorithmGraph
from repro.dfg.library import OperationLibrary
from repro.fabric.device import VirtexIIDevice
from repro.flows.observe import FlowEvent, FlowObserver, LoggingObserver

__all__ = [
    "fingerprint",
    "fingerprint_graph",
    "fingerprint_architecture",
    "fingerprint_library",
    "fingerprint_mapping",
    "fingerprint_dynamic_constraints",
    "fingerprint_reconfig_architecture",
    "fingerprint_device",
    "fingerprint_scheduler",
    "CacheStats",
    "ArtifactCache",
    "Stage",
    "FlowPipeline",
]


# -- fingerprints ------------------------------------------------------------------


def fingerprint(*parts: Any) -> str:
    """SHA-256 over the canonical JSON encoding of ``parts``.

    Parts must already be JSON-serializable (strings — typically upstream
    fingerprints — numbers, bools, lists, dicts).  ``sort_keys`` makes the
    digest independent of dict insertion order.
    """
    payload = json.dumps(parts, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def fingerprint_graph(graph: AlgorithmGraph) -> str:
    """Digest of the algorithm graph via its stable JSON serialization."""
    from repro.dfg import io as dfg_io

    return fingerprint("algorithm-graph", dfg_io.to_dict(graph))


def fingerprint_architecture(arch: ArchitectureGraph) -> str:
    """Digest of the architecture graph's *scheduling-relevant* features.

    Deliberately excludes each operator's physical ``device`` reference:
    adequation depends on operator classes, clocks, regions and media — not
    on which Virtex-II part hosts them — so sweeps across devices can reuse
    the adequation artefacts.  The device enters the modular-back-end key
    through :func:`fingerprint_device` instead.
    """
    operators = [
        {
            "name": op.name,
            "kind": op.kind.value,
            "operator_class": op.operator_class,
            "clock_mhz": op.clock_mhz,
            "region": op.region,
        }
        for op in arch.operators
    ]
    media = [
        {
            "name": m.name,
            "kind": m.kind.value,
            "bandwidth_mbps": m.bandwidth_mbps,
            "latency_ns": m.latency_ns,
        }
        for m in arch.media
    ]
    links = sorted(
        (op.name, medium.name) for medium in arch.media for op in arch.operators_on(medium)
    )
    return fingerprint("architecture-graph", arch.name, operators, media, links)


def fingerprint_library(library: OperationLibrary) -> str:
    specs = [
        {
            "kind": spec.kind,
            "cycles": dict(spec.cycles),
            "fpga_resources": dict(spec.fpga_resources),
        }
        for spec in (library.get(kind) for kind in sorted(library.kinds()))
    ]
    return fingerprint("operation-library", specs)


def fingerprint_mapping(constraints) -> str:
    """Digest of :class:`~repro.aaa.mapping.MappingConstraints` pins/filters."""
    return fingerprint("mapping-constraints", constraints.snapshot())


def fingerprint_dynamic_constraints(constraints) -> str:
    """Digest of a parsed dynamic-module constraints file (or ``None``)."""
    if constraints is None:
        return fingerprint("dynamic-constraints", None)
    modules = [
        {
            "name": m.name,
            "region": m.region,
            "operation": m.operation,
            "loading": m.loading,
            "unloading": m.unloading,
        }
        for m in sorted(constraints.modules.values(), key=lambda m: m.name)
    ]
    regions = [
        {"name": r.name, "sharing": r.sharing, "exclusive": sorted(r.exclusive)}
        for r in sorted(constraints.regions.values(), key=lambda r: r.name)
    ]
    return fingerprint("dynamic-constraints", modules, regions)


def fingerprint_reconfig_architecture(arch) -> str:
    """Digest of a Fig. 2 :class:`~repro.reconfig.architectures.ReconfigArchitecture`."""
    return fingerprint(
        "reconfig-architecture",
        arch.name,
        arch.manager_location,
        arch.builder_location,
        {
            "name": arch.port.name,
            "width_bits": arch.port.width_bits,
            "clock_mhz": arch.port.clock_mhz,
            "setup_ns": arch.port.setup_ns,
            "internal": arch.port.internal,
        },
        arch.memory_bandwidth_bytes_per_s,
        arch.memory_access_ns,
        arch.request_latency_ns,
    )


def fingerprint_device(device: VirtexIIDevice) -> str:
    return fingerprint(
        "device",
        device.name,
        device.clb_rows,
        device.clb_cols,
        device.full_bitstream_bits,
        list(device.bram_cols),
        device.brams_per_col,
    )


def fingerprint_scheduler(scheduler: Type, kwargs: Optional[Mapping[str, Any]] = None) -> str:
    return fingerprint(
        "scheduler",
        f"{scheduler.__module__}.{scheduler.__qualname__}",
        dict(kwargs or {}),
    )


# -- the content-addressed artefact cache ------------------------------------------


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`ArtifactCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    corruptions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "corruptions": self.corruptions,
            "hit_rate": self.hit_rate(),
        }


class ArtifactCache:
    """Content-addressed store for stage artefacts.

    In-memory LRU (``max_entries``) with an optional on-disk pickle tier
    (``disk_dir``): a memory miss falls through to disk and promotes the
    artefact back into memory, so a fresh process pointed at the same
    directory starts warm.  Keys are the stage derivation fingerprints, so
    one cache can safely be shared by many flows over many design points —
    identical inputs address identical artefacts.

    The disk tier is safe for **concurrent multi-process access** (the
    parallel sweep engine points every worker at one directory):

    - writes go through :func:`repro.exec.locks.atomic_write_bytes`
      (unique temp + ``os.replace``) under a per-key advisory
      :class:`~repro.exec.locks.FileLock`, so readers never observe a
      partial file and concurrent writers of the same content-addressed
      entry race harmlessly;
    - reads are corruption-tolerant: a truncated or garbage entry (e.g.
      a crash mid-write on a non-atomic filesystem) is treated as a miss,
      the bad file is deleted under its key lock, and a warning is
      recorded (``stats.corruptions``, ``warnings``, the ``repro.flows``
      logging channel and the optional ``on_warning`` callback) instead of
      raising into the flow.

    Instances pickle safely (the in-memory tier and thread lock are
    process-local and dropped), so a cache object may appear inside a
    spawn-context job description; each process then re-opens the same
    disk directory with a cold memory tier.
    """

    def __init__(
        self,
        max_entries: int = 256,
        disk_dir: Optional[str | Path] = None,
        on_warning: Optional[Callable[[str], None]] = None,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
        self.on_warning = on_warning
        self.stats = CacheStats()
        self.warnings: list[str] = []
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries or self._disk_path(key) is not None

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # Process-local pieces: the thread lock cannot cross a spawn
        # boundary and the memory tier should not be shipped wholesale.
        state["_lock"] = None
        state["_entries"] = OrderedDict()
        state["on_warning"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def _disk_path(self, key: str) -> Optional[Path]:
        if self.disk_dir is None:
            return None
        path = self.disk_dir / f"{key}.pkl"
        return path if path.exists() else None

    def _key_lock(self, key: str):
        from repro.exec.locks import FileLock

        assert self.disk_dir is not None
        return FileLock(self.disk_dir / ".locks" / f"{key}.lock")

    def _warn(self, message: str) -> None:
        self.stats.corruptions += 1
        self.warnings.append(message)
        logging.getLogger("repro.flows").warning("%s", message)
        if self.on_warning is not None:
            self.on_warning(message)

    def _drop_corrupt(self, key: str, path: Path, err: BaseException) -> None:
        """Delete a bad disk entry (under its key lock) and record a warning."""
        try:
            with self._key_lock(key):
                path.unlink(missing_ok=True)
        except OSError:
            pass
        self._warn(
            f"artifact cache: dropped corrupt entry {path.name} "
            f"({type(err).__name__}: {err}); treated as a miss"
        )

    def get(self, key: str) -> Optional[Any]:
        """The artefact for ``key``, or ``None`` on a miss."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
            path = self._disk_path(key)
            if path is not None:
                # No read lock needed: writers swap entries in atomically,
                # so we see either the old or the new complete file.
                try:
                    value = pickle.loads(path.read_bytes())
                except FileNotFoundError:
                    pass  # raced a concurrent corrupt-entry deletion
                except Exception as err:  # truncated/garbage pickle: self-heal
                    self._drop_corrupt(key, path, err)
                else:
                    self.stats.hits += 1
                    self._insert(key, value)
                    return value
            self.stats.misses += 1
            return None

    def put(self, key: str, value: Any) -> Any:
        """Store ``value``; returns the cache's canonical copy of it.

        With a disk tier the canonical copy is the pickle round-trip of
        ``value`` — the same object graph any other process will observe —
        and the memory tier keeps that copy too.  Consumers (the pipeline)
        continue with the returned value, so a stage's downstream inputs
        are identical whether its artefact was computed here, promoted from
        disk, or computed by a sibling worker: byte-identical artefacts
        regardless of hit/miss scheduling.  Without a disk tier the value
        is returned (and kept) as-is.
        """
        from repro.exec.locks import atomic_write_bytes

        with self._lock:
            self.stats.stores += 1
            if self.disk_dir is not None:
                try:
                    payload = pickle.dumps(value)
                except (pickle.PickleError, TypeError, AttributeError) as err:
                    self._warn(
                        f"artifact cache: {key[:12]} not persisted "
                        f"({type(err).__name__}: {err}); kept in memory only"
                    )
                    self._insert(key, value)
                    return value
                value = pickle.loads(payload)  # canonical round-tripped copy
                try:
                    with self._key_lock(key):
                        atomic_write_bytes(self.disk_dir / f"{key}.pkl", payload)
                except OSError as err:
                    self._warn(
                        f"artifact cache: {key[:12]} not persisted "
                        f"({type(err).__name__}: {err}); kept in memory only"
                    )
            self._insert(key, value)
            return value

    def _insert(self, key: str, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop the in-memory tier (the disk tier, if any, is kept)."""
        with self._lock:
            self._entries.clear()


# -- stages and the pipeline -------------------------------------------------------


@dataclass(frozen=True)
class Stage:
    """One step of the flow.

    ``key`` and ``execute`` both receive the mapping of upstream artefacts
    (stage name → artefact), so a stage's derivation key can chain on its
    predecessors' keys and its body can consume their results.  ``metrics``
    optionally extracts a small JSON-safe summary from the artefact for the
    stage's :class:`~repro.flows.observe.FlowEvent`.
    """

    name: str
    key: Callable[[Mapping[str, Any]], str]
    execute: Callable[[Mapping[str, Any]], Any]
    metrics: Optional[Callable[[Any], Mapping[str, Any]]] = None


class FlowPipeline:
    """Run stages in order through an (optional) content-addressed cache.

    Each stage computes its derivation key, consults the cache, executes on
    a miss, stores the artefact, and emits a :class:`FlowEvent` to the
    observer.  With no cache every stage executes; with no observer events
    go to the default :class:`~repro.flows.observe.LoggingObserver` (silent
    unless the application configures logging).
    """

    def __init__(
        self,
        stages: Sequence[Stage],
        cache: Optional[ArtifactCache] = None,
        observer: Optional[FlowObserver] = None,
        flow_name: str = "flow",
    ):
        names = [s.name for s in stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names: {names}")
        self.stages = list(stages)
        self.cache = cache
        self.observer = observer if observer is not None else LoggingObserver()
        self.flow_name = flow_name
        self.events: list[FlowEvent] = []
        self.keys: dict[str, str] = {}

    def run(self) -> dict[str, Any]:
        """Execute every stage; returns stage name → artefact.

        When a recording tracer is installed (:func:`repro.obs.get_tracer`),
        the run becomes a ``flow:`` span with one ``stage:`` child span per
        stage and the stage/cache traffic is counted into the ambient
        metrics registry.  The :class:`FlowEvent` stream is unchanged either
        way — tracing wraps the events, it never rewrites them.
        """
        from repro.obs import get_metrics, get_tracer

        tracer = get_tracer()
        artifacts: dict[str, Any] = {}
        with tracer.span(f"flow:{self.flow_name}"):
            for stage in self.stages:
                stage_span = tracer.span(f"stage:{stage.name}").start()
                started = perf_counter()
                key = stage.key(artifacts)
                artifact = self.cache.get(key) if self.cache is not None else None
                hit = artifact is not None
                if not hit:
                    artifact = stage.execute(artifacts)
                    if self.cache is not None and artifact is not None:
                        # Continue with the cache's canonical copy so downstream
                        # stages see the same object graph in every process.
                        artifact = self.cache.put(key, artifact)
                artifacts[stage.name] = artifact
                self.keys[stage.name] = key
                wall_time_s = perf_counter() - started
                event = FlowEvent(
                    flow=self.flow_name,
                    stage=stage.name,
                    cache_hit=hit,
                    wall_time_s=wall_time_s,
                    fingerprint=key,
                    metrics=dict(stage.metrics(artifact)) if stage.metrics is not None else {},
                )
                if tracer.enabled:
                    stage_span.set_attribute("flow", self.flow_name)
                    stage_span.set_attribute("cache_hit", hit)
                    stage_span.set_attribute("fingerprint", key[:16])
                    for name, value in event.metrics.items():
                        stage_span.set_attribute(f"metric.{name}", value)
                    registry = get_metrics()
                    registry.counter("flow.stages_total").inc()
                    registry.counter(
                        "flow.stage_cache_hits" if hit else "flow.stage_cache_misses"
                    ).inc()
                    registry.histogram("flow.stage_seconds").observe(wall_time_s)
                    # Numeric stage metrics (e.g. the adequation stages'
                    # SchedulerStats placement accounting) become counters.
                    registry.record_counts(f"stage.{stage.name}", event.metrics)
                stage_span.end()
                self.events.append(event)
                self.observer.on_event(event)
        return artifacts
