"""The Modular-Design back-end driver.

"We synthesize the VHDL code of the static part and of each dynamic part
separately in order to obtain separate netlists.  The Xilinx Modular
back-end flow is used to place and route each module and to generate the
associated bitstream, resulting in a typical floorplan."

This driver performs that pipeline on our substitutes: synthesis estimation
per generated module → netlist → floorplan → PAR feasibility → partial
bitstreams → per-region reconfiguration latency (for the chosen Fig. 2
architecture).

The default floorplan ``margin`` of 2.0 reflects Modular-Design practice:
reconfigurable regions are deliberately oversized (≈50 % target utilization)
so each variant places and routes inside the fixed column range with the bus
macros pinned on its boundary.  With the case-study modulators this sizes
D1 at 4 CLB columns — the paper's ≈8 % of the XC2V2000 and ≈4 ms partial
bitstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.codegen.constraints import generate_ucf
from repro.codegen.generator import GeneratedDesign
from repro.dfg.graph import AlgorithmGraph
from repro.dfg.library import OperationLibrary
from repro.fabric.bitstream import Bitstream, generate_partial_bitstream
from repro.fabric.device import VirtexIIDevice
from repro.fabric.floorplan import Floorplan, Floorplanner
from repro.fabric.netlist import Netlist
from repro.fabric.par import PARReport, PlaceAndRoute
from repro.fabric.synthesis import PortSpec, SynthesisReport, Synthesizer
from repro.reconfig.architectures import ReconfigArchitecture, case_a_standalone

__all__ = ["ModularDesignResult", "run_modular_backend"]


@dataclass
class ModularDesignResult:
    """Everything the back-end produced."""

    netlist: Netlist
    synthesis_reports: dict[str, SynthesisReport]
    floorplan: Floorplan
    par_report: PARReport
    bitstreams: dict[tuple[str, str], Bitstream]  # (region, module) -> partial bitstream
    ucf: str
    reconfig_architecture: ReconfigArchitecture
    #: region -> end-to-end reconfiguration latency (ns)
    reconfig_latency_ns: dict[str, int] = field(default_factory=dict)

    def region_area_fraction(self, region: str) -> float:
        return self.floorplan.area_fraction(region)

    def summary(self) -> str:
        lines = [self.floorplan.summary(), self.par_report.render()]
        for region, latency in sorted(self.reconfig_latency_ns.items()):
            lines.append(
                f"  {region}: reconfiguration {latency / 1e6:.2f} ms via "
                f"{self.reconfig_architecture.name}"
            )
        return "\n".join(lines)


def run_modular_backend(
    graph: AlgorithmGraph,
    generated: GeneratedDesign,
    library: OperationLibrary,
    device: VirtexIIDevice,
    reconfig_architecture: Optional[ReconfigArchitecture] = None,
    margin: float = 2.0,
) -> ModularDesignResult:
    """Synthesize, floorplan, check and generate bitstreams for a design."""
    arch = reconfig_architecture or case_a_standalone()
    synthesizer = Synthesizer(library)
    netlist = Netlist("top")
    reports: dict[str, SynthesisReport] = {}

    for module_name, op_names in generated.module_ops.items():
        ops = [graph.operation(n) for n in op_names]
        ports = [
            PortSpec(name, width, direction)
            for name, width, direction in generated.module_ports.get(module_name, [])
        ]
        region = generated.variant_regions.get(module_name)
        module, report = synthesizer.synthesize_module(
            module_name,
            ops,
            ports,
            buffer_bytes=generated.module_buffer_bytes.get(module_name, 0),
            reconfigurable=region is not None,
            region=region,
        )
        netlist.add_module(module)
        reports[module_name] = report

    # Wire region variants to the static part so bus-macro sizing sees the
    # boundary traffic (one net per data port of each variant).
    static_names = [m.name for m in netlist.static_modules()]
    anchor = static_names[0] if static_names else None
    if anchor is not None:
        for variant in netlist.reconfigurable_modules():
            for port in variant.ports:
                # Synthesize matching anchor-side ports lazily.
                peer = f"{variant.name}_{port.name}_peer"
                peer_dir = "out" if port.direction == "in" else "in"
                netlist.module(anchor).ports.append(
                    type(port)(name=peer, width=port.width, direction=peer_dir)
                )
                if port.direction == "in":
                    netlist.connect(anchor, peer, variant.name, port.name)
                else:
                    netlist.connect(variant.name, port.name, anchor, peer)

    floorplan = Floorplanner(device, margin=margin).plan(netlist)
    par_report = PlaceAndRoute(floorplan, netlist).check()

    bitstreams: dict[tuple[str, str], Bitstream] = {}
    latencies: dict[str, int] = {}
    for region in netlist.regions():
        placement = floorplan.placement(region)
        for variant in netlist.reconfigurable_modules(region):
            bitstreams[(region, variant.name)] = generate_partial_bitstream(
                device, placement, variant.name
            )
        size = floorplan.partial_bitstream_bytes(region)
        latencies[region] = arch.estimate_latency_ns(size)

    return ModularDesignResult(
        netlist=netlist,
        synthesis_reports=reports,
        floorplan=floorplan,
        par_report=par_report,
        bitstreams=bitstreams,
        ucf=generate_ucf(floorplan),
        reconfig_architecture=arch,
        reconfig_latency_ns=latencies,
    )
