"""Runtime system simulation — the flow's dynamic verification.

Wires a :class:`~repro.flows.flow.FlowResult` to the real runtime
reconfiguration manager and runs the synchronized executive for many
iterations: the DSP's selector drives ``Select``, the manager loads partial
bitstreams through the configured Fig. 2 architecture, the ``In_Reconf``
signal locks the region during swaps, and every stall is accounted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Optional

from typing import Union

from repro.executive.interpreter import ExecutionReport
from repro.flows.flow import FlowResult
from repro.obs import get_metrics, get_tracer, record_manager_stats, spans_from_sim_trace
from repro.reconfig.eviction import EvictionPolicy
from repro.reconfig.manager import ManagerStats
from repro.reconfig.memory import BitstreamStore
from repro.reconfig.prefetch import NoPrefetchPolicy, PrefetchPolicy
from repro.runtime.board import Board
from repro.sim import Simulator, Trace

__all__ = ["RuntimeResult", "SystemSimulation"]


@dataclass
class RuntimeResult:
    """Outcome of a runtime simulation."""

    execution: ExecutionReport
    manager_stats: ManagerStats
    n_iterations: int
    end_time_ns: int
    policy_name: str
    switches: int
    #: region -> In_Reconf signal (full toggle history), for VCD export.
    in_reconf_signals: dict = field(default_factory=dict)

    def to_vcd(self, design_name: str = "repro") -> str:
        """The whole run as a VCD waveform (operators, media, In_Reconf)."""
        from repro.sim.vcd import trace_to_vcd

        signals = {
            f"In_Reconf.{region}": sig for region, sig in self.in_reconf_signals.items()
        }
        return trace_to_vcd(self.execution.trace, signals=signals, design_name=design_name)

    @property
    def total_stall_ns(self) -> int:
        return self.manager_stats.stall_ns

    def stall_per_switch_ns(self) -> float:
        return self.total_stall_ns / self.switches if self.switches else 0.0

    def mean_iteration_ns(self) -> float:
        return self.end_time_ns / self.n_iterations

    def throughput_iterations_per_s(self) -> float:
        mean = self.mean_iteration_ns()
        return 1e9 / mean if mean else float("inf")

    def summary(self) -> str:
        return (
            f"runtime[{self.policy_name}]: {self.n_iterations} iterations in "
            f"{self.end_time_ns / 1e6:.2f} ms — {self.switches} reconfigurations, "
            f"stall {self.total_stall_ns / 1e6:.2f} ms "
            f"({self.stall_per_switch_ns() / 1e6:.2f} ms/switch), "
            f"{self.manager_stats.useful_prefetches} useful prefetches"
        )


class SystemSimulation:
    """Builds and runs the simulated platform for a flow result."""

    def __init__(
        self,
        flow: FlowResult,
        n_iterations: int,
        selector_values: Optional[dict[str, Callable[[int], Hashable]]] = None,
        policy: Optional[Union[str, PrefetchPolicy]] = None,
        bindings: Optional[dict[str, Any]] = None,
        capture: Optional[set[str]] = None,
        region_slots: Optional[int] = None,
        eviction: Optional[EvictionPolicy] = None,
    ):
        self.flow = flow
        self.n_iterations = n_iterations
        self.selector_values = selector_values or {}
        # Default: no manager-side speculation.  Prefetching proper is the
        # *executive's* early reconfigure placement (region-issued, ordering
        # safe); manager policies add speculative loads on top and can thrash
        # in deep pipelines (see tests/flows/test_flow.py).
        if isinstance(policy, str):
            # A registry name selects a whole bundle; explicit kwargs win
            # over whatever the bundle would set.
            from repro.runtime.policies import create_policy

            bundle = create_policy(policy)
            self.policy = bundle.prefetch
            if eviction is None:
                eviction = bundle.eviction
            if region_slots is None:
                region_slots = bundle.region_slots
        else:
            self.policy = policy if policy is not None else NoPrefetchPolicy()
        self.region_slots = region_slots if region_slots is not None else 1
        self.eviction = eviction
        self.bindings = bindings
        self.capture = capture

    def _build_store(self) -> BitstreamStore:
        arch = self.flow.modular.reconfig_architecture
        store = arch.make_store()
        netlist = self.flow.modular.netlist
        for (region, module_name), bitstream in self.flow.modular.bitstreams.items():
            # The executive requests configurations by *operation* name.
            variant = netlist.module(module_name)
            op_name = variant.implements[0] if variant.implements else module_name
            store.register(region, op_name, bitstream)
        return store

    def run(self) -> RuntimeResult:
        sim = Simulator()
        trace = Trace()
        arch = self.flow.modular.reconfig_architecture
        store = self._build_store()
        # One platform = one Board on a private kernel.  Board builds the
        # protocol builder and manager in the same order this method used
        # to, so single-board results are identical to the pre-Board stack.
        board = Board(
            "board", sim, arch, store,
            policy=self.policy,
            eviction=self.eviction,
            region_slots=self.region_slots,
            trace=trace,
        )
        manager = board.manager
        # Modules declared "loading = startup" ship in the initial full
        # bitstream — no first-use reconfiguration for them.
        for region, op_name in self.flow.startup_modules().items():
            board.preload(region, op_name)
        runner = board.attach_executive(
            self.flow.executive,
            n_iterations=self.n_iterations,
            bindings=self.bindings,
            selector_values=self.selector_values,
            capture=self.capture,
        )
        tracer = get_tracer()
        with tracer.span("runtime:simulate") as rt_span:
            report = runner.run()
        # "Switches" = configuration loads actually performed (includes the
        # initial load unless the module shipped in the startup bitstream).
        switches = manager.stats.demand_loads + manager.stats.prefetch_loads
        if tracer.enabled:
            # Flush still-open residency intervals into closed spans, then
            # re-base the kernel's virtual-time trace under this run's span.
            trace.close_open(report.end_time_ns)
            rt_span.set_attribute("n_iterations", self.n_iterations)
            rt_span.set_attribute("switches", switches)
            rt_span.set_attribute(
                "policy", getattr(self.policy, "name", type(self.policy).__name__)
            )
            tracer.add_spans(spans_from_sim_trace(trace, parent=rt_span.context))
            record_manager_stats(get_metrics(), manager.stats)
        return RuntimeResult(
            execution=report,
            manager_stats=manager.stats,
            n_iterations=self.n_iterations,
            end_time_ns=report.end_time_ns,
            policy_name=getattr(self.policy, "name", type(self.policy).__name__),
            switches=switches,
            in_reconf_signals=dict(manager.in_reconf),
        )
