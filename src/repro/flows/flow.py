"""The complete top-down design flow (Fig. 3).

``DesignFlow.run()`` executes every stage of the paper's methodology:

1. **Modelisation** — validate the algorithm graph, architecture graph and
   the dynamic-module constraints file;
2. **Adequation** — SynDEx-style mapping/scheduling (reconfiguration-aware),
   first with the pre-floorplan latency estimate;
3. **VHDL generation** — static part, dynamic variants, bus macros, UCF;
4. **Modular Design back-end** — synthesis estimation, floorplanning, PAR
   checks, partial bitstreams, measured reconfiguration latency;
5. **Adequation refinement** — re-run the scheduler with the measured
   latencies (the feedback arrow of Fig. 3);
6. **Executive generation** — the synchronized macro-code, ready for the
   dynamic-verification simulation (:mod:`repro.flows.runtime`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Type

from repro.aaa.adequation import AdequationResult, adequate
from repro.aaa.mapping import MappingConstraints
from repro.aaa.recon_aware import ReconfigAwareScheduler
from repro.aaa.scheduler import ListSchedulerBase
from repro.arch.boards import Board
from repro.arch.operator import OperatorKind
from repro.codegen.generator import GeneratedDesign, generate_design
from repro.dfg.graph import AlgorithmGraph
from repro.dfg.library import OperationLibrary
from repro.dfg.validate import validate_graph
from repro.executive.generator import generate_executive
from repro.executive.macrocode import ExecutiveProgram
from repro.flows.constraints import DynamicConstraints
from repro.flows.modular import ModularDesignResult, run_modular_backend
from repro.reconfig.architectures import ReconfigArchitecture, case_a_standalone

__all__ = ["TimingConstraintError", "DesignFlow", "FlowResult"]


class TimingConstraintError(RuntimeError):
    """The adequation could not satisfy the iteration deadline.

    AAA "aims at finding the best matching between an algorithm and an
    architecture while satisfying time constraints" — when the best schedule
    still misses the deadline, the flow fails loudly with both numbers."""

    def __init__(self, makespan_ns: int, deadline_ns: int):
        self.makespan_ns = makespan_ns
        self.deadline_ns = deadline_ns
        super().__init__(
            f"iteration period {makespan_ns} ns exceeds the deadline {deadline_ns} ns "
            f"({makespan_ns / deadline_ns:.2f}x)"
        )


@dataclass
class FlowResult:
    """Artefacts of one complete flow run."""

    graph: AlgorithmGraph
    board: Board
    library: OperationLibrary
    adequation: AdequationResult
    generated: GeneratedDesign
    modular: ModularDesignResult
    executive: ExecutiveProgram
    first_pass_makespan_ns: int
    dynamic_constraints: Optional[DynamicConstraints] = None
    iteration_deadline_ns: Optional[int] = None

    @property
    def meets_deadline(self) -> bool:
        """True when no deadline was set or the final makespan honours it."""
        return self.iteration_deadline_ns is None or self.makespan_ns <= self.iteration_deadline_ns

    def startup_modules(self) -> dict[str, str]:
        """region -> operation preloaded at power-up (``loading = startup``)."""
        out: dict[str, str] = {}
        if self.dynamic_constraints is not None:
            for module in self.dynamic_constraints.modules.values():
                if module.loading == "startup":
                    out[module.region] = module.operation
        return out

    @property
    def makespan_ns(self) -> int:
        return self.adequation.makespan_ns

    def region_latency_ns(self, region: str) -> int:
        return self.modular.reconfig_latency_ns[region]

    def report(self) -> str:
        lines = [
            f"=== Design flow report: {self.graph.name} on {self.board.name} ===",
            f"operations: {len(self.graph.operations)}, edges: {len(self.graph.edges)}",
            f"first-pass makespan : {self.first_pass_makespan_ns} ns",
            f"final makespan      : {self.makespan_ns} ns "
            f"({self.adequation.throughput_iterations_per_s():.1f} iterations/s)",
            *(
                [
                    f"time constraint     : {self.iteration_deadline_ns} ns — "
                    + ("satisfied" if self.meets_deadline else "VIOLATED")
                ]
                if self.iteration_deadline_ns is not None
                else []
            ),
            self.modular.summary(),
            f"generated VHDL files: {', '.join(self.generated.file_names())}",
        ]
        return "\n".join(lines)


@dataclass
class DesignFlow:
    """Configurable driver for the whole methodology."""

    graph: AlgorithmGraph
    board: Board
    library: OperationLibrary
    mapping: MappingConstraints = field(default_factory=MappingConstraints)
    dynamic_constraints: Optional[DynamicConstraints] = None
    scheduler: Type[ListSchedulerBase] = ReconfigAwareScheduler
    reconfig_architecture: ReconfigArchitecture = field(default_factory=case_a_standalone)
    prefetch: bool = True
    #: Optional AAA time constraint on the iteration period.
    iteration_deadline_ns: Optional[int] = None
    #: When True (default), a violated deadline raises TimingConstraintError.
    strict_deadline: bool = True

    @classmethod
    def from_design(cls, design, **overrides) -> "DesignFlow":
        """Build from a :class:`~repro.mccdma.casestudy.CaseStudyDesign`."""
        return cls(graph=design.graph, board=design.board, library=design.library, **overrides)

    # -- constraint plumbing -----------------------------------------------------

    def _apply_dynamic_constraints(self) -> None:
        """Pin each declared dynamic module onto its region's operator."""
        if self.dynamic_constraints is None:
            return
        self.dynamic_constraints.validate_against(self.graph)
        by_region = {
            op.region: op for op in self.board.architecture.dynamic_operators() if op.region
        }
        for module in self.dynamic_constraints.modules.values():
            operator = by_region.get(module.region)
            if operator is None:
                from repro.flows.constraints import ConstraintsError

                raise ConstraintsError(
                    f"module {module.name!r}: region {module.region!r} not present on board "
                    f"{self.board.name!r}"
                )
            self.mapping.pin(module.operation, operator.name)

    # -- the flow --------------------------------------------------------------------

    def run(self) -> FlowResult:
        validate_graph(self.graph, self.library)
        self.board.architecture.validate()
        self._apply_dynamic_constraints()

        scheduler_kwargs = {}
        if self.scheduler is ReconfigAwareScheduler:
            scheduler_kwargs["prefetch"] = self.prefetch

        # Pass 1: pre-floorplan latency estimate.
        first = adequate(
            self.graph,
            self.board.architecture,
            self.library,
            constraints=self.mapping,
            scheduler=self.scheduler,
            validate=False,
            **scheduler_kwargs,
        )

        # VHDL generation from the first-pass schedule.
        generated = generate_design(self.graph, first.schedule, self.board.architecture)

        # Back-end on the FPGA hosting the dynamic operators (or any FPGA).
        device = self._fpga_device()
        modular = run_modular_backend(
            self.graph,
            generated,
            self.library,
            device,
            reconfig_architecture=self.reconfig_architecture,
        )

        # Pass 2: refine with measured latencies.
        refined = adequate(
            self.graph,
            self.board.architecture,
            self.library,
            constraints=self.mapping,
            scheduler=self.scheduler,
            reconfig_ns=dict(modular.reconfig_latency_ns),
            validate=False,
            **scheduler_kwargs,
        )

        if (
            self.iteration_deadline_ns is not None
            and self.strict_deadline
            and refined.makespan_ns > self.iteration_deadline_ns
        ):
            raise TimingConstraintError(refined.makespan_ns, self.iteration_deadline_ns)

        executive = generate_executive(self.graph, refined.schedule)
        return FlowResult(
            graph=self.graph,
            board=self.board,
            library=self.library,
            adequation=refined,
            generated=generated,
            modular=modular,
            executive=executive,
            first_pass_makespan_ns=first.makespan_ns,
            dynamic_constraints=self.dynamic_constraints,
            iteration_deadline_ns=self.iteration_deadline_ns,
        )

    def _fpga_device(self):
        for operator in self.board.architecture.operators:
            if operator.kind in (OperatorKind.FPGA_STATIC, OperatorKind.FPGA_DYNAMIC):
                return self.board.fpga_device_of(operator.name)
        raise ValueError(f"board {self.board.name!r} has no FPGA operator")
