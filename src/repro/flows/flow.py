"""The complete top-down design flow (Fig. 3).

``DesignFlow.run()`` executes every stage of the paper's methodology:

1. **Modelisation** — validate the algorithm graph, architecture graph and
   the dynamic-module constraints file;
2. **Adequation** — SynDEx-style mapping/scheduling (reconfiguration-aware),
   first with the pre-floorplan latency estimate;
3. **VHDL generation** — static part, dynamic variants, bus macros, UCF;
4. **Modular Design back-end** — synthesis estimation, floorplanning, PAR
   checks, partial bitstreams, measured reconfiguration latency;
5. **Adequation refinement** — re-run the scheduler with the measured
   latencies (the feedback arrow of Fig. 3);
6. **Executive generation** — the synchronized macro-code, ready for the
   dynamic-verification simulation (:mod:`repro.flows.runtime`).

Since the staged-pipeline refactor this class is a thin façade over
:class:`~repro.flows.pipeline.FlowPipeline`: each stage is content-addressed
by a fingerprint of its inputs (chained through its upstream stages), so a
flow given a shared :class:`~repro.flows.pipeline.ArtifactCache` re-executes
only the stages whose inputs actually changed, and every stage reports to a
pluggable :class:`~repro.flows.observe.FlowObserver`.  The public API is
unchanged — ``DesignFlow(...).run() -> FlowResult``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Type

from repro.aaa.adequation import AdequationResult, adequate
from repro.aaa.mapping import MappingConstraints
from repro.aaa.recon_aware import ReconfigAwareScheduler
from repro.aaa.scheduler import ListSchedulerBase
from repro.arch.boards import Board
from repro.arch.operator import OperatorKind
from repro.codegen.generator import GeneratedDesign, generate_design
from repro.dfg.graph import AlgorithmGraph
from repro.dfg.library import OperationLibrary
from repro.dfg.validate import validate_graph
from repro.executive.generator import generate_executive
from repro.executive.macrocode import ExecutiveProgram
from repro.flows.constraints import DynamicConstraints
from repro.flows.modular import ModularDesignResult, run_modular_backend
from repro.flows.observe import FlowEvent, FlowObserver
from repro.flows.pipeline import (
    ArtifactCache,
    FlowPipeline,
    Stage,
    fingerprint,
    fingerprint_architecture,
    fingerprint_device,
    fingerprint_dynamic_constraints,
    fingerprint_graph,
    fingerprint_library,
    fingerprint_mapping,
    fingerprint_reconfig_architecture,
    fingerprint_scheduler,
)
from repro.reconfig.architectures import ReconfigArchitecture, case_a_standalone

__all__ = ["TimingConstraintError", "DesignFlow", "FlowResult", "STAGE_NAMES"]

#: The six Fig. 3 stages, in execution order.
STAGE_NAMES = (
    "modelisation",
    "adequation",
    "vhdl_generation",
    "modular_backend",
    "adequation_refine",
    "executive",
)


class TimingConstraintError(RuntimeError):
    """The adequation could not satisfy the iteration deadline.

    AAA "aims at finding the best matching between an algorithm and an
    architecture while satisfying time constraints" — when the best schedule
    still misses the deadline, the flow fails loudly with both numbers."""

    def __init__(self, makespan_ns: int, deadline_ns: int):
        self.makespan_ns = makespan_ns
        self.deadline_ns = deadline_ns
        super().__init__(
            f"iteration period {makespan_ns} ns exceeds the deadline {deadline_ns} ns "
            f"({makespan_ns / deadline_ns:.2f}x)"
        )


@dataclass
class FlowResult:
    """Artefacts of one complete flow run."""

    graph: AlgorithmGraph
    board: Board
    library: OperationLibrary
    adequation: AdequationResult
    generated: GeneratedDesign
    modular: ModularDesignResult
    executive: ExecutiveProgram
    first_pass_makespan_ns: int
    dynamic_constraints: Optional[DynamicConstraints] = None
    iteration_deadline_ns: Optional[int] = None
    #: Per-stage pipeline events of the run that produced this result.
    events: list[FlowEvent] = field(default_factory=list)

    @property
    def meets_deadline(self) -> bool:
        """True when no deadline was set or the final makespan honours it."""
        return self.iteration_deadline_ns is None or self.makespan_ns <= self.iteration_deadline_ns

    def startup_modules(self) -> dict[str, str]:
        """region -> operation preloaded at power-up (``loading = startup``)."""
        out: dict[str, str] = {}
        if self.dynamic_constraints is not None:
            for module in self.dynamic_constraints.modules.values():
                if module.loading == "startup":
                    out[module.region] = module.operation
        return out

    @property
    def makespan_ns(self) -> int:
        return self.adequation.makespan_ns

    def region_latency_ns(self, region: str) -> int:
        return self.modular.reconfig_latency_ns[region]

    def report(self) -> str:
        lines = [
            f"=== Design flow report: {self.graph.name} on {self.board.name} ===",
            f"operations: {len(self.graph.operations)}, edges: {len(self.graph.edges)}",
            f"first-pass makespan : {self.first_pass_makespan_ns} ns",
            f"final makespan      : {self.makespan_ns} ns "
            f"({self.adequation.throughput_iterations_per_s():.1f} iterations/s)",
            *(
                [
                    f"time constraint     : {self.iteration_deadline_ns} ns — "
                    + ("satisfied" if self.meets_deadline else "VIOLATED")
                ]
                if self.iteration_deadline_ns is not None
                else []
            ),
            self.modular.summary(),
            f"generated VHDL files: {', '.join(self.generated.file_names())}",
        ]
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-safe summary of the run (the CLI's ``flow --json`` payload).

        Carries everything external tooling usually scrapes from the text
        report — makespans, per-region geometry/latency, the generated file
        list — plus the per-stage pipeline events."""
        regions = sorted(self.modular.floorplan.placements)
        return {
            "graph": self.graph.name,
            "board": self.board.name,
            "device": self.modular.floorplan.device.name,
            "operations": len(self.graph.operations),
            "edges": len(self.graph.edges),
            "first_pass_makespan_ns": self.first_pass_makespan_ns,
            "makespan_ns": self.makespan_ns,
            "throughput_iterations_per_s": self.adequation.throughput_iterations_per_s(),
            "iteration_deadline_ns": self.iteration_deadline_ns,
            "meets_deadline": self.meets_deadline,
            "clock_mhz": self.modular.par_report.clock_mhz,
            "par_ok": self.modular.par_report.ok,
            "reconfig_architecture": self.modular.reconfig_architecture.name,
            "regions": {
                r: {
                    "area_fraction": self.modular.region_area_fraction(r),
                    "partial_bitstream_bytes": self.modular.floorplan.partial_bitstream_bytes(r),
                    "reconfig_latency_ns": self.modular.reconfig_latency_ns.get(r),
                }
                for r in regions
            },
            "startup_modules": self.startup_modules(),
            "generated_files": self.generated.file_names(),
            "executive_operators": sorted(self.executive.operator_code),
            "stages": [event.to_dict() for event in self.events],
        }


@dataclass
class DesignFlow:
    """Configurable driver for the whole methodology."""

    graph: AlgorithmGraph
    board: Board
    library: OperationLibrary
    mapping: MappingConstraints = field(default_factory=MappingConstraints)
    dynamic_constraints: Optional[DynamicConstraints] = None
    scheduler: Type[ListSchedulerBase] = ReconfigAwareScheduler
    reconfig_architecture: ReconfigArchitecture = field(default_factory=case_a_standalone)
    prefetch: bool = True
    #: Optional AAA time constraint on the iteration period.
    iteration_deadline_ns: Optional[int] = None
    #: When True (default), a violated deadline raises TimingConstraintError.
    strict_deadline: bool = True
    #: Optional content-addressed artefact cache; share one across flows to
    #: skip stages whose fingerprinted inputs are unchanged.  The deadline
    #: fields are deliberately not part of any fingerprint: they gate the
    #: result, they do not change the artefacts.
    cache: Optional[ArtifactCache] = None
    #: Stage-event sink; defaults to the ``repro.flows`` logging channel.
    observer: Optional[FlowObserver] = None

    @classmethod
    def from_design(cls, design, **overrides) -> "DesignFlow":
        """Build from a :class:`~repro.mccdma.casestudy.CaseStudyDesign`."""
        return cls(graph=design.graph, board=design.board, library=design.library, **overrides)

    # -- constraint plumbing -----------------------------------------------------

    def _apply_dynamic_constraints(self) -> None:
        """Pin each declared dynamic module onto its region's operator."""
        if self.dynamic_constraints is None:
            return
        self.dynamic_constraints.validate_against(self.graph)
        by_region = {
            op.region: op for op in self.board.architecture.dynamic_operators() if op.region
        }
        for module in self.dynamic_constraints.modules.values():
            operator = by_region.get(module.region)
            if operator is None:
                from repro.flows.constraints import ConstraintsError

                raise ConstraintsError(
                    f"module {module.name!r}: region {module.region!r} not present on board "
                    f"{self.board.name!r}"
                )
            self.mapping.pin(module.operation, operator.name)

    # -- the staged pipeline ---------------------------------------------------------

    def _scheduler_kwargs(self) -> dict:
        if self.scheduler is ReconfigAwareScheduler:
            return {"prefetch": self.prefetch}
        return {}

    def build_pipeline(self) -> FlowPipeline:
        """The six Fig. 3 stages wired through the cache and observer.

        Call :meth:`run` unless you need stage-level control.  Dynamic
        constraints must already be applied to ``self.mapping`` (``run``
        does this) so the adequation fingerprint sees the effective pins.
        """
        graph, board, library = self.graph, self.board, self.library
        scheduler_kwargs = self._scheduler_kwargs()
        device = self._fpga_device()
        # The device-keyed stages (modular back-end) get the real device;
        # the device-independent stages schedule against a neutral copy so
        # their cached artifacts are pure functions of their cache keys.
        sched_arch = board.architecture.device_neutral()

        fp_graph = fingerprint_graph(graph)
        fp_arch = fingerprint_architecture(board.architecture)
        fp_lib = fingerprint_library(library)
        # The library is a modelisation input too: validate_graph() checks
        # every operation kind against it.
        fp_model = fingerprint(
            "modelisation",
            fp_graph,
            fp_arch,
            fp_lib,
            fingerprint_dynamic_constraints(self.dynamic_constraints),
            fingerprint_mapping(self.mapping),
        )
        fp_sched = fingerprint_scheduler(self.scheduler, scheduler_kwargs)
        fp_adeq = fingerprint("adequation", fp_model, fp_lib, fp_sched)
        fp_vhdl = fingerprint("vhdl_generation", fp_adeq)
        fp_modular = fingerprint(
            "modular_backend",
            fp_vhdl,
            fp_lib,
            fingerprint_device(device),
            fingerprint_reconfig_architecture(self.reconfig_architecture),
        )

        def run_modelisation(_: Mapping[str, Any]) -> dict:
            validate_graph(graph, library)
            board.architecture.validate()
            if self.dynamic_constraints is not None:
                self.dynamic_constraints.validate_against(graph)
            return {
                "operations": len(graph.operations),
                "edges": len(graph.edges),
                "pinned": len(self.mapping),
            }

        def run_adequation(_: Mapping[str, Any]) -> AdequationResult:
            return adequate(
                graph,
                sched_arch,
                library,
                constraints=self.mapping,
                scheduler=self.scheduler,
                validate=False,
                **scheduler_kwargs,
            )

        def run_vhdl(artifacts: Mapping[str, Any]) -> GeneratedDesign:
            first: AdequationResult = artifacts["adequation"]
            return generate_design(graph, first.schedule, sched_arch)

        def run_modular(artifacts: Mapping[str, Any]) -> ModularDesignResult:
            return run_modular_backend(
                graph,
                artifacts["vhdl_generation"],
                library,
                device,
                reconfig_architecture=self.reconfig_architecture,
            )

        def refine_key(artifacts: Mapping[str, Any]) -> str:
            # Content-addressed on the *measured latencies*, not the whole
            # back-end key: two design points whose regions reconfigure in
            # the same time share the refined schedule.
            modular: ModularDesignResult = artifacts["modular_backend"]
            return fingerprint(
                "adequation_refine", fp_adeq, dict(modular.reconfig_latency_ns)
            )

        def run_refine(artifacts: Mapping[str, Any]) -> AdequationResult:
            modular: ModularDesignResult = artifacts["modular_backend"]
            return adequate(
                graph,
                sched_arch,
                library,
                constraints=self.mapping,
                scheduler=self.scheduler,
                reconfig_ns=dict(modular.reconfig_latency_ns),
                validate=False,
                **scheduler_kwargs,
            )

        def run_executive(artifacts: Mapping[str, Any]) -> ExecutiveProgram:
            refined: AdequationResult = artifacts["adequation_refine"]
            return generate_executive(graph, refined.schedule)

        def adequation_metrics(a: AdequationResult) -> dict:
            # Makespan plus the scheduler's placement-evaluation accounting
            # (requested / evaluated / memo hits / commits), so sweeps and
            # ``--profile`` report how much work the adequation actually did.
            return {"makespan_ns": a.makespan_ns, **a.scheduler_stats}

        stages = [
            Stage("modelisation", lambda _: fp_model, run_modelisation, dict),
            Stage(
                "adequation",
                lambda _: fp_adeq,
                run_adequation,
                adequation_metrics,
            ),
            Stage(
                "vhdl_generation",
                lambda _: fp_vhdl,
                run_vhdl,
                lambda g: {"files": len(g.files)},
            ),
            Stage(
                "modular_backend",
                lambda _: fp_modular,
                run_modular,
                lambda m: {
                    "clock_mhz": m.par_report.clock_mhz,
                    "regions": len(m.floorplan.placements),
                },
            ),
            Stage(
                "adequation_refine",
                refine_key,
                run_refine,
                adequation_metrics,
            ),
            Stage(
                "executive",
                lambda artifacts: fingerprint("executive", refine_key(artifacts)),
                run_executive,
                lambda p: {"operators": len(p.operator_code)},
            ),
        ]
        return FlowPipeline(
            stages,
            cache=self.cache,
            observer=self.observer,
            flow_name=f"{graph.name}@{board.name}",
        )

    # -- the flow --------------------------------------------------------------------

    def run(self) -> FlowResult:
        self._apply_dynamic_constraints()
        pipeline = self.build_pipeline()
        artifacts = pipeline.run()

        refined: AdequationResult = artifacts["adequation_refine"]
        if (
            self.iteration_deadline_ns is not None
            and self.strict_deadline
            and refined.makespan_ns > self.iteration_deadline_ns
        ):
            raise TimingConstraintError(refined.makespan_ns, self.iteration_deadline_ns)

        first: AdequationResult = artifacts["adequation"]
        return FlowResult(
            graph=self.graph,
            board=self.board,
            library=self.library,
            adequation=refined,
            generated=artifacts["vhdl_generation"],
            modular=artifacts["modular_backend"],
            executive=artifacts["executive"],
            first_pass_makespan_ns=first.makespan_ns,
            dynamic_constraints=self.dynamic_constraints,
            iteration_deadline_ns=self.iteration_deadline_ns,
            events=list(pipeline.events),
        )

    def _fpga_device(self):
        for operator in self.board.architecture.operators:
            if operator.kind in (OperatorKind.FPGA_STATIC, OperatorKind.FPGA_DYNAMIC):
                return self.board.fpga_device_of(operator.name)
        raise ValueError(f"board {self.board.name!r} has no FPGA operator")
