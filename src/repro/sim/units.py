"""Time and size units.

All simulation time is kept as integer **nanoseconds** so that event ordering
is exact and platform independent.  These helpers convert to and from the
human-facing units used throughout the paper (milliseconds for
reconfiguration latency, MHz for port clocks, bytes for bitstreams).
"""

from __future__ import annotations

NS = 1
US = 1_000
MS = 1_000_000
S = 1_000_000_000

KB = 1 << 10
MB = 1 << 20

KIB = KB
MIB = MB


def ns(value: float) -> int:
    """Nanoseconds → integer simulation ticks."""
    return round(value * NS)


def us(value: float) -> int:
    """Microseconds → integer simulation ticks."""
    return round(value * US)


def ms(value: float) -> int:
    """Milliseconds → integer simulation ticks."""
    return round(value * MS)


def seconds(value: float) -> int:
    """Seconds → integer simulation ticks."""
    return round(value * S)


def to_us(ticks: int) -> float:
    """Integer ticks → microseconds."""
    return ticks / US


def to_ms(ticks: int) -> float:
    """Integer ticks → milliseconds."""
    return ticks / MS


def to_seconds(ticks: int) -> float:
    """Integer ticks → seconds."""
    return ticks / S


def cycles_to_ns(cycles: int, freq_mhz: float) -> int:
    """Duration of ``cycles`` clock cycles at ``freq_mhz`` MHz, in ticks.

    Rounded up so that modelled hardware never finishes early.
    """
    if freq_mhz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_mhz}")
    period_ps = 1_000_000 / freq_mhz  # picoseconds per cycle
    total_ps = cycles * period_ps
    return int(-(-total_ps // 1000))  # ceil division ps -> ns


def transfer_time_ns(nbytes: int, bandwidth_bytes_per_s: float) -> int:
    """Time to move ``nbytes`` at a sustained bandwidth, in ticks (ceil)."""
    if bandwidth_bytes_per_s <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_bytes_per_s}")
    if nbytes < 0:
        raise ValueError(f"byte count must be non-negative, got {nbytes}")
    exact = nbytes * S / bandwidth_bytes_per_s
    return int(-(-exact // 1))
