"""Discrete-event simulation kernel.

A small, deterministic, dependency-free discrete-event simulator in the style
of SimPy, used to execute the synchronized executives produced by the AAA
adequation step and to model runtime reconfiguration latency.

Time is integral (nanoseconds by convention, see :mod:`repro.sim.units`), so
simulations are exactly reproducible across platforms.
"""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.channels import Channel, Mailbox, Resource, Semaphore, Signal
from repro.sim.trace import Trace, TraceRecord, Span
from repro.sim.metrics import (
    Accumulator,
    UtilizationTracker,
    busy_time,
    interval_union,
    stall_time,
)
from repro.sim import units

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
    "Channel",
    "Mailbox",
    "Resource",
    "Semaphore",
    "Signal",
    "Trace",
    "TraceRecord",
    "Span",
    "Accumulator",
    "UtilizationTracker",
    "busy_time",
    "interval_union",
    "stall_time",
    "units",
]
