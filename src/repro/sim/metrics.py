"""Metric helpers over traces and raw samples."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.sim.trace import Span, Trace

__all__ = [
    "interval_union",
    "busy_time",
    "stall_time",
    "UtilizationTracker",
    "Accumulator",
]


def interval_union(intervals: Iterable[tuple[int, int]]) -> list[tuple[int, int]]:
    """Merge possibly-overlapping ``[start, end)`` intervals."""
    ordered = sorted((s, e) for s, e in intervals if e > s)
    merged: list[tuple[int, int]] = []
    for s, e in ordered:
        if merged and s <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], e))
        else:
            merged.append((s, e))
    return merged


def busy_time(spans: Sequence[Span]) -> int:
    """Total non-overlapping busy time covered by ``spans``."""
    return sum(e - s for s, e in interval_union((sp.start, sp.end) for sp in spans))


def stall_time(trace: Trace, actor: str) -> int:
    """Total time ``actor`` spent in spans of kind ``stall``."""
    return busy_time(trace.spans_of(actor=actor, kind="stall"))


@dataclass
class UtilizationTracker:
    """Utilization of an actor over a horizon, from its trace spans."""

    trace: Trace
    actor: str

    def utilization(self, kind: str | None = None, horizon: int | None = None) -> float:
        spans = self.trace.spans_of(actor=self.actor, kind=kind)
        total = horizon if horizon is not None else self.trace.end_time()
        if total <= 0:
            return 0.0
        return busy_time(spans) / total


class Accumulator:
    """Streaming summary statistics (count / mean / variance / extrema).

    Welford's algorithm; numerically stable for long simulations.
    """

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.total = 0.0

    def add(self, x: float) -> None:
        self.n += 1
        self.total += x
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        self.minimum = min(self.minimum, x)
        self.maximum = max(self.maximum, x)

    def extend(self, xs: Iterable[float]) -> None:
        for x in xs:
            self.add(x)

    @property
    def mean(self) -> float:
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / self.n if self.n else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def summary(self) -> dict[str, float]:
        return {
            "n": float(self.n),
            "mean": self.mean,
            "std": self.stddev,
            "min": self.minimum if self.n else 0.0,
            "max": self.maximum if self.n else 0.0,
            "total": self.total,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Accumulator(n={self.n}, mean={self.mean:.3g}, std={self.stddev:.3g})"
