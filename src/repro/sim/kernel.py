"""Deterministic discrete-event simulation kernel.

The kernel follows the classic event-calendar design: a priority queue of
``(time, priority, sequence, event)`` entries guarantees a total, reproducible
order even for simultaneous events.  Coroutines (plain generators) model
concurrent hardware processes; they ``yield`` events to wait on them.

Only the features needed by this reproduction are implemented — timeouts,
process join, any/all composition, interrupts — which keeps the kernel small
enough to reason about and to property-test exhaustively.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "SimulationError",
    "Interrupt",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Simulator",
]

#: Priority used for normal events.
PRIORITY_NORMAL = 1
#: Priority used for urgent (kernel-internal) events such as interrupts.
PRIORITY_URGENT = 0


class SimulationError(RuntimeError):
    """Raised for kernel misuse (double trigger, running an empty calendar…)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value given by the interrupter.  Used
    by the reconfiguration manager to model pre-emption of a dynamic region
    and by failure-injection tests.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that callbacks and processes can wait on.

    Life-cycle: *pending* → *triggered* (value or exception decided, queued on
    the calendar) → *processed* (callbacks ran).  Triggering twice is an
    error; waiting on a processed event resumes immediately.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "triggered", "processed", "name", "abandoned")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self.triggered = False
        self.processed = False
        self.name = name
        #: Set when the waiter was interrupted away: queue owners (channels,
        #: semaphores) must skip abandoned events instead of satisfying them.
        self.abandoned = False

    @property
    def ok(self) -> bool:
        """True once the event was triggered successfully."""
        return self.triggered and self._exc is None

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError(f"value of untriggered event {self!r}")
        if self._exc is not None:
            raise self._exc
        return self._value

    def succeed(self, value: Any = None, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"event {self!r} already triggered")
        self.triggered = True
        self._value = value
        self.sim._enqueue(self, delay=0, priority=priority)
        return self

    def fail(self, exc: BaseException, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event with an exception, propagated to waiters."""
        if self.triggered:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        self.triggered = True
        self._exc = exc
        self.sim._enqueue(self, delay=0, priority=priority)
        return self

    def _abandon(self) -> None:
        """Mark the event abandoned (its waiter was interrupted away).

        Queue owners (channels, semaphores) check the flag and skip the
        event instead of satisfying it; composite events override this to
        release their hold on still-pending members.
        """
        self.abandoned = True

    def _process(self) -> None:
        self.processed = True
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        label = self.name or type(self).__name__
        return f"<{label} {state} at t={self.sim.now}>"


class Timeout(Event):
    """An event that fires ``delay`` ticks after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: int, value: Any = None, name: str = ""):
        if delay < 0:
            raise ValueError(f"timeout delay must be >= 0, got {delay}")
        super().__init__(sim, name=name or f"timeout({delay})")
        self.triggered = True
        self._value = value
        sim._enqueue(self, delay=delay, priority=PRIORITY_NORMAL)


class Process(Event):
    """Runs a generator; triggers (as an event) when the generator returns.

    The generator yields :class:`Event` instances.  When a yielded event
    fails, its exception is thrown into the generator, so processes can
    ``try/except`` failures of sub-operations.
    """

    __slots__ = ("_gen", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: Generator[Event, Any, Any], name: str = ""):
        if not hasattr(gen, "send"):
            raise TypeError(f"Process requires a generator, got {type(gen).__name__}")
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        # Bootstrap: resume once the simulator starts (or immediately if running).
        init = Event(sim, name=f"init:{self.name}")
        init.callbacks.append(self._resume)
        init.succeed(priority=PRIORITY_URGENT)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        target = self._waiting_on
        if target is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
            if not target.triggered:
                target._abandon()
            self._waiting_on = None
        kick = Event(self.sim, name=f"interrupt:{self.name}")
        kick.callbacks.append(lambda ev: self._throw(Interrupt(cause)))
        kick.succeed(priority=PRIORITY_URGENT)

    def _throw(self, exc: BaseException) -> None:
        if self.triggered:
            return
        try:
            target = self._gen.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value, priority=PRIORITY_URGENT)
            return
        except BaseException as err:  # noqa: BLE001 - propagate to waiters
            self.fail(err, priority=PRIORITY_URGENT)
            return
        self._wait_on(target)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event._exc is not None:
                target = self._gen.throw(event._exc)
            else:
                target = self._gen.send(event._value)
        except StopIteration as stop:
            self.succeed(stop.value, priority=PRIORITY_URGENT)
            return
        except BaseException as err:  # noqa: BLE001 - propagate to waiters
            self.fail(err, priority=PRIORITY_URGENT)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if not isinstance(target, Event):
            self._throw(SimulationError(f"process {self.name} yielded non-event {target!r}"))
            return
        if target.processed:
            # Already settled: resume at the current time, preserving order.
            kick = Event(self.sim, name=f"rewake:{self.name}")
            kick._value = target._value
            kick._exc = target._exc
            kick.callbacks.append(self._resume)
            kick.triggered = True
            self.sim._enqueue(kick, delay=0, priority=PRIORITY_NORMAL)
            self._waiting_on = kick
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target


class _Condition(Event):
    """Base for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event], name: str):
        super().__init__(sim, name=name)
        self.events = tuple(events)
        for ev in self.events:
            if not isinstance(ev, Event):
                raise TypeError(f"{name} requires events, got {ev!r}")
        self._pending = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.processed:
                self._on_settle(ev)
            else:
                ev.callbacks.append(self._on_settle)
            if self.triggered:
                break

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self.events if ev.processed and ev._exc is None}

    def _abandon(self) -> None:
        """Abandon the condition *and* detach from its pending members.

        Without this, an interrupted ``yield AnyOf([sem.acquire(), ...])``
        leaves the acquire event live in the semaphore's waiter queue: the
        next release would satisfy it and the permit would be consumed by a
        process that is no longer listening.  Detaching drops this
        condition's callback from every untriggered member; a member left
        with no other listener is abandoned recursively, so queue owners
        skip it.
        """
        super()._abandon()
        for ev in self.events:
            if ev.triggered:
                continue
            try:
                ev.callbacks.remove(self._on_settle)
            except ValueError:
                pass
            if not ev.callbacks:
                ev._abandon()

    def _on_settle(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Triggers when the first of ``events`` settles."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, "AnyOf")

    def _on_settle(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exc is not None:
            self.fail(event._exc)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Triggers when all ``events`` settle (fails fast on first failure)."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, "AllOf")

    def _on_settle(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exc is not None:
            self.fail(event._exc)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect())


class Simulator:
    """The event calendar and simulation clock."""

    def __init__(self) -> None:
        self._queue: list[tuple[int, int, int, Event]] = []
        self._now = 0
        self._seq = 0

    @property
    def now(self) -> int:
        """Current simulation time in ticks (nanoseconds)."""
        return self._now

    # -- event factories ---------------------------------------------------

    def event(self, name: str = "") -> Event:
        """A fresh, untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: int, value: Any = None, name: str = "") -> Timeout:
        """An event that fires ``delay`` ticks from now."""
        return Timeout(self, delay, value=value, name=name)

    def process(self, gen: Generator[Event, Any, Any], name: str = "") -> Process:
        """Start running generator ``gen`` as a concurrent process."""
        return Process(self, gen, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- calendar ----------------------------------------------------------

    def _enqueue(self, event: Event, delay: int, priority: int) -> None:
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))
        self._seq += 1

    def step(self) -> None:
        """Process the single next event; advances the clock."""
        if not self._queue:
            raise SimulationError("step() on an empty event calendar")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        if when < self._now:  # pragma: no cover - guarded by construction
            raise SimulationError("event scheduled in the past")
        self._now = when
        event._process()

    def peek(self) -> Optional[int]:
        """Time of the next scheduled event, or None if the calendar is empty."""
        return self._queue[0][0] if self._queue else None

    def run(self, until: Optional[int | Event] = None) -> Any:
        """Run events until the calendar drains, ``until`` ticks pass, or an
        ``until`` event triggers.  Returns the event's value in that case."""
        if until is None:
            while self._queue:
                self.step()
            return None
        if isinstance(until, Event):
            sentinel = until
            while not sentinel.processed:
                if not self._queue:
                    raise SimulationError(
                        f"calendar drained before event {sentinel.name or sentinel!r} triggered"
                    )
                self.step()
            return sentinel.value
        horizon = int(until)
        if horizon < self._now:
            raise ValueError(f"cannot run until {horizon}, already at {self._now}")
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None
