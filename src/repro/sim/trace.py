"""Execution tracing.

Every runtime component (operators, media, configuration ports, the
reconfiguration manager) records :class:`TraceRecord` entries and
:class:`Span` activity intervals into a shared :class:`Trace`.  Benchmarks and
the report generator compute utilization, stall time and Gantt charts from
these records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional

__all__ = ["TraceRecord", "Span", "Trace"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """A point event in the trace."""

    time: int
    actor: str
    kind: str
    detail: str = ""
    payload: Any = None


@dataclass(frozen=True, slots=True)
class Span:
    """A closed activity interval ``[start, end)`` on an actor."""

    actor: str
    kind: str
    start: int
    end: int
    detail: str = ""

    @property
    def duration(self) -> int:
        return self.end - self.start

    def overlaps(self, other: "Span") -> bool:
        return self.start < other.end and other.start < self.end


class Trace:
    """Ordered store of records and spans with query helpers."""

    def __init__(self, scope: str = "") -> None:
        #: Namespace label for multi-board runs (e.g. ``"b0042"``).  Not
        #: applied to actor names — per-board traces keep identical actor
        #: vocabularies so they compare byte-for-byte across boards — but
        #: exporters (``spans_from_sim_trace``) use it as the process lane.
        self.scope = scope
        self.records: list[TraceRecord] = []
        self.spans: list[Span] = []
        self._open: dict[tuple[str, str], tuple[int, str]] = {}

    # -- recording ---------------------------------------------------------

    def record(self, time: int, actor: str, kind: str, detail: str = "", payload: Any = None) -> None:
        self.records.append(TraceRecord(time, actor, kind, detail, payload))

    def begin(self, time: int, actor: str, kind: str, detail: str = "") -> None:
        """Open an activity span (one open span per (actor, kind))."""
        key = (actor, kind)
        if key in self._open:
            raise ValueError(f"span {key} already open")
        self._open[key] = (time, detail)

    def end(self, time: int, actor: str, kind: str) -> Span:
        """Close the matching open span and store it."""
        key = (actor, kind)
        if key not in self._open:
            raise ValueError(f"no open span for {key}")
        start, detail = self._open.pop(key)
        if time < start:
            raise ValueError(f"span {key} ends before it starts ({time} < {start})")
        span = Span(actor=actor, kind=kind, start=start, end=time, detail=detail)
        self.spans.append(span)
        return span

    def add_span(self, span: Span) -> None:
        if span.end < span.start:
            raise ValueError(f"negative-duration span {span}")
        self.spans.append(span)

    def is_open(self, actor: str, kind: str) -> bool:
        """True while a span for ``(actor, kind)`` is open."""
        return (actor, kind) in self._open

    def close_open(self, time: int) -> list[Span]:
        """Close every open span at ``time`` (end-of-simulation flush).

        Long-lived activity spans — e.g. the reconfiguration manager's
        module-residency intervals — are open until whatever evicts them;
        at the end of a run they are still in flight, so exporters call
        this to turn them into proper closed intervals.
        """
        closed = []
        for actor, kind in sorted(self._open):
            start, _ = self._open[(actor, kind)]
            closed.append(self.end(max(time, start), actor, kind))
        return closed

    # -- queries -----------------------------------------------------------

    def actors(self) -> list[str]:
        seen: dict[str, None] = {}
        for rec in self.records:
            seen.setdefault(rec.actor)
        for span in self.spans:
            seen.setdefault(span.actor)
        return list(seen)

    def spans_of(self, actor: Optional[str] = None, kind: Optional[str] = None) -> list[Span]:
        out = self.spans
        if actor is not None:
            out = [s for s in out if s.actor == actor]
        if kind is not None:
            out = [s for s in out if s.kind == kind]
        return sorted(out, key=lambda s: (s.start, s.end))

    def records_of(self, actor: Optional[str] = None, kind: Optional[str] = None) -> list[TraceRecord]:
        out = self.records
        if actor is not None:
            out = [r for r in out if r.actor == actor]
        if kind is not None:
            out = [r for r in out if r.kind == kind]
        return sorted(out, key=lambda r: r.time)

    def filter(self, predicate: Callable[[TraceRecord], bool]) -> Iterator[TraceRecord]:
        return (r for r in self.records if predicate(r))

    def end_time(self) -> int:
        last_rec = max((r.time for r in self.records), default=0)
        last_span = max((s.end for s in self.spans), default=0)
        return max(last_rec, last_span)

    # -- presentation --------------------------------------------------------

    def gantt(self, width: int = 72, kinds: Optional[set[str]] = None) -> str:
        """ASCII Gantt chart of spans, one row per actor."""
        spans = [s for s in self.spans if kinds is None or s.kind in kinds]
        if not spans:
            return "(empty trace)"
        t_end = max(s.end for s in spans)
        t_end = max(t_end, 1)
        rows = []
        glyphs = {"compute": "#", "comm": "=", "reconfig": "R", "stall": ".", "prefetch": "p"}
        for actor in sorted({s.actor for s in spans}):
            line = [" "] * width
            for s in (x for x in spans if x.actor == actor):
                a = min(width - 1, s.start * width // t_end)
                b = min(width - 1, max(a, (s.end * width // t_end) - 1))
                ch = glyphs.get(s.kind, "*")
                for i in range(a, b + 1):
                    line[i] = ch
            rows.append(f"{actor:>20} |{''.join(line)}|")
        legend = "  ".join(f"{g}={k}" for k, g in glyphs.items())
        return "\n".join(rows) + f"\n{'':>20}  {legend}  (t_end={t_end})"
