"""Synchronization and communication primitives built on the kernel.

These model the hardware objects the generated executives use:

- :class:`Semaphore` — the ``Pre_``/``Suc_`` synchronization of SynDEx
  executives (producer/consumer buffer hand-off).
- :class:`Channel` — a bounded FIFO, modelling a communication medium's
  buffer (e.g. the SHB bus interface FIFO).
- :class:`Mailbox` — an unbounded message queue (interrupt requests from the
  FPGA to the DSP in Fig. 2 case b).
- :class:`Resource` — a mutex with FIFO queueing (exclusive media, the single
  configuration port).
- :class:`Signal` — a level-sensitive value with edge events (``In_Reconf``).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from repro.sim.kernel import Event, SimulationError, Simulator

__all__ = ["Semaphore", "Channel", "Mailbox", "Resource", "Signal"]


class Semaphore:
    """Counting semaphore with FIFO wakeup order."""

    def __init__(self, sim: Simulator, value: int = 0, name: str = ""):
        if value < 0:
            raise ValueError(f"initial semaphore value must be >= 0, got {value}")
        self.sim = sim
        self.name = name or "sem"
        self._count = value
        self._waiters: Deque[Event] = deque()

    @property
    def count(self) -> int:
        return self._count

    def release(self) -> None:
        """V operation (SynDEx ``Suc_``): wake one waiter or bank a permit."""
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.abandoned:
                waiter.succeed()
                return
        self._count += 1

    def acquire(self) -> Event:
        """P operation (SynDEx ``Pre_``): event that fires once a permit is held."""
        ev = Event(self.sim, name=f"{self.name}.acquire")
        if self._count > 0:
            self._count -= 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev


class Channel:
    """Bounded FIFO channel; put blocks when full, get blocks when empty."""

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"channel capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name or "chan"
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @staticmethod
    def _next_live(queue: Deque) -> "Event | None":
        """Pop and return the first non-abandoned waiter event, or None."""
        while queue:
            ev = queue.popleft()
            if not getattr(ev, "abandoned", False):
                return ev
        return None

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Event that fires once ``item`` entered the FIFO."""
        ev = Event(self.sim, name=f"{self.name}.put")
        getter = self._next_live(self._getters)
        if getter is not None:
            # Direct hand-off keeps FIFO semantics with zero queue residency.
            getter.succeed(item)
            ev.succeed()
        elif not self.is_full:
            self._items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        """Event that fires with the next item."""
        ev = Event(self.sim, name=f"{self.name}.get")
        if self._items:
            item = self._items.popleft()
            while self._putters:
                put_ev, pending = self._putters.popleft()
                if put_ev.abandoned:
                    continue
                self._items.append(pending)
                put_ev.succeed()
                break
            ev.succeed(item)
        else:
            self._getters.append(ev)
        return ev


class Mailbox:
    """Unbounded message queue — put never blocks."""

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name or "mbox"
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def post(self, item: Any) -> None:
        getter = Channel._next_live(self._getters)
        if getter is not None:
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = Event(self.sim, name=f"{self.name}.get")
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev


class Resource:
    """Mutex with FIFO grant order; models exclusive hardware (a bus, a port).

    Usage from a process::

        grant = yield resource.request()
        try:
            ...
        finally:
            resource.release(grant)
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name or "res"
        self._holder: Optional[object] = None
        self._waiters: Deque[Event] = deque()

    @property
    def busy(self) -> bool:
        return self._holder is not None

    def request(self) -> Event:
        """Event firing with a grant token once the resource is held."""
        ev = Event(self.sim, name=f"{self.name}.request")
        if self._holder is None:
            token = object()
            self._holder = token
            ev.succeed(token)
        else:
            self._waiters.append(ev)
        return ev

    def release(self, token: object) -> None:
        if token is not self._holder:
            raise SimulationError(f"release of {self.name} with a stale grant token")
        waiter = Channel._next_live(self._waiters)
        if waiter is not None:
            new_token = object()
            self._holder = new_token
            waiter.succeed(new_token)
        else:
            self._holder = None

    def use(self, duration: int) -> Generator[Event, Any, None]:
        """Convenience process body: hold the resource for ``duration`` ticks."""
        token = yield self.request()
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release(token)


class Signal:
    """Level-sensitive value with events on change — e.g. ``In_Reconf``."""

    def __init__(self, sim: Simulator, value: Any = None, name: str = ""):
        self.sim = sim
        self.name = name or "sig"
        self._value = value
        self._watchers: list[Event] = []
        self.history: list[tuple[int, Any]] = [(sim.now, value)]

    @property
    def value(self) -> Any:
        return self._value

    def set(self, value: Any) -> None:
        """Drive a new value; fires change events only on actual change."""
        if value == self._value:
            return
        self._value = value
        self.history.append((self.sim.now, value))
        watchers, self._watchers = self._watchers, []
        for ev in watchers:
            ev.succeed(value)

    def changed(self) -> Event:
        """Event firing at the next value change."""
        ev = Event(self.sim, name=f"{self.name}.changed")
        self._watchers.append(ev)
        return ev

    def wait_for(self, predicate) -> Generator[Event, Any, Any]:
        """Process body: wait until ``predicate(value)`` holds; returns value."""
        while not predicate(self._value):
            yield self.changed()
        return self._value
