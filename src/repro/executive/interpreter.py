"""Executive interpreter: runs the macro-code on the discrete-event kernel.

This is the flow's *dynamic verification* stage (Fig. 3): the generated
executive is executed with real data so both timing (iteration period,
reconfiguration stalls) and functional behaviour (actual MC-CDMA samples,
when functional bindings are supplied) can be observed.

Concurrency model: one process per operator and per medium, plus the
configuration service.  Cross-operator edges become chains of capacity-1
channels (the alternating buffers of the generated design), which gives the
natural back-pressure of the synchronized executive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Optional

from repro.executive.macrocode import (
    ComputeInstr,
    ExecutiveProgram,
    Instruction,
    MacroCodeError,
    RecvInstr,
    ReconfigureInstr,
    SendInstr,
    TransferInstr,
)
from repro.sim import Channel, Event, Simulator, Trace

__all__ = [
    "ConditionContext",
    "FixedLatencyConfigService",
    "ExecutionReport",
    "ExecutiveRunner",
]

#: Functional binding: kind -> f(inputs_by_port, params) -> outputs_by_port.
Binding = Callable[[dict[str, Any], dict], dict[str, Any]]


class ConditionContext:
    """Per-iteration condition values with wait-until-decided events."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._values: dict[tuple[int, str], Any] = {}
        self._events: dict[tuple[int, str], Event] = {}

    def _event(self, iteration: int, group: str) -> Event:
        key = (iteration, group)
        if key not in self._events:
            self._events[key] = self.sim.event(name=f"cond:{group}@{iteration}")
        return self._events[key]

    def decide(self, iteration: int, group: str, value: Hashable) -> None:
        key = (iteration, group)
        if key in self._values:
            raise MacroCodeError(f"group {group!r} decided twice in iteration {iteration}")
        self._values[key] = value
        self._event(iteration, group).succeed(value)

    def decided(self, iteration: int, group: str) -> bool:
        return (iteration, group) in self._values

    def value_event(self, iteration: int, group: str) -> Event:
        """Event carrying the group's value for the iteration (may be past)."""
        return self._event(iteration, group)

    def value(self, iteration: int, group: str) -> Any:
        return self._values[(iteration, group)]


class FixedLatencyConfigService:
    """Minimal configuration service: fixed swap latency, optional prefetch.

    The real runtime reconfiguration manager (:mod:`repro.reconfig.manager`)
    implements this same protocol; this stub lets the executive be tested in
    isolation and doubles as the "no manager intelligence" baseline.

    Prefetch hints (:meth:`notify_select`) are **always counted**
    (``hints_seen``) so executive-level benchmarks can report hint traffic,
    and are **acted on only when** the service is built with
    ``prefetch=True``: the hinted swap starts immediately and a later demand
    for the same module stalls only for the remaining swap time.  The
    default (``prefetch=False``) is the documented reactive baseline — hints
    are observed but deliberately not acted on.

    ``stall_ns`` accounts the *demand-visible* wait: a purely reactive swap
    contributes its full latency (as before), a prefetched swap only the
    part that overlaps the demand.
    """

    def __init__(
        self,
        sim: Simulator,
        latency_ns: int,
        trace: Optional[Trace] = None,
        prefetch: bool = False,
    ):
        if latency_ns < 0:
            raise ValueError("latency must be >= 0")
        self.sim = sim
        self.latency_ns = latency_ns
        self.trace = trace
        self.prefetch = prefetch
        self.loaded: dict[str, Optional[str]] = {}
        self.swap_count = 0
        self.stall_ns = 0
        self.hints_seen = 0
        self.prefetch_starts = 0
        #: region -> (module being configured, completion event, expected end time)
        self._in_flight: dict[str, tuple[str, Event, int]] = {}

    def _start_swap(self, region: str, module: str) -> Event:
        done = self.sim.event(name=f"swap:{region}<-{module}")
        self._in_flight[region] = (module, done, self.sim.now + self.latency_ns)

        def swap():
            start = self.sim.now
            if self.trace:
                self.trace.begin(start, f"region.{region}", "reconfig", detail=module)
            yield self.sim.timeout(self.latency_ns)
            self.loaded[region] = module
            self.swap_count += 1
            if self.trace:
                self.trace.end(self.sim.now, f"region.{region}", "reconfig")
            self._in_flight.pop(region, None)
            done.succeed()

        self.sim.process(swap(), name=f"swap:{region}")
        return done

    def _chain(self, source: Event, target: Event) -> None:
        def forward():
            yield source
            target.succeed()

        self.sim.process(forward(), name="cfg-chain")

    def notify_select(self, region: str, module: str) -> None:
        """Prefetch hint: counted always, acted on when ``prefetch=True``."""
        self.hints_seen += 1
        if not self.prefetch:
            return
        if self.loaded.get(region) == module and region not in self._in_flight:
            return
        if region in self._in_flight:  # one swap at a time per region
            return
        self.prefetch_starts += 1
        self._start_swap(region, module)

    def ensure_loaded(self, region: str, module: str) -> Event:
        """Event that fires once ``module`` is configured on ``region``."""
        ev = self.sim.event(name=f"cfg:{region}<-{module}")
        in_flight = self._in_flight.get(region)
        if in_flight is None:
            if self.loaded.get(region) == module:
                ev.succeed()
                return ev
            self.stall_ns += self.latency_ns
            self._chain(self._start_swap(region, module), ev)
            return ev
        flight_module, done, expected_end = in_flight
        self.stall_ns += max(0, expected_end - self.sim.now)
        if flight_module == module:  # demand absorbed by the prefetch in flight
            self._chain(done, ev)
            return ev

        # Wrong module mid-swap (mispredicted hint): swap again afterwards.
        self.stall_ns += self.latency_ns

        def follow():
            yield done
            second = self._start_swap(region, module)
            yield second
            ev.succeed()

        self.sim.process(follow(), name=f"follow:{region}")
        return ev


@dataclass
class ExecutionReport:
    """Results of one executive run."""

    trace: Trace
    end_time_ns: int
    iteration_ends: dict[str, list[int]]
    captured: dict[str, list[dict[str, Any]]] = field(default_factory=dict)
    condition_history: list[Hashable] = field(default_factory=list)

    def iteration_period_ns(self, operator: str) -> float:
        """Mean steady-state iteration period observed on ``operator``."""
        ends = self.iteration_ends.get(operator, [])
        if len(ends) < 2:
            return float(self.end_time_ns)
        diffs = [b - a for a, b in zip(ends, ends[1:])]
        return sum(diffs) / len(diffs)

    def throughput_iterations_per_s(self, operator: str) -> float:
        period = self.iteration_period_ns(operator)
        return 1e9 / period if period else float("inf")


class ExecutiveRunner:
    """Executes an :class:`ExecutiveProgram` for a number of iterations."""

    def __init__(
        self,
        program: ExecutiveProgram,
        n_iterations: int = 1,
        sim: Optional[Simulator] = None,
        bindings: Optional[dict[str, Binding]] = None,
        selector_values: Optional[dict[str, Callable[[int], Hashable]]] = None,
        config_service: Optional[Any] = None,
        capture: Optional[set[str]] = None,
        channel_capacity: int = 1,
    ):
        if n_iterations < 1:
            raise ValueError("need at least one iteration")
        program.validate()
        self.program = program
        self.n_iterations = n_iterations
        self.sim = sim or Simulator()
        self.bindings = bindings or {}
        self.selector_values = selector_values or {}
        self.trace = Trace()
        self.config_service = config_service or FixedLatencyConfigService(
            self.sim, latency_ns=0, trace=self.trace
        )
        self.capture = capture or set()
        self.ctx = ConditionContext(self.sim)
        self._channels: dict[tuple[str, int], Channel] = {}
        for edge_id, hops in program.edge_hops.items():
            for slot in range(hops + 1):
                self._channels[(edge_id, slot)] = Channel(
                    self.sim, capacity=channel_capacity, name=f"{edge_id}#{slot}"
                )
        self._iteration_ends: dict[str, list[int]] = {}
        self._captured: dict[str, list[dict[str, Any]]] = {name: [] for name in self.capture}
        self._condition_history: list[Hashable] = []
        #: vertex name -> human-readable description of its current position,
        #: used for deadlock diagnosis when the simulation stalls.
        self._status: dict[str, str] = {}

    # -- condition helpers ------------------------------------------------------

    def _passes(self, instr: Instruction, iteration: int):
        """Process body: wait for the instruction's condition to be decided;
        returns True when the instruction should execute."""
        if not instr.is_conditioned:
            return True, None
        assert instr.condition_group is not None
        if self.ctx.decided(iteration, instr.condition_group):
            return self.ctx.value(iteration, instr.condition_group) == instr.condition_value, None
        return None, self.ctx.value_event(iteration, instr.condition_group)

    # -- operator process ------------------------------------------------------------

    def _operator_proc(self, name: str, code: list[Instruction]):
        local: dict[str, Any] = {}  # "op.port" -> value
        ends = self._iteration_ends.setdefault(name, [])
        for iteration in range(self.n_iterations):
            local.clear()  # buffers are per-iteration; avoids stale conditioned data
            for index, instr in enumerate(code):
                self._status[name] = (
                    f"iteration {iteration}, instruction {index}: {type(instr).__name__}"
                    f"({getattr(instr, 'op_name', getattr(instr, 'edge_id', getattr(instr, 'module', '')))})"
                )
                ok, wait = self._passes(instr, iteration)
                if ok is None:
                    value = yield wait
                    ok = value == instr.condition_value
                if not ok:
                    continue
                if isinstance(instr, RecvInstr):
                    chan = self._channels[(instr.edge_id, self.program.edge_hops[instr.edge_id])]
                    payload = yield chan.get()
                    local[f"<in>{instr.edge_id}"] = payload
                elif isinstance(instr, ComputeInstr):
                    yield from self._compute(name, instr, iteration, local)
                elif isinstance(instr, SendInstr):
                    chan = self._channels[(instr.edge_id, 0)]
                    src_key = instr.edge_id.split("->")[0]  # "op.port"
                    yield chan.put(local.get(src_key))
                elif isinstance(instr, ReconfigureInstr):
                    start = self.sim.now
                    yield self.config_service.ensure_loaded(instr.region, instr.module)
                    if self.sim.now > start:
                        self.trace.record(
                            start, f"op.{name}", "reconfig_stall",
                            detail=instr.module, payload=self.sim.now - start,
                        )
                else:  # pragma: no cover - defensive
                    raise MacroCodeError(f"unknown instruction {instr!r}")
            ends.append(self.sim.now)
        self._status[name] = "finished"

    def _compute(self, operator_name: str, instr: ComputeInstr, iteration: int, local: dict):
        actor = f"op.{operator_name}"
        self.trace.begin(self.sim.now, actor, "compute", detail=instr.op_name)
        yield self.sim.timeout(instr.duration_ns)
        self.trace.end(self.sim.now, actor, "compute")

        outputs: dict[str, Any] = {}
        binding = self.bindings.get(instr.kind)
        if binding is not None:
            inputs = self._gather_inputs(instr.op_name, local)
            outputs = binding(inputs, dict(instr.params, iteration=iteration)) or {}
            for port, value in outputs.items():
                local[f"{instr.op_name}.{port}"] = value
        if instr.op_name in self.capture:
            self._captured[instr.op_name].append(dict(outputs))
        if instr.decides_group is not None:
            value = self._decide_value(instr, iteration, outputs)
            self.ctx.decide(iteration, instr.decides_group, value)
            self._condition_history.append(value)
            targets = self.program.case_modules.get(instr.decides_group, {}).get(value, {})
            for region in self.program.selector_regions.get(instr.decides_group, ()):
                module = targets.get(region, str(value))
                self.config_service.notify_select(region, module)

    def _decide_value(self, instr: ComputeInstr, iteration: int, outputs: dict[str, Any]) -> Hashable:
        provider = self.selector_values.get(instr.decides_group or "")
        if provider is not None:
            return provider(iteration)
        if outputs:
            return next(iter(outputs.values()))
        values = self.program.condition_groups.get(instr.decides_group or "", [])
        if not values:
            raise MacroCodeError(f"no value source for condition group {instr.decides_group!r}")
        return values[0]

    def _gather_inputs(self, op_name: str, local: dict[str, Any]) -> dict[str, Any]:
        """Collect input values via the program's input-source map."""
        inputs: dict[str, Any] = {}
        for port, (kind, key) in self.program.input_sources.get(op_name, {}).items():
            if kind == "local":
                inputs[port] = local.get(key)
            else:  # cross-operator edge, delivered by a RecvInstr
                inputs[port] = local.get(f"<in>{key}")
        return inputs

    # -- medium process --------------------------------------------------------------

    def _medium_proc(self, name: str, code: list[TransferInstr]):
        for iteration in range(self.n_iterations):
            for index, instr in enumerate(code):
                self._status[f"medium:{name}"] = (
                    f"iteration {iteration}, transfer {index}: {instr.edge_id} hop{instr.hop}"
                )
                ok, wait = self._passes(instr, iteration)
                if ok is None:
                    value = yield wait
                    ok = value == instr.condition_value
                if not ok:
                    continue
                src = self._channels[(instr.edge_id, instr.hop)]
                dst = self._channels[(instr.edge_id, instr.hop + 1)]
                payload = yield src.get()
                actor = f"medium.{name}"
                self.trace.begin(self.sim.now, actor, "comm", detail=instr.edge_id)
                yield self.sim.timeout(instr.duration_ns)
                self.trace.end(self.sim.now, actor, "comm")
                yield dst.put(payload)
        self._status[f"medium:{name}"] = "finished"

    # -- run -----------------------------------------------------------------------------

    def run(self) -> ExecutionReport:
        """Execute all iterations; returns the report.

        A stalled executive (inconsistent program, missing selector, …)
        raises :class:`MacroCodeError` with a per-vertex status dump instead
        of the kernel's bare "calendar drained" error."""
        from repro.sim import SimulationError

        procs = []
        for name, code in self.program.operator_code.items():
            procs.append(self.sim.process(self._operator_proc(name, code), name=f"op:{name}"))
        for name, code in self.program.medium_code.items():
            procs.append(self.sim.process(self._medium_proc(name, code), name=f"med:{name}"))
        done = self.sim.all_of(procs)
        try:
            self.sim.run(until=done)
        except SimulationError as err:
            stuck = [
                f"  {vertex}: {where}"
                for vertex, where in sorted(self._status.items())
                if where != "finished"
            ]
            raise MacroCodeError(
                "executive deadlocked at t={} ns; vertices not finished:\n{}".format(
                    self.sim.now, "\n".join(stuck) or "  (none recorded)"
                )
            ) from err
        return ExecutionReport(
            trace=self.trace,
            end_time_ns=self.sim.now,
            iteration_ends=self._iteration_ends,
            captured=self._captured,
            condition_history=self._condition_history,
        )
