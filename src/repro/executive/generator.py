"""Executive generation: adequation schedule → macro-code programs.

"Once mapping and scheduling of the algorithm are performed, macro-code is
automatically generated" — this module is that step.  The per-operator
programs follow the schedule's start order; communication instructions are
inserted around computations; dynamic operators get an explicit
``reconfigure_`` macro ahead of each conditioned module.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.aaa.schedule import Schedule
from repro.dfg.graph import AlgorithmGraph, Edge
from repro.executive.macrocode import (
    ComputeInstr,
    ExecutiveProgram,
    Instruction,
    RecvInstr,
    ReconfigureInstr,
    SendInstr,
    TransferInstr,
)

__all__ = ["edge_id_of", "generate_executive"]


def edge_id_of(edge: Edge) -> str:
    """Stable identifier of a data-flow edge."""
    return f"{edge.src.name}.{edge.src_port}->{edge.dst.name}.{edge.dst_port}"


def _edge_condition(edge: Edge) -> tuple[Optional[str], Hashable]:
    """The condition guarding an edge's traffic: a conditioned endpoint means
    the transfer only happens in that endpoint's case."""
    if edge.src.condition is not None:
        return edge.src.condition.group, edge.src.condition.value
    if edge.dst.condition is not None:
        return edge.dst.condition.group, edge.dst.condition.value
    return None, None


def generate_executive(graph: AlgorithmGraph, schedule: Schedule) -> ExecutiveProgram:
    """Translate a validated schedule into the synchronized executive."""
    program = ExecutiveProgram()
    mapping = schedule.mapping()

    # Which groups does each operation decide?
    decides: dict[str, str] = {}
    for group in graph.condition_groups.values():
        decides[group.selector.name] = group.name
        program.condition_groups[group.name] = list(group.cases)

    # Cross-operator edges and their hop counts; input-source map for data.
    cross_edges: dict[str, Edge] = {}
    for edge in graph.edges:
        eid = edge_id_of(edge)
        sources = program.input_sources.setdefault(edge.dst.name, {})
        if mapping[edge.src.name] != mapping[edge.dst.name]:
            cross_edges[eid] = edge
            hops = {t.hop for t in schedule.transfers_of_edge(edge)}
            program.edge_hops[eid] = len(hops)
            sources[edge.dst_port] = ("edge", eid)
        else:
            sources[edge.dst_port] = ("local", f"{edge.src.name}.{edge.src_port}")

    # Per-operator code, in schedule order.
    for operator_name in schedule.operators_used():
        code: list[Instruction] = []
        for s in schedule.of_operator(operator_name):
            op = s.op
            group, value = (op.condition.group, op.condition.value) if op.condition else (None, None)
            reconf_instr = None
            if s.operator.is_reconfigurable and op.condition is not None:
                assert s.operator.region is not None
                reconf_instr = ReconfigureInstr(
                    condition_group=group, condition_value=value,
                    region=s.operator.region, module=op.name,
                )
                regions = program.selector_regions.setdefault(op.condition.group, [])
                if s.operator.region not in regions:
                    regions.append(s.operator.region)
                program.case_modules.setdefault(op.condition.group, {}).setdefault(
                    op.condition.value, {}
                )[s.operator.region] = op.name
            # Prefetch placement: when the adequation scheduled the swap ahead
            # of the data (prefetched reconfiguration), the request macro runs
            # *before* the data reception, so loading overlaps the upstream
            # pipeline.  Reactive schedules request only once the data is in.
            prefetched = any(
                r.module == op.name and r.prefetched
                for r in schedule.reconfigs_of(s.operator)
            )
            if reconf_instr is not None and prefetched:
                code.append(reconf_instr)
            for edge in graph.in_edges(op):
                if mapping[edge.src.name] == operator_name:
                    continue
                g, v = _edge_condition(edge)
                code.append(
                    RecvInstr(condition_group=g, condition_value=v,
                              edge_id=edge_id_of(edge), size_bytes=edge.size_bytes)
                )
            if reconf_instr is not None and not prefetched:
                code.append(reconf_instr)
            code.append(
                ComputeInstr(
                    condition_group=group, condition_value=value,
                    op_name=op.name, kind=op.kind, duration_ns=s.duration,
                    params=dict(op.params), decides_group=decides.get(op.name),
                )
            )
            for edge in graph.out_edges(op):
                if mapping[edge.dst.name] == operator_name:
                    continue
                g, v = _edge_condition(edge)
                code.append(
                    SendInstr(condition_group=g, condition_value=v,
                              edge_id=edge_id_of(edge), size_bytes=edge.size_bytes)
                )
        program.operator_code[operator_name] = code

    # Per-medium code, in schedule order.
    for t in sorted(schedule.transfers, key=lambda t: (t.start, t.end, t.hop)):
        eid = edge_id_of(t.edge)
        g, v = _edge_condition(t.edge)
        program.medium_code.setdefault(t.medium.name, []).append(
            TransferInstr(
                condition_group=g, condition_value=v,
                edge_id=eid, hop=t.hop, size_bytes=t.edge.size_bytes,
                duration_ns=t.duration,
            )
        )

    program.validate()
    return program
