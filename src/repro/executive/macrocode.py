"""The macro-code instruction set.

A SynDEx executive is, per architecture vertex, a totally ordered list of
macros wrapped in an infinite loop, with inter-vertex synchronization.  Our
instruction set mirrors the macros the paper's VHDL generator consumes:

- :class:`ComputeInstr` — run one operation (the computation sequencer step),
- :class:`SendInstr` / :class:`RecvInstr` — hand a buffer to / take a buffer
  from a communication channel (the communication sequencer steps, with the
  buffer read/write phase control),
- :class:`TransferInstr` — one hop of a data transfer on a medium,
- :class:`ReconfigureInstr` — ask the configuration manager to load a module
  (only on dynamic operators).

Every instruction may be *conditioned*: it executes only in iterations where
its condition group has the matching value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional

__all__ = [
    "MacroCodeError",
    "Instruction",
    "ComputeInstr",
    "SendInstr",
    "RecvInstr",
    "TransferInstr",
    "ReconfigureInstr",
    "ExecutiveProgram",
]


class MacroCodeError(ValueError):
    """Malformed executive program."""


@dataclass(frozen=True, slots=True)
class Instruction:
    """Base: every instruction may be conditioned on (group, value)."""

    condition_group: Optional[str] = None
    condition_value: Hashable = None

    @property
    def is_conditioned(self) -> bool:
        return self.condition_group is not None


@dataclass(frozen=True, slots=True)
class ComputeInstr(Instruction):
    """Execute operation ``op_name`` for ``duration_ns``."""

    op_name: str = ""
    kind: str = ""
    duration_ns: int = 0
    params: dict = field(default_factory=dict, hash=False, compare=False)
    #: Set when the operation is the selector of a condition group: its
    #: output decides that group's value for the iteration.
    decides_group: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.op_name:
            raise MacroCodeError("compute instruction needs an operation name")
        if self.duration_ns < 0:
            raise MacroCodeError(f"compute {self.op_name!r}: negative duration")


@dataclass(frozen=True, slots=True)
class SendInstr(Instruction):
    """Deposit the buffer of ``edge_id`` for its first transfer hop."""

    edge_id: str = ""
    size_bytes: int = 0

    def __post_init__(self) -> None:
        if not self.edge_id:
            raise MacroCodeError("send instruction needs an edge id")


@dataclass(frozen=True, slots=True)
class RecvInstr(Instruction):
    """Wait for the buffer of ``edge_id`` to arrive from its last hop."""

    edge_id: str = ""
    size_bytes: int = 0

    def __post_init__(self) -> None:
        if not self.edge_id:
            raise MacroCodeError("recv instruction needs an edge id")


@dataclass(frozen=True, slots=True)
class TransferInstr(Instruction):
    """Move the buffer of ``edge_id`` across one medium hop."""

    edge_id: str = ""
    hop: int = 0
    size_bytes: int = 0
    duration_ns: int = 0

    def __post_init__(self) -> None:
        if not self.edge_id:
            raise MacroCodeError("transfer instruction needs an edge id")
        if self.duration_ns < 0:
            raise MacroCodeError(f"transfer {self.edge_id!r}: negative duration")


@dataclass(frozen=True, slots=True)
class ReconfigureInstr(Instruction):
    """Ensure module ``module`` is configured before the next compute."""

    region: str = ""
    module: str = ""

    def __post_init__(self) -> None:
        if not self.region or not self.module:
            raise MacroCodeError("reconfigure instruction needs region and module")


@dataclass
class ExecutiveProgram:
    """The complete synchronized executive for a design.

    ``operator_code[name]`` and ``medium_code[name]`` are the per-vertex
    macro-code sequences (one iteration each; the runtime loops them).
    ``edge_hops[edge_id]`` records how many medium hops each cross-operator
    edge takes (sizing the channel chain), and ``selector_regions`` maps a
    condition group to the dynamic regions hosting its cases (for prefetch
    notification).
    """

    operator_code: dict[str, list[Instruction]] = field(default_factory=dict)
    medium_code: dict[str, list[TransferInstr]] = field(default_factory=dict)
    edge_hops: dict[str, int] = field(default_factory=dict)
    selector_regions: dict[str, list[str]] = field(default_factory=dict)
    condition_groups: dict[str, list[Hashable]] = field(default_factory=dict)
    #: op name -> input port -> ("local", "srcop.srcport") | ("edge", edge_id);
    #: lets the interpreter thread real data values through the executive.
    input_sources: dict[str, dict[str, tuple[str, str]]] = field(default_factory=dict)
    #: group -> condition value -> region -> module to configure; translates
    #: a selector decision into concrete prefetch targets.
    case_modules: dict[str, dict[Hashable, dict[str, str]]] = field(default_factory=dict)

    def validate(self) -> None:
        """Structural checks: every sent edge is transferred and received."""
        problems: list[str] = []
        sends: dict[str, int] = {}
        recvs: dict[str, int] = {}
        for name, code in self.operator_code.items():
            for instr in code:
                if isinstance(instr, SendInstr):
                    sends[instr.edge_id] = sends.get(instr.edge_id, 0) + 1
                elif isinstance(instr, RecvInstr):
                    recvs[instr.edge_id] = recvs.get(instr.edge_id, 0) + 1
        transfers: dict[str, set[int]] = {}
        for name, code in self.medium_code.items():
            for t in code:
                transfers.setdefault(t.edge_id, set()).add(t.hop)
        for edge_id, hops in self.edge_hops.items():
            if sends.get(edge_id, 0) != 1:
                problems.append(f"edge {edge_id!r}: expected exactly one send")
            if recvs.get(edge_id, 0) != 1:
                problems.append(f"edge {edge_id!r}: expected exactly one recv")
            if transfers.get(edge_id, set()) != set(range(hops)):
                problems.append(f"edge {edge_id!r}: transfer hops incomplete")
        for edge_id in set(sends) | set(recvs):
            if edge_id not in self.edge_hops:
                problems.append(f"edge {edge_id!r}: send/recv without hop declaration")
        if problems:
            raise MacroCodeError("; ".join(problems))

    def render(self) -> str:
        """Human-readable macro-code listing (the paper's generated macro-code)."""
        lines = ["; synchronized executive"]
        for name in sorted(self.operator_code):
            lines.append(f"operator {name}:")
            lines.append("  loop_")
            for instr in self.operator_code[name]:
                lines.append(f"    {_render_instr(instr)}")
            lines.append("  endloop_")
        for name in sorted(self.medium_code):
            lines.append(f"medium {name}:")
            lines.append("  loop_")
            for instr in self.medium_code[name]:
                lines.append(f"    {_render_instr(instr)}")
            lines.append("  endloop_")
        return "\n".join(lines)


def _render_instr(instr: Instruction) -> str:
    cond = ""
    if instr.is_conditioned:
        cond = f" when {instr.condition_group}=={instr.condition_value!r}"
    if isinstance(instr, ComputeInstr):
        decides = f" decides({instr.decides_group})" if instr.decides_group else ""
        return f"compute_ {instr.op_name} ({instr.kind}, {instr.duration_ns} ns){decides}{cond}"
    if isinstance(instr, SendInstr):
        return f"send_ {instr.edge_id} [{instr.size_bytes} B]{cond}"
    if isinstance(instr, RecvInstr):
        return f"recv_ {instr.edge_id} [{instr.size_bytes} B]{cond}"
    if isinstance(instr, TransferInstr):
        return f"transfer_ {instr.edge_id} hop{instr.hop} [{instr.size_bytes} B, {instr.duration_ns} ns]{cond}"
    if isinstance(instr, ReconfigureInstr):
        return f"reconfigure_ {instr.region} <- {instr.module}{cond}"
    return repr(instr)  # pragma: no cover
