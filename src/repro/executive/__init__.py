"""Synchronized executives (the SynDEx macro-code).

"The result is a synchronized executive represented by a macro-code for each
vertices of the architecture."  This package defines that macro-code, builds
it from an adequation schedule, and interprets it on the discrete-event
simulator:

- :mod:`repro.executive.macrocode` — the instruction set and per-vertex
  programs,
- :mod:`repro.executive.generator` — schedule → executive translation,
- :mod:`repro.executive.interpreter` — concurrent execution of the programs
  with real data values (the flow's "dynamic verification" step).
"""

from repro.executive.macrocode import (
    ComputeInstr,
    ExecutiveProgram,
    Instruction,
    MacroCodeError,
    RecvInstr,
    ReconfigureInstr,
    SendInstr,
    TransferInstr,
)
from repro.executive.generator import generate_executive
from repro.executive.interpreter import (
    ConditionContext,
    ExecutionReport,
    ExecutiveRunner,
    FixedLatencyConfigService,
)

__all__ = [
    "ComputeInstr",
    "ExecutiveProgram",
    "Instruction",
    "MacroCodeError",
    "RecvInstr",
    "ReconfigureInstr",
    "SendInstr",
    "TransferInstr",
    "generate_executive",
    "ConditionContext",
    "ExecutionReport",
    "ExecutiveRunner",
    "FixedLatencyConfigService",
]
