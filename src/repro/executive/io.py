"""Executive serialization (JSON).

The synchronized executive is the flow's hand-off artefact (SynDEx writes
macro-code files the target toolchains consume).  This module round-trips
:class:`~repro.executive.macrocode.ExecutiveProgram` through a versioned
JSON document so executives can be stored next to the graphs that produced
them and re-simulated later without re-running adequation.
"""

from __future__ import annotations

import json
from typing import Any

from repro.dfg.io import _condition_value_from_json, _condition_value_to_json
from repro.executive.macrocode import (
    ComputeInstr,
    ExecutiveProgram,
    Instruction,
    MacroCodeError,
    RecvInstr,
    ReconfigureInstr,
    SendInstr,
    TransferInstr,
)

__all__ = ["ExecutiveFormatError", "dumps", "loads", "save", "load"]

FORMAT_VERSION = 1

_INSTR_TYPES = {
    "compute": ComputeInstr,
    "send": SendInstr,
    "recv": RecvInstr,
    "transfer": TransferInstr,
    "reconfigure": ReconfigureInstr,
}
_TYPE_NAMES = {cls: name for name, cls in _INSTR_TYPES.items()}


class ExecutiveFormatError(ValueError):
    """Malformed serialized executive."""


def _instr_to_json(instr: Instruction) -> dict[str, Any]:
    data: dict[str, Any] = {"type": _TYPE_NAMES[type(instr)]}
    if instr.is_conditioned:
        data["condition_group"] = instr.condition_group
        data["condition_value"] = _condition_value_to_json(instr.condition_value)
    if isinstance(instr, ComputeInstr):
        data.update(op_name=instr.op_name, kind=instr.kind, duration_ns=instr.duration_ns)
        if instr.params:
            data["params"] = dict(instr.params)
        if instr.decides_group:
            data["decides_group"] = instr.decides_group
    elif isinstance(instr, (SendInstr, RecvInstr)):
        data.update(edge_id=instr.edge_id, size_bytes=instr.size_bytes)
    elif isinstance(instr, TransferInstr):
        data.update(
            edge_id=instr.edge_id, hop=instr.hop,
            size_bytes=instr.size_bytes, duration_ns=instr.duration_ns,
        )
    elif isinstance(instr, ReconfigureInstr):
        data.update(region=instr.region, module=instr.module)
    return data


def _instr_from_json(data: dict[str, Any]) -> Instruction:
    try:
        cls = _INSTR_TYPES[data["type"]]
    except KeyError:
        raise ExecutiveFormatError(f"unknown instruction type {data.get('type')!r}") from None
    kwargs: dict[str, Any] = {
        k: v for k, v in data.items() if k not in ("type", "condition_value", "condition_group")
    }
    if "condition_group" in data:
        kwargs["condition_group"] = data["condition_group"]
        kwargs["condition_value"] = _condition_value_from_json(data["condition_value"])
    try:
        return cls(**kwargs)
    except (TypeError, MacroCodeError) as err:
        raise ExecutiveFormatError(f"bad {data['type']} instruction: {err}") from err


def to_dict(program: ExecutiveProgram) -> dict:
    return {
        "format": "repro-executive",
        "version": FORMAT_VERSION,
        "operator_code": {
            name: [_instr_to_json(i) for i in code]
            for name, code in program.operator_code.items()
        },
        "medium_code": {
            name: [_instr_to_json(i) for i in code]
            for name, code in program.medium_code.items()
        },
        "edge_hops": dict(program.edge_hops),
        "selector_regions": {k: list(v) for k, v in program.selector_regions.items()},
        "condition_groups": {
            group: [_condition_value_to_json(v) for v in values]
            for group, values in program.condition_groups.items()
        },
        "input_sources": {
            op: {port: list(source) for port, source in ports.items()}
            for op, ports in program.input_sources.items()
        },
        "case_modules": {
            group: [
                {"value": _condition_value_to_json(value), "regions": dict(regions)}
                for value, regions in cases.items()
            ]
            for group, cases in program.case_modules.items()
        },
    }


def from_dict(data: dict) -> ExecutiveProgram:
    if data.get("format") != "repro-executive":
        raise ExecutiveFormatError("not a repro executive document")
    if data.get("version") != FORMAT_VERSION:
        raise ExecutiveFormatError(f"unsupported format version {data.get('version')!r}")
    program = ExecutiveProgram(
        operator_code={
            name: [_instr_from_json(i) for i in code]
            for name, code in data.get("operator_code", {}).items()
        },
        medium_code={
            name: [_instr_from_json(i) for i in code]  # type: ignore[misc]
            for name, code in data.get("medium_code", {}).items()
        },
        edge_hops=dict(data.get("edge_hops", {})),
        selector_regions={k: list(v) for k, v in data.get("selector_regions", {}).items()},
        condition_groups={
            group: [_condition_value_from_json(v) for v in values]
            for group, values in data.get("condition_groups", {}).items()
        },
        input_sources={
            op: {port: tuple(source) for port, source in ports.items()}
            for op, ports in data.get("input_sources", {}).items()
        },
        case_modules={
            group: {
                _condition_value_from_json(case["value"]): dict(case["regions"])
                for case in cases
            }
            for group, cases in data.get("case_modules", {}).items()
        },
    )
    program.validate()
    return program


def dumps(program: ExecutiveProgram, indent: int = 2) -> str:
    return json.dumps(to_dict(program), indent=indent, sort_keys=True)


def loads(text: str) -> ExecutiveProgram:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as err:
        raise ExecutiveFormatError(f"invalid JSON: {err}") from err
    return from_dict(data)


def save(program: ExecutiveProgram, path) -> None:
    from pathlib import Path

    Path(path).write_text(dumps(program))


def load(path) -> ExecutiveProgram:
    from pathlib import Path

    return loads(Path(path).read_text())
