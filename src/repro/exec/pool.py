"""The persistent warm worker pool behind the parallel sweep engine.

A :class:`WorkerPool` owns a set of long-lived *spawn*-context worker
processes.  Workers are spawned **once** — paying the process start + full
``repro`` import cost exactly one time — and then serve jobs over their
duplex pipes for as many :meth:`~repro.exec.engine.ParallelSweepEngine.run`
calls as the pool lives, which is what turns the engine from "26x slower
than serial on a small grid" into "overhead amortized away":

- the pool is *passive*: it spawns, tracks, respawns and stops worker
  processes, but never schedules work — the engine owns the pending deque
  and the dispatch policy (see ``exec/engine.py``);
- one pool may be shared across engines (design-space sweeps, link-level
  SNR sharding, search-restart sharding all accept ``pool=``), but only
  one engine run may borrow it at a time (:meth:`acquire`/:meth:`release`
  enforce this — the pipes carry per-run protocol state);
- a worker that crashes or is killed for a hung job is *replaced* into the
  warm pool by the engine (:meth:`spawn` again), so one bad job never
  cools the pool down;
- every worker keeps one :class:`~repro.flows.pipeline.ArtifactCache` for
  its whole life.  :meth:`reset_caches` points all workers at a fresh
  cache (optionally a new shared disk dir) without respawning them —
  benchmarks use this to measure a *cold cache on a warm pool*, which is
  the honest way to compare against a cold serial run.

The pool closes its workers when garbage collected (each engine that
creates its own pool attaches a ``weakref.finalize``), on explicit
:meth:`close`, or with the pool as a context manager.  Workers are daemon
processes, so interpreter exit reaps any stragglers.
"""

from __future__ import annotations

import itertools
import multiprocessing
from collections import deque
from pathlib import Path
from time import time_ns
from typing import Optional

from repro.exec.worker import worker_main
from repro.obs.telemetry import get_telemetry

__all__ = ["WorkerPool", "PoolWorker"]

#: Seconds granted to a stopping/killed worker before escalating to SIGKILL.
_JOIN_GRACE_S = 5.0


class PoolWorker:
    """One live worker process plus its engine-side dispatch queue.

    ``queue`` holds the engine's in-flight records for jobs submitted to
    this worker (oldest first = the job the worker is running or will run
    next).  The pool guarantees the queue is empty between engine runs;
    the engine owns its contents during a run.
    """

    __slots__ = ("worker_id", "process", "conn", "queue", "jobs_done", "ready")

    def __init__(self, worker_id: int, process, conn):
        self.worker_id = worker_id
        self.process = process
        self.conn = conn
        self.queue: deque = deque()  # engine-owned in-flight entries, FIFO
        self.jobs_done = 0
        #: True once the worker reported its imports complete.  A worker
        #: that dies *before* ready is a systemic failure (broken spawn
        #: environment): the engine must consume job attempts for it, or a
        #: respawn loop of dead-on-arrival workers would retry forever.
        self.ready = False


class WorkerPool:
    """A persistent pool of pre-imported spawn workers; see module docs."""

    def __init__(
        self,
        size: int,
        cache_dir: Optional[str | Path] = None,
        name: str = "pool",
        context: str = "spawn",
    ):
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.size = size
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.name = name
        self._ctx = multiprocessing.get_context(context)
        self._workers: dict[int, PoolWorker] = {}
        self._seq = itertools.count()
        self._closed = False
        self._borrower: Optional[str] = None
        #: Lifetime counters (benchmarks and tests read these).
        self.spawned_total = 0

    # -- lifecycle --------------------------------------------------------------

    @property
    def alive(self) -> list[PoolWorker]:
        """Registered workers in worker-id order (dispatch order)."""
        return [self._workers[k] for k in sorted(self._workers)]

    @property
    def warm_count(self) -> int:
        return len(self._workers)

    def spawn(self) -> PoolWorker:
        """Start one new worker (pays spawn + import cost exactly once)."""
        if self._closed:
            raise RuntimeError(f"worker pool {self.name!r} is closed")
        worker_id = next(self._seq)
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, worker_id, self.cache_dir),
            name=f"{self.name}-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle = PoolWorker(worker_id, process, parent_conn)
        self._workers[worker_id] = handle
        self.spawned_total += 1
        self._record_size(spawned=1)
        return handle

    def ensure(self, n: int) -> list[PoolWorker]:
        """Spawn until ``min(n, size)`` workers are registered; returns the
        newly spawned handles (empty when the pool is already warm enough)."""
        target = min(n, self.size)
        return [self.spawn() for _ in range(target - len(self._workers))]

    def _record_size(self, spawned: int = 0) -> None:
        """Ambient telemetry: spawn counter + warm-size gauge (None = free)."""
        hub = get_telemetry()
        if hub is None:
            return
        store = hub.store("wall")
        now = time_ns()
        if spawned:
            store.counter_add("exec.pool.spawned", now, spawned, pool=self.name)
        store.gauge_set("exec.pool.warm", now, len(self._workers), pool=self.name)

    def discard(self, handle: PoolWorker, kill: bool = True) -> None:
        """Remove one worker from the pool, terminating its process."""
        self._workers.pop(handle.worker_id, None)
        self._record_size()
        if kill:
            handle.process.terminate()
        handle.process.join(_JOIN_GRACE_S)
        if handle.process.is_alive():  # pragma: no cover - stubborn child
            handle.process.kill()
            handle.process.join(_JOIN_GRACE_S)
        try:
            handle.conn.close()
        except OSError:
            pass

    def recycle(self) -> None:
        """Kill every worker (the pool stays usable — ensure() respawns).

        The engine calls this when a run aborts abnormally: in-flight
        protocol state would poison the pipes for the next run, so the
        warm pool is sacrificed for correctness.
        """
        for handle in list(self._workers.values()):
            self.discard(handle, kill=True)

    def close(self) -> None:
        """Stop every worker gracefully and refuse further use."""
        if self._closed:
            return
        self._closed = True
        for handle in list(self._workers.values()):
            try:
                handle.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for handle in list(self._workers.values()):
            self.discard(handle, kill=False)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- borrow protocol ---------------------------------------------------------

    def acquire(self, borrower: str) -> None:
        """Mark the pool in use by one engine run (pipes are stateful)."""
        if self._borrower is not None:
            raise RuntimeError(
                f"worker pool {self.name!r} is already running a sweep for "
                f"{self._borrower!r}; one pool serves one run at a time"
            )
        self._borrower = borrower

    def release(self) -> None:
        self._borrower = None

    # -- warm-pool cache control -------------------------------------------------

    def reset_caches(self, cache_dir: Optional[str | Path] = None) -> None:
        """Point every worker at a fresh :class:`ArtifactCache`.

        With ``cache_dir`` the new cache shares that disk tier (workers
        spawned later inherit it too); without, each worker gets a private
        in-memory cache.  The reset rides the ordinary job pipes, so it
        applies in FIFO order after any jobs already submitted.
        """
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        for handle in list(self._workers.values()):
            try:
                handle.conn.send(("reset_cache", self.cache_dir))
            except (BrokenPipeError, OSError):
                self.discard(handle, kill=True)
