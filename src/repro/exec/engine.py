"""The parallel sweep engine: multi-process design-space exploration.

:class:`ParallelSweepEngine` schedules :class:`~repro.exec.worker.SweepJob`
records over a persistent :class:`~repro.exec.pool.WorkerPool` of
``multiprocessing`` *spawn* workers, each running the ordinary
:class:`~repro.flows.flow.DesignFlow` pipeline against a shared on-disk
:class:`~repro.flows.pipeline.ArtifactCache` (safe for concurrent access:
atomic write-rename, per-key advisory locks, corruption-tolerant reads).
The engine owns the scheduler:

- **warm pool** — workers spawn once (paying process start + full ``repro``
  import cost exactly once) and serve jobs across every ``run()`` call of
  the engine's life; pass ``pool=`` to share one pool across engines
  (design-space, link-level and search-restart sweeps all accept it);
- **pull-based dispatch** — jobs wait in one shared pending deque and flow
  to whichever worker frees up first; no worker ever owns a static shard,
  so one slow job cannot idle the other cores behind it (work stealing
  falls out of central pull for free);
- **batched submission** — each worker keeps up to ``prefetch_depth`` jobs
  queued locally (submitted as one pipe message), so it starts the next
  job without a round-trip and a 10k-job grid amortizes pipe latency while
  committing at most ``prefetch_depth`` jobs to any one worker;
- **per-job timeout** — the clock starts when the worker *starts* the job
  (its ``started`` message), not at dispatch; a worker that exceeds
  ``timeout_s`` is killed and replaced into the warm pool, failing only
  the running job's attempt — its queued-but-unstarted jobs re-enter the
  pending deque with **no attempt consumed**;
- **bounded retry with exponential backoff** — a job may fail/crash/time
  out ``retries`` times before it is recorded as failed; each retry waits
  ``backoff_s * 2**(attempt-1)``;
- **graceful degradation** — a crashed or hung worker fails only the job
  it was running; the sweep always completes and reports partial results,
  and the pool stays warm (dead workers are respawned).

Every worker streams its pipeline stage events and job lifecycle messages
back over its result pipe; the engine forwards them (and its own
:class:`~repro.exec.events.SweepEvent` records) to one
:class:`~repro.flows.observe.FlowObserver`, so ``--profile`` and
``--log-json`` cover parallel runs exactly as they cover serial ones.

Worker pipes are deliberately one-per-worker (no shared queue): killing a
hung worker can then never corrupt or deadlock a lock shared with its
siblings — its pipe simply reads EOF.
"""

from __future__ import annotations

import heapq
import itertools
import weakref
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from pathlib import Path
from time import monotonic, perf_counter, time_ns
from typing import Any, Optional, Sequence

from repro.exec.events import SweepEvent
from repro.exec.pool import PoolWorker, WorkerPool
from repro.exec.worker import SweepJob, run_job
from repro.flows.observe import FlowEvent, FlowObserver, LoggingObserver
from repro.flows.pipeline import ArtifactCache
from repro.obs import NOOP_TRACER, get_metrics, get_tracer
from repro.obs.telemetry import get_telemetry

__all__ = ["SweepJobResult", "SweepReport", "ParallelSweepEngine"]


@dataclass
class SweepJobResult:
    """Outcome of one job, after all attempts."""

    job_id: str
    ok: bool
    attempts: int
    wall_time_s: float
    payload: Optional[dict[str, Any]] = None  #: run_job() result when ok
    error: Optional[str] = None  #: last failure reason when not ok

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "ok": self.ok,
            "attempts": self.attempts,
            "wall_time_s": self.wall_time_s,
            "payload": self.payload,
            "error": self.error,
        }


@dataclass
class SweepReport:
    """Everything a sweep produced, results in submission order."""

    sweep: str
    results: list[SweepJobResult]
    wall_time_s: float
    #: Every FlowEvent the engine forwarded: worker stage events plus the
    #: engine's own ``sweep:*`` lifecycle events, in arrival order.
    events: list[FlowEvent] = field(default_factory=list)

    @property
    def succeeded(self) -> list[SweepJobResult]:
        return [r for r in self.results if r.ok]

    @property
    def failed(self) -> list[SweepJobResult]:
        return [r for r in self.results if not r.ok]

    def stage_events(self) -> list[FlowEvent]:
        """The per-stage pipeline events (cache traffic) of all workers."""
        return [e for e in self.events if not e.stage.startswith("sweep:")]

    def cache_hits(self) -> int:
        return sum(1 for e in self.stage_events() if e.cache_hit)

    def cache_lookups(self) -> int:
        return len(self.stage_events())

    def cache_hit_rate(self) -> float:
        lookups = self.cache_lookups()
        return self.cache_hits() / lookups if lookups else 0.0

    def summary(self) -> str:
        lines = [
            f"sweep {self.sweep}: {len(self.succeeded)}/{len(self.results)} jobs ok "
            f"in {self.wall_time_s:.2f} s, stage cache {self.cache_hits()}/"
            f"{self.cache_lookups()} hit ({100 * self.cache_hit_rate():.0f}%)"
        ]
        for result in self.failed:
            lines.append(
                f"  FAILED {result.job_id} after {result.attempts} attempt(s): {result.error}"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "sweep": self.sweep,
            "wall_time_s": self.wall_time_s,
            "jobs": len(self.results),
            "succeeded": len(self.succeeded),
            "failed": len(self.failed),
            "cache_hits": self.cache_hits(),
            "cache_lookups": self.cache_lookups(),
            "cache_hit_rate": self.cache_hit_rate(),
            "results": [r.to_dict() for r in self.results],
        }


class _InFlight:
    """One job committed to a worker's local queue (engine-side record)."""

    __slots__ = ("job", "attempt", "span", "head_since", "started_at")

    def __init__(self, job, attempt: int, span, head_since: float):
        self.job = job
        self.attempt = attempt
        self.span = span
        #: monotonic time this entry reached the *front* of its worker's
        #: queue (the worker is about to start it); the provisional
        #: timeout clock until ``started`` arrives.
        self.head_since = head_since
        self.started_at: Optional[float] = None

    def deadline(self, timeout_s: Optional[float]) -> Optional[float]:
        if timeout_s is None:
            return None
        return (self.started_at if self.started_at is not None else self.head_since) + timeout_s


class ParallelSweepEngine:
    """Schedule sweep jobs over a warm worker pool; see module docs.

    ``jobs=0`` degrades to a fully in-process serial run through the very
    same :func:`run_job` code path — the reference for byte-identity
    checks and handy under a debugger.

    The engine creates (and owns) its pool lazily on the first parallel
    ``run()`` and keeps it warm for subsequent runs; ``close()`` (or the
    engine as a context manager, or garbage collection) stops the owned
    pool.  Pass ``pool=`` to share a caller-owned
    :class:`~repro.exec.pool.WorkerPool` instead — the engine then uses up
    to ``pool.size`` workers and never closes it.  When the engine's
    ``cache_dir`` differs from the pool's current one, the pool's workers
    are pointed at the engine's cache before any job is dispatched.
    """

    def __init__(
        self,
        jobs: int = 2,
        timeout_s: Optional[float] = None,
        retries: int = 1,
        backoff_s: float = 0.05,
        cache_dir: Optional[str | Path] = None,
        observer: Optional[FlowObserver] = None,
        sweep_name: str = "sweep",
        pool: Optional[WorkerPool] = None,
        prefetch_depth: int = 2,
    ):
        if jobs < 0:
            raise ValueError("jobs must be >= 0 (0 = serial in-process)")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if prefetch_depth < 1:
            raise ValueError("prefetch_depth must be >= 1")
        #: A supplied pool decides the worker count — ``jobs`` is a request
        #: for engine-owned workers and is ignored when borrowing.
        self.n_workers = pool.size if pool is not None else jobs
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.observer = observer if observer is not None else LoggingObserver()
        self.sweep_name = sweep_name
        self.prefetch_depth = prefetch_depth
        self._events: list[FlowEvent] = []
        self._sweep_span = NOOP_TRACER.span("sweep")
        self._pool = pool
        self._owns_pool = False
        self._pool_finalizer = None

    # -- pool lifecycle ---------------------------------------------------------

    def _ensure_pool(self) -> WorkerPool:
        if self._pool is None:
            self._pool = WorkerPool(
                self.n_workers, cache_dir=self.cache_dir, name=self.sweep_name
            )
            self._owns_pool = True
            # Close the owned pool when the engine is collected, so engines
            # used fire-and-forget do not strand warm worker processes.
            self._pool_finalizer = weakref.finalize(self, WorkerPool.close, self._pool)
        elif self.cache_dir is not None and self._pool.cache_dir != self.cache_dir:
            self._pool.reset_caches(self.cache_dir)
        return self._pool

    @property
    def pool(self) -> Optional[WorkerPool]:
        """The engine's pool (``None`` until the first parallel run)."""
        return self._pool

    def close(self) -> None:
        """Stop the owned worker pool (a later ``run()`` re-creates one)."""
        if self._owns_pool and self._pool is not None:
            self._pool.close()
            if self._pool_finalizer is not None:
                self._pool_finalizer.detach()
                self._pool_finalizer = None
            self._pool = None
            self._owns_pool = False

    def __enter__(self) -> "ParallelSweepEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- event plumbing ---------------------------------------------------------

    def _emit_flow(self, event: FlowEvent) -> None:
        self._events.append(event)
        self.observer.on_event(event)

    def _emit(self, kind: str, **kwargs) -> None:
        self._emit_flow(SweepEvent(kind=kind, sweep=self.sweep_name, **kwargs).to_flow_event())

    # -- serial fallback --------------------------------------------------------

    def _run_serial(self, jobs: Sequence[SweepJob]) -> SweepReport:
        import pickle

        cache = ArtifactCache(disk_dir=self.cache_dir) if self.cache_dir else ArtifactCache()
        tracer = get_tracer()
        results: list[SweepJobResult] = []
        sweep_started = perf_counter()
        for job in jobs:
            # Cross the same pickle boundary a worker pipe imposes, so the
            # serial path produces byte-identical artifacts to parallel runs.
            job = pickle.loads(pickle.dumps(job))
            last_error = None
            for attempt in range(1, self.retries + 2):
                self._emit("job_started", job=job.job_id, attempt=attempt)
                started = perf_counter()
                try:
                    with tracer.span(
                        f"job:{job.job_id}", parent=self._sweep_span.context
                    ) as job_span:
                        if tracer.enabled:
                            job_span.set_attribute("attempt", attempt)
                        payload = run_job(job, attempt=attempt, cache=cache, observer=self)
                except Exception as err:
                    wall = perf_counter() - started
                    last_error = f"{type(err).__name__}: {err}"
                    if attempt <= self.retries:
                        self._emit(
                            "job_retried", job=job.job_id, attempt=attempt,
                            wall_time_s=wall, detail=last_error,
                        )
                        continue
                    self._emit(
                        "job_failed", job=job.job_id, attempt=attempt,
                        wall_time_s=wall, detail=last_error,
                    )
                    results.append(
                        SweepJobResult(job.job_id, ok=False, attempts=attempt,
                                       wall_time_s=wall, error=last_error)
                    )
                    break
                wall = perf_counter() - started
                self._emit("job_finished", job=job.job_id, attempt=attempt, wall_time_s=wall)
                results.append(
                    SweepJobResult(job.job_id, ok=True, attempts=attempt,
                                   wall_time_s=wall, payload=payload)
                )
                break
        return self._finish(jobs, {r.job_id: r for r in results}, sweep_started)

    def on_event(self, event: FlowEvent) -> None:
        """FlowObserver protocol: the serial path forwards stage events here."""
        self._emit_flow(event)

    # -- the parallel scheduler -------------------------------------------------

    def run(self, jobs: Sequence[SweepJob]) -> SweepReport:
        """Run every job; always returns a complete :class:`SweepReport`."""
        ids = [job.job_id for job in jobs]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate job ids: {ids}")
        self._events = []
        tracer = get_tracer()
        self._sweep_span = tracer.span(
            f"sweep:{self.sweep_name}",
            attributes={"jobs": len(jobs), "workers": self.n_workers}
            if tracer.enabled
            else None,
        ).start()
        if not jobs:
            return self._finish(jobs, {}, perf_counter())
        if self.n_workers == 0:
            return self._run_serial(jobs)

        sweep_started = perf_counter()
        pool = self._ensure_pool()
        pool.acquire(self.sweep_name)
        hub = get_telemetry()
        if hub is not None:
            # borrow latency: how long this run waited for warm capacity
            hub.store("wall").observe(
                "exec.borrow_latency_ns", time_ns(),
                (perf_counter() - sweep_started) * 1e9, pool=pool.name,
            )
        try:
            results = self._run_pooled(pool, jobs, tracer)
        except BaseException:
            # In-flight pipe state would poison the next run: sacrifice the
            # warm workers, keep the pool object usable.
            pool.recycle()
            raise
        finally:
            pool.release()
        return self._finish(jobs, results, sweep_started)

    def _run_pooled(
        self, pool: WorkerPool, jobs: Sequence[SweepJob], tracer
    ) -> dict[str, SweepJobResult]:
        warm = pool.warm_count
        if warm:
            self._emit("pool_reused", metrics={"warm_workers": warm})
        for handle in pool.ensure(min(self.n_workers, len(jobs))):
            self._emit("worker_spawned", worker=handle.worker_id)
        # ambient telemetry (wall-clock windows): resolved once per run so
        # the disabled cost inside the dispatch loop is one None check
        hub = get_telemetry()
        tstore = hub.store("wall") if hub is not None else None
        pool_label = pool.name

        #: Jobs ready to dispatch, FIFO; retries re-enter via the backoff heap.
        pending: deque[tuple[SweepJob, int]] = deque((job, 1) for job in jobs)
        #: min-heap of (eligible_at_monotonic, seq, job, attempt).
        backoff: list[tuple[float, int, SweepJob, int]] = []
        seq = itertools.count()
        results: dict[str, SweepJobResult] = {}

        def fail_attempt(entry: _InFlight, reason: str, wall: float, worker_id: int) -> None:
            if tracer.enabled:
                entry.span.set_attribute("error", reason)
            entry.span.end()
            if entry.attempt <= self.retries:
                eligible = monotonic() + self.backoff_s * (2 ** (entry.attempt - 1))
                heapq.heappush(backoff, (eligible, next(seq), entry.job, entry.attempt + 1))
                self._emit(
                    "job_retried", job=entry.job.job_id, worker=worker_id,
                    attempt=entry.attempt, wall_time_s=wall, detail=reason,
                )
            else:
                results[entry.job.job_id] = SweepJobResult(
                    entry.job.job_id, ok=False, attempts=entry.attempt,
                    wall_time_s=wall, error=reason,
                )
                self._emit(
                    "job_failed", job=entry.job.job_id, worker=worker_id,
                    attempt=entry.attempt, wall_time_s=wall, detail=reason,
                )

        def requeue_unstarted(handle: PoolWorker) -> None:
            """Return a dead worker's queued-but-unstarted jobs to pending.

            These jobs never ran, so no attempt is consumed — the crash
            accounting must keep every job tracked in exactly one place
            (pending, backoff, a worker queue, or results) or the engine
            would wait forever on a job nobody owns.
            """
            orphans = list(handle.queue)
            handle.queue.clear()
            for entry in orphans:
                if tracer.enabled:
                    entry.span.set_attribute("requeued", True)
                entry.span.end()
            pending.extendleft((e.job, e.attempt) for e in reversed(orphans))

        def lose_worker(
            handle: PoolWorker, reason: str, *, kill: bool, fail_unstarted_head: bool = True
        ) -> None:
            """Crash/timeout path: fail the running job, requeue the rest.

            A crash (``fail_unstarted_head=False``) only consumes an attempt
            of a job the worker actually *started*; a head job the worker
            died before reaching is requeued attempt-intact.  A timeout
            always fails the head — its clock ran, started or not.
            """
            now = monotonic()
            if handle.queue and (fail_unstarted_head or handle.queue[0].started_at is not None):
                head = handle.queue.popleft()
                wall = now - (head.started_at if head.started_at is not None else head.head_since)
                fail_attempt(head, reason, wall, handle.worker_id)
            requeue_unstarted(handle)
            pool.discard(handle, kill=kill)

        def dispatch() -> None:
            now = monotonic()
            while backoff and backoff[0][0] <= now:
                _, _, job, attempt = heapq.heappop(backoff)
                pending.append((job, attempt))
            if not pending:
                return
            # Round-robin fill: one job per worker per pass, so small grids
            # spread across the pool before anyone's queue deepens.
            batches: dict[int, list[_InFlight]] = {}
            handles = {h.worker_id: h for h in pool.alive}
            assigned = True
            while pending and assigned:
                assigned = False
                for wid, handle in sorted(handles.items()):
                    if not pending:
                        break
                    depth = len(handle.queue) + len(batches.get(wid, ()))
                    if depth >= self.prefetch_depth:
                        continue
                    job, attempt = pending.popleft()
                    span = tracer.span(
                        f"job:{job.job_id}",
                        parent=self._sweep_span.context,
                        attributes={"worker": wid, "attempt": attempt}
                        if tracer.enabled
                        else None,
                    ).start()
                    batches.setdefault(wid, []).append(
                        _InFlight(job, attempt, span, head_since=now)
                    )
                    assigned = True
            for wid, entries in batches.items():
                handle = handles[wid]
                payload = [(e.job, e.attempt, e.span.context) for e in entries]
                try:
                    handle.conn.send(("jobs", payload))
                except (BrokenPipeError, OSError):
                    # Worker died before we could feed it: nothing in this
                    # batch ran, so everything re-enters pending untouched.
                    for entry in entries:
                        entry.span.end()
                    pending.extendleft((e.job, e.attempt) for e in reversed(entries))
                    self._emit(
                        "worker_crashed", worker=wid, detail="dispatch pipe closed"
                    )
                    lose_worker(
                        handle, "worker crashed (dispatch pipe closed)",
                        kill=True, fail_unstarted_head=not handle.ready,
                    )
                    continue
                handle.queue.extend(entries)
                for entry in entries:
                    self._emit(
                        "job_dispatched", job=entry.job.job_id,
                        worker=wid, attempt=entry.attempt,
                    )

        def ensure_workers() -> None:
            outstanding = len(pending) + len(backoff)
            for handle in pool.ensure(min(self.n_workers, len(pool.alive) + outstanding)):
                self._emit("worker_respawned", worker=handle.worker_id)
                if tstore is not None:
                    tstore.counter_add(
                        "exec.respawns", time_ns(), 1, pool=pool_label
                    )

        dispatch()
        while len(results) < len(jobs):
            ensure_workers()
            dispatch()
            if tstore is not None:
                # queue depth = everything not yet finished: pending deque,
                # backoff heap, and jobs parked on worker queues
                depth = (
                    len(pending) + len(backoff)
                    + sum(len(h.queue) for h in pool.alive)
                )
                tstore.gauge_set(
                    "exec.queue_depth", time_ns(), depth, pool=pool_label
                )

            # How long may we sleep?  Until the nearest job deadline or
            # backoff eligibility — forever (block on traffic) otherwise.
            now = monotonic()
            wake_times = []
            for handle in pool.alive:
                if handle.queue:
                    deadline = handle.queue[0].deadline(self.timeout_s)
                    if deadline is not None:
                        wake_times.append(deadline)
            if backoff:
                wake_times.append(backoff[0][0])
            timeout = max(0.0, min(wake_times) - now) if wake_times else None

            conn_to_handle = {h.conn: h for h in pool.alive}
            if conn_to_handle:
                ready = connection_wait(list(conn_to_handle), timeout)
            elif timeout is not None:  # every worker died; wait out the backoff
                import time as _time

                _time.sleep(min(timeout, 0.1))
                ready = []
            else:  # pragma: no cover - defensive: respawn on next iteration
                ready = []

            for conn in ready:
                handle = conn_to_handle[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    self._emit(
                        "worker_crashed", worker=handle.worker_id,
                        detail="connection lost",
                        job=handle.queue[0].job.job_id if handle.queue else "",
                    )
                    # A worker that died before ever reporting ready is a
                    # systemic spawn failure: consume the head attempt so
                    # bounded retry terminates instead of respawning forever.
                    lose_worker(
                        handle, "worker crashed (connection lost)",
                        kill=True, fail_unstarted_head=not handle.ready,
                    )
                    continue
                kind = message[0]
                if kind == "ready":
                    handle.ready = True
                    continue
                if kind == "started":
                    _, job_id, attempt = message
                    if handle.queue and handle.queue[0].job.job_id == job_id:
                        handle.queue[0].started_at = monotonic()
                    self._emit(
                        "job_started", job=job_id,
                        worker=handle.worker_id, attempt=attempt,
                    )
                elif kind == "event":
                    self._emit_flow(message[1])
                elif kind == "spans":
                    tracer.add_spans(message[2])
                elif kind == "metrics":
                    get_metrics().merge_snapshot(message[2])
                elif kind == "done":
                    _, job_id, payload, wall = message
                    entry = handle.queue.popleft()
                    if handle.queue:
                        handle.queue[0].head_since = monotonic()
                    handle.jobs_done += 1
                    if tracer.enabled:
                        entry.span.set_attribute("fits", payload.get("fits"))
                    entry.span.end()
                    results[job_id] = SweepJobResult(
                        job_id, ok=True, attempts=entry.attempt,
                        wall_time_s=wall, payload=payload,
                    )
                    if tstore is not None:
                        done_ns = time_ns()
                        tstore.counter_add(
                            "exec.jobs_done", done_ns, 1, pool=pool_label
                        )
                        tstore.observe(
                            "exec.job_wall_ns", done_ns, wall * 1e9,
                            pool=pool_label,
                        )
                    self._emit(
                        "job_finished", job=job_id, worker=handle.worker_id,
                        attempt=entry.attempt, wall_time_s=wall,
                        metrics={"fits": payload.get("fits")},
                    )
                elif kind == "fail":
                    _, job_id, error, _tb, wall = message
                    entry = handle.queue.popleft()
                    if handle.queue:
                        handle.queue[0].head_since = monotonic()
                    fail_attempt(entry, error, wall, handle.worker_id)

            # Enforce per-job deadlines (head of each worker queue only —
            # queued jobs have not started, so their clocks have not either).
            now = monotonic()
            for handle in list(pool.alive):
                if not handle.queue:
                    continue
                head = handle.queue[0]
                deadline = head.deadline(self.timeout_s)
                if deadline is not None and now >= deadline:
                    wall = now - (head.started_at if head.started_at is not None
                                  else head.head_since)
                    self._emit(
                        "job_timeout", job=head.job.job_id, worker=handle.worker_id,
                        attempt=head.attempt, wall_time_s=wall,
                        detail=f"exceeded {self.timeout_s} s",
                    )
                    lose_worker(
                        handle, f"timed out after {self.timeout_s} s", kill=True
                    )
        return results

    def _finish(
        self,
        jobs: Sequence[SweepJob],
        results: dict[str, SweepJobResult],
        sweep_started: float,
    ) -> SweepReport:
        ordered = [results[job.job_id] for job in jobs if job.job_id in results]
        report = SweepReport(
            sweep=self.sweep_name,
            results=ordered,
            wall_time_s=perf_counter() - sweep_started,
            events=list(self._events),
        )
        self._emit(
            "sweep_completed",
            wall_time_s=report.wall_time_s,
            metrics={
                "jobs": len(report.results),
                "failed": len(report.failed),
                "cache_hits": report.cache_hits(),
                "cache_lookups": report.cache_lookups(),
            },
        )
        tracer = get_tracer()
        if tracer.enabled:
            for key, value in (
                ("jobs", len(report.results)),
                ("failed", len(report.failed)),
                ("cache_hits", report.cache_hits()),
                ("cache_lookups", report.cache_lookups()),
            ):
                self._sweep_span.set_attribute(key, value)
            registry = get_metrics()
            registry.counter("sweep.jobs_total").inc(len(report.results))
            registry.counter("sweep.jobs_failed").inc(len(report.failed))
        self._sweep_span.end()
        report.events = list(self._events)
        return report
