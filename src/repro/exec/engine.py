"""The parallel sweep engine: multi-process design-space exploration.

:class:`ParallelSweepEngine` shards :class:`~repro.exec.worker.SweepJob`
records across a pool of ``multiprocessing`` *spawn* workers, each running
the ordinary :class:`~repro.flows.flow.DesignFlow` pipeline against a
shared on-disk :class:`~repro.flows.pipeline.ArtifactCache` (safe for
concurrent access: atomic write-rename, per-key advisory locks,
corruption-tolerant reads).  The engine owns the scheduler:

- deterministic sharding — jobs are dispatched in submission order to the
  first idle worker; results are reported in submission order regardless of
  completion order (the artifacts are content-addressed, so scheduling
  cannot change them);
- per-job timeout — a worker that exceeds ``timeout_s`` on one job is
  terminated; the job re-enters the queue (or is recorded failed) and a
  replacement worker is spawned;
- bounded retry with exponential backoff — a job may fail/crash/time out
  ``retries`` times before it is recorded as failed; each retry waits
  ``backoff_s * 2**(attempt-1)``;
- graceful degradation — a crashed or hung worker fails only its own job;
  the sweep always completes and reports partial results.

Every worker streams its pipeline stage events and job lifecycle messages
back over its result pipe; the engine forwards them (and its own
:class:`~repro.exec.events.SweepEvent` records) to one
:class:`~repro.flows.observe.FlowObserver`, so ``--profile`` and
``--log-json`` cover parallel runs exactly as they cover serial ones.

Worker pipes are deliberately one-per-worker (no shared queue): killing a
hung worker can then never corrupt or deadlock a lock shared with its
siblings — its pipe simply reads EOF.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from pathlib import Path
from time import monotonic, perf_counter
from typing import Any, Optional, Sequence

from repro.exec.events import SweepEvent
from repro.exec.worker import SweepJob, run_job, worker_main
from repro.flows.observe import FlowEvent, FlowObserver, LoggingObserver
from repro.flows.pipeline import ArtifactCache
from repro.obs import NOOP_TRACER, get_metrics, get_tracer

__all__ = ["SweepJobResult", "SweepReport", "ParallelSweepEngine"]

#: Seconds granted to a stopping/killed worker before escalating.
_JOIN_GRACE_S = 5.0


@dataclass
class SweepJobResult:
    """Outcome of one job, after all attempts."""

    job_id: str
    ok: bool
    attempts: int
    wall_time_s: float
    payload: Optional[dict[str, Any]] = None  #: run_job() result when ok
    error: Optional[str] = None  #: last failure reason when not ok

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "ok": self.ok,
            "attempts": self.attempts,
            "wall_time_s": self.wall_time_s,
            "payload": self.payload,
            "error": self.error,
        }


@dataclass
class SweepReport:
    """Everything a sweep produced, results in submission order."""

    sweep: str
    results: list[SweepJobResult]
    wall_time_s: float
    #: Every FlowEvent the engine forwarded: worker stage events plus the
    #: engine's own ``sweep:*`` lifecycle events, in arrival order.
    events: list[FlowEvent] = field(default_factory=list)

    @property
    def succeeded(self) -> list[SweepJobResult]:
        return [r for r in self.results if r.ok]

    @property
    def failed(self) -> list[SweepJobResult]:
        return [r for r in self.results if not r.ok]

    def stage_events(self) -> list[FlowEvent]:
        """The per-stage pipeline events (cache traffic) of all workers."""
        return [e for e in self.events if not e.stage.startswith("sweep:")]

    def cache_hits(self) -> int:
        return sum(1 for e in self.stage_events() if e.cache_hit)

    def cache_lookups(self) -> int:
        return len(self.stage_events())

    def cache_hit_rate(self) -> float:
        lookups = self.cache_lookups()
        return self.cache_hits() / lookups if lookups else 0.0

    def summary(self) -> str:
        lines = [
            f"sweep {self.sweep}: {len(self.succeeded)}/{len(self.results)} jobs ok "
            f"in {self.wall_time_s:.2f} s, stage cache {self.cache_hits()}/"
            f"{self.cache_lookups()} hit ({100 * self.cache_hit_rate():.0f}%)"
        ]
        for result in self.failed:
            lines.append(
                f"  FAILED {result.job_id} after {result.attempts} attempt(s): {result.error}"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "sweep": self.sweep,
            "wall_time_s": self.wall_time_s,
            "jobs": len(self.results),
            "succeeded": len(self.succeeded),
            "failed": len(self.failed),
            "cache_hits": self.cache_hits(),
            "cache_lookups": self.cache_lookups(),
            "cache_hit_rate": self.cache_hit_rate(),
            "results": [r.to_dict() for r in self.results],
        }


class _WorkerHandle:
    """Engine-side bookkeeping for one worker process."""

    def __init__(self, worker_id: int, process, conn):
        self.worker_id = worker_id
        self.process = process
        self.conn = conn
        #: (job, attempt, deadline_monotonic|None, dispatched_at, job_span)
        #: while busy.
        self.current: Optional[tuple[SweepJob, int, Optional[float], float, Any]] = None

    @property
    def busy(self) -> bool:
        return self.current is not None


class ParallelSweepEngine:
    """Schedule sweep jobs over a pool of spawn workers; see module docs.

    ``jobs=0`` (or 1 with ``serial_inline=True``) degrades to a fully
    in-process serial run through the very same :func:`run_job` code path —
    useful on platforms where process spawn is expensive and as the
    reference for byte-identity checks.
    """

    def __init__(
        self,
        jobs: int = 2,
        timeout_s: Optional[float] = None,
        retries: int = 1,
        backoff_s: float = 0.05,
        cache_dir: Optional[str | Path] = None,
        observer: Optional[FlowObserver] = None,
        sweep_name: str = "sweep",
    ):
        if jobs < 0:
            raise ValueError("jobs must be >= 0 (0 = serial in-process)")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        self.n_workers = jobs
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.observer = observer if observer is not None else LoggingObserver()
        self.sweep_name = sweep_name
        self._events: list[FlowEvent] = []
        self._worker_seq = itertools.count()
        self._sweep_span = NOOP_TRACER.span("sweep")

    # -- event plumbing ---------------------------------------------------------

    def _emit_flow(self, event: FlowEvent) -> None:
        self._events.append(event)
        self.observer.on_event(event)

    def _emit(self, kind: str, **kwargs) -> None:
        self._emit_flow(SweepEvent(kind=kind, sweep=self.sweep_name, **kwargs).to_flow_event())

    # -- serial fallback --------------------------------------------------------

    def _run_serial(self, jobs: Sequence[SweepJob]) -> SweepReport:
        import pickle

        cache = ArtifactCache(disk_dir=self.cache_dir) if self.cache_dir else ArtifactCache()
        tracer = get_tracer()
        results: list[SweepJobResult] = []
        sweep_started = perf_counter()
        for job in jobs:
            # Cross the same pickle boundary a worker pipe imposes, so the
            # serial path produces byte-identical artifacts to parallel runs.
            job = pickle.loads(pickle.dumps(job))
            last_error = None
            for attempt in range(1, self.retries + 2):
                self._emit("job_started", job=job.job_id, attempt=attempt)
                started = perf_counter()
                try:
                    with tracer.span(
                        f"job:{job.job_id}", parent=self._sweep_span.context
                    ) as job_span:
                        if tracer.enabled:
                            job_span.set_attribute("attempt", attempt)
                        payload = run_job(job, attempt=attempt, cache=cache, observer=self)
                except Exception as err:
                    wall = perf_counter() - started
                    last_error = f"{type(err).__name__}: {err}"
                    if attempt <= self.retries:
                        self._emit(
                            "job_retried", job=job.job_id, attempt=attempt,
                            wall_time_s=wall, detail=last_error,
                        )
                        continue
                    self._emit(
                        "job_failed", job=job.job_id, attempt=attempt,
                        wall_time_s=wall, detail=last_error,
                    )
                    results.append(
                        SweepJobResult(job.job_id, ok=False, attempts=attempt,
                                       wall_time_s=wall, error=last_error)
                    )
                    break
                wall = perf_counter() - started
                self._emit("job_finished", job=job.job_id, attempt=attempt, wall_time_s=wall)
                results.append(
                    SweepJobResult(job.job_id, ok=True, attempts=attempt,
                                   wall_time_s=wall, payload=payload)
                )
                break
        return self._finish(jobs, {r.job_id: r for r in results}, sweep_started)

    def on_event(self, event: FlowEvent) -> None:
        """FlowObserver protocol: the serial path forwards stage events here."""
        self._emit_flow(event)

    # -- the parallel scheduler -------------------------------------------------

    def run(self, jobs: Sequence[SweepJob]) -> SweepReport:
        """Run every job; always returns a complete :class:`SweepReport`."""
        ids = [job.job_id for job in jobs]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate job ids: {ids}")
        self._events = []
        tracer = get_tracer()
        self._sweep_span = tracer.span(
            f"sweep:{self.sweep_name}",
            attributes={"jobs": len(jobs), "workers": self.n_workers}
            if tracer.enabled
            else None,
        ).start()
        if not jobs:
            return self._finish(jobs, {}, perf_counter())
        if self.n_workers == 0:
            return self._run_serial(jobs)

        sweep_started = perf_counter()
        ctx = multiprocessing.get_context("spawn")
        #: min-heap of (eligible_at_monotonic, seq, job, attempt)
        pending: list[tuple[float, int, SweepJob, int]] = []
        seq = itertools.count()
        for job in jobs:
            heapq.heappush(pending, (0.0, next(seq), job, 1))
        results: dict[str, SweepJobResult] = {}
        workers: dict[int, _WorkerHandle] = {}

        def spawn_worker() -> None:
            worker_id = next(self._worker_seq)
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            process = ctx.Process(
                target=worker_main,
                args=(child_conn, worker_id, self.cache_dir),
                name=f"{self.sweep_name}-worker-{worker_id}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            workers[worker_id] = _WorkerHandle(worker_id, process, parent_conn)
            self._emit("worker_spawned", worker=worker_id)

        def remove_worker(handle: _WorkerHandle, *, kill: bool) -> None:
            workers.pop(handle.worker_id, None)
            if kill:
                handle.process.terminate()
            handle.process.join(_JOIN_GRACE_S)
            if handle.process.is_alive():  # pragma: no cover - stubborn child
                handle.process.kill()
                handle.process.join(_JOIN_GRACE_S)
            try:
                handle.conn.close()
            except OSError:
                pass

        def fail_attempt(handle: _WorkerHandle, reason: str, wall: float) -> None:
            assert handle.current is not None
            job, attempt, _, _, job_span = handle.current
            handle.current = None
            if tracer.enabled:
                job_span.set_attribute("error", reason)
            job_span.end()
            if attempt <= self.retries:
                eligible = monotonic() + self.backoff_s * (2 ** (attempt - 1))
                heapq.heappush(pending, (eligible, next(seq), job, attempt + 1))
                self._emit(
                    "job_retried", job=job.job_id, worker=handle.worker_id,
                    attempt=attempt, wall_time_s=wall, detail=reason,
                )
            else:
                results[job.job_id] = SweepJobResult(
                    job.job_id, ok=False, attempts=attempt, wall_time_s=wall, error=reason
                )
                self._emit(
                    "job_failed", job=job.job_id, worker=handle.worker_id,
                    attempt=attempt, wall_time_s=wall, detail=reason,
                )

        def unassigned() -> int:
            return len(pending)

        def ensure_workers() -> None:
            while len(workers) < min(self.n_workers, len(workers) + unassigned()):
                spawn_worker()

        ensure_workers()
        try:
            while len(results) < len(jobs):
                now = monotonic()
                # 1. dispatch eligible pending jobs to idle workers
                idle = [h for h in workers.values() if not h.busy]
                for handle in idle:
                    if not pending or pending[0][0] > now:
                        break
                    _, _, job, attempt = heapq.heappop(pending)
                    deadline = now + self.timeout_s if self.timeout_s is not None else None
                    job_span = tracer.span(
                        f"job:{job.job_id}",
                        parent=self._sweep_span.context,
                        attributes={"worker": handle.worker_id, "attempt": attempt}
                        if tracer.enabled
                        else None,
                    ).start()
                    handle.current = (job, attempt, deadline, now, job_span)
                    # The span context rides along so the worker's spans
                    # parent under this job span across the process boundary
                    # (None when tracing is disabled).
                    handle.conn.send(("job", job, attempt, job_span.context))
                    self._emit(
                        "job_dispatched", job=job.job_id,
                        worker=handle.worker_id, attempt=attempt,
                    )

                # 2. how long may we sleep?
                wake_times = [
                    h.current[2] for h in workers.values() if h.busy and h.current[2] is not None
                ]
                if pending:
                    wake_times.append(pending[0][0])
                timeout = max(0.0, min(wake_times) - monotonic()) if wake_times else None

                # 3. wait for traffic
                conn_to_handle = {h.conn: h for h in workers.values()}
                if conn_to_handle:
                    ready = connection_wait(list(conn_to_handle), timeout)
                elif pending:  # every worker died; back off until eligibility
                    if timeout:
                        import time as _time

                        _time.sleep(min(timeout, 0.1))
                    ready = []
                else:  # pragma: no cover - defensive: nothing to wait for
                    ready = []

                # 4. drain messages
                for conn in ready:
                    handle = conn_to_handle[conn]
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        wall = monotonic() - handle.current[3] if handle.busy else 0.0
                        self._emit(
                            "worker_crashed", worker=handle.worker_id,
                            detail="connection lost",
                            job=handle.current[0].job_id if handle.busy else "",
                        )
                        if handle.busy:
                            fail_attempt(handle, "worker crashed (connection lost)", wall)
                        remove_worker(handle, kill=True)
                        continue
                    kind = message[0]
                    if kind == "ready":
                        continue
                    if kind == "started":
                        _, job_id, attempt = message
                        self._emit(
                            "job_started", job=job_id,
                            worker=handle.worker_id, attempt=attempt,
                        )
                    elif kind == "event":
                        self._emit_flow(message[1])
                    elif kind == "spans":
                        tracer.add_spans(message[2])
                    elif kind == "metrics":
                        get_metrics().merge_snapshot(message[2])
                    elif kind == "done":
                        _, job_id, payload, wall = message
                        job, attempt, _, _, job_span = handle.current
                        handle.current = None
                        if tracer.enabled:
                            job_span.set_attribute("fits", payload.get("fits"))
                        job_span.end()
                        results[job_id] = SweepJobResult(
                            job_id, ok=True, attempts=attempt,
                            wall_time_s=wall, payload=payload,
                        )
                        self._emit(
                            "job_finished", job=job_id, worker=handle.worker_id,
                            attempt=attempt, wall_time_s=wall,
                            metrics={"fits": payload.get("fits")},
                        )
                    elif kind == "fail":
                        _, job_id, error, _tb, wall = message
                        fail_attempt(handle, error, wall)

                # 5. enforce per-job deadlines
                now = monotonic()
                for handle in list(workers.values()):
                    if not handle.busy:
                        continue
                    job, attempt, deadline, dispatched, _ = handle.current
                    if deadline is not None and now >= deadline:
                        self._emit(
                            "job_timeout", job=job.job_id, worker=handle.worker_id,
                            attempt=attempt, wall_time_s=now - dispatched,
                            detail=f"exceeded {self.timeout_s} s",
                        )
                        fail_attempt(
                            handle, f"timed out after {self.timeout_s} s", now - dispatched
                        )
                        remove_worker(handle, kill=True)

                ensure_workers()
        finally:
            for handle in list(workers.values()):
                try:
                    handle.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
            for handle in list(workers.values()):
                remove_worker(handle, kill=False)

        return self._finish(jobs, results, sweep_started)

    def _finish(
        self,
        jobs: Sequence[SweepJob],
        results: dict[str, SweepJobResult],
        sweep_started: float,
    ) -> SweepReport:
        ordered = [results[job.job_id] for job in jobs if job.job_id in results]
        report = SweepReport(
            sweep=self.sweep_name,
            results=ordered,
            wall_time_s=perf_counter() - sweep_started,
            events=list(self._events),
        )
        self._emit(
            "sweep_completed",
            wall_time_s=report.wall_time_s,
            metrics={
                "jobs": len(report.results),
                "failed": len(report.failed),
                "cache_hits": report.cache_hits(),
                "cache_lookups": report.cache_lookups(),
            },
        )
        tracer = get_tracer()
        if tracer.enabled:
            for key, value in (
                ("jobs", len(report.results)),
                ("failed", len(report.failed)),
                ("cache_hits", report.cache_hits()),
                ("cache_lookups", report.cache_lookups()),
            ):
                self._sweep_span.set_attribute(key, value)
            registry = get_metrics()
            registry.counter("sweep.jobs_total").inc(len(report.results))
            registry.counter("sweep.jobs_failed").inc(len(report.failed))
        self._sweep_span.end()
        report.events = list(self._events)
        return report
