"""Parallel execution engine for design-space sweeps.

The ``repro.exec`` subsystem turns the staged flow pipeline into a
multi-process workload: picklable :class:`~repro.exec.worker.SweepJob`
records are sharded across spawn workers by the
:class:`~repro.exec.engine.ParallelSweepEngine`, all sharing one on-disk
:class:`~repro.flows.pipeline.ArtifactCache` made safe for concurrency by
the primitives in :mod:`repro.exec.locks`.  Progress streams back through
:mod:`repro.exec.events` into the ordinary flow-observer layer.

- :mod:`repro.exec.locks` — advisory file locks + atomic write-rename
  (imported by :mod:`repro.flows.pipeline`; no ``repro`` dependencies);
- :mod:`repro.exec.events` — :class:`SweepEvent` lifecycle records that
  convert to :class:`~repro.flows.observe.FlowEvent`;
- :mod:`repro.exec.worker` — the worker process loop and the picklable job
  description;
- :mod:`repro.exec.pool` — the persistent :class:`WorkerPool` of warm,
  pre-imported worker processes, reusable across runs and engines;
- :mod:`repro.exec.engine` — the scheduler: pull-based dispatch with
  batched prefetch, per-job timeout, bounded retry with backoff, graceful
  degradation, deterministic result ordering.
"""

from repro.exec.locks import FileLock, atomic_write_bytes
from repro.exec.events import SweepEvent, SWEEP_EVENT_KINDS
from repro.exec.worker import SweepJob, run_job, resolve_entrypoint
from repro.exec.pool import WorkerPool, PoolWorker
from repro.exec.engine import ParallelSweepEngine, SweepJobResult, SweepReport

__all__ = [
    "FileLock",
    "atomic_write_bytes",
    "SweepEvent",
    "SWEEP_EVENT_KINDS",
    "SweepJob",
    "run_job",
    "resolve_entrypoint",
    "WorkerPool",
    "PoolWorker",
    "ParallelSweepEngine",
    "SweepJobResult",
    "SweepReport",
]
