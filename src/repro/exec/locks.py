"""Cross-process file primitives for the shared artifact cache.

Two building blocks keep the on-disk :class:`~repro.flows.pipeline.ArtifactCache`
safe when several worker processes hammer the same directory:

- :class:`FileLock` — a per-key advisory lock (``fcntl.flock`` where
  available, a documented no-op elsewhere) used to serialize writers of the
  same cache entry;
- :func:`atomic_write_bytes` — write-to-unique-temp + ``os.replace`` so a
  reader never observes a partially written file, even without any lock.

On POSIX ``os.replace`` is atomic within a filesystem, so *readers* need no
lock at all: they either see the old complete file or the new complete file.
The advisory lock exists to serialize *writers* (avoiding duplicate work and
temp-file churn) and to make delete-corrupt-entry safe.  This module has no
dependencies inside ``repro`` so any layer may import it without cycles.
"""

from __future__ import annotations

import os
import itertools
from pathlib import Path
from typing import Optional

try:  # POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

__all__ = ["FileLock", "atomic_write_bytes"]

#: Process-local counter making concurrent temp names unique within one PID.
_tmp_counter = itertools.count()


class FileLock:
    """Advisory exclusive lock on ``path`` (created on demand).

    Context manager; re-entrant use is not supported.  Where ``fcntl`` is
    unavailable the lock degrades to a no-op — correctness is then carried
    entirely by :func:`atomic_write_bytes`'s write-rename protocol, which
    never exposes partial files (last writer wins, both writing identical
    content-addressed bytes).
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._fh = None

    @property
    def locked(self) -> bool:
        return self._fh is not None

    def acquire(self) -> None:
        if self._fh is not None:
            raise RuntimeError(f"lock {self.path} is already held")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fh = open(self.path, "ab")
        if fcntl is not None:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
        self._fh = fh

    def release(self) -> None:
        fh, self._fh = self._fh, None
        if fh is None:
            return
        try:
            if fcntl is not None:
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
        finally:
            fh.close()

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Write ``data`` to ``path`` so readers never see a partial file.

    The payload lands in a temp file unique to (pid, counter) in the same
    directory, then ``os.replace`` swaps it in atomically.  Concurrent
    writers of the same content-addressed entry race harmlessly: both write
    identical bytes and the last rename wins.
    """
    target = Path(path)
    tmp: Optional[Path] = target.parent / f".{target.name}.{os.getpid()}.{next(_tmp_counter)}.tmp"
    try:
        tmp.write_bytes(data)
        os.replace(tmp, target)
        tmp = None
    finally:
        if tmp is not None:
            tmp.unlink(missing_ok=True)
