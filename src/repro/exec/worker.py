"""Worker-side half of the parallel sweep engine.

A worker process is spawned **once** per :class:`~repro.exec.pool.WorkerPool`
slot, pre-imports the full ``repro`` package, and then serves jobs over its
duplex pipe for its whole life — across as many engine ``run()`` calls as
the pool survives.  The message protocol:

- engine → worker: ``("jobs", [(job, attempt, span_context), ...])`` with a
  *batch* of jobs (one pipe round-trip amortized over the batch; the worker
  queues them locally and pulls the next as soon as the previous finishes),
  ``("reset_cache", cache_dir)`` to drop the worker's artifact cache and
  rebuild it against ``cache_dir`` (applied in FIFO order after any queued
  jobs), or ``("stop",)``; ``span_context`` is the engine-side job span's
  :class:`~repro.obs.SpanContext` (``None`` when tracing is disabled), so
  the worker's spans parent correctly across the process boundary;
- worker → engine: ``("ready", worker_id)`` once imports complete,
  ``("started", job_id, attempt)`` when a job begins (the engine starts the
  job's timeout clock here, not at dispatch — a queued job is not running),
  ``("event", FlowEvent)`` for every pipeline stage event (streamed live so
  the engine's observer sees parallel stage traffic as it happens),
  ``("spans", job_id, [Span, ...])`` with the worker's finished trace spans
  and ``("metrics", job_id, snapshot)`` with its metrics-registry snapshot
  (both sent *before* the job outcome, so the engine always drains them),
  ``("done", job_id, payload, wall_time_s)`` on success and
  ``("fail", job_id, error, traceback, wall_time_s)`` on any exception.

:class:`SweepJob` is the picklable unit of work — it carries real model
objects (graph, library, device, reconfiguration architecture, parsed
dynamic constraints), mapping pins as plain pairs instead of a callable,
and the board factory as an ``"module:attr"`` entrypoint so the spawn
context can rebuild everything by import.  :func:`run_job` is the pure
"evaluate one design point" function; the engine's serial fallback and the
tests call it in-process.

Because one worker serves many traced runs, it keeps a single span-id
counter for its whole life: every run's tracer reuses it, so ``w<id>-``
span ids stay unique across runs even though each run carries a fresh
``trace_id``.

``fault`` is a deliberate fault-injection hook (``raise``, ``exit``,
``hang``, ``sleep:<s>``, ``fail_below:<n>``, ``raise_exit``) used to
validate the engine's retry, timeout and graceful-degradation semantics;
``raise_exit`` reports a failure and *then* kills the worker, reproducing
a worker dying between a failed attempt and its redispatch.
"""

from __future__ import annotations

import importlib
import itertools
import time
import traceback
from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, Optional

from repro.arch.boards import Board
from repro.dfg.graph import AlgorithmGraph
from repro.dfg.library import OperationLibrary
from repro.fabric.device import VirtexIIDevice
from repro.fabric.floorplan import FloorplanError
from repro.flows.constraints import DynamicConstraints
from repro.flows.flow import DesignFlow
from repro.flows.observe import FlowEvent, FlowObserver
from repro.flows.pipeline import ArtifactCache
from repro.obs import MetricsRegistry, Tracer, set_metrics, set_tracer
from repro.reconfig.architectures import ReconfigArchitecture

__all__ = ["SweepJob", "run_job", "resolve_entrypoint", "worker_main"]

#: Default board factory entrypoint (the paper's Sundance platform).
DEFAULT_BOARD_BUILDER = "repro.arch.boards:sundance_board"


def resolve_entrypoint(spec: str) -> Callable:
    """Import ``"package.module:attr"`` and return the attribute."""
    module_name, sep, attr = spec.partition(":")
    if not sep or not module_name or not attr:
        raise ValueError(f"entrypoint must look like 'package.module:attr', got {spec!r}")
    module = importlib.import_module(module_name)
    try:
        return getattr(module, attr)
    except AttributeError as err:
        raise ValueError(f"module {module_name!r} has no attribute {attr!r}") from err


@dataclass(frozen=True)
class SweepJob:
    """One picklable design-point evaluation.

    Everything a spawn-context worker needs to rebuild the flow: model
    objects travel by value (all are plain-data and pickle cleanly),
    callables travel as importable entrypoints or data (``pins`` replaces
    ``configure_flow``-style lambdas).
    """

    job_id: str
    graph: AlgorithmGraph
    library: OperationLibrary
    device: VirtexIIDevice
    architecture: ReconfigArchitecture
    board_builder: str = DEFAULT_BOARD_BUILDER
    dynamic_constraints: Optional[DynamicConstraints] = None
    pins: tuple[tuple[str, str], ...] = ()
    prefetch: bool = True
    iteration_deadline_ns: Optional[int] = None
    #: Fault-injection hook for engine validation; see module docstring.
    fault: Optional[str] = None
    #: When > 0, run the runtime system simulation for this many executive
    #: iterations after a successful flow; selector values cycle through
    #: each condition group's alternatives so every dynamic region actually
    #: swaps (its reconfiguration activity lands in the trace and payload).
    simulate_iterations: int = 0
    #: Manager prefetch policy for that simulation: "none", "on_select"
    #: or "history" (a picklable name, resolved worker-side).
    simulate_policy: str = "none"


class ExitAfterReport(RuntimeError):
    """Injected failure that also kills the worker *after* it reports.

    Reproduces the nastiest respawn-accounting case: the engine sees the
    job fail (and schedules its retry with backoff), then the worker that
    failed it dies before the retry can be dispatched.  The engine must
    respawn a replacement into the warm pool and still finish the job.
    """


def _apply_fault(fault: Optional[str], attempt: int) -> None:
    if not fault:
        return
    if fault == "raise":
        raise RuntimeError(f"injected fault (attempt {attempt})")
    if fault == "raise_exit":
        if attempt < 2:
            raise ExitAfterReport(f"injected fault then crash (attempt {attempt})")
        return
    if fault == "exit":  # simulate a hard crash (segfault-style death)
        import os

        os._exit(13)
    if fault == "hang":
        time.sleep(3600.0)
        return
    if fault.startswith("sleep:"):
        time.sleep(float(fault.split(":", 1)[1]))
        return
    if fault.startswith("fail_below:"):
        threshold = int(fault.split(":", 1)[1])
        if attempt < threshold:
            raise RuntimeError(f"injected fault (attempt {attempt} < {threshold})")
        return
    raise ValueError(f"unknown fault spec {fault!r}")


def build_board(job: SweepJob) -> Board:
    return resolve_entrypoint(job.board_builder)(device=job.device)


def run_job(
    job: SweepJob,
    attempt: int = 1,
    cache: Optional[ArtifactCache] = None,
    observer: Optional[FlowObserver] = None,
) -> dict[str, Any]:
    """Evaluate one design point; returns a JSON-safe result payload.

    A floorplanning failure is a *result* (``fits: false``), not an error —
    matching :func:`repro.flows.designspace.explore_design_space`.  Any
    other exception propagates to the caller (the worker loop reports it to
    the engine, which retries or records the failure).

    Jobs other than :class:`SweepJob` may plug into the sweep machinery by
    exposing ``job_id`` plus an ``execute(attempt=, cache=, observer=)``
    method returning the payload (e.g.
    :class:`repro.mccdma.engine.LinkPointJob`); ``fault`` is honoured for
    them too when present.
    """
    _apply_fault(getattr(job, "fault", None), attempt)
    execute = getattr(job, "execute", None)
    if execute is not None:
        return execute(attempt=attempt, cache=cache, observer=observer)
    flow = DesignFlow(
        graph=job.graph,
        board=build_board(job),
        library=job.library,
        dynamic_constraints=job.dynamic_constraints,
        reconfig_architecture=job.architecture,
        prefetch=job.prefetch,
        iteration_deadline_ns=job.iteration_deadline_ns,
        cache=cache,
        observer=observer,
    )
    for operation, operator in job.pins:
        flow.mapping.pin(operation, operator)
    payload: dict[str, Any] = {
        "job_id": job.job_id,
        "device": job.device.name,
        "architecture": job.architecture.name,
    }
    try:
        result = flow.run()
    except FloorplanError as err:
        payload.update({"fits": False, "error": str(err)})
        return payload
    regions = result.modular.floorplan.placements
    payload.update(
        {
            "fits": True,
            "error": None,
            "region_area": {r: result.modular.region_area_fraction(r) for r in regions},
            "bitstream_bytes": {
                r: result.modular.floorplan.partial_bitstream_bytes(r) for r in regions
            },
            "reconfig_latency_ns": dict(result.modular.reconfig_latency_ns),
            "clock_mhz": result.modular.par_report.clock_mhz,
            "makespan_ns": result.makespan_ns,
            "first_pass_makespan_ns": result.first_pass_makespan_ns,
            "cache_stats": cache.stats.to_dict() if cache is not None else None,
        }
    )
    if job.simulate_iterations > 0:
        payload["runtime"] = _simulate_runtime(job, result)
    return payload


def _simulate_runtime(job: SweepJob, result) -> dict[str, Any]:
    """Run the dynamic verification for a fitting design point.

    Selector values cycle through each condition group's alternatives, so
    every dynamic region performs real swaps and the reconfiguration
    manager's load/prefetch/residency activity shows up in the trace.
    """
    # Local import: repro.flows.__init__ itself imports this module (via
    # designspace), so a top-level runtime import would re-enter it mid-init.
    from repro.flows.runtime import SystemSimulation
    from repro.runtime.policies import create_policy, get_bundle, policy_names

    try:
        bundle = get_bundle(job.simulate_policy)
    except ValueError:
        raise ValueError(
            f"unknown simulate_policy {job.simulate_policy!r}; "
            f"expected one of {policy_names()}"
        ) from None
    if bundle.needs_future:
        raise ValueError(
            f"simulate_policy {job.simulate_policy!r} is clairvoyant and "
            f"needs the demand schedule up front; pick one of "
            f"{policy_names(include_future=False)}"
        )
    runtime_policy = create_policy(job.simulate_policy)
    selectors = {
        group: (lambda i, vals=tuple(values): vals[i % len(vals)])
        for group, values in result.executive.condition_groups.items()
        if values
    }
    runtime = SystemSimulation(
        result,
        n_iterations=job.simulate_iterations,
        selector_values=selectors,
        policy=runtime_policy.prefetch,
        eviction=runtime_policy.eviction,
        region_slots=runtime_policy.region_slots,
    )
    rt = runtime.run()
    return {
        "n_iterations": rt.n_iterations,
        "switches": rt.switches,
        "stall_ns": rt.total_stall_ns,
        "end_time_ns": rt.end_time_ns,
        "useful_prefetches": rt.manager_stats.useful_prefetches,
        "policy": rt.policy_name,
    }


@dataclass
class _PipeObserver:
    """Streams each pipeline stage event back to the engine live.

    Send-only: nothing is retained worker-side, so a long-lived pool
    worker's memory footprint stays flat across thousands of jobs.
    """

    conn: Any

    def on_event(self, event: FlowEvent) -> None:
        try:
            self.conn.send(("event", event))
        except (BrokenPipeError, OSError):  # engine went away; keep computing
            pass


def worker_main(conn, worker_id: int, cache_dir: Optional[str]) -> None:
    """Process entrypoint: serve job batches from ``conn`` until ``stop``/EOF.

    The worker keeps one :class:`ArtifactCache` for its whole life (unless
    the engine sends ``reset_cache``), so its in-memory tier stays warm
    across the jobs — and the engine *runs* — it serves; with a
    ``cache_dir`` the disk tier is also shared with every sibling worker.

    Dispatch is pull-based: the engine keeps at most a couple of jobs
    queued here, and the worker starts the next the instant the previous
    finishes — it never waits a pipe round-trip with work in hand, and the
    engine never commits more than the queue depth to one worker (so a
    slow job cannot strand a long tail behind it).
    """
    cache = ArtifactCache(disk_dir=cache_dir) if cache_dir else ArtifactCache()
    observer = _PipeObserver(conn)
    #: One span-id counter for the worker's whole life: each traced run
    #: gets a fresh tracer (runs carry distinct trace ids) but the counter
    #: carries over, so ``w<id>-N`` ids never repeat across runs.
    span_seq = itertools.count(1)
    tracer: Optional[Tracer] = None
    #: FIFO of ("job", job, attempt, ctx) and ("reset_cache", dir) entries.
    local: deque = deque()
    try:
        conn.send(("ready", worker_id))
        while True:
            # Ingest everything available; block only when out of work.
            try:
                while not local or conn.poll():
                    message = conn.recv()
                    kind = message[0]
                    if kind == "stop":
                        return
                    if kind == "jobs":
                        local.extend(("job", *entry) for entry in message[1])
                    elif kind == "reset_cache":
                        local.append(message)
            except (EOFError, OSError):
                return
            entry = local.popleft()
            if entry[0] == "reset_cache":
                new_dir = entry[1]
                cache = ArtifactCache(disk_dir=new_dir) if new_dir else ArtifactCache()
                continue
            _, job, attempt, ctx = entry
            started = perf_counter()
            conn.send(("started", job.job_id, attempt))
            job_span = None
            previous = None
            previous_metrics = None
            registry = None
            if ctx is not None:
                if tracer is None or tracer.trace_id != ctx.trace_id:
                    tracer = Tracer(
                        trace_id=ctx.trace_id,
                        span_id_prefix=f"w{worker_id}-",
                        process=f"worker-{worker_id}",
                        span_seq=span_seq,
                    )
                previous = set_tracer(tracer)
                registry = MetricsRegistry()
                previous_metrics = set_metrics(registry)
                job_span = tracer.span(
                    f"attempt:{attempt}",
                    parent=ctx,
                    attributes={"job": job.job_id, "worker": worker_id},
                ).start()
            error: Optional[BaseException] = None
            error_tb = ""
            payload = None
            try:
                payload = run_job(job, attempt=attempt, cache=cache, observer=observer)
            except Exception as err:  # reported to the engine, never fatal here
                error = err
                error_tb = traceback.format_exc()
            wall = perf_counter() - started
            if ctx is not None:
                if error is not None:
                    job_span.set_attribute("error", f"{type(error).__name__}: {error}")
                job_span.end()
                set_tracer(previous)
                set_metrics(previous_metrics)
                # Stream the finished spans and metrics *before* the outcome:
                # once the engine records the last job result it stops
                # draining pipes.
                conn.send(("spans", job.job_id, list(tracer.spans)))
                tracer.spans.clear()
                if len(registry):
                    conn.send(("metrics", job.job_id, registry.snapshot()))
            if error is not None:
                conn.send(
                    ("fail", job.job_id, f"{type(error).__name__}: {error}", error_tb, wall)
                )
                if isinstance(error, ExitAfterReport):
                    import os

                    os._exit(13)
            else:
                conn.send(("done", job.job_id, payload, wall))
    except (BrokenPipeError, OSError):  # engine died; exit quietly
        pass
    finally:
        try:
            conn.close()
        except OSError:
            pass
