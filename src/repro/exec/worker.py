"""Worker-side half of the parallel sweep engine.

A worker process is spawned with one end of a duplex pipe and loops over a
simple message protocol:

- engine → worker: ``("job", SweepJob, attempt)`` or ``("stop",)``;
- worker → engine: ``("ready", worker_id)`` once imports complete,
  ``("started", job_id, attempt)`` when a job begins,
  ``("event", FlowEvent)`` for every pipeline stage event (streamed live so
  the engine's observer sees parallel stage traffic as it happens),
  ``("done", job_id, payload, wall_time_s)`` on success and
  ``("fail", job_id, error, traceback, wall_time_s)`` on any exception.

:class:`SweepJob` is the picklable unit of work — it carries real model
objects (graph, library, device, reconfiguration architecture, parsed
dynamic constraints), mapping pins as plain pairs instead of a callable,
and the board factory as an ``"module:attr"`` entrypoint so the spawn
context can rebuild everything by import.  :func:`run_job` is the pure
"evaluate one design point" function; the engine's serial fallback and the
tests call it in-process.

``fault`` is a deliberate fault-injection hook (``raise``, ``exit``,
``hang``, ``sleep:<s>``, ``fail_below:<n>``) used to validate the engine's
retry, timeout and graceful-degradation semantics.
"""

from __future__ import annotations

import importlib
import time
import traceback
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Optional

from repro.arch.boards import Board
from repro.dfg.graph import AlgorithmGraph
from repro.dfg.library import OperationLibrary
from repro.fabric.device import VirtexIIDevice
from repro.fabric.floorplan import FloorplanError
from repro.flows.constraints import DynamicConstraints
from repro.flows.flow import DesignFlow
from repro.flows.observe import FlowEvent, FlowObserver
from repro.flows.pipeline import ArtifactCache
from repro.reconfig.architectures import ReconfigArchitecture

__all__ = ["SweepJob", "run_job", "resolve_entrypoint", "worker_main"]

#: Default board factory entrypoint (the paper's Sundance platform).
DEFAULT_BOARD_BUILDER = "repro.arch.boards:sundance_board"


def resolve_entrypoint(spec: str) -> Callable:
    """Import ``"package.module:attr"`` and return the attribute."""
    module_name, sep, attr = spec.partition(":")
    if not sep or not module_name or not attr:
        raise ValueError(f"entrypoint must look like 'package.module:attr', got {spec!r}")
    module = importlib.import_module(module_name)
    try:
        return getattr(module, attr)
    except AttributeError as err:
        raise ValueError(f"module {module_name!r} has no attribute {attr!r}") from err


@dataclass(frozen=True)
class SweepJob:
    """One picklable design-point evaluation.

    Everything a spawn-context worker needs to rebuild the flow: model
    objects travel by value (all are plain-data and pickle cleanly),
    callables travel as importable entrypoints or data (``pins`` replaces
    ``configure_flow``-style lambdas).
    """

    job_id: str
    graph: AlgorithmGraph
    library: OperationLibrary
    device: VirtexIIDevice
    architecture: ReconfigArchitecture
    board_builder: str = DEFAULT_BOARD_BUILDER
    dynamic_constraints: Optional[DynamicConstraints] = None
    pins: tuple[tuple[str, str], ...] = ()
    prefetch: bool = True
    iteration_deadline_ns: Optional[int] = None
    #: Fault-injection hook for engine validation; see module docstring.
    fault: Optional[str] = None


def _apply_fault(fault: Optional[str], attempt: int) -> None:
    if not fault:
        return
    if fault == "raise":
        raise RuntimeError(f"injected fault (attempt {attempt})")
    if fault == "exit":  # simulate a hard crash (segfault-style death)
        import os

        os._exit(13)
    if fault == "hang":
        time.sleep(3600.0)
        return
    if fault.startswith("sleep:"):
        time.sleep(float(fault.split(":", 1)[1]))
        return
    if fault.startswith("fail_below:"):
        threshold = int(fault.split(":", 1)[1])
        if attempt < threshold:
            raise RuntimeError(f"injected fault (attempt {attempt} < {threshold})")
        return
    raise ValueError(f"unknown fault spec {fault!r}")


def build_board(job: SweepJob) -> Board:
    return resolve_entrypoint(job.board_builder)(device=job.device)


def run_job(
    job: SweepJob,
    attempt: int = 1,
    cache: Optional[ArtifactCache] = None,
    observer: Optional[FlowObserver] = None,
) -> dict[str, Any]:
    """Evaluate one design point; returns a JSON-safe result payload.

    A floorplanning failure is a *result* (``fits: false``), not an error —
    matching :func:`repro.flows.designspace.explore_design_space`.  Any
    other exception propagates to the caller (the worker loop reports it to
    the engine, which retries or records the failure).

    Jobs other than :class:`SweepJob` may plug into the sweep machinery by
    exposing ``job_id`` plus an ``execute(attempt=, cache=, observer=)``
    method returning the payload (e.g.
    :class:`repro.mccdma.engine.LinkPointJob`); ``fault`` is honoured for
    them too when present.
    """
    _apply_fault(getattr(job, "fault", None), attempt)
    execute = getattr(job, "execute", None)
    if execute is not None:
        return execute(attempt=attempt, cache=cache, observer=observer)
    flow = DesignFlow(
        graph=job.graph,
        board=build_board(job),
        library=job.library,
        dynamic_constraints=job.dynamic_constraints,
        reconfig_architecture=job.architecture,
        prefetch=job.prefetch,
        iteration_deadline_ns=job.iteration_deadline_ns,
        cache=cache,
        observer=observer,
    )
    for operation, operator in job.pins:
        flow.mapping.pin(operation, operator)
    payload: dict[str, Any] = {
        "job_id": job.job_id,
        "device": job.device.name,
        "architecture": job.architecture.name,
    }
    try:
        result = flow.run()
    except FloorplanError as err:
        payload.update({"fits": False, "error": str(err)})
        return payload
    regions = result.modular.floorplan.placements
    payload.update(
        {
            "fits": True,
            "error": None,
            "region_area": {r: result.modular.region_area_fraction(r) for r in regions},
            "bitstream_bytes": {
                r: result.modular.floorplan.partial_bitstream_bytes(r) for r in regions
            },
            "reconfig_latency_ns": dict(result.modular.reconfig_latency_ns),
            "clock_mhz": result.modular.par_report.clock_mhz,
            "makespan_ns": result.makespan_ns,
            "first_pass_makespan_ns": result.first_pass_makespan_ns,
            "cache_stats": cache.stats.to_dict() if cache is not None else None,
        }
    )
    return payload


@dataclass
class _PipeObserver:
    """Streams each pipeline stage event back to the engine live."""

    conn: Any
    events: list[FlowEvent] = field(default_factory=list)

    def on_event(self, event: FlowEvent) -> None:
        self.events.append(event)
        try:
            self.conn.send(("event", event))
        except (BrokenPipeError, OSError):  # engine went away; keep computing
            pass


def worker_main(conn, worker_id: int, cache_dir: Optional[str]) -> None:
    """Process entrypoint: serve jobs from ``conn`` until ``stop`` or EOF.

    The worker keeps one :class:`ArtifactCache` for its whole life, so its
    in-memory tier stays warm across the jobs it is assigned; with a
    ``cache_dir`` the disk tier is also shared with every sibling worker.
    """
    cache = ArtifactCache(disk_dir=cache_dir) if cache_dir else ArtifactCache()
    observer = _PipeObserver(conn)
    try:
        conn.send(("ready", worker_id))
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message[0] == "stop":
                break
            _, job, attempt = message
            started = perf_counter()
            conn.send(("started", job.job_id, attempt))
            try:
                payload = run_job(job, attempt=attempt, cache=cache, observer=observer)
            except Exception as err:  # reported to the engine, never fatal here
                conn.send(
                    (
                        "fail",
                        job.job_id,
                        f"{type(err).__name__}: {err}",
                        traceback.format_exc(),
                        perf_counter() - started,
                    )
                )
            else:
                conn.send(("done", job.job_id, payload, perf_counter() - started))
    except (BrokenPipeError, OSError):  # engine died; exit quietly
        pass
    finally:
        try:
            conn.close()
        except OSError:
            pass
