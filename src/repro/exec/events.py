"""Structured sweep-engine events, bridged into the flow-observer layer.

The :class:`~repro.exec.engine.ParallelSweepEngine` narrates a sweep with
:class:`SweepEvent` records: one per job lifecycle step (dispatched,
started, finished, retried, timed out, failed), per worker lifecycle step
(spawned, crashed, stopped) and one summary when the sweep completes.

Rather than inventing a second observer protocol, every ``SweepEvent``
converts to a :class:`~repro.flows.observe.FlowEvent` (stage name
``sweep:<kind>``) via :meth:`SweepEvent.to_flow_event`, so the existing
sinks — ``JsonLinesObserver`` for ``--log-json``, ``RecordingObserver`` for
tests, ``render_profile`` for ``--profile`` — cover parallel runs with no
changes.  Worker processes additionally stream the ordinary per-stage
``FlowEvent`` records of their pipelines back to the engine, which forwards
them to the same observer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.flows.observe import FlowEvent

__all__ = ["SweepEvent", "SWEEP_EVENT_KINDS"]

#: Every kind a :class:`SweepEvent` may carry.
SWEEP_EVENT_KINDS = (
    "job_dispatched",
    "job_started",
    "job_finished",
    "job_failed",
    "job_retried",
    "job_timeout",
    "worker_spawned",
    "worker_respawned",
    "worker_crashed",
    "worker_stopped",
    "pool_reused",
    "cache_warning",
    "sweep_completed",
)


@dataclass(frozen=True)
class SweepEvent:
    """One step in the life of a parallel sweep."""

    kind: str  #: one of :data:`SWEEP_EVENT_KINDS`
    sweep: str = "sweep"  #: sweep identity (the engine's ``sweep_name``)
    job: str = ""  #: job id, empty for worker/sweep-level events
    worker: Optional[int] = None  #: worker index, when attributable
    attempt: int = 0  #: 1-based attempt number for job events
    wall_time_s: float = 0.0  #: job wall time where known
    detail: str = ""  #: human-readable context (error text, reason)
    metrics: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in SWEEP_EVENT_KINDS:
            raise ValueError(f"unknown sweep event kind {self.kind!r}")

    def to_flow_event(self) -> FlowEvent:
        """The observer-layer rendering of this event."""
        metrics = dict(self.metrics)
        if self.worker is not None:
            metrics.setdefault("worker", self.worker)
        if self.attempt:
            metrics.setdefault("attempt", self.attempt)
        if self.detail:
            metrics.setdefault("detail", self.detail)
        return FlowEvent(
            flow=f"{self.sweep}/{self.job}" if self.job else self.sweep,
            stage=f"sweep:{self.kind}",
            cache_hit=False,
            wall_time_s=self.wall_time_s,
            fingerprint="",
            metrics=metrics,
        )
