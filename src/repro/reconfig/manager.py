"""The runtime configuration manager.

Monitors the dynamic regions, queues configuration requests, consults the
prefetch policy, and drives the protocol configuration builder.  Implements
the executive's configuration-service protocol (``ensure_loaded`` /
``notify_select``), so an :class:`~repro.executive.interpreter.ExecutiveRunner`
can use it directly as its ``config_service``.

Per region the manager also drives an ``In_Reconf`` signal — the paper's
lock-up of the receiving interface during partial reconfiguration.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Optional, Sequence

from repro.reconfig.eviction import EvictionPolicy
from repro.reconfig.prefetch import NoPrefetchPolicy, PrefetchPolicy
from repro.reconfig.protocol import ProtocolConfigurationBuilder, ProtocolError
from repro.sim import Event, Mailbox, Signal, Simulator, Trace

__all__ = [
    "COUNTER_FIELDS",
    "ReconfigError",
    "ManagerStats",
    "ReconfigStats",
    "ReconfigurationManager",
]


class ReconfigError(RuntimeError):
    """Manager misuse or unrecoverable configuration failure."""


@dataclass
class ManagerStats:
    """Counters for the benchmarks."""

    demand_requests: int = 0
    demand_loads: int = 0
    prefetch_loads: int = 0
    useful_prefetches: int = 0
    wasted_prefetches: int = 0
    instant_hits: int = 0
    #: demands satisfied by a non-active module already configured in the
    #: region's shared area (multi-slot mode; zero with region_slots=1)
    resident_hits: int = 0
    evictions: int = 0
    stall_ns: int = 0
    crc_failures: int = 0
    readback_failures: int = 0
    load_retries: int = 0

    def mean_stall_ns(self) -> float:
        return self.stall_ns / self.demand_requests if self.demand_requests else 0.0

    def hit_rate(self) -> float:
        """Fraction of demand requests served without a blocking load."""
        if not self.demand_requests:
            return 0.0
        return (self.instant_hits + self.resident_hits) / self.demand_requests

    def to_dict(self) -> dict:
        return asdict(self)

    # -- array-form bridge (the batched fleet engine keeps counters as flat
    # -- integer rows; these two methods pin the field order in one place) ----

    @classmethod
    def field_names(cls) -> tuple[str, ...]:
        """Counter names in declaration order (the array-row layout)."""
        return COUNTER_FIELDS

    def as_counters(self) -> list[int]:
        """The stats as a flat row, ordered like :meth:`field_names`."""
        return [getattr(self, name) for name in COUNTER_FIELDS]

    @classmethod
    def from_counters(cls, values: Sequence[int]) -> "ManagerStats":
        """Rebuild from a flat row (numpy integers are normalised to int)."""
        if len(values) != len(COUNTER_FIELDS):
            raise ValueError(
                f"expected {len(COUNTER_FIELDS)} counters, got {len(values)}"
            )
        return cls(**{name: int(v) for name, v in zip(COUNTER_FIELDS, values)})


#: Declaration-ordered counter names; the contract between ManagerStats and
#: every array-form consumer (repro.runtime.fast keeps one int64 row per board
#: in exactly this layout).
COUNTER_FIELDS: tuple[str, ...] = tuple(f.name for f in fields(ManagerStats))


#: The reconfiguration-side stats bag under the name the observability layer
#: uses for it (useful/wasted prefetch accounting feeds the metrics registry).
ReconfigStats = ManagerStats


@dataclass
class _Job:
    region: str
    module: str
    demand: bool
    done: Event
    cancelled: bool = False


@dataclass
class _RegionState:
    loaded: Optional[str] = None
    loading: Optional[str] = None
    load_started_at: int = 0
    load_done: Optional[Event] = None
    queue: Optional[Mailbox] = None
    history: list[str] = field(default_factory=list)
    #: module that was prefetched but not yet demanded (for waste accounting)
    unclaimed_prefetch: Optional[str] = None
    #: the in-flight load is speculative and no demand has claimed it yet;
    #: a mid-flight claim flips this so completion does not re-mark the
    #: module unclaimed (which would double-count it as useful later)
    inflight_prefetch_unclaimed: bool = False
    #: last module demanded (the history predictor learns demand transitions,
    #: self-transitions included — otherwise it would always predict a switch)
    last_demand: Optional[str] = None
    #: modules currently configured in the region's shared area, insertion
    #: ordered (dict-as-ordered-set); only maintained with region_slots > 1
    resident: dict[str, None] = field(default_factory=dict)


class ReconfigurationManager:
    """Configuration manager + prefetching over a protocol builder."""

    def __init__(
        self,
        sim: Simulator,
        builder: ProtocolConfigurationBuilder,
        policy: Optional[PrefetchPolicy] = None,
        request_latency_ns: int = 1_000,
        trace: Optional[Trace] = None,
        strict_crc: bool = True,
        verify_readback: bool = False,
        max_load_retries: int = 2,
        region_slots: int = 1,
        eviction: Optional[EvictionPolicy] = None,
    ):
        if request_latency_ns < 0:
            raise ReconfigError("request latency must be >= 0")
        if max_load_retries < 0:
            raise ReconfigError("retry count must be >= 0")
        if region_slots < 1:
            raise ReconfigError("region_slots must be >= 1")
        self.sim = sim
        self.builder = builder
        self.policy = policy or NoPrefetchPolicy()
        self.request_latency_ns = request_latency_ns
        self.trace = trace
        self.strict_crc = strict_crc
        #: When True, every load is followed by a configuration readback and
        #: compared against the golden bitstream (≈ doubles the latency);
        #: mismatches are retried up to ``max_load_retries`` times.
        self.verify_readback = verify_readback
        self.max_load_retries = max_load_retries
        #: Area budget per region, in module configurations: with slots > 1
        #: several modules stay configured side by side and a demand for any
        #: resident one is an instant context switch (no port traffic);
        #: ``eviction`` picks the victim when the area fills up.  The default
        #: (1 slot, no eviction) is the paper's exclusive-region model and
        #: leaves the manager's behaviour exactly as before.
        self.region_slots = region_slots
        self.eviction = eviction
        self._multi = region_slots > 1
        self.stats = ManagerStats()
        self.in_reconf: dict[str, Signal] = {}
        self._regions: dict[str, _RegionState] = {}
        for region in builder.store.regions():
            self._region(region)

    # -- region bookkeeping -----------------------------------------------------

    def _region(self, region: str) -> _RegionState:
        if region not in self._regions:
            state = _RegionState(queue=Mailbox(self.sim, name=f"reconfq.{region}"))
            self._regions[region] = state
            self.in_reconf[region] = Signal(self.sim, value=False, name=f"In_Reconf.{region}")
            self.sim.process(self._region_proc(region), name=f"mgr:{region}")
        return self._regions[region]

    def loaded_module(self, region: str) -> Optional[str]:
        return self._region(region).loaded

    def preload(self, region: str, module: str) -> None:
        """Mark ``module`` as configured at power-up (part of the initial
        full bitstream; the constraints file's ``loading = startup``)."""
        if not self._known(region, module):
            raise ReconfigError(f"no bitstream registered for {region}/{module}")
        state = self._region(region)
        if state.loaded is not None or state.loading is not None:
            raise ReconfigError(f"region {region!r} already configured; preload must come first")
        state.loaded = module
        state.history.append(module)
        if self._multi:
            state.resident[module] = None
            if self.eviction is not None:
                self.eviction.on_insert(region, module)
        if self.trace:
            self.trace.begin(self.sim.now, f"region.{region}", "resident", detail=module)

    # -- the executive-facing protocol --------------------------------------------

    def notify_select(self, region: str, module: str) -> None:
        """The selector announced the next configuration (prefetch hint)."""
        state = self._region(region)
        target = self.policy.on_select(region, module)
        if target is None:
            return
        if target == state.loaded or target == state.loading:
            return
        if self._multi and target in state.resident:
            return
        if not self._known(region, target):
            return
        self._enqueue(region, target, demand=False)

    def ensure_loaded(self, region: str, module: str) -> Event:
        """Event firing once ``module`` is active on ``region``."""
        if not self._known(region, module):
            raise ReconfigError(f"no bitstream registered for {region}/{module}")
        state = self._region(region)
        self.stats.demand_requests += 1
        called_at = self.sim.now
        # Predictors that learn from the demand stream expose observe();
        # duck-typing keeps the manager ignorant of concrete policy classes.
        observe = getattr(self.policy, "observe", None)
        if observe is not None:
            observe(state.last_demand, module)
        if self.eviction is not None:
            self.eviction.on_demand(region, module)
        state.last_demand = module

        if state.loaded == module and state.loading is None:
            if state.unclaimed_prefetch == module:
                self.stats.useful_prefetches += 1
                state.unclaimed_prefetch = None
            self.stats.instant_hits += 1
            ev = self.sim.event(name=f"hit:{region}/{module}")
            ev.succeed()
            if len(state.queue or ()) == 0:
                self._speculate(region)
            return ev

        if self._multi and module in state.resident and state.loading is None:
            # Already configured in the shared area: switch the active
            # context without touching the configuration port.
            if state.unclaimed_prefetch == module:
                self.stats.useful_prefetches += 1
                state.unclaimed_prefetch = None
            self.stats.resident_hits += 1
            self._activate(region, state, module)
            ev = self.sim.event(name=f"hit:{region}/{module}")
            ev.succeed()
            if len(state.queue or ()) == 0:
                self._speculate(region)
            return ev

        if state.loading == module and state.load_done is not None:
            # Piggyback on the in-flight load; it only counts as a useful
            # prefetch when the flight is speculative and still unclaimed
            # (joining a demand load is just queueing, not prediction).
            ev = self.sim.event(name=f"join:{region}/{module}")
            state.unclaimed_prefetch = None
            if state.inflight_prefetch_unclaimed:
                self.stats.useful_prefetches += 1
                state.inflight_prefetch_unclaimed = False
            self._chain_stall(state.load_done, ev, called_at)
            return ev

        # Cancel queued speculation for other modules; queue a demand load.
        job = self._enqueue(region, module, demand=True)
        ev = self.sim.event(name=f"demand:{region}/{module}")
        self._chain_stall(job.done, ev, called_at)
        return ev

    # -- internals ----------------------------------------------------------------------

    def _activate(self, region: str, state: _RegionState, module: str) -> None:
        """Make a resident module the active one (multi-slot context switch)."""
        actor = f"region.{region}"
        if self.trace:
            if self.trace.is_open(actor, "resident"):
                self.trace.end(self.sim.now, actor, "resident")
            self.trace.begin(self.sim.now, actor, "resident", detail=module)
        state.loaded = module
        state.history.append(module)

    def _evict_overflow(self, region: str, state: _RegionState, keep: str) -> None:
        """Shrink the resident set back to the area budget.

        ``keep`` (the just-loaded, now-active module) is never a candidate.
        Without an eviction policy the oldest resident goes (FIFO).
        """
        while len(state.resident) > self.region_slots:
            candidates = [m for m in state.resident if m != keep]
            if not candidates:
                return
            if self.eviction is not None:
                victim = self.eviction.choose_victim(region, candidates)
                self.eviction.on_evict(region, victim)
            else:
                victim = candidates[0]
            del state.resident[victim]
            self.stats.evictions += 1
            if state.unclaimed_prefetch == victim:
                # A speculative load left the area before anyone demanded it.
                self.stats.wasted_prefetches += 1
                state.unclaimed_prefetch = None
            if self.trace:
                self.trace.record(self.sim.now, f"region.{region}", "evict", detail=victim)

    def _known(self, region: str, module: str) -> bool:
        try:
            self.builder.store.get(region, module)
            return True
        except KeyError:
            return False

    def _chain_stall(self, source: Event, target: Event, called_at: int) -> None:
        def on_done(ev: Event) -> None:
            self.stats.stall_ns += self.sim.now - called_at
            if ev.ok:
                target.succeed()
            else:
                target.fail(ev._exc or ReconfigError("configuration failed"))

        if source.processed:
            on_done(source)
        else:
            source.callbacks.append(on_done)

    def _enqueue(self, region: str, module: str, demand: bool) -> _Job:
        state = self._region(region)
        if demand:
            # A pending speculative job for a different module is now useless.
            for pending in list(state.queue._items):  # type: ignore[union-attr]
                if isinstance(pending, _Job) and not pending.demand and pending.module != module:
                    pending.cancelled = True
        job = _Job(region=region, module=module, demand=demand,
                   done=self.sim.event(name=f"load:{region}/{module}"))
        assert state.queue is not None
        state.queue.post(job)
        return job

    def _region_proc(self, region: str):
        state = self._regions[region]
        assert state.queue is not None
        while True:
            job: _Job = yield state.queue.get()
            if job.cancelled or job.module == state.loaded:
                if job.demand and job.module == state.loaded and state.unclaimed_prefetch == job.module:
                    self.stats.useful_prefetches += 1
                    state.unclaimed_prefetch = None
                job.done.succeed()
                if job.demand and len(state.queue) == 0:
                    self._speculate(region)
                continue
            if self._multi and job.module in state.resident:
                # Configured while the job sat in the queue (or prefetched
                # earlier): a demand switches the active context, a
                # speculative job is simply satisfied.
                if job.demand:
                    if state.unclaimed_prefetch == job.module:
                        self.stats.useful_prefetches += 1
                        state.unclaimed_prefetch = None
                    self.stats.resident_hits += 1
                    self._activate(region, state, job.module)
                job.done.succeed()
                if job.demand and len(state.queue) == 0:
                    self._speculate(region)
                continue
            # The request travels to the manager/builder (Fig. 2 placement).
            yield self.sim.timeout(self.request_latency_ns)
            state.loading = job.module
            state.load_started_at = self.sim.now
            state.load_done = job.done
            state.inflight_prefetch_unclaimed = not job.demand
            self.in_reconf[region].set(True)
            # Per-region load interval: demand loads as "load", speculative
            # ones as "prefetch" (the Fig. 4 Gantt overlay).  The port-level
            # "reconfig" span kind stays exclusively the builder's.
            load_kind = "load" if job.demand else "prefetch"
            if self.trace:
                self.trace.record(self.sim.now, f"mgr.{region}", "load_start",
                                  detail=job.module, payload="demand" if job.demand else "prefetch")
                self.trace.begin(self.sim.now, f"region.{region}", load_kind, detail=job.module)
            previous = state.loaded
            try:
                yield self.sim.process(self.builder.load(region, job.module))
                if self.verify_readback:
                    attempts = 0
                    while True:
                        ok = yield self.sim.process(self.builder.readback(region, job.module))
                        if ok:
                            break
                        self.stats.readback_failures += 1
                        if attempts >= self.max_load_retries:
                            raise ProtocolError(
                                f"readback verification failed for {region}/{job.module} "
                                f"after {attempts + 1} attempts"
                            )
                        attempts += 1
                        self.stats.load_retries += 1
                        yield self.sim.process(self.builder.load(region, job.module))
            except ProtocolError as err:
                self.stats.crc_failures += 1
                state.loading = None
                state.load_done = None
                state.inflight_prefetch_unclaimed = False
                self.in_reconf[region].set(False)
                if self.trace:
                    self.trace.end(self.sim.now, f"region.{region}", load_kind)
                if self.strict_crc:
                    job.done.fail(ReconfigError(str(err)))
                else:
                    job.done.fail(err)
                continue
            # Swap complete.  With one slot the previous module is gone (the
            # load overwrote it); with a shared area it stays resident and
            # only leaves via eviction below.
            if not self._multi and state.unclaimed_prefetch is not None and state.unclaimed_prefetch == previous:
                self.stats.wasted_prefetches += 1
                state.unclaimed_prefetch = None
            state.loaded = job.module
            state.loading = None
            state.load_done = None
            state.history.append(job.module)
            self.in_reconf[region].set(False)
            if self.trace:
                actor = f"region.{region}"
                self.trace.end(self.sim.now, actor, load_kind)
                if self.trace.is_open(actor, "resident"):
                    self.trace.end(self.sim.now, actor, "resident")
                if previous is not None and not self._multi:
                    self.trace.record(self.sim.now, actor, "unload", detail=previous)
                self.trace.begin(self.sim.now, actor, "resident", detail=job.module)
            if self._multi:
                state.resident[job.module] = None
                if self.eviction is not None:
                    self.eviction.on_insert(region, job.module)
                self._evict_overflow(region, state, keep=job.module)
            if job.demand:
                self.stats.demand_loads += 1
            else:
                self.stats.prefetch_loads += 1
                if state.inflight_prefetch_unclaimed:
                    state.unclaimed_prefetch = job.module
            state.inflight_prefetch_unclaimed = False
            job.done.succeed()
            # Idle speculation opportunity — only after demand activity, so
            # speculation never chains on speculation (bounded lookahead).
            if job.demand and len(state.queue) == 0:
                self._speculate(region)

    def _speculate(self, region: str) -> None:
        state = self._region(region)
        target = self.policy.on_idle(region, state.loaded, state.history)
        if target and target not in (state.loaded, state.loading) and self._known(region, target):
            if self._multi and target in state.resident:
                return
            self._enqueue(region, target, demand=False)

    # -- array-form state bridge ---------------------------------------------------
    #
    # The batched fleet engine (repro.runtime.fast) advances manager state as
    # flat arrays.  These hooks translate between a quiescent manager and that
    # plain-data form, so a board can be handed from one engine to the other
    # (and so tests can assert the array form round-trips losslessly).

    def export_state(self) -> dict:
        """Snapshot the visible manager state as plain data.

        Only quiescent managers export: an in-flight or queued load has no
        array representation (the fast engine materialises those transients
        itself).  Raises :class:`ReconfigError` otherwise.
        """
        for region, state in self._regions.items():
            if state.loading is not None or (state.queue is not None and len(state.queue)):
                raise ReconfigError(
                    f"cannot export state while region {region!r} has active or queued loads"
                )
        return {
            "stats": self.stats.as_counters(),
            "regions": {
                region: {
                    "loaded": state.loaded,
                    "history": list(state.history),
                    "unclaimed_prefetch": state.unclaimed_prefetch,
                    "last_demand": state.last_demand,
                    "resident": list(state.resident),
                }
                for region, state in self._regions.items()
            },
        }

    def import_state(self, snapshot: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state`."""
        self.stats = ManagerStats.from_counters(snapshot["stats"])
        for region, data in snapshot["regions"].items():
            state = self._region(region)
            if state.loading is not None or (state.queue is not None and len(state.queue)):
                raise ReconfigError(
                    f"cannot import state while region {region!r} has active or queued loads"
                )
            state.loaded = data["loaded"]
            state.history = list(data["history"])
            state.unclaimed_prefetch = data["unclaimed_prefetch"]
            state.last_demand = data["last_demand"]
            state.resident = dict.fromkeys(data["resident"])
