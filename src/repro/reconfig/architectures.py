"""The Fig. 2 reconfiguration architectures.

"Labels M and P show where functionalities 'Configuration manager' and
'Protocol configuration builder' respectively are implemented.  Locations of
these functionalities have a direct impact on the reconfiguration latency.
Case a) shows standalone self reconfigurations where the fixed part of the
FPGA reconfigures the dynamic area.  Case b) shows the use of a processor to
perform the reconfiguration.  In this case the FPGA sends reconfiguration
requests to the processor through hardware interruptions."

Modelling assumptions (documented in DESIGN.md):

- **Case a (standalone)** — M and P in the static part; the builder streams
  from on-board memory straight into the ICAP.  Request latency is a few
  FPGA cycles; the transfer runs at the memory's sustained bandwidth.
- **Case b (processor)** — the FPGA raises a hardware interrupt; the DSP's
  service routine (interrupt latency + handler) reads the bitstream from its
  own memory and drives the external SelectMAP through its EMIF.  The
  CPU-driven byte path sustains less bandwidth than the dedicated on-chip
  streamer, and every request pays the interrupt round trip.
- **Case c (JTAG)** — boundary-scan download, for scale: the serial port
  dominates everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.reconfig.manager import ReconfigurationManager
from repro.reconfig.memory import BitstreamStore
from repro.reconfig.ports import ConfigPort, ICAP_V2, JTAG, SELECTMAP_66
from repro.reconfig.prefetch import PrefetchPolicy
from repro.reconfig.protocol import ProtocolConfigurationBuilder
from repro.sim import Simulator, Trace

__all__ = ["ReconfigArchitecture", "case_a_standalone", "case_b_processor", "case_c_jtag", "all_cases"]


@dataclass(frozen=True)
class ReconfigArchitecture:
    """One placement of the manager (M) and protocol builder (P)."""

    name: str
    description: str
    manager_location: str  # "fpga_static" | "processor"
    builder_location: str
    port: ConfigPort
    memory_bandwidth_bytes_per_s: float
    memory_access_ns: int
    request_latency_ns: int

    def make_store(self) -> BitstreamStore:
        return BitstreamStore(
            bandwidth_bytes_per_s=self.memory_bandwidth_bytes_per_s,
            access_ns=self.memory_access_ns,
        )

    def make_builder(
        self, sim: Simulator, store: BitstreamStore, trace: Optional[Trace] = None
    ) -> ProtocolConfigurationBuilder:
        return ProtocolConfigurationBuilder(sim, self.port, store, trace=trace)

    def make_manager(
        self,
        sim: Simulator,
        store: BitstreamStore,
        policy: Optional[PrefetchPolicy] = None,
        trace: Optional[Trace] = None,
    ) -> ReconfigurationManager:
        builder = self.make_builder(sim, store, trace=trace)
        return ReconfigurationManager(
            sim, builder, policy=policy, request_latency_ns=self.request_latency_ns, trace=trace
        )

    def estimate_latency_ns(self, nbytes: int) -> int:
        """Analytic end-to-end latency for an ``nbytes`` partial bitstream."""
        store = self.make_store()
        sim = Simulator()
        builder = self.make_builder(sim, store)
        return self.request_latency_ns + builder.estimate_ns(nbytes)


def case_a_standalone() -> ReconfigArchitecture:
    """Fig. 2a: the static part reconfigures the dynamic area via ICAP."""
    return ReconfigArchitecture(
        name="case_a_standalone",
        description="M+P in FPGA static part, on-board memory -> ICAP",
        manager_location="fpga_static",
        builder_location="fpga_static",
        port=ICAP_V2,
        memory_bandwidth_bytes_per_s=BitstreamStore.DEFAULT_BANDWIDTH,
        memory_access_ns=1_000,
        request_latency_ns=500,
    )


def case_b_processor() -> ReconfigArchitecture:
    """Fig. 2b: the DSP performs the reconfiguration on hardware interrupt."""
    return ReconfigArchitecture(
        name="case_b_processor",
        description="M+P on the DSP, interrupt request, EMIF -> SelectMAP",
        manager_location="processor",
        builder_location="processor",
        port=SELECTMAP_66,
        # CPU-driven byte path: interrupt handler + EMIF writes sustain less
        # than the dedicated streamer.
        memory_bandwidth_bytes_per_s=14_000_000.0,
        memory_access_ns=4_000,
        request_latency_ns=20_000,  # interrupt latency + service entry
    )


def case_hybrid_mp() -> ReconfigArchitecture:
    """M on the DSP, P in the static part: the processor *decides* (after an
    interrupt round trip) but the on-chip builder moves the data.  Isolates
    the request-path cost of case b from its data-path cost."""
    return ReconfigArchitecture(
        name="case_hybrid_mp",
        description="M on the DSP (interrupt), P in FPGA static part -> ICAP",
        manager_location="processor",
        builder_location="fpga_static",
        port=ICAP_V2,
        memory_bandwidth_bytes_per_s=BitstreamStore.DEFAULT_BANDWIDTH,
        memory_access_ns=1_000,
        request_latency_ns=20_000,
    )


def case_c_jtag() -> ReconfigArchitecture:
    """Boundary-scan download (comparison point: serial port dominates)."""
    return ReconfigArchitecture(
        name="case_c_jtag",
        description="external JTAG download (debug path)",
        manager_location="processor",
        builder_location="processor",
        port=JTAG,
        memory_bandwidth_bytes_per_s=BitstreamStore.DEFAULT_BANDWIDTH,
        memory_access_ns=1_000,
        request_latency_ns=20_000,
    )


def all_cases() -> list[ReconfigArchitecture]:
    return [case_a_standalone(), case_hybrid_mp(), case_b_processor(), case_c_jtag()]
