"""Eviction policies for shared dynamic-region area.

Hannachi et al. ("Efficient reconfigurable regions management method")
evaluate region management with several modules resident at once: a region
*group* has area for ``region_slots`` module configurations, a demand for a
resident module is a hit, and a demand for a non-resident module loads it
— evicting a victim chosen by one of these policies when the area is full.

The manager drives a policy through four hooks:

- ``on_demand(region, module)`` — every demand request, in program order
  (recency/frequency bookkeeping; Belady's future cursor advances here);
- ``on_insert(region, module)`` — a module became resident (demand load or
  prefetch completion);
- ``on_evict(region, module)`` — a module left the region area;
- ``choose_victim(region, candidates)`` — pick one of ``candidates`` to
  evict.  Candidates never include the module being loaded or the active
  module.  Ties break on the module name so runs are deterministic.

:class:`BeladyEviction` is the clairvoyant bound: built from the per-region
future demand sequence (the fleet driver knows each board's generated
request schedule up front), it evicts the candidate whose next use is
farthest away.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import Optional, Protocol, Sequence

__all__ = [
    "EvictionPolicy",
    "LRUEviction",
    "LFUEviction",
    "BeladyEviction",
]


class EvictionPolicy(Protocol):
    """Victim-selection strategy for a full region group."""

    name: str

    def on_demand(self, region: str, module: str) -> None:
        """A demand request for ``module`` arrived (program order)."""

    def on_insert(self, region: str, module: str) -> None:
        """``module`` became resident in ``region``'s shared area."""

    def on_evict(self, region: str, module: str) -> None:
        """``module`` was evicted from ``region``."""

    def choose_victim(self, region: str, candidates: Sequence[str]) -> str:
        """The candidate to evict; ``candidates`` is non-empty."""


class LRUEviction:
    """Evict the least-recently-demanded resident module."""

    name = "lru"

    def __init__(self) -> None:
        self._clock = itertools.count(1)
        self._last_use: dict[tuple[str, str], int] = {}

    def _touch(self, region: str, module: str) -> None:
        self._last_use[(region, module)] = next(self._clock)

    def on_demand(self, region: str, module: str) -> None:
        self._touch(region, module)

    def on_insert(self, region: str, module: str) -> None:
        # A prefetched module enters with "just used" recency; a demand
        # load was already touched by on_demand.
        self._last_use.setdefault((region, module), next(self._clock))

    def on_evict(self, region: str, module: str) -> None:
        self._last_use.pop((region, module), None)

    def choose_victim(self, region: str, candidates: Sequence[str]) -> str:
        return min(candidates, key=lambda m: (self._last_use.get((region, m), 0), m))


class LFUEviction:
    """Evict the least-frequently-demanded resident module."""

    name = "lfu"

    def __init__(self) -> None:
        self._counts: dict[tuple[str, str], int] = defaultdict(int)

    def on_demand(self, region: str, module: str) -> None:
        self._counts[(region, module)] += 1

    def on_insert(self, region: str, module: str) -> None:
        pass

    def on_evict(self, region: str, module: str) -> None:
        # Frequency survives eviction (classic LFU keeps global counts, so
        # a hot module evicted under pressure wins the next comparison).
        pass

    def choose_victim(self, region: str, candidates: Sequence[str]) -> str:
        return min(candidates, key=lambda m: (self._counts.get((region, m), 0), m))


class BeladyEviction:
    """Clairvoyant (MIN) eviction: farthest next use goes first.

    ``future`` maps each region to its full demand sequence; ``on_demand``
    advances a per-region cursor through it, so ``choose_victim`` only
    scans genuinely future requests.  The demand stream the manager feeds
    the policy must match ``future`` in program order — the fleet driver
    guarantees that by building both from the same generated schedule.
    """

    name = "belady"

    #: Next-use distance for a module never demanded again.
    NEVER = float("inf")

    def __init__(self, future: dict[str, Sequence[str]]):
        self._future = {region: list(seq) for region, seq in future.items()}
        self._cursor: dict[str, int] = {region: 0 for region in self._future}
        #: module -> sorted positions in the region's sequence (lazy index).
        self._positions: dict[str, dict[str, list[int]]] = {}

    def _index(self, region: str) -> dict[str, list[int]]:
        if region not in self._positions:
            index: dict[str, list[int]] = defaultdict(list)
            for pos, module in enumerate(self._future.get(region, ())):
                index[module].append(pos)
            self._positions[region] = dict(index)
        return self._positions[region]

    def _next_use(self, region: str, module: str) -> float:
        import bisect

        cursor = self._cursor.get(region, 0)
        positions = self._index(region).get(module)
        if not positions:
            return self.NEVER
        at = bisect.bisect_left(positions, cursor)
        if at >= len(positions):
            return self.NEVER
        return positions[at]

    def on_demand(self, region: str, module: str) -> None:
        cursor = self._cursor.setdefault(region, 0)
        sequence = self._future.get(region, ())
        if cursor < len(sequence) and sequence[cursor] == module:
            self._cursor[region] = cursor + 1
        else:
            # Out-of-schedule demand (e.g. interactive use): resync to the
            # next occurrence so the cursor never goes stale.
            position = self._next_use(region, module)
            if position is not self.NEVER:
                self._cursor[region] = int(position) + 1

    def on_insert(self, region: str, module: str) -> None:
        pass

    def on_evict(self, region: str, module: str) -> None:
        pass

    def choose_victim(self, region: str, candidates: Sequence[str]) -> str:
        return max(candidates, key=lambda m: (self._next_use(region, m), m))


def make_eviction(name: str, future: Optional[dict[str, Sequence[str]]] = None) -> "EvictionPolicy":
    """Factory by name; ``belady`` requires the ``future`` schedule."""
    if name == "lru":
        return LRUEviction()
    if name == "lfu":
        return LFUEviction()
    if name == "belady":
        if future is None:
            raise ValueError("belady eviction requires the future demand schedule")
        return BeladyEviction(future)
    raise ValueError(f"unknown eviction policy {name!r}; known: belady, lfu, lru")
