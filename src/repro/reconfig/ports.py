"""Configuration port models (ICAP, SelectMAP, JTAG).

A port is characterized by its data width, clock, and per-transaction
overhead.  Virtex-II numbers per DS031/UG002: ICAP and SelectMAP are 8-bit
parallel ports clocked up to 66 MHz (66 MB/s peak); JTAG is serial at
33 Mb/s.  The port is an exclusive resource — one configuration at a time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.units import cycles_to_ns

__all__ = ["PortError", "ConfigPort", "ICAP_V2", "SELECTMAP_66", "JTAG"]


class PortError(ValueError):
    """Invalid port configuration or use."""


@dataclass(frozen=True)
class ConfigPort:
    """One configuration access port."""

    name: str
    width_bits: int
    clock_mhz: float
    #: Fixed per-configuration overhead (sync, startup sequence), ns.
    setup_ns: int = 0
    #: True when the port is inside the FPGA (usable for self-reconfiguration).
    internal: bool = False

    def __post_init__(self) -> None:
        if self.width_bits not in (1, 8, 16, 32):
            raise PortError(f"port {self.name!r}: unsupported width {self.width_bits}")
        if self.clock_mhz <= 0:
            raise PortError(f"port {self.name!r}: clock must be positive")
        if self.setup_ns < 0:
            raise PortError(f"port {self.name!r}: setup must be >= 0")

    @property
    def bytes_per_second(self) -> float:
        return self.clock_mhz * 1e6 * self.width_bits / 8.0

    def write_ns(self, nbytes: int) -> int:
        """Time to clock ``nbytes`` of configuration data into the port."""
        if nbytes < 0:
            raise PortError(f"byte count must be >= 0, got {nbytes}")
        cycles = -(-nbytes * 8 // self.width_bits)
        return self.setup_ns + cycles_to_ns(cycles, self.clock_mhz)


#: Internal Configuration Access Port of Virtex-II: 8-bit @ 66 MHz, on-chip.
ICAP_V2 = ConfigPort(name="icap", width_bits=8, clock_mhz=66.0, setup_ns=500, internal=True)

#: External SelectMAP port: 8-bit @ 66 MHz, driven by an external master.
SELECTMAP_66 = ConfigPort(name="selectmap", width_bits=8, clock_mhz=66.0, setup_ns=2_000, internal=False)

#: Boundary-scan configuration: serial, 33 MHz TCK (slow; for comparison).
JTAG = ConfigPort(name="jtag", width_bits=1, clock_mhz=33.0, setup_ns=5_000, internal=False)
