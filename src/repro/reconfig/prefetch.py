"""Configuration prefetching policies.

"The run-time reconfiguration manager … uses prefetching technic to minimize
reconfiguration latency of runtime reconfiguration."  The manager consults a
policy at two moments:

- ``on_select(region, module)`` — the DSP announced the next configuration
  (the ``Select`` value was written): should we start loading now?
- ``on_idle(region, loaded, history)`` — the region is idle with no pending
  request: is there a module worth speculatively loading?

Policies:

- :class:`NoPrefetchPolicy` — reactive baseline: load only on demand.
- :class:`OnSelectPrefetchPolicy` — start loading the moment the selection
  is known (the paper's prefetching: the Select register is written ahead of
  the data entering the modulation block).
- :class:`HistoryPrefetchPolicy` — first-order Markov predictor over the
  observed module sequence; speculates when the selection is not yet known.
- :class:`MarkovPrefetchPolicy` — second-order sequence predictor with a
  first-order fallback; catches period-2 alternations and longer motifs the
  first-order predictor blurs into self-loops.

A policy that exposes an ``observe(prev, nxt)`` method is fed every demand
transition by the configuration manager (self-transitions included), so
predictors learn from real demand order without manager-side type checks.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Optional, Protocol, Sequence

__all__ = [
    "PrefetchPolicy",
    "NoPrefetchPolicy",
    "OnSelectPrefetchPolicy",
    "HistoryPrefetchPolicy",
    "MarkovPrefetchPolicy",
]


class PrefetchPolicy(Protocol):
    """Strategy interface consulted by the configuration manager."""

    name: str

    def on_select(self, region: str, module: str) -> Optional[str]:
        """Module to start loading when the selection becomes known."""

    def on_idle(self, region: str, loaded: Optional[str], history: Sequence[str]) -> Optional[str]:
        """Module to speculatively load while the region is idle."""


class NoPrefetchPolicy:
    """Reactive: never loads ahead of a demand request."""

    name = "none"

    def on_select(self, region: str, module: str) -> Optional[str]:
        return None

    def on_idle(self, region: str, loaded: Optional[str], history: Sequence[str]) -> Optional[str]:
        return None


class OnSelectPrefetchPolicy:
    """Loads as soon as the next configuration is announced."""

    name = "on_select"

    def on_select(self, region: str, module: str) -> Optional[str]:
        return module

    def on_idle(self, region: str, loaded: Optional[str], history: Sequence[str]) -> Optional[str]:
        return None


class HistoryPrefetchPolicy:
    """First-order Markov predictor over the *demand* history.

    A pure idle-time speculator: it never acts on select announcements
    (acting early from outside the region's program order can evict a module
    an in-flight iteration still needs) and only speculates when the
    predicted successor differs from the loaded module with enough
    confidence.  Self-transitions are learned too, so steady selections
    predict "stay" and produce no churn.

    ``min_confidence`` guards against speculating from noise: the predicted
    successor must account for at least that fraction of observed
    transitions out of the current module.
    """

    name = "history"

    def __init__(self, min_confidence: float = 0.5):
        if not 0.0 < min_confidence <= 1.0:
            raise ValueError("min_confidence must be in (0, 1]")
        self.min_confidence = min_confidence
        self._transitions: dict[str, dict[str, int]] = defaultdict(lambda: defaultdict(int))

    def observe(self, prev: Optional[str], nxt: str) -> None:
        """Record a configuration transition (manager calls on each swap)."""
        if prev is not None:
            self._transitions[prev][nxt] += 1

    def predict(self, current: Optional[str]) -> Optional[str]:
        if current is None:
            return None
        counts = self._transitions.get(current)
        if not counts:
            return None
        total = sum(counts.values())
        best, best_count = max(counts.items(), key=lambda kv: (kv[1], kv[0]))
        if best_count / total < self.min_confidence:
            return None
        return best

    def on_select(self, region: str, module: str) -> Optional[str]:
        return None

    def on_idle(self, region: str, loaded: Optional[str], history: Sequence[str]) -> Optional[str]:
        prediction = self.predict(loaded if loaded is not None else (history[-1] if history else None))
        if prediction is not None and prediction != loaded:
            return prediction
        return None


class MarkovPrefetchPolicy:
    """Second-order Markov predictor with a first-order fallback.

    Learns ``P(next | (before, current))`` from the demand stream and backs
    off to ``P(next | current)`` while the pair context is still unseen.
    The longer context resolves patterns the first-order predictor cannot:
    on ``a b a b …`` first-order sees ``a -> b`` *and* ``b -> a`` (fine),
    but on ``a a b a a b …`` first-order's ``a``-row splits between ``a``
    and ``b`` and stalls below the confidence bar, while the pair
    ``(a, a) -> b`` is deterministic.

    Like :class:`HistoryPrefetchPolicy` it is a pure idle-time speculator
    and never acts on select announcements.
    """

    name = "markov"

    def __init__(self, min_confidence: float = 0.5):
        if not 0.0 < min_confidence <= 1.0:
            raise ValueError("min_confidence must be in (0, 1]")
        self.min_confidence = min_confidence
        self._first: dict[str, dict[str, int]] = defaultdict(lambda: defaultdict(int))
        self._second: dict[tuple[str, str], dict[str, int]] = defaultdict(lambda: defaultdict(int))
        #: last observed (before, current) demand pair, per the manager's
        #: per-region observe() calls; reset when the chain breaks.
        self._last_pair: Optional[tuple[str, str]] = None

    def observe(self, prev: Optional[str], nxt: str) -> None:
        if prev is None:
            self._last_pair = None
            return
        self._first[prev][nxt] += 1
        if self._last_pair is not None and self._last_pair[1] == prev:
            self._second[self._last_pair][nxt] += 1
        self._last_pair = (prev, nxt)

    @staticmethod
    def _best(counts: Optional[dict[str, int]], min_confidence: float) -> Optional[str]:
        if not counts:
            return None
        total = sum(counts.values())
        best, best_count = max(counts.items(), key=lambda kv: (kv[1], kv[0]))
        if best_count / total < min_confidence:
            return None
        return best

    def predict(self, current: Optional[str]) -> Optional[str]:
        if current is None:
            return None
        if self._last_pair is not None and self._last_pair[1] == current:
            prediction = self._best(self._second.get(self._last_pair), self.min_confidence)
            if prediction is not None:
                return prediction
        return self._best(self._first.get(current), self.min_confidence)

    def on_select(self, region: str, module: str) -> Optional[str]:
        return None

    def on_idle(self, region: str, loaded: Optional[str], history: Sequence[str]) -> Optional[str]:
        prediction = self.predict(loaded if loaded is not None else (history[-1] if history else None))
        if prediction is not None and prediction != loaded:
            return prediction
        return None
