"""Configuration prefetching policies.

"The run-time reconfiguration manager … uses prefetching technic to minimize
reconfiguration latency of runtime reconfiguration."  The manager consults a
policy at two moments:

- ``on_select(region, module)`` — the DSP announced the next configuration
  (the ``Select`` value was written): should we start loading now?
- ``on_idle(region, loaded, history)`` — the region is idle with no pending
  request: is there a module worth speculatively loading?

Policies:

- :class:`NoPrefetchPolicy` — reactive baseline: load only on demand.
- :class:`OnSelectPrefetchPolicy` — start loading the moment the selection
  is known (the paper's prefetching: the Select register is written ahead of
  the data entering the modulation block).
- :class:`HistoryPrefetchPolicy` — first-order Markov predictor over the
  observed module sequence; speculates when the selection is not yet known.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Optional, Protocol, Sequence

__all__ = [
    "PrefetchPolicy",
    "NoPrefetchPolicy",
    "OnSelectPrefetchPolicy",
    "HistoryPrefetchPolicy",
]


class PrefetchPolicy(Protocol):
    """Strategy interface consulted by the configuration manager."""

    name: str

    def on_select(self, region: str, module: str) -> Optional[str]:
        """Module to start loading when the selection becomes known."""

    def on_idle(self, region: str, loaded: Optional[str], history: Sequence[str]) -> Optional[str]:
        """Module to speculatively load while the region is idle."""


class NoPrefetchPolicy:
    """Reactive: never loads ahead of a demand request."""

    name = "none"

    def on_select(self, region: str, module: str) -> Optional[str]:
        return None

    def on_idle(self, region: str, loaded: Optional[str], history: Sequence[str]) -> Optional[str]:
        return None


class OnSelectPrefetchPolicy:
    """Loads as soon as the next configuration is announced."""

    name = "on_select"

    def on_select(self, region: str, module: str) -> Optional[str]:
        return module

    def on_idle(self, region: str, loaded: Optional[str], history: Sequence[str]) -> Optional[str]:
        return None


class HistoryPrefetchPolicy:
    """First-order Markov predictor over the *demand* history.

    A pure idle-time speculator: it never acts on select announcements
    (acting early from outside the region's program order can evict a module
    an in-flight iteration still needs) and only speculates when the
    predicted successor differs from the loaded module with enough
    confidence.  Self-transitions are learned too, so steady selections
    predict "stay" and produce no churn.

    ``min_confidence`` guards against speculating from noise: the predicted
    successor must account for at least that fraction of observed
    transitions out of the current module.
    """

    name = "history"

    def __init__(self, min_confidence: float = 0.5):
        if not 0.0 < min_confidence <= 1.0:
            raise ValueError("min_confidence must be in (0, 1]")
        self.min_confidence = min_confidence
        self._transitions: dict[str, dict[str, int]] = defaultdict(lambda: defaultdict(int))

    def observe(self, prev: Optional[str], nxt: str) -> None:
        """Record a configuration transition (manager calls on each swap)."""
        if prev is not None:
            self._transitions[prev][nxt] += 1

    def predict(self, current: Optional[str]) -> Optional[str]:
        if current is None:
            return None
        counts = self._transitions.get(current)
        if not counts:
            return None
        total = sum(counts.values())
        best, best_count = max(counts.items(), key=lambda kv: (kv[1], kv[0]))
        if best_count / total < self.min_confidence:
            return None
        return best

    def on_select(self, region: str, module: str) -> Optional[str]:
        return None

    def on_idle(self, region: str, loaded: Optional[str], history: Sequence[str]) -> Optional[str]:
        prediction = self.predict(loaded if loaded is not None else (history[-1] if history else None))
        if prediction is not None and prediction != loaded:
            return prediction
        return None
