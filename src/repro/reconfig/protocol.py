"""The protocol configuration builder.

Turns a configuration request into "a valid reconfiguration stream in
agreement with the used protocol mode": reads frame data from the external
store, wraps it in the port protocol's command words, and drives the port.

The data path is pipelined chunk by chunk (the builder is a small FSM with a
FIFO), so the transfer time is bounded by the slower of memory and port,
plus fixed protocol overhead — exactly the analytic model the latency
benchmarks sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.reconfig.memory import BitstreamStore
from repro.reconfig.ports import ConfigPort
from repro.sim import Resource, Simulator, Trace
from repro.sim.units import transfer_time_ns

__all__ = ["ProtocolError", "ProtocolConfigurationBuilder"]

#: Command words wrapped around the frame data (sync, FAR, CMD, CRC, desync),
#: modelled as extra bytes through the port.
COMMAND_OVERHEAD_BYTES = 128


class ProtocolError(RuntimeError):
    """Configuration stream construction or verification failed."""


@dataclass
class LoadOutcome:
    """Result of one completed configuration transfer."""

    region: str
    module: str
    size_bytes: int
    duration_ns: int


class ProtocolConfigurationBuilder:
    """Streams partial bitstreams from the store into a configuration port."""

    def __init__(
        self,
        sim: Simulator,
        port: ConfigPort,
        store: BitstreamStore,
        trace: Optional[Trace] = None,
        verify_crc: bool = True,
    ):
        self.sim = sim
        self.port = port
        self.store = store
        self.trace = trace
        self.verify_crc = verify_crc
        #: One configuration at a time: the port is exclusive.
        self.port_lock = Resource(sim, name=f"port.{port.name}")
        self.loads: list[LoadOutcome] = []
        #: Test hook / upset model: called after each write with
        #: (region, module); returning True marks the written configuration
        #: as corrupted on the fabric (detected only by readback).
        self.upset_injector = None
        #: region -> (module, content_ok) actually present on the fabric.
        self._device_content: dict[str, tuple[str, bool]] = {}

    # -- analytic model -----------------------------------------------------------

    def estimate_ns(self, nbytes: int) -> int:
        """Closed-form transfer estimate (chunk-pipelined memory + port)."""
        total = nbytes + COMMAND_OVERHEAD_BYTES
        memory_ns = self.store.access_ns + transfer_time_ns(total, self.store.bandwidth)
        port_ns = self.port.write_ns(total)
        return max(memory_ns, port_ns)

    def estimate_for(self, region: str, module: str) -> int:
        return self.estimate_ns(self.store.get(region, module).size_bytes)

    def readback(self, region: str, module: str) -> Generator:
        """Process body: read the region's frames back and verify them.

        Virtex-II configuration readback streams the frames out through the
        same port, so verification costs about another full transfer.
        Returns True when the fabric content matches the golden bitstream.
        """
        entry = self.store.get(region, module)
        token = yield self.port_lock.request()
        actor = f"port.{self.port.name}"
        try:
            if self.trace:
                self.trace.begin(self.sim.now, actor, "readback", detail=f"{region}:{module}")
            yield self.sim.timeout(self.estimate_ns(entry.size_bytes))
            content = self._device_content.get(region)
            return content is not None and content[0] == module and content[1]
        finally:
            if self.trace:
                self.trace.end(self.sim.now, actor, "readback")
            self.port_lock.release(token)

    def build_stream(self, region: str, module: str) -> list[int]:
        """The valid configuration word stream for a stored bitstream.

        Only available when the store holds the full :class:`Bitstream`
        object (not a bare size); raises :class:`ProtocolError` otherwise.
        """
        entry = self.store.get(region, module)
        if entry.bitstream is None:
            raise ProtocolError(
                f"{region}/{module}: only the size is registered; no frame data to stream"
            )
        return list(entry.bitstream.words())

    # -- simulated transfer ------------------------------------------------------------

    def load(self, region: str, module: str) -> Generator:
        """Process body: perform the configuration transfer.

        Acquires the port, checks the stored CRC, then spends the pipelined
        transfer time.  Raises :class:`ProtocolError` on CRC mismatch (the
        device would reject the stream and the old module stays active).
        """
        entry = self.store.get(region, module)
        token = yield self.port_lock.request()
        start = self.sim.now
        actor = f"port.{self.port.name}"
        try:
            if self.trace:
                self.trace.begin(start, actor, "reconfig", detail=f"{region}<-{module}")
            if self.verify_crc and not entry.verify():
                raise ProtocolError(
                    f"bitstream CRC check failed for {region}/{module}; configuration aborted"
                )
            yield self.sim.timeout(self.estimate_ns(entry.size_bytes))
            upset = bool(self.upset_injector(region, module)) if self.upset_injector else False
            self._device_content[region] = (module, not upset)
            outcome = LoadOutcome(
                region=region,
                module=module,
                size_bytes=entry.size_bytes,
                duration_ns=self.sim.now - start,
            )
            self.loads.append(outcome)
            return outcome
        finally:
            if self.trace:
                self.trace.end(self.sim.now, actor, "reconfig")
            self.port_lock.release(token)
