"""External bitstream memory.

Partial bitstreams live in off-chip memory ("the protocol builder … is next
in charge to address external memory and drive ICAP").  The store registers
a bitstream per (region, module) and models the sustained read bandwidth —
on the paper's board this, not the 66 MB/s port, bounds the 4 ms figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.fabric.bitstream import Bitstream
from repro.sim.units import transfer_time_ns

__all__ = ["StoreError", "StoredBitstream", "BitstreamStore"]


class StoreError(KeyError):
    """Unknown (region, module) pair or bad registration."""


@dataclass(frozen=True)
class StoredBitstream:
    """What the store knows about one module's partial bitstream."""

    region: str
    module: str
    size_bytes: int
    bitstream: Optional[Bitstream] = None

    def verify(self) -> bool:
        """CRC check (True when no full bitstream object is attached)."""
        return self.bitstream.verify_crc() if self.bitstream is not None else True


class BitstreamStore:
    """External memory holding partial bitstreams, with a read-time model."""

    #: Default sustained read bandwidth (flash + controller), bytes/s.
    #: Calibrated so the paper's ≈82 KB module loads in ≈4 ms end to end.
    DEFAULT_BANDWIDTH = 20_500_000.0

    def __init__(self, bandwidth_bytes_per_s: float = DEFAULT_BANDWIDTH, access_ns: int = 1_000):
        if bandwidth_bytes_per_s <= 0:
            raise ValueError("memory bandwidth must be positive")
        if access_ns < 0:
            raise ValueError("access latency must be >= 0")
        self.bandwidth = bandwidth_bytes_per_s
        self.access_ns = access_ns
        self._entries: dict[tuple[str, str], StoredBitstream] = {}

    def register(
        self, region: str, module: str, bitstream: Union[Bitstream, int]
    ) -> StoredBitstream:
        """Register a module's bitstream (object, or bare size in bytes)."""
        key = (region, module)
        if key in self._entries:
            raise StoreError(f"bitstream for {region}/{module} already registered")
        if isinstance(bitstream, Bitstream):
            entry = StoredBitstream(region, module, bitstream.size_bytes, bitstream)
        else:
            size = int(bitstream)
            if size <= 0:
                raise StoreError(f"bitstream size must be positive, got {size}")
            entry = StoredBitstream(region, module, size)
        self._entries[key] = entry
        return entry

    def get(self, region: str, module: str) -> StoredBitstream:
        try:
            return self._entries[(region, module)]
        except KeyError:
            raise StoreError(f"no bitstream registered for {region}/{module}") from None

    def modules_of(self, region: str) -> list[str]:
        return sorted(m for (r, m) in self._entries if r == region)

    def regions(self) -> list[str]:
        return sorted({r for (r, _m) in self._entries})

    def read_ns(self, region: str, module: str) -> int:
        """Time to stream the whole bitstream out of memory."""
        entry = self.get(region, module)
        return self.access_ns + transfer_time_ns(entry.size_bytes, self.bandwidth)

    def __len__(self) -> int:
        return len(self._entries)
