"""Runtime reconfiguration: manager, protocol builder, ports, prefetching.

The paper splits runtime reconfiguration into "a configuration manager and a
protocol configuration builder.  A configuration manager is in charge of the
configuration bitstream which must be loaded on the reconfigurable part by
sending configuration requests.  Configuration requests are sent to the
protocol configuration builder which is in charge to construct a valid
reconfiguration stream in agreement with the used protocol mode (e.g.
selectmap)."  Fig. 2 enumerates where the two roles can live; §1 announces
"prefetching technic to minimize reconfiguration latency".

- :mod:`repro.reconfig.ports` — ICAP / SelectMAP / JTAG port models,
- :mod:`repro.reconfig.memory` — external bitstream memory,
- :mod:`repro.reconfig.protocol` — the protocol configuration builder,
- :mod:`repro.reconfig.prefetch` — prefetch policies (none / on-select /
  first- and second-order Markov predictors),
- :mod:`repro.reconfig.eviction` — eviction policies (LRU / LFU / Belady)
  for multi-slot region area,
- :mod:`repro.reconfig.manager` — the configuration manager (implements the
  executive's configuration-service protocol),
- :mod:`repro.reconfig.architectures` — the Fig. 2 placements (case a:
  standalone self-reconfiguration; case b: processor-driven via interrupts).
"""

from repro.reconfig.ports import ConfigPort, ICAP_V2, JTAG, SELECTMAP_66, PortError
from repro.reconfig.memory import BitstreamStore, StoreError
from repro.reconfig.protocol import ProtocolConfigurationBuilder, ProtocolError
from repro.reconfig.prefetch import (
    HistoryPrefetchPolicy,
    MarkovPrefetchPolicy,
    NoPrefetchPolicy,
    OnSelectPrefetchPolicy,
    PrefetchPolicy,
)
from repro.reconfig.eviction import (
    BeladyEviction,
    EvictionPolicy,
    LFUEviction,
    LRUEviction,
    make_eviction,
)
from repro.reconfig.manager import (
    ManagerStats,
    ReconfigStats,
    ReconfigurationManager,
    ReconfigError,
)
from repro.reconfig.scrubbing import ConfigurationScrubber, SEUInjector, ScrubberStats
from repro.reconfig.architectures import (
    ReconfigArchitecture,
    all_cases,
    case_a_standalone,
    case_b_processor,
    case_c_jtag,
    case_hybrid_mp,
)

__all__ = [
    "ConfigPort",
    "ICAP_V2",
    "JTAG",
    "SELECTMAP_66",
    "PortError",
    "BitstreamStore",
    "StoreError",
    "ProtocolConfigurationBuilder",
    "ProtocolError",
    "PrefetchPolicy",
    "NoPrefetchPolicy",
    "OnSelectPrefetchPolicy",
    "HistoryPrefetchPolicy",
    "MarkovPrefetchPolicy",
    "EvictionPolicy",
    "LRUEviction",
    "LFUEviction",
    "BeladyEviction",
    "make_eviction",
    "ManagerStats",
    "ReconfigStats",
    "ReconfigurationManager",
    "ReconfigError",
    "ConfigurationScrubber",
    "SEUInjector",
    "ScrubberStats",
    "ReconfigArchitecture",
    "all_cases",
    "case_a_standalone",
    "case_b_processor",
    "case_c_jtag",
    "case_hybrid_mp",
]
