"""Configuration scrubbing: periodic repair of upset configurations.

Mobile/aerospace deployments of partially reconfigurable FPGAs pair the
configuration port with a *scrubber*: a background process that periodically
reads the configuration back to detect single-event upsets and rewrites the
affected region before errors accumulate.  The scrubber shares the single
configuration port with the demand/prefetch traffic of the reconfiguration
manager, so scrub rate trades configuration availability against port
contention.

This module extends the runtime manager of this reproduction with that
capability; it is beyond the 2006 paper's scope but uses only mechanisms the
paper's architecture already contains (the builder's readback/rewrite paths).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.reconfig.manager import ReconfigurationManager
from repro.reconfig.protocol import ProtocolConfigurationBuilder
from repro.sim import Simulator, Trace

__all__ = ["SEUInjector", "ScrubberStats", "ConfigurationScrubber"]


class SEUInjector:
    """Poisson single-event-upset process over the dynamic regions.

    Corrupts the currently-configured content of a random region at
    exponentially distributed intervals and records when each region's
    corruption started (``corrupt_since``), so availability can be computed
    exactly from upset to repair.
    """

    def __init__(
        self,
        sim: Simulator,
        builder: ProtocolConfigurationBuilder,
        regions: list[str],
        mean_interval_ns: float,
        seed: int = 0,
    ):
        if mean_interval_ns <= 0:
            raise ValueError("mean upset interval must be positive")
        if not regions:
            raise ValueError("need at least one region to upset")
        self.sim = sim
        self.builder = builder
        self.regions = list(regions)
        self.mean_interval_ns = mean_interval_ns
        self.rng = np.random.default_rng(seed)
        self.upsets = 0
        self.upset_times: list[int] = []
        #: region -> time its current corruption began (None when intact)
        self.corrupt_since: dict[str, Optional[int]] = {}
        sim.process(self._run(), name="seu")

    def _run(self):
        while True:
            delay = max(1, int(self.rng.exponential(self.mean_interval_ns)))
            yield self.sim.timeout(delay)
            region = self.regions[int(self.rng.integers(len(self.regions)))]
            content = self.builder._device_content.get(region)
            if content is not None and content[1]:
                self.builder._device_content[region] = (content[0], False)
                self.upsets += 1
                self.upset_times.append(self.sim.now)
                self.corrupt_since[region] = self.sim.now

    def mark_repaired(self, region: str) -> Optional[int]:
        """Clear the corruption marker; returns when it had started."""
        return self.corrupt_since.pop(region, None)


@dataclass
class ScrubberStats:
    scrub_cycles: int = 0
    repairs: int = 0
    #: total time regions spent carrying corrupted configuration (ns)
    corrupted_ns: int = 0


class ConfigurationScrubber:
    """Periodic readback-and-repair over all regions of a manager."""

    def __init__(
        self,
        sim: Simulator,
        manager: ReconfigurationManager,
        interval_ns: int,
        injector: Optional[SEUInjector] = None,
        trace: Optional[Trace] = None,
    ):
        if interval_ns <= 0:
            raise ValueError("scrub interval must be positive")
        self.sim = sim
        self.manager = manager
        self.builder = manager.builder
        self.interval_ns = interval_ns
        self.injector = injector
        self.trace = trace
        self.stats = ScrubberStats()
        sim.process(self._run(), name="scrubber")

    def _run(self):
        while True:
            yield self.sim.timeout(self.interval_ns)
            self.stats.scrub_cycles += 1
            for region in self.builder.store.regions():
                content = self.builder._device_content.get(region)
                if content is None:
                    continue
                module, ok = content
                if ok:
                    continue
                # Readback confirms the upset, then a rewrite repairs it.
                confirmed_ok = yield self.sim.process(self.builder.readback(region, module))
                if confirmed_ok:
                    continue  # repaired by a demand reload meanwhile
                saved_injector = self.builder.upset_injector
                self.builder.upset_injector = None  # the repair write is clean
                try:
                    yield self.sim.process(self.builder.load(region, module))
                finally:
                    self.builder.upset_injector = saved_injector
                self.builder._device_content[region] = (module, True)
                self.stats.repairs += 1
                if self.injector is not None:
                    started = self.injector.mark_repaired(region)
                    if started is not None:
                        self.stats.corrupted_ns += self.sim.now - started
                if self.trace:
                    self.trace.record(self.sim.now, f"scrub.{region}", "repair", detail=module)

    def availability(self, horizon_ns: int) -> float:
        """Fraction of the horizon the configurations were intact (exact
        when an injector is attached; repairs-to-date plus open corruption)."""
        corrupted = self.stats.corrupted_ns
        if self.injector is not None:
            for region, since in self.injector.corrupt_since.items():
                if since is not None:
                    corrupted += max(0, horizon_ns - since)
        if horizon_ns <= 0:
            return 1.0
        return max(0.0, 1.0 - corrupted / horizon_ns)
