"""Algorithm-graph serialization (JSON).

SynDEx keeps its algorithm/architecture models in files; this module gives
the reproduction the same persistence: a stable, versioned JSON format for
:class:`~repro.dfg.graph.AlgorithmGraph` including data types, ports, edges
and condition groups.  ``loads(dumps(g))`` is an exact structural round
trip (verified by property tests).
"""

from __future__ import annotations

import json
from typing import Any

from repro.dfg.graph import AlgorithmGraph
from repro.dfg.operations import Operation
from repro.dfg.types import DataType, Direction

__all__ = ["GraphFormatError", "dumps", "loads", "save", "load"]

FORMAT_VERSION = 1


class GraphFormatError(ValueError):
    """Malformed serialized graph."""


def _condition_value_to_json(value: Any) -> Any:
    """Condition values must survive JSON: primitives pass through, enums
    and other objects are tagged by repr for stable round trip."""
    import enum

    if isinstance(value, enum.Enum):
        return {"__enum__": f"{type(value).__module__}.{type(value).__qualname__}", "value": value.value}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise GraphFormatError(f"unserializable condition value {value!r}")


def _condition_value_from_json(data: Any) -> Any:
    if isinstance(data, dict) and "__enum__" in data:
        module_name, _, qualname = data["__enum__"].rpartition(".")
        import importlib

        try:
            cls = getattr(importlib.import_module(module_name), qualname)
            return cls(data["value"])
        except (ImportError, AttributeError, ValueError) as err:
            raise GraphFormatError(f"cannot restore enum {data['__enum__']}: {err}") from err
    return data


def to_dict(graph: AlgorithmGraph) -> dict:
    """The graph as a JSON-ready dictionary."""
    dtypes: dict[str, int] = {}
    ops = []
    for op in graph.operations:
        ports = []
        for port in op.ports.values():
            dtypes.setdefault(port.dtype.name, port.dtype.bits)
            if dtypes[port.dtype.name] != port.dtype.bits:
                raise GraphFormatError(
                    f"two data types named {port.dtype.name!r} with different widths"
                )
            ports.append(
                {
                    "name": port.name,
                    "direction": port.direction.value,
                    "dtype": port.dtype.name,
                    "tokens": port.tokens,
                }
            )
        ops.append({"name": op.name, "kind": op.kind, "params": dict(op.params), "ports": ports})
    edges = [
        {"src": e.src.name, "src_port": e.src_port, "dst": e.dst.name, "dst_port": e.dst_port}
        for e in graph.edges
    ]
    groups = []
    for group in graph.condition_groups.values():
        groups.append(
            {
                "name": group.name,
                "selector": group.selector.name,
                "selector_port": group.selector_port,
                "cases": [
                    {
                        "value": _condition_value_to_json(value),
                        "operations": [op.name for op in case_ops],
                    }
                    for value, case_ops in group.cases.items()
                ],
            }
        )
    return {
        "format": "repro-algorithm-graph",
        "version": FORMAT_VERSION,
        "name": graph.name,
        "dtypes": dtypes,
        "operations": ops,
        "edges": edges,
        "condition_groups": groups,
    }


def from_dict(data: dict) -> AlgorithmGraph:
    """Rebuild a graph from :func:`to_dict` output."""
    if data.get("format") != "repro-algorithm-graph":
        raise GraphFormatError("not a repro algorithm-graph document")
    if data.get("version") != FORMAT_VERSION:
        raise GraphFormatError(f"unsupported format version {data.get('version')!r}")
    dtypes = {name: DataType(name, bits) for name, bits in data.get("dtypes", {}).items()}
    graph = AlgorithmGraph(data.get("name", "algorithm"))
    for op_data in data.get("operations", []):
        op = Operation(name=op_data["name"], kind=op_data["kind"], params=dict(op_data.get("params", {})))
        for port in op_data.get("ports", []):
            try:
                dtype = dtypes[port["dtype"]]
            except KeyError:
                raise GraphFormatError(f"port references unknown dtype {port['dtype']!r}") from None
            op.add_port(port["name"], Direction(port["direction"]), dtype, port["tokens"])
        graph.add(op)
    for edge in data.get("edges", []):
        graph.connect(edge["src"], edge["src_port"], edge["dst"], edge["dst_port"])
    for group_data in data.get("condition_groups", []):
        group = graph.condition_group(
            group_data["name"], group_data["selector"], group_data["selector_port"]
        )
        for case in group_data.get("cases", []):
            value = _condition_value_from_json(case["value"])
            group.add_case(value, [graph.operation(n) for n in case["operations"]])
    return graph


def dumps(graph: AlgorithmGraph, indent: int = 2) -> str:
    return json.dumps(to_dict(graph), indent=indent, sort_keys=True)


def loads(text: str) -> AlgorithmGraph:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as err:
        raise GraphFormatError(f"invalid JSON: {err}") from err
    return from_dict(data)


def save(graph: AlgorithmGraph, path) -> None:
    from pathlib import Path

    Path(path).write_text(dumps(graph))


def load(path) -> AlgorithmGraph:
    from pathlib import Path

    return loads(Path(path).read_text())
